// Ablation, part 1: the three information-dissemination strategies of
// Section 3.5 under the paper's 3-decision-point GT3 deployment —
//   1) USLA/snapshot state + usage exchanged,
//   2) usage (dispatch records) only  [the paper's choice],
//   3) no exchange at all.
// Part 2: *how* the chosen strategy's records travel — the src/overlay/
// dissemination overlays (mesh / tree / gossip / super-peer) at a fixed
// 10-point deployment, trading wire bytes against state freshness.
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;
using ::digruber::digruber::Dissemination;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  struct Row {
    const char* name;
    Dissemination strategy;
  };
  const Row rows[] = {
      {"1: USLAs + usage", Dissemination::kUslaAndUsage},
      {"2: usage only (paper)", Dissemination::kUsageOnly},
      {"3: none", Dissemination::kNone},
  };

  Table table({"Strategy", "Accuracy (handled)", "QTime (s)", "Exchanges",
               "Records applied", "Response (s)"});
  for (const Row& row : rows) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), 3);
    cfg.name = std::string("dissemination-") + row.name;
    cfg.dissemination = row.strategy;
    const experiments::ScenarioResult r = experiments::run_scenario(cfg);

    std::uint64_t exchanges = 0, applied = 0;
    for (const auto& dp : r.dps) {
      exchanges += dp.exchanges_sent;
      applied += dp.records_applied;
    }
    table.add_row({row.name, Table::pct(r.handled.accuracy),
                   Table::num(r.handled.qtime_s, 1), std::to_string(exchanges),
                   std::to_string(applied), Table::num(r.handled.response_s, 2)});
  }
  std::cout << "== Ablation: Dissemination Strategies (3 GT3 decision points) ==\n";
  table.render(std::cout);
  std::cout << "Strategy 3 loses accuracy (each decision point is blind to\n"
               "2/3 of dispatches). Strategy 1 is heavier on the wire and, at\n"
               "high load, actively *worse* than strategy 2: exchanged state\n"
               "estimates blur the receiver's own precise dispatch records, so\n"
               "decision points herd toward the same seemingly-free sites\n"
               "(watch the QTime column). The paper's choice of strategy 2 is\n"
               "justified by robustness as well as simplicity.\n\n";

  const overlay::Kind kinds[] = {overlay::Kind::kMesh, overlay::Kind::kTree,
                                 overlay::Kind::kGossip,
                                 overlay::Kind::kSuperPeer};
  Table sweep({"Overlay", "Accuracy (handled)", "Records applied",
               "Duplicates", "Bytes/round", "Mean fanout", "Max depth",
               "TTL drops", "Response (s)"});
  for (const overlay::Kind kind : kinds) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), 10);
    cfg.name = std::string("overlay-") + overlay::kind_name(kind);
    cfg.overlay_options.kind = kind;
    cfg.overlay_options.seed = args.seed;
    const experiments::ScenarioResult r = experiments::run_scenario(cfg);

    std::uint64_t applied = 0, duplicates = 0;
    for (const auto& dp : r.dps) {
      applied += dp.records_applied;
      duplicates += dp.records_duplicate;
    }
    sweep.add_row({overlay::kind_name(kind), Table::pct(r.handled.accuracy),
                   std::to_string(applied), std::to_string(duplicates),
                   Table::num(r.overlay.bytes_per_round() * 10.0, 0),
                   Table::num(r.overlay.mean_fanout(), 2),
                   std::to_string(r.overlay.max_hops),
                   std::to_string(r.overlay.relays_suppressed),
                   Table::num(r.handled.response_s, 2)});
  }
  std::cout << "== Ablation: Dissemination Overlay (10 GT3 decision points) ==\n";
  sweep.render(std::cout);
  std::cout << "Mesh delivers every record in one exchange round at quadratic\n"
               "wire cost. Tree and super-peer relay over a sparse structure:\n"
               "a fraction of mesh traffic, records arriving relay-depth\n"
               "rounds later (watch max depth), so remote state is staler and\n"
               "accuracy dips — most visibly over short windows, where the\n"
               "last few rounds' records never finish spreading before the\n"
               "run ends. Gossip pays duplicates for probabilistic\n"
               "robustness. No strategy loses records: dedup plus digest\n"
               "anti-entropy deliver everything, just later.\n";
  return 0;
}
