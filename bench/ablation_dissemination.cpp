// Ablation: the three information-dissemination strategies of Section 3.5
// under the paper's 3-decision-point GT3 deployment —
//   1) USLA/snapshot state + usage exchanged,
//   2) usage (dispatch records) only  [the paper's choice],
//   3) no exchange at all.
// Compares scheduling accuracy against the exchange's wire cost.
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;
using ::digruber::digruber::Dissemination;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  struct Row {
    const char* name;
    Dissemination strategy;
  };
  const Row rows[] = {
      {"1: USLAs + usage", Dissemination::kUslaAndUsage},
      {"2: usage only (paper)", Dissemination::kUsageOnly},
      {"3: none", Dissemination::kNone},
  };

  Table table({"Strategy", "Accuracy (handled)", "QTime (s)", "Exchanges",
               "Records applied", "Response (s)"});
  for (const Row& row : rows) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), 3);
    cfg.name = std::string("dissemination-") + row.name;
    cfg.dissemination = row.strategy;
    const experiments::ScenarioResult r = experiments::run_scenario(cfg);

    std::uint64_t exchanges = 0, applied = 0;
    for (const auto& dp : r.dps) {
      exchanges += dp.exchanges_sent;
      applied += dp.records_applied;
    }
    table.add_row({row.name, Table::pct(r.handled.accuracy),
                   Table::num(r.handled.qtime_s, 1), std::to_string(exchanges),
                   std::to_string(applied), Table::num(r.handled.response_s, 2)});
  }
  std::cout << "== Ablation: Dissemination Strategies (3 GT3 decision points) ==\n";
  table.render(std::cout);
  std::cout << "Strategy 3 loses accuracy (each decision point is blind to\n"
               "2/3 of dispatches). Strategy 1 is heavier on the wire and, at\n"
               "high load, actively *worse* than strategy 2: exchanged state\n"
               "estimates blur the receiver's own precise dispatch records, so\n"
               "decision points herd toward the same seemingly-free sites\n"
               "(watch the QTime column). The paper's choice of strategy 2 is\n"
               "justified by robustness as well as simplicity.\n";
  return 0;
}
