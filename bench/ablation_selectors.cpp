// Ablation: client-side site-selector task-assignment policies (Section
// 3.2 lists round-robin, least-used, and least-recently-used; `random`,
// `top-k`, and `weighted` complete the family) on the paper's
// 3-decision-point GT3 deployment.
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  Table table({"Selector", "Accuracy (handled)", "QTime (s)", "Util",
               "Starvations", "Response (s)"});
  for (const char* selector :
       {"least-used", "top-k", "round-robin", "least-recently-used", "weighted",
        "random"}) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), 3);
    cfg.name = std::string("selector-") + selector;
    cfg.selector = selector;
    const experiments::ScenarioResult r = experiments::run_scenario(cfg);
    table.add_row({selector, Table::pct(r.handled.accuracy),
                   Table::num(r.handled.qtime_s, 1), Table::pct(r.handled.utilization),
                   std::to_string(r.not_handled.requests),
                   Table::num(r.handled.response_s, 2)});
  }
  std::cout << "== Ablation: Site-Selector Policies (3 GT3 decision points) ==\n";
  table.render(std::cout);
  std::cout << "Load-aware selectors (least-used/top-k/weighted) keep QTime low;\n"
               "round-robin and random spread jobs regardless of load, trading\n"
               "occasional queueing for simplicity.\n";
  return 0;
}
