// Ablation: site policy enforcement points (Section 3.1). The paper's
// experiments bypass S-PEPs — safe only while every client complies with
// broker recommendations. Here a fraction of clients misbehave (they dump
// every job on the largest site, ignoring USLAs); the S-PEP's admission
// control is what keeps the site's shares intact.
//
// This bench drives the site layer directly (no broker): compliant
// traffic spreads across sites within its USLA share, rogue traffic
// targets the big site, and we measure how far the rogue VO exceeds its
// share with the S-PEP in audit mode vs enforce mode.
#include <iostream>

#include "bench_util.hpp"
#include "digruber/usla/spep.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const double duration_s = args.quick ? 1200 : 3600;

  Table table({"S-PEP mode", "Rogue VO peak share of big site", "Rejected",
               "Audited violations", "Victim VO jobs queued"});

  for (const bool enforce : {false, true}) {
    sim::Simulation sim(args.seed);
    grid::TopologySpec spec;
    spec.sites.push_back({"big", {{400, 1.0}}});
    spec.sites.push_back({"mid", {{200, 1.0}}});
    spec.sites.push_back({"small", {{100, 1.0}}});
    grid::Grid grid(sim, spec);

    grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 1);
    const VoId rogue = VoId(0);
    const VoId victim = VoId(1);

    // Each VO is entitled to half of every site.
    const auto agreement = usla::parse_agreement(
        "agreement halves\n"
        "term a: grid -> vo:vo0 cpu 50+\n"
        "term b: grid -> vo:vo1 cpu 50+\n");
    const auto tree = usla::AllocationTree::build({agreement.value()}, catalog);
    const usla::UslaEvaluator evaluator(tree.value(), catalog);

    usla::SitePolicyEnforcementPoint::Options options;
    options.enforce = enforce;
    std::vector<std::unique_ptr<usla::SitePolicyEnforcementPoint>> speps;
    for (const auto& site : grid.sites()) {
      speps.push_back(std::make_unique<usla::SitePolicyEnforcementPoint>(
          *site, evaluator, options));
    }

    Rng rng = sim.rng().fork();
    std::uint64_t next_id = 0;
    double rogue_peak_share = 0.0;
    std::uint64_t victim_queued = 0;

    auto make_job = [&](VoId vo) {
      grid::Job job;
      job.id = JobId(next_id++);
      job.vo = vo;
      job.group = GroupId(vo.value());
      job.user = UserId(vo.value());
      job.cpus = 2;
      job.runtime = sim::Duration::minutes(rng.uniform(10, 30));
      return job;
    };

    // Rogue VO: floods the big site far past its share.
    sim::PeriodicTimer rogue_traffic(sim, sim::Duration::seconds(5), [&] {
      speps[0]->submit(make_job(rogue), [](const grid::Job&) {});
      const grid::Site& big = grid.site(SiteId(0));
      rogue_peak_share =
          std::max(rogue_peak_share,
                   double(big.running_for_vo(rogue)) / double(big.total_cpus()));
    });
    // Victim VO: modest compliant load on the big site; counts queueing.
    sim::PeriodicTimer victim_traffic(sim, sim::Duration::seconds(30), [&] {
      const bool started_immediately = grid.site(SiteId(0)).free_cpus() >= 2;
      if (speps[0]->submit(make_job(victim), [](const grid::Job&) {}) &&
          !started_immediately) {
        ++victim_queued;
      }
    });

    sim.run_until(sim::Time::from_seconds(duration_s));
    rogue_traffic.stop();
    victim_traffic.stop();
    sim.run();

    table.add_row({enforce ? "enforce" : "audit only (paper setting)",
                   Table::pct(rogue_peak_share),
                   std::to_string(speps[0]->rejected()),
                   std::to_string(speps[0]->audited_violations()),
                   std::to_string(victim_queued)});
  }

  std::cout << "== Ablation: S-PEP admission control vs a non-compliant client ==\n";
  table.render(std::cout);
  std::cout << "In audit mode the rogue VO overruns its 50% share of the big\n"
               "site and the victim VO's jobs start queueing; with enforcement\n"
               "the S-PEP caps the rogue VO at its share.\n";
  return 0;
}
