// Ablation: the overlay connecting decision points. The paper adopts a
// full mesh "to simplify analysis and understanding"; this bench measures
// what ring and star overlays cost in state freshness (flooding needs
// multiple exchange rounds to cross the overlay) with 10 decision points.
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;
using ::digruber::digruber::Overlay;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  struct Row {
    const char* name;
    Overlay overlay;
  };
  const Row rows[] = {
      {"mesh (paper)", Overlay::kMesh},
      {"ring", Overlay::kRing},
      {"star", Overlay::kStar},
  };

  Table table({"Overlay", "Accuracy (handled)", "Exchanges sent",
               "Records applied", "Duplicates", "Response (s)"});
  for (const Row& row : rows) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), 10);
    cfg.name = std::string("overlay-") + row.name;
    cfg.overlay = row.overlay;
    const experiments::ScenarioResult r = experiments::run_scenario(cfg);

    std::uint64_t exchanges = 0, applied = 0, duplicates = 0;
    for (const auto& dp : r.dps) {
      exchanges += dp.exchanges_sent;
      applied += dp.records_applied;
      duplicates += dp.records_duplicate;
    }
    table.add_row({row.name, Table::pct(r.handled.accuracy),
                   std::to_string(exchanges), std::to_string(applied),
                   std::to_string(duplicates), Table::num(r.handled.response_s, 2)});
  }
  std::cout << "== Ablation: Decision-Point Overlay (10 GT3 decision points) ==\n";
  table.render(std::cout);
  std::cout << "Mesh floods every record in one exchange round (most messages,\n"
               "freshest state); ring and star take multiple rounds per hop,\n"
               "so remote dispatches are staler and accuracy drops slightly.\n";
  return 0;
}
