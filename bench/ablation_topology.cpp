// Ablation: the dissemination overlay connecting decision points, swept
// over deployment size. The paper adopts a full mesh "to simplify
// analysis and understanding" — O(N^2) exchange messages per round — and
// its future-work section asks what a hierarchy buys at larger scales.
// This bench answers with the src/overlay/ strategies: spanning tree,
// gossip fan-out, and super-peer hierarchy against the mesh baseline at
// N = 10 / 40 / 100 decision points.
//
// Doubles as the acceptance gate for the sparse overlays: at N >= 40 the
// tree or super-peer strategy must cut exchange bytes per round by at
// least 60% versus the mesh, or the bench exits nonzero.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  const overlay::Kind kinds[] = {overlay::Kind::kMesh, overlay::Kind::kTree,
                                 overlay::Kind::kGossip,
                                 overlay::Kind::kSuperPeer};
  const int sizes[] = {10, 40, 100};

  Table table({"N", "Strategy", "Accuracy (handled)", "Exchanges",
               "Bytes/round", "Cut vs mesh", "Mean fanout", "Max depth",
               "Response (s)"});
  bool cut_ok = true;
  for (const int n : sizes) {
    double mesh_bytes_per_round = 0.0;
    double best_sparse_cut = 0.0;  // best of tree/super-peer at this N
    for (const overlay::Kind kind : kinds) {
      experiments::ScenarioConfig cfg =
          bench::paper_config(args, net::ContainerProfile::gt3(), n);
      // The sweep's 12 runs make the paper's one-hour window impractical;
      // bytes-per-round stabilizes within a few exchange rounds.
      cfg.duration =
          args.quick ? sim::Duration::minutes(12) : sim::Duration::minutes(30);
      cfg.n_clients = args.quick ? 40 : 120;
      cfg.name = std::string("topology-") + overlay::kind_name(kind) + "-" +
                 std::to_string(n);
      cfg.overlay_options.kind = kind;
      cfg.overlay_options.seed = args.seed;
      const experiments::ScenarioResult r = experiments::run_scenario(cfg);

      // Aggregate bytes_sent / rounds = mean bytes one point puts on the
      // wire per round; multiply by N for the deployment-wide figure.
      const double per_round = r.overlay.bytes_per_round() * double(n);
      std::string vs_mesh = "-";
      if (kind == overlay::Kind::kMesh) {
        mesh_bytes_per_round = per_round;
      } else if (mesh_bytes_per_round > 0.0) {
        const double cut = 1.0 - per_round / mesh_bytes_per_round;
        vs_mesh = Table::pct(cut);
        if (kind == overlay::Kind::kTree || kind == overlay::Kind::kSuperPeer)
          best_sparse_cut = std::max(best_sparse_cut, cut);
      }
      table.add_row({std::to_string(n), overlay::kind_name(kind),
                     Table::pct(r.handled.accuracy),
                     std::to_string(r.overlay.exchanges_sent),
                     Table::num(per_round, 0), vs_mesh,
                     Table::num(r.overlay.mean_fanout(), 2),
                     std::to_string(r.overlay.max_hops),
                     Table::num(r.handled.response_s, 2)});
    }
    if (n >= 40 && best_sparse_cut < 0.60) {
      std::cerr << "FAIL: at N=" << n
                << " neither tree nor super-peer cut exchange bytes/round by"
                   " >= 60% vs mesh (best cut "
                << Table::pct(best_sparse_cut) << ")\n";
      cut_ok = false;
    }
  }
  std::cout << "== Ablation: Dissemination Overlay x Deployment Size ==\n";
  table.render(std::cout);
  std::cout << "Mesh floods every record in one exchange round (freshest\n"
               "state, quadratic wire cost). Tree and super-peer trade relay\n"
               "rounds of staleness for 90%+ traffic cuts; gossip sits\n"
               "between, with probabilistic latency. The staleness shows up\n"
               "as an accuracy dip that grows with relay depth and shrinks\n"
               "with the observation window — no strategy loses records\n"
               "(dedup + digest anti-entropy deliver everything, just\n"
               "later), so long-horizon accuracy converges toward mesh.\n";
  if (!cut_ok) return 1;
  std::cout << "sparse-overlay byte cut at N>=40: OK (>= 60% vs mesh)\n";
  return 0;
}
