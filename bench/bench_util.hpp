#pragma once

// Shared plumbing for the paper-reproduction benches: canonical scenario
// configurations (the PlanetLab deployment of Section 4) and table
// renderers matching the paper's layout. Every bench accepts `--quick`
// (shorter run for smoke-testing), `--seed N`, and `--trace <path>`
// (event-trace export, Chrome trace_event JSON by default or JSONL via
// `--trace-format jsonl`).

#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "digruber/common/table.hpp"
#include "digruber/diperf/report.hpp"
#include "digruber/experiments/scenario.hpp"
#include "digruber/trace/export.hpp"

namespace digruber::bench {

struct BenchArgs {
  bool quick = false;
  std::uint64_t seed = 7;
  std::string trace_path;            // empty = tracing off
  std::string trace_format = "chrome";  // chrome | jsonl
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      args.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-format") == 0 && i + 1 < argc) {
      args.trace_format = argv[++i];
      if (args.trace_format != "chrome" && args.trace_format != "jsonl") {
        std::cerr << "unknown trace format '" << args.trace_format
                  << "' (expected chrome or jsonl)\n";
        std::exit(2);
      }
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--seed N] [--trace out.json]"
                   " [--trace-format chrome|jsonl]\n";
      std::exit(2);
    }
  }
  return args;
}

/// A tracer for the run when `--trace` was given, else null. Attach it via
/// `cfg.tracer = tracer.get()`.
inline std::unique_ptr<trace::Tracer> make_tracer(const BenchArgs& args) {
  if (args.trace_path.empty()) return nullptr;
  return std::make_unique<trace::Tracer>();
}

/// Write the recorded trace to `args.trace_path` (no-op without --trace).
inline void save_trace(const BenchArgs& args, const trace::Tracer* tracer,
                       std::ostream& os) {
  if (!tracer || args.trace_path.empty()) return;
  const std::string error =
      trace::write_trace_file(args.trace_path, args.trace_format, *tracer);
  if (!error.empty()) {
    std::cerr << "trace export failed: " << error << "\n";
    return;
  }
  os << "event trace (" << tracer->total_recorded() << " events, "
     << tracer->total_dropped() << " dropped) -> " << args.trace_path << " ["
     << args.trace_format << "]\n";
}

/// The paper's PlanetLab experiment (Section 4.3): ~120 submission hosts
/// against an emulated grid ten times today's Grid3/OSG, 60 s client
/// timeout, 3-minute state exchange, one-hour window.
inline experiments::ScenarioConfig paper_config(const BenchArgs& args,
                                                net::ContainerProfile profile,
                                                int n_dps) {
  experiments::ScenarioConfig cfg;
  cfg.seed = args.seed;
  cfg.profile = std::move(profile);
  cfg.n_dps = n_dps;
  cfg.n_clients = args.quick ? 60 : 120;
  cfg.duration = args.quick ? sim::Duration::minutes(20) : sim::Duration::hours(1);
  cfg.grid_scale = args.quick ? 5 : 10;
  cfg.exchange_interval = sim::Duration::minutes(3);
  cfg.client_timeout = sim::Duration::seconds(60);
  return cfg;
}

/// Render the Tables 1/2 layout: requests handled / NOT handled / all,
/// with the paper's columns.
inline void render_performance_table(std::ostream& os, const std::string& title,
                                     const std::vector<experiments::ScenarioResult>& runs) {
  os << "== " << title << " ==\n";
  Table table({"", "Decision Points", "% of Req", "# of Req", "QTime (s)",
               "Norm QTime (s)", "Util", "Accuracy"});
  auto add = [&](const std::string& label, const experiments::ScenarioResult& r,
                 const metrics::MetricValues& v, bool show_accuracy) {
    table.add_row({label, std::to_string(r.config.n_dps), Table::pct(v.request_share),
                   std::to_string(v.requests), Table::num(v.qtime_s, 1),
                   Table::num(v.norm_qtime_s, 4), Table::pct(v.utilization),
                   show_accuracy && v.requests ? Table::pct(v.accuracy) : "-"});
  };
  for (const auto& r : runs) add("Requests Handled by GRUBER", r, r.handled, true);
  for (const auto& r : runs) add("Requests NOT Handled by GRUBER", r, r.not_handled, false);
  for (const auto& r : runs) add("All Requests", r, r.all, true);
  table.render(os);
}

inline void print_run_banner(std::ostream& os, const experiments::ScenarioResult& r) {
  os << "[" << r.config.profile.name << ", " << r.config.n_dps
     << " decision point(s)] sites=" << r.sites << " cpus=" << r.total_cpus
     << " queries=" << r.all.requests << " handled=" << Table::pct(r.handled.request_share)
     << " jobs_completed=" << r.jobs_completed << " events=" << r.sim_events << "\n";
}

}  // namespace digruber::bench
