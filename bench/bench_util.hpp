#pragma once

// Shared plumbing for the paper-reproduction benches: canonical scenario
// configurations (the PlanetLab deployment of Section 4) and table
// renderers matching the paper's layout. Every bench accepts `--quick`
// (shorter run for smoke-testing) and `--seed N`.

#include <cstring>
#include <iostream>
#include <string>

#include "digruber/common/table.hpp"
#include "digruber/diperf/report.hpp"
#include "digruber/experiments/scenario.hpp"

namespace digruber::bench {

struct BenchArgs {
  bool quick = false;
  std::uint64_t seed = 7;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::stoull(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0] << " [--quick] [--seed N]\n";
      std::exit(2);
    }
  }
  return args;
}

/// The paper's PlanetLab experiment (Section 4.3): ~120 submission hosts
/// against an emulated grid ten times today's Grid3/OSG, 60 s client
/// timeout, 3-minute state exchange, one-hour window.
inline experiments::ScenarioConfig paper_config(const BenchArgs& args,
                                                net::ContainerProfile profile,
                                                int n_dps) {
  experiments::ScenarioConfig cfg;
  cfg.seed = args.seed;
  cfg.profile = std::move(profile);
  cfg.n_dps = n_dps;
  cfg.n_clients = args.quick ? 60 : 120;
  cfg.duration = args.quick ? sim::Duration::minutes(20) : sim::Duration::hours(1);
  cfg.grid_scale = args.quick ? 5 : 10;
  cfg.exchange_interval = sim::Duration::minutes(3);
  cfg.client_timeout = sim::Duration::seconds(60);
  return cfg;
}

/// Render the Tables 1/2 layout: requests handled / NOT handled / all,
/// with the paper's columns.
inline void render_performance_table(std::ostream& os, const std::string& title,
                                     const std::vector<experiments::ScenarioResult>& runs) {
  os << "== " << title << " ==\n";
  Table table({"", "Decision Points", "% of Req", "# of Req", "QTime (s)",
               "Norm QTime (s)", "Util", "Accuracy"});
  auto add = [&](const std::string& label, const experiments::ScenarioResult& r,
                 const metrics::MetricValues& v, bool show_accuracy) {
    table.add_row({label, std::to_string(r.config.n_dps), Table::pct(v.request_share),
                   std::to_string(v.requests), Table::num(v.qtime_s, 1),
                   Table::num(v.norm_qtime_s, 4), Table::pct(v.utilization),
                   show_accuracy && v.requests ? Table::pct(v.accuracy) : "-"});
  };
  for (const auto& r : runs) add("Requests Handled by GRUBER", r, r.handled, true);
  for (const auto& r : runs) add("Requests NOT Handled by GRUBER", r, r.not_handled, false);
  for (const auto& r : runs) add("All Requests", r, r.all, true);
  table.render(os);
}

inline void print_run_banner(std::ostream& os, const experiments::ScenarioResult& r) {
  os << "[" << r.config.profile.name << ", " << r.config.n_dps
     << " decision point(s)] sites=" << r.sites << " cpus=" << r.total_cpus
     << " queries=" << r.all.requests << " handled=" << Table::pct(r.handled.request_share)
     << " jobs_completed=" << r.jobs_completed << " events=" << r.sim_events << "\n";
}

}  // namespace digruber::bench
