// Section 4.1's stated question: "we wanted to determine whether CPU
// resources could be allocated in a fair manner across multiple VOs, and
// across multiple groups within a VO, when using DI-GRUBER configurations
// that feature multiple loosely coupled GRUBER instances rather than a
// single centralized instance."
//
// Every VO and group submits statistically identical load with equal
// fair-share entitlements, so delivered CPU time should be even. This
// bench reports Jain's fairness index (1.0 = perfectly fair) across the
// 10 VOs and the 100 groups for 1/3/10 decision points, plus a no-USLA
// control.
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  Table table({"Configuration", "VO fairness (Jain)", "VO share min/max",
               "Group fairness (Jain)", "Queries"});
  auto add_row = [&](const std::string& label, const experiments::ScenarioResult& r) {
    table.add_row({label, Table::num(r.vo_fairness.jain, 3),
                   Table::pct(r.vo_fairness.min_share) + " / " +
                       Table::pct(r.vo_fairness.max_share),
                   Table::num(r.group_fairness.jain, 3),
                   std::to_string(r.all.requests)});
  };

  for (const int dps : {1, 3, 10}) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), dps);
    cfg.name = "fairness-" + std::to_string(dps) + "dp";
    add_row(std::to_string(dps) + " decision point(s), USLAs",
            experiments::run_scenario(cfg));
  }
  {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), 3);
    cfg.name = "fairness-no-usla";
    cfg.install_uslas = false;
    add_row("3 decision point(s), no USLAs", experiments::run_scenario(cfg));
  }

  std::cout << "== Fairness across VOs and groups (Section 4.1) ==\n";
  table.render(std::cout);
  std::cout << "With equal entitlements and identical load, fairness should\n"
               "stay near 1.0 regardless of how many loosely coupled decision\n"
               "points share the brokering — the distribution of the broker\n"
               "must not skew the distribution of the resources. (A 10-VO\n"
               "Jain index of 0.9 means the effective number of equally\n"
               "served VOs is 9 of 10.)\n";

  // --- Strategic-VO scenario: one VO submits 10x its share. -----------------
  // Under the proportional baseline the broker grants demand-shaped CPU:
  // the strategic VO walks away with most of the brokered capacity and
  // Jain collapses toward 1/n. The karma allocator makes over-use cost
  // credits, so the same workload is clamped to entitlements. Fairness is
  // measured over *brokered granted* CPU (fallback placements excluded) —
  // that is the allocation the gate governs; denied jobs model out-of-band
  // submission and still run somewhere.
  auto strategic_config = [&](bool karma) {
    experiments::ScenarioConfig cfg;
    cfg.seed = args.seed;
    cfg.name = std::string("fairness-strategic-") + (karma ? "karma" : "prop");
    cfg.n_dps = 1;  // fresh view: isolates the allocator from split-brain
    cfg.n_clients = 50;
    cfg.think = sim::Duration::seconds(18);
    cfg.duration = sim::Duration::minutes(20);
    cfg.ramp_span = sim::Duration::seconds(60);
    cfg.grid_scale = 1;
    cfg.background_util = 0.35;
    cfg.selector = "least-used";
    cfg.workload.n_vos = 5;
    cfg.workload.strategic_vo = 0;
    cfg.workload.strategic_factor = 10.0;
    if (karma) {
      cfg.economy_options.allocator = economy::Allocator::kKarma;
      cfg.economy_options.epoch = sim::Duration::seconds(240);
      // Ration ~30% of the grid through the broker so entitlements bind.
      cfg.economy_options.capacity_cpus = 933;
      cfg.economy_options.scarce_free_fraction = 0.6;
      cfg.economy_options.initial_credit_epochs = 0.25;
    }
    return cfg;
  };

  Table strategic({"Allocator", "Brokered VO fairness (Jain)", "min/max share",
                   "Denials", "Breaches", "Queries"});
  const experiments::ScenarioResult prop =
      experiments::run_scenario(strategic_config(false));
  const experiments::ScenarioResult karma =
      experiments::run_scenario(strategic_config(true));
  auto strategic_row = [&](const std::string& label,
                           const experiments::ScenarioResult& r) {
    strategic.add_row({label, Table::num(r.brokered_vo_fairness.jain, 3),
                       Table::pct(r.brokered_vo_fairness.min_share) + " / " +
                           Table::pct(r.brokered_vo_fairness.max_share),
                       std::to_string(r.economy.credit_denials),
                       std::to_string(r.entitlement_breaches),
                       std::to_string(r.all.requests)});
  };
  strategic_row("proportional (baseline)", prop);
  strategic_row("karma (credit bank)", karma);

  std::cout << "\n== Strategic VO: one collaboration submits 10x its share ==\n";
  strategic.render(std::cout);
  std::cout << "Proportional grants track demand, so the strategic VO crowds\n"
               "out the honest four; karma prices the overage in credits and\n"
               "holds brokered grants to entitlements without breaching any\n"
               "USLA cap.\n";

  // Acceptance floor (also the CI economy smoke): karma holds fairness
  // where proportional collapses, and the credit gate never pushes a
  // brokered placement past a USLA cap.
  bool ok = true;
  if (karma.brokered_vo_fairness.jain < 0.9) {
    std::cout << "FAIL: karma brokered Jain "
              << Table::num(karma.brokered_vo_fairness.jain, 3) << " < 0.9\n";
    ok = false;
  }
  if (prop.brokered_vo_fairness.jain >= 0.7) {
    std::cout << "FAIL: proportional brokered Jain "
              << Table::num(prop.brokered_vo_fairness.jain, 3)
              << " did not collapse below 0.7\n";
    ok = false;
  }
  if (karma.entitlement_breaches != 0) {
    std::cout << "FAIL: karma run recorded " << karma.entitlement_breaches
              << " entitlement breach(es)\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
