// Section 4.1's stated question: "we wanted to determine whether CPU
// resources could be allocated in a fair manner across multiple VOs, and
// across multiple groups within a VO, when using DI-GRUBER configurations
// that feature multiple loosely coupled GRUBER instances rather than a
// single centralized instance."
//
// Every VO and group submits statistically identical load with equal
// fair-share entitlements, so delivered CPU time should be even. This
// bench reports Jain's fairness index (1.0 = perfectly fair) across the
// 10 VOs and the 100 groups for 1/3/10 decision points, plus a no-USLA
// control.
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  Table table({"Configuration", "VO fairness (Jain)", "VO share min/max",
               "Group fairness (Jain)", "Queries"});
  auto add_row = [&](const std::string& label, const experiments::ScenarioResult& r) {
    table.add_row({label, Table::num(r.vo_fairness.jain, 3),
                   Table::pct(r.vo_fairness.min_share) + " / " +
                       Table::pct(r.vo_fairness.max_share),
                   Table::num(r.group_fairness.jain, 3),
                   std::to_string(r.all.requests)});
  };

  for (const int dps : {1, 3, 10}) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), dps);
    cfg.name = "fairness-" + std::to_string(dps) + "dp";
    add_row(std::to_string(dps) + " decision point(s), USLAs",
            experiments::run_scenario(cfg));
  }
  {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), 3);
    cfg.name = "fairness-no-usla";
    cfg.install_uslas = false;
    add_row("3 decision point(s), no USLAs", experiments::run_scenario(cfg));
  }

  std::cout << "== Fairness across VOs and groups (Section 4.1) ==\n";
  table.render(std::cout);
  std::cout << "With equal entitlements and identical load, fairness should\n"
               "stay near 1.0 regardless of how many loosely coupled decision\n"
               "points share the brokering — the distribution of the broker\n"
               "must not skew the distribution of the resources. (A 10-VO\n"
               "Jain index of 0.9 means the effective number of equally\n"
               "served VOs is 9 of 10.)\n";
  return 0;
}
