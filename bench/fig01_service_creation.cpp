// Figure 1: GT3.2 service instance creation under a DiPerF client ramp —
// response time, load, and throughput vs time for the bare Web-service
// container (no brokering logic). Establishes the per-container
// performance envelope the rest of the paper builds on (Section 2.1).
#include <iostream>

#include "bench_util.hpp"
#include "digruber/digruber/protocol.hpp"
#include "digruber/net/rpc.hpp"
#include "digruber/net/sim_transport.hpp"

using namespace digruber;
using ::digruber::digruber::CreateInstanceReply;
using ::digruber::digruber::CreateInstanceRequest;
using ::digruber::digruber::Method;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  sim::Simulation sim(args.seed);
  net::SimTransport transport(sim, net::WanModel(net::WanParams{}, args.seed));

  // Bare GT3 service: instance creation costs ~120 ms of container CPU on
  // top of the security/SOAP overheads.
  net::RpcServer server(sim, transport, net::ContainerProfile::gt3());
  std::uint64_t instances = 0;
  server.register_typed<CreateInstanceRequest, CreateInstanceReply>(
      Method::kCreateInstance,
      [&instances](const CreateInstanceRequest& request, NodeId)
          -> std::pair<CreateInstanceReply, sim::Duration> {
        CreateInstanceReply reply;
        reply.nonce = request.nonce;
        reply.instance = ++instances;
        return {reply, sim::Duration::millis(120)};
      });

  const int n_clients = args.quick ? 60 : 120;
  const double duration_s = args.quick ? 900 : 1800;

  diperf::Collector collector;
  diperf::Controller controller(sim, collector);
  std::vector<std::unique_ptr<net::RpcClient>> rpcs;
  rpcs.reserve(std::size_t(n_clients));
  std::uint64_t nonce = 0;
  for (int c = 0; c < n_clients; ++c) {
    rpcs.push_back(std::make_unique<net::RpcClient>(sim, transport));
    net::RpcClient* rpc = rpcs.back().get();
    auto op = [rpc, &server, &nonce](std::function<void(bool)> done) {
      CreateInstanceRequest request;
      request.nonce = ++nonce;
      request.payload.assign(512, 'x');  // realistic SOAP body
      rpc->call<CreateInstanceRequest, CreateInstanceReply>(
          server.node(), Method::kCreateInstance, request,
          sim::Duration::seconds(30),
          [done = std::move(done)](Result<CreateInstanceReply> reply) {
            done(reply.ok());
          });
    };
    controller.add_tester(std::make_unique<diperf::Tester>(
        sim, ClientId(std::uint64_t(c)), std::move(op), sim::Duration::seconds(2),
        collector));
  }

  // Slow ramp over the first 60% of the window, all clients to the end.
  controller.schedule(sim::Duration::seconds(1),
                      sim::Duration::seconds(duration_s * 0.6 / n_clients),
                      sim::Time::from_seconds(duration_s));
  sim.run_until(sim::Time::from_seconds(duration_s));
  sim.run();

  diperf::render_figure(std::cout,
                        "Figure 1: GT3 Service Instance Creation "
                        "(response time, load, throughput)",
                        collector, duration_s);
  const diperf::PerfModel model = diperf::fit_model(collector, 60.0, duration_s);
  std::cout << "fitted model: peak " << Table::num(model.peak_qps, 2)
            << " req/s, plateau " << Table::num(model.plateau_qps, 2)
            << " req/s, response ~= " << Table::num(model.response_vs_load.intercept, 2)
            << " + " << Table::num(model.response_vs_load.slope, 3)
            << " * load (r2=" << Table::num(model.response_vs_load.r2, 2) << ")\n";
  std::cout << "instances created: " << instances << "\n";
  return 0;
}
