// Figures 5-7: GT3 DI-GRUBER infrastructure scalability — load, response
// time, and throughput vs time for 1, 3, and 10 decision points on the
// 10x-OSG emulated grid (Section 4.4.1).
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const char* figures[] = {"Figure 5", "Figure 6", "Figure 7"};
  const int dp_counts[] = {1, 3, 10};

  double base_throughput = 0.0;
  for (int i = 0; i < 3; ++i) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), dp_counts[i]);
    cfg.name = figures[i];
    const experiments::ScenarioResult r = experiments::run_scenario(cfg);

    bench::print_run_banner(std::cout, r);
    diperf::render_figure(
        std::cout,
        std::string(figures[i]) + ": GT3 DI-GRUBER, " +
            std::to_string(dp_counts[i]) + " decision point(s), " +
            std::to_string(cfg.n_clients) + " clients",
        r.collector, cfg.duration.to_seconds());

    const double plateau =
        r.collector.plateau_throughput(60.0, cfg.duration.to_seconds());
    if (i == 0) base_throughput = plateau;
    if (i > 0 && base_throughput > 0) {
      std::cout << "throughput gain vs one decision point: x"
                << Table::num(plateau / base_throughput, 2) << "\n\n";
    }
  }
  std::cout << "Expected shape (paper): ~2-3x throughput at 3 decision points,\n"
               "~5x at 10; response time drops from tens of seconds (with\n"
               "timeouts) to a few seconds.\n";
  return 0;
}
