// Figure 8: GT3 DI-GRUBER scheduling accuracy as a function of the state
// exchange interval, three decision points, jobs handled by DI-GRUBER
// only (Section 4.4.3). The paper finds a ~3-minute interval sufficient
// for high accuracy; longer intervals degrade it.
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  Table table({"Exchange interval (min)", "Accuracy (handled)", "Handled %",
               "Records exchanged", "Duplicates"});
  for (const double minutes : {3.0, 10.0, 30.0, 60.0}) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), 3);
    cfg.name = "fig08-" + std::to_string(int(minutes)) + "min";
    cfg.exchange_interval = sim::Duration::minutes(minutes);
    const experiments::ScenarioResult r = experiments::run_scenario(cfg);

    std::uint64_t applied = 0, duplicates = 0;
    for (const auto& dp : r.dps) {
      applied += dp.records_applied;
      duplicates += dp.records_duplicate;
    }
    table.add_row({Table::num(minutes, 0), Table::pct(r.handled.accuracy),
                   Table::pct(r.handled.request_share), std::to_string(applied),
                   std::to_string(duplicates)});
  }
  std::cout << "== Figure 8: GT3 DI-GRUBER Scheduling Accuracy vs Exchange "
               "Interval (3 decision points) ==\n";
  table.render(std::cout);
  std::cout << "Expected shape (paper): accuracy is highest at the 3-minute\n"
               "interval and decays as decision points see each other's\n"
               "dispatches later and later.\n";
  return 0;
}
