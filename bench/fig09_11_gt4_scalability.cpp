// Figures 9-11: GT4 (GT 3.9.4 prerelease) DI-GRUBER infrastructure
// scalability for 1, 3, and 10 decision points (Section 4.5.1). The GT4
// container is functionality-equivalent but slower than GT3.2, so all
// absolute numbers shift down while the scaling shape is preserved.
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const char* figures[] = {"Figure 9", "Figure 10", "Figure 11"};
  const int dp_counts[] = {1, 3, 10};

  double base_throughput = 0.0;
  for (int i = 0; i < 3; ++i) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt4(), dp_counts[i]);
    cfg.name = figures[i];
    const experiments::ScenarioResult r = experiments::run_scenario(cfg);

    bench::print_run_banner(std::cout, r);
    diperf::render_figure(
        std::cout,
        std::string(figures[i]) + ": GT4 DI-GRUBER, " +
            std::to_string(dp_counts[i]) + " decision point(s), " +
            std::to_string(cfg.n_clients) + " clients",
        r.collector, cfg.duration.to_seconds());

    const double plateau =
        r.collector.plateau_throughput(60.0, cfg.duration.to_seconds());
    if (i == 0) base_throughput = plateau;
    if (i > 0 && base_throughput > 0) {
      std::cout << "throughput gain vs one decision point: x"
                << Table::num(plateau / base_throughput, 2) << "\n\n";
    }
  }
  std::cout << "Expected shape (paper): GT4 one-decision-point throughput\n"
               "plateaus around 1 query/second (below GT3); gains of ~3x at\n"
               "three and ~5x at ten decision points.\n";
  return 0;
}
