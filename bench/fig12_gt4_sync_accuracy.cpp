// Figure 12: GT4 DI-GRUBER scheduling accuracy vs state exchange interval
// for three decision points (Section 4.5.3). The paper finds a 3-10
// minute interval sufficient for near-peak accuracy under GT4's lower
// query rate.
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  Table table({"Exchange interval (min)", "Accuracy (handled)", "Handled %",
               "Records exchanged", "Duplicates"});
  for (const double minutes : {3.0, 10.0, 30.0, 60.0}) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt4(), 3);
    cfg.name = "fig12-" + std::to_string(int(minutes)) + "min";
    cfg.exchange_interval = sim::Duration::minutes(minutes);
    const experiments::ScenarioResult r = experiments::run_scenario(cfg);

    std::uint64_t applied = 0, duplicates = 0;
    for (const auto& dp : r.dps) {
      applied += dp.records_applied;
      duplicates += dp.records_duplicate;
    }
    table.add_row({Table::num(minutes, 0), Table::pct(r.handled.accuracy),
                   Table::pct(r.handled.request_share), std::to_string(applied),
                   std::to_string(duplicates)});
  }
  std::cout << "== Figure 12: GT4 DI-GRUBER Scheduling Accuracy vs Exchange "
               "Interval (3 decision points) ==\n";
  table.render(std::cout);
  std::cout << "Expected shape (paper): near-peak accuracy at 3-10 minute\n"
               "intervals, decaying for longer intervals; the decay is milder\n"
               "than GT3's because GT4's lower throughput leaves fewer unseen\n"
               "dispatches per interval.\n";
  return 0;
}
