// Future work (paper conclusions): "DI-GRUBER performance can be improved
// further by porting it to a C-based Web services core, such as is
// supported in GT4." This bench quantifies that port on the paper's
// single-decision-point deployment: same protocol, same grid, only the
// container's security/XML costs change.
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  Table table({"WS core", "Plateau (q/s)", "Peak (q/s)", "Response avg (s)",
               "Handled %", "Capacity model (q/s)"});
  for (const net::ContainerProfile& profile :
       {net::ContainerProfile::gt3(), net::ContainerProfile::gt4(),
        net::ContainerProfile::gt4_c()}) {
    experiments::ScenarioConfig cfg = bench::paper_config(args, profile, 1);
    cfg.name = std::string("cws-") + profile.name;
    const experiments::ScenarioResult r = experiments::run_scenario(cfg);
    const auto resp = r.collector.response_summary();
    table.add_row(
        {profile.name,
         Table::num(r.collector.plateau_throughput(60, cfg.duration.to_seconds()), 2),
         Table::num(r.collector.peak_throughput(60, cfg.duration.to_seconds()), 2),
         Table::num(resp.average, 2), Table::pct(r.handled.request_share),
         Table::num(experiments::dp_capacity_qps(profile, r.sites,
                                                 sim::Duration::millis(2.5)),
                    2)});
  }
  std::cout << "== Future work: C-based WS core, single decision point ==\n";
  table.render(std::cout);
  std::cout << "A native core removes most of the per-request security and XML\n"
               "cost, so one decision point absorbs the load that needed three\n"
               "to five Java-container decision points.\n";
  return 0;
}
