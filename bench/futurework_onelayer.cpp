// Future work (paper conclusions): "performance could also be enhanced by
// deploying DI-GRUBER in a different environment that would have a
// tighter coupling between the resource broker and the job manager ...
// reducing the complexity of the communication from two layers to one",
// and "we expect that performance will be significantly better in a LAN
// environment."
//
// The WAN penalty is per-message, so it only shows once the deployment is
// *unsaturated* (otherwise container queueing dominates every response).
// This bench uses an overprovisioned fast-core deployment so the
// protocol's round trips are the main cost — the paper's "a single query
// can easily take multiple seconds ... in a WAN environment with message
// latencies in the tens of milliseconds" argument.
#include <iostream>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  struct Env {
    const char* name;
    net::WanParams wan;
  };
  Env environments[2];
  environments[0].name = "WAN (PlanetLab-like)";
  environments[1].name = "LAN (tight coupling)";
  environments[1].wan.min_latency_ms = 0.2;
  environments[1].wan.max_latency_ms = 2.0;
  environments[1].wan.bandwidth_bps = 1e9;
  environments[1].wan.jitter_cv = 0.05;

  Table table({"Environment", "Response min (s)", "Response median (s)",
               "Response avg (s)", "Handled %"});
  for (const Env& env : environments) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt4_c(), 10);
    cfg.name = std::string("env-") + env.name;
    cfg.wan = env.wan;
    cfg.n_clients = 40;  // keep the deployment well under capacity
    const experiments::ScenarioResult r = experiments::run_scenario(cfg);
    const auto resp = r.collector.response_summary();
    table.add_row({env.name, Table::num(resp.min, 2), Table::num(resp.median, 2),
                   Table::num(resp.average, 2),
                   Table::pct(r.handled.request_share)});
  }
  std::cout << "== Future work: WAN vs LAN deployment (10 GT4-C decision "
               "points, unsaturated) ==\n";
  table.render(std::cout);
  std::cout << "With the brokering query's two round trips riding sub-ms LAN\n"
               "links instead of tens-of-ms WAN paths, the response floor is\n"
               "set by container service time alone.\n";
  return 0;
}
