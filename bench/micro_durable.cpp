// Micro-benchmarks for the durability hot paths: every brokered dispatch
// pays one WAL append (CRC-32C framing + the device cost model) before its
// ack leaves, recovery replays the whole log through wal_scan, and each
// checkpoint serializes into a verified image — so these costs bound how
// cheap "durability enabled" can be and how fast a crashed decision point
// can be back to serving.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "digruber/durable/disk.hpp"
#include "digruber/durable/wal.hpp"

using namespace digruber;

namespace {

std::vector<std::uint8_t> payload_of(std::size_t n) {
  std::vector<std::uint8_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = std::uint8_t(0xA5 ^ (i * 131));
  }
  return payload;
}

durable::SimDisk log_of(std::size_t frames, std::size_t payload_bytes) {
  durable::SimDisk disk{durable::DiskOptions{}, /*seed=*/1};
  const std::vector<std::uint8_t> payload = payload_of(payload_bytes);
  for (std::size_t i = 0; i < frames; ++i) {
    durable::wal_append(disk, std::uint8_t(1 + i % 3), payload);
  }
  return disk;
}

// The per-dispatch path: frame + checksum + device append. Typical dispatch
// records are ~64 bytes; 1 KiB covers the fattest checkpoint-era frames.
void BM_WalAppend(benchmark::State& state) {
  durable::SimDisk disk{durable::DiskOptions{}, /*seed=*/1};
  const std::vector<std::uint8_t> payload = payload_of(std::size_t(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(durable::wal_append(disk, 1, payload));
    if (disk.log().size() > (64u << 20)) {
      state.PauseTiming();
      disk.truncate_log();
      state.ResumeTiming();
    }
  }
  state.counters["bytes"] = double(payload.size());
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(1024);

// The recovery path: one full scan of an N-frame log — CRC verification and
// payload delivery per frame. Replay time at restart is this plus decode.
void BM_WalScan(benchmark::State& state) {
  const durable::SimDisk disk = log_of(std::size_t(state.range(0)), 64);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    const durable::WalScan scan = durable::wal_scan(
        disk.log(),
        [&sum](std::uint8_t type, std::span<const std::uint8_t> payload) {
          sum += type + payload.size();
        });
    benchmark::DoNotOptimize(scan.frames + sum);
  }
  state.counters["frames"] = double(state.range(0));
}
BENCHMARK(BM_WalScan)->Arg(100)->Arg(10000);

// The checkpoint path, both directions: seal a payload into a verified
// image, then verify + open it the way recovery does.
void BM_CheckpointRoundTrip(benchmark::State& state) {
  const std::vector<std::uint8_t> payload = payload_of(std::size_t(state.range(0)));
  for (auto _ : state) {
    const std::vector<std::uint8_t> image = durable::make_checkpoint_image(payload);
    const auto view = durable::read_checkpoint_image(image);
    benchmark::DoNotOptimize(view.has_value() && view->size() == payload.size());
  }
  state.counters["bytes"] = double(payload.size());
}
BENCHMARK(BM_CheckpointRoundTrip)->Arg(1024)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
