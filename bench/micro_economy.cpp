// Micro-benchmarks for the economy hot paths: the karma gate runs
// charge + admit on EVERY brokered query, settlement walks all ledgers
// once per epoch, arbitration sorts the contenders whenever demand
// exceeds capacity, and the price quote is computed per site-loads
// reply — so their costs bound how cheap "economy enabled" can be.
#include <benchmark/benchmark.h>

#include "digruber/economy/economy.hpp"

using namespace digruber;

namespace {

economy::EconomyOptions make_options(double epoch_s) {
  economy::EconomyOptions options;
  options.enabled = true;
  options.allocator = economy::Allocator::kKarma;
  options.epoch = sim::Duration::seconds(epoch_s);
  options.capacity_cpus = 1000;
  return options;
}

std::vector<std::pair<VoId, double>> equal_shares(std::size_t n_vos) {
  std::vector<std::pair<VoId, double>> shares;
  shares.reserve(n_vos);
  for (std::size_t i = 0; i < n_vos; ++i) {
    shares.emplace_back(VoId(i), 1.0 / double(n_vos));
  }
  return shares;
}

// The per-query path: meter the dispatch and run the admission gate.
// A long epoch keeps settlement out of the loop; half the VOs are driven
// over allowance so admit() pays the arbitration scan it does in steady
// state under contention.
void BM_BankChargeAdmit(benchmark::State& state) {
  const std::size_t n_vos = std::size_t(state.range(0));
  const economy::EconomyOptions options = make_options(1e9);
  economy::CreditBank bank(options, equal_shares(n_vos));
  const sim::Time now = sim::Time::from_seconds(1.0);
  for (std::size_t i = 0; i < n_vos / 2; ++i) {
    bank.charge(VoId(i), 10.0 * options.capacity_cpus, now);
  }
  std::size_t next = 0;
  for (auto _ : state) {
    const VoId vo(next);
    next = (next + 1) % n_vos;
    bank.charge(vo, 100.0, now);
    benchmark::DoNotOptimize(bank.admit(vo, now, 0.5));
  }
  state.counters["vos"] = double(n_vos);
}
BENCHMARK(BM_BankChargeAdmit)->Arg(5)->Arg(50);

// One settlement epoch: charge every ledger (half over, half under
// share), then roll across the boundary so the zero-sum transfer and
// cap clamp run over all VOs.
void BM_BankSettleEpoch(benchmark::State& state) {
  const std::size_t n_vos = std::size_t(state.range(0));
  const double epoch_s = 120.0;
  economy::CreditBank bank(make_options(epoch_s), equal_shares(n_vos));
  std::int64_t epoch = 1;
  for (auto _ : state) {
    const sim::Time in_epoch =
        sim::Time::from_seconds(double(epoch - 1) * epoch_s + 1.0);
    const double fair = 120.0 * 1000.0 / double(n_vos);
    for (std::size_t i = 0; i < n_vos; ++i) {
      bank.charge(VoId(i), i % 2 ? 2.0 * fair : 0.5 * fair, in_epoch);
    }
    bank.roll_to(sim::Time::from_seconds(double(epoch) * epoch_s + 1.0));
    ++epoch;
  }
  state.counters["vos"] = double(n_vos);
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n_vos));
}
BENCHMARK(BM_BankSettleEpoch)->Arg(5)->Arg(50)->Arg(500);

// Batch arbitration: severity-then-credit sort plus the capacity walk.
void BM_Arbitrate(benchmark::State& state) {
  const std::size_t n_vos = std::size_t(state.range(0));
  economy::CreditBank bank(make_options(1e9), equal_shares(n_vos));
  const sim::Time now = sim::Time::from_seconds(1.0);
  std::vector<std::pair<VoId, double>> demands;
  demands.reserve(n_vos);
  for (std::size_t i = 0; i < n_vos; ++i) {
    bank.charge(VoId(i), double(1 + (i * 7) % 50) * 100.0, now);
    demands.emplace_back(VoId(i), double(1 + (i * 13) % 40) * 60.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bank.arbitrate(demands, 50'000.0, now));
  }
  state.counters["vos"] = double(n_vos);
}
BENCHMARK(BM_Arbitrate)->Arg(5)->Arg(50)->Arg(500);

// The congestion price attached to every site-loads reply.
void BM_QuotePrice(benchmark::State& state) {
  const economy::EconomyOptions options = make_options(120.0);
  double u = 0.0;
  for (auto _ : state) {
    u += 0.001;
    if (u > 1.0) u = 0.0;
    benchmark::DoNotOptimize(economy::quote_price(options, u, u * 40.0));
  }
}
BENCHMARK(BM_QuotePrice);

}  // namespace

BENCHMARK_MAIN();
