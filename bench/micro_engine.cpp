// Micro-benchmarks for the GRUBER engine: candidate generation (the USLA
// evaluation every GetSiteLoads query performs) and the client-side site
// selectors, across grid sizes — the real-CPU analogue of the modelled
// `eval_cost_per_site` handler cost.
#include <benchmark/benchmark.h>

#include "digruber/experiments/scenario.hpp"
#include "digruber/gruber/selectors.hpp"

using namespace digruber;

namespace {

struct EngineFixture {
  grid::VoCatalog catalog;
  usla::AllocationTree tree;
  gruber::GruberEngine engine;
  grid::Job job;

  explicit EngineFixture(std::size_t n_sites)
      : catalog(grid::VoCatalog::uniform(10, 10)),
        tree(usla::AllocationTree::build(experiments::default_agreements(catalog),
                                         catalog)
                 .value()),
        engine(catalog, tree) {
    Rng rng(31);
    std::vector<grid::SiteSnapshot> snapshots;
    for (std::size_t i = 0; i < n_sites; ++i) {
      grid::SiteSnapshot s;
      s.site = SiteId(i);
      s.total_cpus = std::int32_t(16 + rng.uniform_index(2000));
      s.free_cpus = std::int32_t(rng.uniform_index(std::uint64_t(s.total_cpus)));
      snapshots.push_back(s);
    }
    engine.view().bootstrap(snapshots);
    job.id = JobId(1);
    job.vo = VoId(3);
    job.group = GroupId(31);
    job.user = UserId(31);
    job.cpus = 1;
    job.runtime = sim::Duration::seconds(450);
  }
};

void BM_EngineCandidates(benchmark::State& state) {
  EngineFixture fixture{std::size_t(state.range(0))};
  for (auto _ : state) {
    const auto candidates = fixture.engine.candidates(fixture.job, sim::Time::zero());
    benchmark::DoNotOptimize(candidates.data());
  }
  state.counters["sites"] = double(state.range(0));
}
BENCHMARK(BM_EngineCandidates)->Arg(30)->Arg(300)->Arg(3000);

void BM_EngineCandidatesWithActiveRecords(benchmark::State& state) {
  EngineFixture fixture{300};
  Rng rng(37);
  for (int i = 0; i < int(state.range(0)); ++i) {
    gruber::DispatchRecord r;
    r.origin = DpId(0);
    r.seq = std::uint64_t(i);
    r.site = SiteId(rng.uniform_index(300));
    r.vo = VoId(rng.uniform_index(10));
    r.group = GroupId(rng.uniform_index(100));
    r.user = UserId(rng.uniform_index(100));
    r.cpus = 1;
    r.when = sim::Time::zero();
    r.est_runtime = sim::Duration::hours(10);  // stays active
    fixture.engine.record(r);
  }
  for (auto _ : state) {
    const auto candidates = fixture.engine.candidates(fixture.job, sim::Time::zero());
    benchmark::DoNotOptimize(candidates.data());
  }
  state.counters["active_records"] = double(state.range(0));
}
BENCHMARK(BM_EngineCandidatesWithActiveRecords)->Arg(100)->Arg(1000)->Arg(5000);

void BM_Selector(benchmark::State& state, const char* name) {
  EngineFixture fixture{300};
  const auto candidates = fixture.engine.candidates(fixture.job, sim::Time::zero());
  const auto selector = gruber::make_selector(name, Rng(41));
  for (auto _ : state) {
    auto site = selector->select(candidates, fixture.job);
    benchmark::DoNotOptimize(site);
  }
}
BENCHMARK_CAPTURE(BM_Selector, least_used, "least-used");
BENCHMARK_CAPTURE(BM_Selector, top_k, "top-k");
BENCHMARK_CAPTURE(BM_Selector, round_robin, "round-robin");
BENCHMARK_CAPTURE(BM_Selector, random, "random");
BENCHMARK_CAPTURE(BM_Selector, weighted, "weighted");

}  // namespace

BENCHMARK_MAIN();
