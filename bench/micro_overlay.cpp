// Micro-benchmarks for the dissemination overlay: per-round target
// selection runs inside every decision point's exchange tick, and the
// trailer-stack composer sits on the encode path of every exchange frame
// and query reply — both must stay negligible next to the serialization
// work they surround.
#include <benchmark/benchmark.h>

#include <vector>

#include "digruber/overlay/overlay.hpp"
#include "digruber/overlay/trailer_stack.hpp"

using namespace digruber;

namespace {

constexpr std::size_t kPoints = 100;

overlay::View make_view(std::size_t n, DpId self) {
  overlay::View view;
  view.self = self;
  for (std::size_t i = 0; i < n; ++i) {
    if (DpId(i) == self) continue;
    view.peers.push_back({DpId(i), NodeId(1000 + i)});
  }
  return view;
}

std::vector<NodeId> make_candidates(std::size_t n, DpId self) {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (DpId(i) == self) continue;
    out.push_back(NodeId(1000 + i));
  }
  return out;
}

void bm_select(benchmark::State& state, overlay::Kind kind) {
  overlay::Options options;
  options.kind = kind;
  options.seed = 42;
  const DpId self(17);
  const auto strategy = overlay::make_strategy(options, self);
  strategy->rebuild(make_view(kPoints, self));
  const std::vector<NodeId> candidates = make_candidates(kPoints, self);
  std::vector<NodeId> out;
  std::uint64_t round = 0;
  for (auto _ : state) {
    out.clear();
    strategy->select(round++, candidates, out);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_SelectMesh(benchmark::State& state) {
  bm_select(state, overlay::Kind::kMesh);
}
void BM_SelectTree(benchmark::State& state) {
  bm_select(state, overlay::Kind::kTree);
}
void BM_SelectGossip(benchmark::State& state) {
  bm_select(state, overlay::Kind::kGossip);
}
void BM_SelectSuperPeer(benchmark::State& state) {
  bm_select(state, overlay::Kind::kSuperPeer);
}
BENCHMARK(BM_SelectMesh);
BENCHMARK(BM_SelectTree);
BENCHMARK(BM_SelectGossip);
BENCHMARK(BM_SelectSuperPeer);

// Structure repair: the full roster-walk a tree point pays when the live
// view changes under churn (the no-change path is the common case and is
// mostly the same walk plus an equality compare).
void BM_RebuildTree(benchmark::State& state) {
  overlay::Options options;
  options.kind = overlay::Kind::kTree;
  const DpId self(17);
  const auto strategy = overlay::make_strategy(options, self);
  const overlay::View view = make_view(kPoints, self);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->rebuild(view));
  }
}
BENCHMARK(BM_RebuildTree);

// The five-slot exchange trailer stack (load / membership / digest /
// price / hops) with a mid-stack want forcing the earlier slots.
void BM_TrailerCompose(benchmark::State& state) {
  std::uint64_t attached = 0;
  for (auto _ : state) {
    overlay::TrailerStack trailers;
    trailers.slot(true, [&](bool) { ++attached; })
        .slot(false, [&](bool) { ++attached; })
        .slot(true, [&](bool) { ++attached; })
        .slot(false, [&](bool) { ++attached; })
        .slot(true, [&](bool) { ++attached; })
        .compose();
    benchmark::DoNotOptimize(attached);
  }
}
BENCHMARK(BM_TrailerCompose);

}  // namespace

BENCHMARK_MAIN();
