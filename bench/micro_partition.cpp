// Micro-benchmarks for the partition-tolerance hot paths: the settled-
// window view digest rides on EVERY exchange round and site-loads reply,
// divergence targeting and record merges run on every anti-entropy pull,
// and the CRC-32C trailer is paid per frame once checksums are on — so
// their costs bound how cheap "partition tolerance enabled" can be.
#include <benchmark/benchmark.h>

#include "digruber/common/rng.hpp"
#include "digruber/digruber/protocol.hpp"
#include "digruber/gruber/view.hpp"
#include "digruber/net/wire/crc32c.hpp"
#include "digruber/net/wire/frame.hpp"

using namespace digruber;
using ::digruber::digruber::GetSiteLoadsReply;
using ::digruber::digruber::Method;

namespace {

constexpr std::size_t kSites = 120;

std::vector<grid::SiteSnapshot> make_bases() {
  Rng rng(31);
  std::vector<grid::SiteSnapshot> bases;
  bases.reserve(kSites);
  for (std::size_t i = 0; i < kSites; ++i) {
    grid::SiteSnapshot s;
    s.site = SiteId(i);
    s.total_cpus = std::int32_t(64 + rng.uniform_index(512));
    s.free_cpus = s.total_cpus;
    bases.push_back(std::move(s));
  }
  return bases;
}

gruber::DispatchRecord make_record(Rng& rng, std::uint64_t seq) {
  gruber::DispatchRecord r;
  r.origin = DpId(rng.uniform_index(5));
  r.seq = seq;
  r.site = SiteId(rng.uniform_index(kSites));
  r.vo = VoId(rng.uniform_index(8));
  r.group = GroupId(rng.uniform_index(40));
  r.user = UserId(rng.uniform_index(200));
  r.cpus = std::int32_t(1 + rng.uniform_index(4));
  r.when = sim::Time::from_seconds(double(seq % 600));
  r.est_runtime = sim::Duration::seconds(1800);
  return r;
}

gruber::GridView make_view(std::size_t n_records, std::uint64_t seed) {
  gruber::GridView view;
  view.bootstrap(make_bases());
  Rng rng(seed);
  for (std::size_t i = 0; i < n_records; ++i) {
    view.record_dispatch(make_record(rng, i));
  }
  return view;
}

// Window covering every record above: when <= 600 < as_of, expiry > horizon.
const sim::Time kAsOf = sim::Time::from_seconds(700.0);
const sim::Time kHorizon = sim::Time::from_seconds(705.0);

void BM_ViewDigest(benchmark::State& state) {
  const gruber::GridView view = make_view(std::size_t(state.range(0)), 7);
  for (auto _ : state) {
    const gruber::ViewDigest digest = view.digest(kAsOf, kHorizon);
    benchmark::DoNotOptimize(digest.base_hash);
    benchmark::DoNotOptimize(digest.vos.data());
  }
  state.counters["records"] = double(state.range(0));
}
BENCHMARK(BM_ViewDigest)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DivergedVos(benchmark::State& state) {
  // Two views sharing most records but diverged on one origin's tail —
  // the shape a healed split actually presents.
  const std::size_t n = std::size_t(state.range(0));
  const gruber::GridView a = make_view(n, 7);
  gruber::GridView b = make_view(n, 7);
  Rng rng(91);
  for (std::size_t i = 0; i < n / 10 + 1; ++i) {
    b.record_dispatch(make_record(rng, 1'000'000 + i));
  }
  const gruber::ViewDigest da = a.digest(kAsOf, kHorizon);
  const gruber::ViewDigest db = b.digest(kAsOf, kHorizon);
  for (auto _ : state) {
    const std::vector<VoId> vos = gruber::diverged_vos(da, db);
    benchmark::DoNotOptimize(vos.data());
  }
}
BENCHMARK(BM_DivergedVos)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DeltaMergeDuplicate(benchmark::State& state) {
  // Steady-state anti-entropy cost: most pulled records are already held,
  // so the common merge outcome is the content-dedup drop.
  const std::size_t n = std::size_t(state.range(0));
  gruber::GridView view = make_view(n, 7);
  Rng rng(7);
  std::vector<gruber::DispatchRecord> records;
  for (std::size_t i = 0; i < n; ++i) records.push_back(make_record(rng, i));
  const sim::Time now = sim::Time::from_seconds(650.0);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto merged = view.merge_record(records[i], now);
    benchmark::DoNotOptimize(merged.applied);
    i = (i + 1) % records.size();
  }
  state.counters["records"] = double(n);
}
BENCHMARK(BM_DeltaMergeDuplicate)->Arg(100)->Arg(1000);

void BM_RecordsForVos(benchmark::State& state) {
  // The delta-pull serve path: collect the records of the diverged VOs.
  const gruber::GridView view = make_view(std::size_t(state.range(0)), 7);
  const std::vector<VoId> vos{VoId(1), VoId(4), VoId(6)};
  const sim::Time now = sim::Time::from_seconds(650.0);
  for (auto _ : state) {
    const auto records = view.records_for_vos(vos, now);
    benchmark::DoNotOptimize(records.data());
  }
}
BENCHMARK(BM_RecordsForVos)->Arg(1000)->Arg(10000);

void BM_Crc32c(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint8_t> data(std::size_t(state.range(0)));
  for (auto& b : data) b = std::uint8_t(rng.uniform_index(256));
  for (auto _ : state) {
    const std::uint32_t crc = net::wire::crc32c(data);
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(std::int64_t(data.size()) * state.iterations());
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ChecksumFrameRoundtrip(benchmark::State& state) {
  // v3 frame build + verify against the v1 cost in micro_wire's
  // BM_FrameRoundtrip: the delta is the full per-frame checksum tax.
  Rng rng(17);
  GetSiteLoadsReply reply;
  for (std::size_t i = 0; i < 300; ++i) {
    gruber::SiteLoad load;
    load.site = SiteId(i);
    load.total_cpus = std::int32_t(rng.uniform_index(4096));
    load.free_estimate = std::int32_t(rng.uniform_index(2048));
    load.raw_free = load.free_estimate;
    load.queued = std::int32_t(rng.uniform_index(64));
    reply.candidates.push_back(load);
  }
  for (auto _ : state) {
    const net::Buffer frame = net::wire::make_frame(
        Method::kGetSiteLoads, net::wire::FrameKind::kReply, 42, reply,
        /*deadline_us=*/0, /*checksum=*/true);
    net::wire::FrameHeader header;
    net::Buffer body;
    const auto parsed = net::wire::parse_frame_ex(frame, header, body);
    benchmark::DoNotOptimize(parsed);
    benchmark::DoNotOptimize(body.data());
  }
}
BENCHMARK(BM_ChecksumFrameRoundtrip);

}  // namespace

BENCHMARK_MAIN();
