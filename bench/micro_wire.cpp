// Micro-benchmarks for the wire layer: the serialization boilerplate is
// the hot path of every brokering query (a GetSiteLoads reply carries one
// SiteLoad per site), so its cost determines how much handler budget is
// left at each decision point.
#include <benchmark/benchmark.h>

#include "digruber/common/rng.hpp"
#include "digruber/digruber/protocol.hpp"
#include "digruber/net/wire/frame.hpp"

using namespace digruber;
using ::digruber::digruber::ExchangeMessage;
using ::digruber::digruber::GetSiteLoadsReply;
using ::digruber::digruber::Method;

namespace {

GetSiteLoadsReply make_reply(std::size_t n_sites) {
  Rng rng(17);
  GetSiteLoadsReply reply;
  reply.candidates.reserve(n_sites);
  for (std::size_t i = 0; i < n_sites; ++i) {
    gruber::SiteLoad load;
    load.site = SiteId(i);
    load.total_cpus = std::int32_t(rng.uniform_index(4096));
    load.free_estimate = std::int32_t(rng.uniform_index(2048));
    load.raw_free = load.free_estimate;
    load.queued = std::int32_t(rng.uniform_index(64));
    reply.candidates.push_back(load);
  }
  return reply;
}

ExchangeMessage make_exchange(std::size_t n_records) {
  Rng rng(23);
  ExchangeMessage msg;
  msg.from = DpId(1);
  for (std::size_t i = 0; i < n_records; ++i) {
    gruber::DispatchRecord r;
    r.origin = DpId(rng.uniform_index(10));
    r.seq = i;
    r.site = SiteId(rng.uniform_index(300));
    r.vo = VoId(rng.uniform_index(10));
    r.group = GroupId(rng.uniform_index(100));
    r.user = UserId(rng.uniform_index(100));
    r.cpus = 1;
    r.when = sim::Time::from_seconds(double(i));
    r.est_runtime = sim::Duration::seconds(450);
    msg.dispatches.push_back(r);
  }
  return msg;
}

void BM_EncodeSiteLoads(benchmark::State& state) {
  const GetSiteLoadsReply reply = make_reply(std::size_t(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto encoded = net::wire::encode(reply);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded.data());
  }
  state.SetBytesProcessed(std::int64_t(bytes) * state.iterations());
  state.counters["wire_bytes"] = double(bytes);
}
BENCHMARK(BM_EncodeSiteLoads)->Arg(30)->Arg(300)->Arg(3000);

void BM_DecodeSiteLoads(benchmark::State& state) {
  const auto encoded = net::wire::encode(make_reply(std::size_t(state.range(0))));
  for (auto _ : state) {
    GetSiteLoadsReply out;
    const bool ok = net::wire::decode(std::span<const std::uint8_t>(encoded), out);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(out.candidates.data());
  }
  state.SetBytesProcessed(std::int64_t(encoded.size()) * state.iterations());
}
BENCHMARK(BM_DecodeSiteLoads)->Arg(30)->Arg(300)->Arg(3000);

void BM_EncodeExchange(benchmark::State& state) {
  const ExchangeMessage msg = make_exchange(std::size_t(state.range(0)));
  for (auto _ : state) {
    const auto encoded = net::wire::encode(msg);
    benchmark::DoNotOptimize(encoded.data());
  }
}
BENCHMARK(BM_EncodeExchange)->Arg(10)->Arg(100)->Arg(1000);

void BM_FrameRoundtrip(benchmark::State& state) {
  const GetSiteLoadsReply reply = make_reply(300);
  for (auto _ : state) {
    const auto frame =
        net::wire::make_frame(Method::kGetSiteLoads, net::wire::FrameKind::kReply,
                              42, reply);
    net::wire::FrameHeader header;
    std::span<const std::uint8_t> body;
    const bool ok = net::wire::parse_frame(frame, header, body);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(body.data());
  }
}
BENCHMARK(BM_FrameRoundtrip);

void BM_EncodeSiteLoadsBuffer(benchmark::State& state) {
  // Same encode as BM_EncodeSiteLoads, landing in shared immutable storage
  // (the form every frame and reply actually ships in).
  const GetSiteLoadsReply reply = make_reply(std::size_t(state.range(0)));
  for (auto _ : state) {
    const net::Buffer encoded = net::wire::encode_buffer(reply);
    benchmark::DoNotOptimize(encoded.data());
  }
}
BENCHMARK(BM_EncodeSiteLoadsBuffer)->Arg(30)->Arg(300)->Arg(3000);

void BM_ExchangeFanOut(benchmark::State& state) {
  // The state-exchange broadcast primitive: one encode, N shared handles.
  // Cost should be flat in N up to the refcount bumps — compare against
  // BM_EncodeExchange/100 scaled by peer count for the old N-encode cost.
  const ExchangeMessage msg = make_exchange(100);
  const std::size_t peers = std::size_t(state.range(0));
  std::vector<net::Buffer> mailboxes(peers);
  for (auto _ : state) {
    const net::Buffer frame = net::wire::make_frame(
        Method::kExchange, net::wire::FrameKind::kOneWay, 1, msg);
    for (std::size_t i = 0; i < peers; ++i) mailboxes[i] = frame;
    benchmark::DoNotOptimize(mailboxes.data());
  }
  state.counters["peers"] = double(peers);
}
BENCHMARK(BM_ExchangeFanOut)->Arg(4)->Arg(16)->Arg(64);

void BM_BufferSlice(benchmark::State& state) {
  const net::Buffer frame = net::wire::make_frame(
      Method::kGetSiteLoads, net::wire::FrameKind::kReply, 7, make_reply(300));
  for (auto _ : state) {
    net::wire::FrameHeader header;
    net::Buffer body;
    const bool ok = net::wire::parse_frame(frame, header, body);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(body.data());
  }
}
BENCHMARK(BM_BufferSlice);

}  // namespace

BENCHMARK_MAIN();
