// Overload-shedding bench: drives a single GT3 decision point across its
// saturation knee with increasing client fleets and contrasts the legacy
// container (FIFO queue, silent refusals, clients retrying blind) against
// the overload-control stack (deadline-aware admission, typed NACKs with
// retry_after, LIFO-under-overload, retry budgets, p2c failover).
//
// Past the knee the FIFO container degenerates into a machine that serves
// only already-expired work: every queued request waits longer than the
// 60 s client deadline, so the worker pool burns at 100% utilization
// producing replies nobody is waiting for. Shedding doomed work at
// admission (and at pickup) spends the same worker-seconds on requests
// that can still make their deadline — goodput holds and the tail
// collapses instead of the service.
#include <iostream>
#include <vector>

#include "bench_util.hpp"

using namespace digruber;

namespace {

struct ArmResult {
  double goodput_qps = 0.0;  // queries handled by GRUBER per second
  double p99_s = 0.0;
  double handled_pct = 0.0;
  metrics::OverloadCounters overload;
};

ArmResult run_arm(const bench::BenchArgs& args, int n_clients, bool shed) {
  experiments::ScenarioConfig cfg =
      bench::paper_config(args, net::ContainerProfile::gt3(), 1);
  cfg.name = shed ? "overload-shed" : "overload-noshed";
  cfg.n_clients = n_clients;
  // A bounded accept queue keeps the comparison honest: the legacy arm
  // refuses silently at the limit, the shedding arm NACKs with a hint.
  cfg.profile.queue_limit = 512;
  // The no-shed arm is the pre-overload-control system: one blocking
  // attempt per query spending the whole 60 s budget against a FIFO
  // container that serves stale work long after the client hung up. The
  // shed arm is the full stack from this change: 10 s attempt deadlines on
  // the wire, deadline-aware admission + pickup shed, typed NACKs with
  // retry_after, and token-budgeted retries.
  if (shed) {
    cfg.enable_failover = true;
    cfg.failover_backups = 0;  // one DP: retries land on the same container
    cfg.attempt_timeout = sim::Duration::seconds(10);
    cfg.overload_control = true;
  }

  const experiments::ScenarioResult r = experiments::run_scenario(cfg);
  ArmResult out;
  out.goodput_qps = double(r.clients.handled) / cfg.duration.to_seconds();
  // Tail over SERVED responses. Queries that exhaust their retry budget and
  // fall back are give-ups, not responses — their "latency" is whatever the
  // client's 60 s budget allowed, which says nothing about service quality.
  out.p99_s = r.handled.response_p99_s;
  out.handled_pct = r.handled.request_share;
  out.overload = r.overload;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  // A closed-loop fleet self-limits at n_clients outstanding requests, so
  // the FIFO knee sits where the fleet's standing queue crosses the 60 s
  // client budget (~200 clients for one quick-mode GT3 DP; earlier in full
  // mode, where the 10x grid doubles per-query cost).
  const std::vector<int> sweep = args.quick
                                     ? std::vector<int>{60, 120, 240, 300}
                                     : std::vector<int>{60, 120, 180, 240};

  std::cout << "== Overload shedding: 1 GT3 decision point across the "
               "saturation knee ==\n";
  Table table({"clients", "goodput shed (q/s)", "goodput no-shed (q/s)",
               "p99 shed (s)", "p99 no-shed (s)", "handled shed",
               "handled no-shed", "shed", "NACKs"});

  ArmResult knee_shed, knee_noshed;
  for (const int n : sweep) {
    const ArmResult with_shed = run_arm(args, n, true);
    const ArmResult without = run_arm(args, n, false);
    table.add_row({std::to_string(n), Table::num(with_shed.goodput_qps, 2),
                   Table::num(without.goodput_qps, 2),
                   Table::num(with_shed.p99_s, 1), Table::num(without.p99_s, 1),
                   Table::pct(with_shed.handled_pct),
                   Table::pct(without.handled_pct),
                   std::to_string(with_shed.overload.shed_total()),
                   std::to_string(with_shed.overload.overload_nacks)});
    knee_shed = with_shed;
    knee_noshed = without;
  }
  table.render(std::cout);
  std::cout << "\n";

  diperf::render_overload(std::cout, knee_shed.overload);
  diperf::render_wire(std::cout, diperf::snapshot_wire_counters());

  // Verdict at the deepest point past the knee (the largest fleet).
  const bool goodput_up = knee_shed.goodput_qps >= knee_noshed.goodput_qps;
  const bool tail_down = knee_shed.p99_s <= knee_noshed.p99_s;
  std::cout << "past the knee (" << sweep.back() << " clients): goodput "
            << (goodput_up ? "HELD" : "NOT held") << " ("
            << Table::num(knee_shed.goodput_qps, 2) << " vs "
            << Table::num(knee_noshed.goodput_qps, 2) << " q/s), p99 "
            << (tail_down ? "LOWER" : "NOT lower") << " ("
            << Table::num(knee_shed.p99_s, 1) << " vs "
            << Table::num(knee_noshed.p99_s, 1) << " s)\n";
  return goodput_up && tail_down ? 0 : 1;
}
