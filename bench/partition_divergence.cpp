// Partition-divergence bench: splits the mesh into two live islands WITH
// clients on both sides — true split brain, where both halves keep
// admitting work against the capacity they believe is free — then heals,
// and compares partition tolerance ON vs OFF (same seed, same plan):
//
//   * over-commit during the split: how over-optimistic the brokered
//     placements were against ground truth (scheduling accuracy) and how
//     deep the site queues grew (queue time) while the halves double-spent
//     the same believed-free capacity,
//   * degraded-mode admission: capacity discounting, typed degraded NACKs,
//     and the client reroutes they caused (ON only),
//   * post-heal reconciliation: how fast scheduling accuracy re-converges
//     to the fault-free control, digest-mismatch detection and targeted
//     delta pulls versus the full kCatchUp snapshots the OFF run leans on,
//     and the records shipped by each path.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace digruber;

namespace {

struct PhaseStats {
  std::uint64_t total = 0;
  std::uint64_t handled = 0;
  double accuracy_sum = 0.0;
  double handled_accuracy_sum = 0.0;
  double qtime_sum = 0.0;
  std::uint64_t started = 0;

  [[nodiscard]] double handled_fraction() const {
    return total ? double(handled) / double(total) : 0.0;
  }
  [[nodiscard]] double mean_accuracy() const {
    return total ? accuracy_sum / double(total) : 0.0;
  }
  /// Accuracy of BROKERED placements only. For a handled query the oracle
  /// scores min(1, actual/believed) — pure over-belief — so 1 minus this
  /// is the fraction of believed-in capacity that did not exist: the
  /// over-commit a split brain causes. Blind fallbacks are excluded (they
  /// are an availability cost, scored against best-room instead).
  [[nodiscard]] double mean_handled_accuracy() const {
    return handled ? handled_accuracy_sum / double(handled) : 0.0;
  }
  [[nodiscard]] double mean_qtime() const {
    return started ? qtime_sum / double(started) : 0.0;
  }
};

PhaseStats phase_stats(const std::vector<metrics::RequestSample>& samples,
                       double lo_s, double hi_s) {
  PhaseStats out;
  for (const auto& sample : samples) {
    if (sample.issued_s < lo_s || sample.issued_s >= hi_s) continue;
    ++out.total;
    if (sample.handled) {
      ++out.handled;
      out.handled_accuracy_sum += sample.accuracy;
    }
    out.accuracy_sum += sample.accuracy;
    if (sample.started) {
      ++out.started;
      out.qtime_sum += sample.qtime_s;
    }
  }
  return out;
}

/// First bucket end after `from_s` whose mean accuracy is within `eps` of
/// the control's same bucket (-1 = never inside the window).
double accuracy_recovery_s(const std::vector<metrics::RequestSample>& run,
                           const std::vector<metrics::RequestSample>& control,
                           double from_s, double end_s, double bucket_s,
                           double eps) {
  for (double t = from_s; t + bucket_s <= end_s; t += bucket_s) {
    const PhaseStats b = phase_stats(run, t, t + bucket_s);
    const PhaseStats c = phase_stats(control, t, t + bucket_s);
    if (b.total < 5 || c.total < 5) continue;
    if (b.mean_accuracy() >= c.mean_accuracy() - eps) return t + bucket_s;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  experiments::ScenarioConfig cfg =
      bench::paper_config(args, net::ContainerProfile::gt3(), 3);
  cfg.name = "partition-divergence";
  // Load sized for the minority island: with the mesh split {1,2} | {0},
  // one third of the fleet hammers a single decision point.
  cfg.n_clients = args.quick ? 40 : 60;
  // Fig08-class sync interval: fast enough that exchange rounds (and the
  // digests riding them) happen many times inside the split and the heal
  // tail, so divergence detection latency is measurable in rounds.
  cfg.exchange_interval = sim::Duration::minutes(1);
  cfg.overload_control = true;

  const double T = cfg.duration.to_seconds();
  const double split_s = 0.35 * T;
  const double heal_s = 0.65 * T;

  // Fault-free control (partition tolerance off): accuracy and queue time
  // degrade with plain load, so split effects are only meaningful against
  // the same windows of an unfaulted run.
  const experiments::ScenarioResult control = experiments::run_scenario(cfg);

  // The split: majority island {1,2} listed first, dp0 isolated — and the
  // client fleet divided across the islands, so BOTH sides keep admitting
  // (the off-run halves double-spend the same believed-free capacity).
  cfg.fault_plan.partition(sim::Time::from_seconds(split_s), {{1, 2}, {0}},
                           /*split_clients=*/true)
      .heal(sim::Time::from_seconds(heal_s));

  experiments::ScenarioConfig off_cfg = cfg;
  off_cfg.name = "split-pt-off";
  const experiments::ScenarioResult off = experiments::run_scenario(off_cfg);

  experiments::ScenarioConfig on_cfg = cfg;
  on_cfg.name = "split-pt-on";
  on_cfg.partition_tolerance = true;
  on_cfg.frame_checksums = true;
  // Staleness threshold under the split duration so degraded-mode
  // admission engages well inside it; digest windows follow the 60 s
  // exchange interval automatically.
  on_cfg.partition_options.staleness_threshold = sim::Duration::minutes(3);
  on_cfg.partition_options.delta_pull_min_gap = sim::Duration::seconds(30);
  const std::unique_ptr<trace::Tracer> tracer = bench::make_tracer(args);
  trace::Tracer mismatch_tracer;  // always on: I6-style convergence timing
  on_cfg.tracer = tracer ? tracer.get() : &mismatch_tracer;
  const experiments::ScenarioResult on = experiments::run_scenario(on_cfg);
  const trace::Tracer& on_trace = tracer ? *tracer : mismatch_tracer;

  bench::print_run_banner(std::cout, on);
  std::cout << "fault plan:\n" << cfg.fault_plan.describe() << "\n";

  // --- Phase comparison: control vs off vs on. ---------------------------
  struct Phase {
    const char* name;
    double lo, hi;
  };
  const Phase windows[] = {
      {"nominal (pre-split)", 0.10 * T, split_s},
      {"split brain", split_s, heal_s},
      {"healed", heal_s, T},
  };
  Table phases({"phase", "run", "queries", "handled", "accuracy",
                "brokered acc", "qtime (s)"});
  for (const Phase& w : windows) {
    const struct {
      const char* label;
      const experiments::ScenarioResult* r;
    } runs[] = {{"control", &control}, {"pt off", &off}, {"pt on", &on}};
    for (const auto& run : runs) {
      const PhaseStats s = phase_stats(run.r->samples, w.lo, w.hi);
      phases.add_row({w.name, run.label, std::to_string(s.total),
                      Table::pct(s.handled_fraction()),
                      s.total ? Table::pct(s.mean_accuracy()) : std::string("-"),
                      s.handled ? Table::pct(s.mean_handled_accuracy())
                                : std::string("-"),
                      Table::num(s.mean_qtime(), 1)});
    }
  }
  phases.render(std::cout);
  std::cout << "\n";

  // --- Over-commit during the split. -------------------------------------
  const PhaseStats split_off = phase_stats(off.samples, split_s, heal_s);
  const PhaseStats split_on = phase_stats(on.samples, split_s, heal_s);
  const PhaseStats split_control = phase_stats(control.samples, split_s, heal_s);
  // Over-commit: the share of believed-in capacity behind each brokered
  // placement that did not actually exist (1 - brokered accuracy).
  const double overcommit_off = 1.0 - split_off.mean_handled_accuracy();
  const double overcommit_on = 1.0 - split_on.mean_handled_accuracy();
  const double overcommit_control = 1.0 - split_control.mean_handled_accuracy();

  Table overcommit({"metric", "pt off", "pt on"});
  overcommit.add_row({"brokered placements in the split",
                      std::to_string(split_off.handled),
                      std::to_string(split_on.handled)});
  overcommit.add_row({"over-committed share of brokered capacity",
                      Table::pct(overcommit_off), Table::pct(overcommit_on)});
  overcommit.add_row({"  (fault-free control over the same window)",
                      Table::pct(overcommit_control),
                      Table::pct(overcommit_control)});
  overcommit.add_row({"availability (handled fraction)",
                      Table::pct(split_off.handled_fraction()),
                      Table::pct(split_on.handled_fraction())});
  overcommit.add_row({"split-window queue time (s)",
                      Table::num(split_off.mean_qtime(), 1),
                      Table::num(split_on.mean_qtime(), 1)});
  overcommit.add_row(
      {"degraded replies (capacity discounted)", "0",
       std::to_string(on.partition.degraded_replies)});
  overcommit.add_row({"degraded refusals (quorum stale)", "0",
                      std::to_string(on.partition.degraded_refusals)});
  overcommit.add_row({"client degraded reroutes", "0",
                      std::to_string(on.partition.client_degraded_redirects)});
  overcommit.add_row({"double commits detected", "-",
                      std::to_string(on.partition.double_commits)});
  // Ground truth, not belief: brokered placements that pushed a VO past
  // its USLA cap at the selected site, judged against actual occupancy at
  // dispatch time (the split-brain entitlement breach the digests exist
  // to prevent). The fault-free control pins the no-split noise floor.
  overcommit.add_row({"entitlement breaches (past VO cap, whole run)",
                      std::to_string(off.entitlement_breaches),
                      std::to_string(on.entitlement_breaches)});
  overcommit.add_row({"  (fault-free control)",
                      std::to_string(control.entitlement_breaches),
                      std::to_string(control.entitlement_breaches)});
  overcommit.add_row({"worst single breach (CPUs past cap)",
                      std::to_string(off.entitlement_worst_excess),
                      std::to_string(on.entitlement_worst_excess)});
  overcommit.render(std::cout);
  std::cout << "\n";

  // --- Post-heal reconciliation. -----------------------------------------
  const double bucket_s = args.quick ? 60.0 : 120.0;
  const double recover_off =
      accuracy_recovery_s(off.samples, control.samples, heal_s, T, bucket_s, 0.02);
  const double recover_on =
      accuracy_recovery_s(on.samples, control.samples, heal_s, T, bucket_s, 0.02);

  // Last digest mismatch the ON mesh traced: heal -> quiet measures how
  // long divergence stayed detectable before anti-entropy dried it up.
  trace::Tracer::Filter filter;
  filter.category = trace::Category::kDp;
  filter.name = "dp.digest_mismatch";
  double last_mismatch_s = -1.0;
  for (const auto& event : on_trace.query(filter)) {
    last_mismatch_s = std::max(last_mismatch_s, event.ts.to_seconds());
  }

  std::uint64_t catchup_records_off = 0, catchup_records_on = 0;
  for (const auto& dp : off.dps) catchup_records_off += dp.resync_records;
  for (const auto& dp : on.dps) catchup_records_on += dp.resync_records;

  Table heal({"metric", "pt off", "pt on"});
  heal.add_row(
      {"accuracy back at control level (s after heal)",
       recover_off >= 0 ? Table::num(recover_off - heal_s, 0) : std::string("never"),
       recover_on >= 0 ? Table::num(recover_on - heal_s, 0) : std::string("never")});
  heal.add_row({"digest mismatches detected", "-",
                std::to_string(on.partition.digest_mismatches)});
  heal.add_row(
      {"last mismatch after heal (s)", "-",
       last_mismatch_s >= heal_s ? Table::num(last_mismatch_s - heal_s, 0)
                                 : std::string("0")});
  heal.add_row({"targeted delta pulls", "-",
                std::to_string(on.partition.delta_pulls_sent)});
  heal.add_row({"records applied via delta pulls", "-",
                std::to_string(on.partition.delta_records_applied)});
  heal.add_row({"records shipped by full catch-up snapshots",
                std::to_string(catchup_records_off),
                std::to_string(catchup_records_on)});
  heal.render(std::cout);
  std::cout << "\n";

  const bool overcommit_better = overcommit_on <= overcommit_off + 1e-9;
  const bool converge_better =
      recover_on >= 0 && (recover_off < 0 || recover_on <= recover_off);
  // Gate on TOTAL reconciliation traffic (snapshot + targeted records):
  // the round-gap catch-up still fires post-heal and can legitimately win
  // the race against the digest-driven pulls, but with partition tolerance
  // on the split sides created far fewer divergent records (degraded-mode
  // shedding), so the heal moves less state either way.
  const bool delta_cheaper =
      catchup_records_on + on.partition.delta_records_applied <=
      catchup_records_off;
  std::cout << "over-commit lower with partition tolerance: "
            << (overcommit_better ? "yes" : "NO") << " ("
            << Table::pct(overcommit_off) << " of brokered capacity off vs "
            << Table::pct(overcommit_on) << " on)\n";
  std::cout << "post-heal convergence no slower with partition tolerance: "
            << (converge_better ? "yes" : "NO") << "\n";
  std::cout << "reconciliation traffic lower with partition tolerance: "
            << (delta_cheaper ? "yes" : "NO") << " ("
            << catchup_records_on << " catch-up + "
            << on.partition.delta_records_applied << " targeted records on vs "
            << catchup_records_off << " off)\n\n";

  diperf::render_latency_percentiles(std::cout, on.handled, on.not_handled,
                                     on.all);
  bench::save_trace(args, tracer.get(), std::cout);

  std::cout << "Expected shape: during the split both halves of the OFF run\n"
               "admit against the same believed-free capacity, so a growing\n"
               "share of each brokered placement's believed capacity does\n"
               "not exist (over-commit). The ON run discounts believed-free\n"
               "capacity while peers are stale and sheds placement work once\n"
               "a quorum is lost: its brokered placements stay near ground\n"
               "truth, at the price of degraded NACKs (lower availability\n"
               "on the minority island, where no reroute target exists).\n"
               "After the heal the ON mesh detects divergence from the\n"
               "piggybacked digests within an exchange round and pulls only\n"
               "the diverged VO ranges; mismatches dry up within a few\n"
               "rounds and accuracy snaps back to the control no later than\n"
               "the OFF run's full catch-up path manages. The entitlement\n"
               "rows are the ground-truth USLA audit: zero means the split's\n"
               "damage stayed in believed capacity (stale placements, queue\n"
               "risk) without ever pushing a VO past its hard cap at any\n"
               "site — the placement spread of an OSG-scale grid absorbs it.\n";
  return 0;
}
