// Recovery-replay bench: what does a decision-point restart cost the mesh?
//
// Same seed, same workload, same crash/restart schedule, three recovery
// strategies:
//
//   * catchup  — no disk (the baseline broker): the restarted point comes
//     back empty and pulls FULL kCatchUp snapshots from every neighbor,
//   * wal      — durable WAL + checkpoints, flooding anti-entropy: local
//     replay restores the pre-crash committed state, then the legacy full
//     catch-up still runs (mostly shipping records replay already has),
//   * wal+delta — durable replay plus digest-driven delta anti-entropy:
//     replay restores local state and the piggybacked digests trigger
//     targeted pulls for only the records committed elsewhere DURING the
//     outage — the gap, not the world.
//
// Reported per strategy: records replayed locally from disk, anti-entropy
// records shipped over the network to the restarted point (catch-up
// snapshots + delta pulls), accounted replay time, and the WAL/checkpoint
// device traffic the durability paid for it. The headline is the network
// column: local replay should shrink the transfer to the outage gap.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace digruber;

namespace {

struct Strategy {
  std::string name;
  bool durable = false;
  bool delta = false;
};

struct Row {
  std::string name;
  std::uint64_t replayed = 0;        // records restored from checkpoint+WAL
  std::uint64_t catchup_records = 0; // full-snapshot records shipped to it
  std::uint64_t delta_records = 0;   // targeted delta records applied
  double recovery_s = 0.0;           // accounted local replay time
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t queries = 0;
};

Row run_strategy(const Strategy& strategy, const bench::BenchArgs& args,
                 trace::Tracer* tracer) {
  const double horizon_s = args.quick ? 360.0 : 900.0;
  // One mid-run crash with a one-minute outage: long enough for the
  // surviving points to commit a real gap, short enough that the restarted
  // point's pre-crash state still dominates — the regime where replaying
  // locally beats re-shipping the world.
  const double crash_s = horizon_s * 0.4;
  const double restart_s = crash_s + 60.0;

  experiments::ScenarioConfig config;
  config.name = "recovery-" + strategy.name;
  config.seed = args.seed;
  config.n_dps = 3;
  config.grid_scale = 4;
  config.n_clients = args.quick ? 24 : 48;
  config.duration = sim::Duration::seconds(horizon_s);
  config.exchange_interval = sim::Duration::seconds(15);
  config.enable_failover = true;
  config.attempt_timeout = sim::Duration::seconds(5);
  sim::FaultPlan plan;
  plan.crash(sim::Time::from_seconds(crash_s), 1);
  plan.restart(sim::Time::from_seconds(restart_s), 1);
  config.fault_plan = plan;
  if (strategy.durable) {
    config.durability = true;
    config.durability_options.checkpoint_interval = sim::Duration::minutes(2);
  }
  if (strategy.delta) {
    config.partition_tolerance = true;
    config.frame_checksums = true;
    config.partition_options.delta_pull_min_gap = sim::Duration::seconds(10);
  }

  // Only the durable+delta run is traced: one strategy's recovery
  // lifecycle per file keeps `trace-inspect --recovery` output readable.
  if (strategy.durable && strategy.delta) config.tracer = tracer;

  const experiments::ScenarioResult result = experiments::run_scenario(config);

  Row row;
  row.name = strategy.name;
  row.queries = result.clients.queries;
  const experiments::DpStats& dp = result.dps[1];
  row.replayed = dp.replay_records;
  row.catchup_records = dp.catchup_records_received;
  row.delta_records = dp.delta_records_applied;
  row.recovery_s = dp.last_recovery_s;
  row.wal_appends = dp.wal_appends;
  row.wal_bytes = dp.wal_bytes;
  row.checkpoints = dp.checkpoints_written;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::unique_ptr<trace::Tracer> tracer = bench::make_tracer(args);

  const std::vector<Strategy> strategies = {
      {"catchup", false, false},
      {"wal", true, false},
      {"wal+delta", true, true},
  };

  Table table({"strategy", "queries", "replayed", "net catchup", "net delta",
               "net total", "recovery s", "wal appends", "wal KiB", "ckpts"});
  std::uint64_t baseline_net = 0;
  std::uint64_t durable_net = 0;
  for (const Strategy& strategy : strategies) {
    const Row row = run_strategy(strategy, args, tracer.get());
    const std::uint64_t net = row.catchup_records + row.delta_records;
    if (strategy.name == "catchup") baseline_net = net;
    if (strategy.name == "wal+delta") durable_net = net;
    char recovery[32];
    std::snprintf(recovery, sizeof recovery, "%.3f", row.recovery_s);
    table.add_row({row.name, std::to_string(row.queries),
                   std::to_string(row.replayed), std::to_string(row.catchup_records),
                   std::to_string(row.delta_records), std::to_string(net),
                   recovery, std::to_string(row.wal_appends),
                   std::to_string(row.wal_bytes / 1024),
                   std::to_string(row.checkpoints)});
  }
  table.render(std::cout);
  bench::save_trace(args, tracer.get(), std::cout);

  if (baseline_net == 0) {
    std::cout << "\nrecovery_replay: baseline shipped no catch-up records — "
                 "schedule too quiet to compare\n";
    return 1;
  }
  const double ratio = double(durable_net) / double(baseline_net);
  std::cout << "\nrecovery_replay: durable+delta restart shipped " << durable_net
            << " anti-entropy records vs " << baseline_net
            << " for the full catch-up baseline ("
            << int(100.0 * (1.0 - ratio) + 0.5) << "% fewer)\n";
  // The acceptance bar: local replay must measurably shrink the transfer.
  return durable_net < baseline_net ? 0 : 1;
}
