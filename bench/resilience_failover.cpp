// Resilience bench: kills one of three decision points mid-run, restarts
// it, then partitions the overlay mesh and heals it — and reports
// availability (fraction of queries handled by GRUBER), the scheduling
// accuracy dip and its recovery after the anti-entropy catch-up, and the
// fault-tolerance counters (failovers, breaker trips, re-sync records,
// drops by cause).
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace digruber;

namespace {

struct PhaseStats {
  std::uint64_t total = 0;
  std::uint64_t handled = 0;
  double accuracy_sum = 0.0;

  [[nodiscard]] double handled_fraction() const {
    return total ? double(handled) / double(total) : 0.0;
  }
  [[nodiscard]] double mean_accuracy() const {
    return total ? accuracy_sum / double(total) : 0.0;
  }
};

PhaseStats phase_stats(const std::vector<metrics::RequestSample>& samples,
                       double lo_s, double hi_s) {
  PhaseStats out;
  for (const auto& sample : samples) {
    if (sample.issued_s < lo_s || sample.issued_s >= hi_s) continue;
    ++out.total;
    if (sample.handled) ++out.handled;
    out.accuracy_sum += sample.accuracy;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  experiments::ScenarioConfig cfg =
      bench::paper_config(args, net::ContainerProfile::gt3(), 3);
  cfg.name = "resilience";
  // Size the load for the SURVIVING mesh, not the full one: the fig05
  // ramp is calibrated to saturate 3 decision points, so with one dead
  // the other two collapse (and failover retries amplify request load
  // ~3x against saturated containers, which never drain). A failover
  // experiment needs n-1 headroom.
  cfg.n_clients = args.quick ? 40 : 60;

  const double T = cfg.duration.to_seconds();
  const double crash_s = 0.20 * T;
  const double restart_s = 0.45 * T;
  const double partition_s = 0.60 * T;
  const double heal_s = 0.75 * T;
  // A fault-free control run of the identical configuration: scheduling
  // accuracy degrades with plain load (views drift more between flooding
  // rounds as query rate rises), so fault effects are only meaningful
  // against the same time window of an unfaulted run.
  const experiments::ScenarioResult control = experiments::run_scenario(cfg);

  // Island order matters: clients live on island 0, so the majority pair
  // {1,2} is listed first to keep it client-reachable and isolate dp0.
  cfg.fault_plan.crash(sim::Time::from_seconds(crash_s), 0)
      .restart(sim::Time::from_seconds(restart_s), 0)
      .partition(sim::Time::from_seconds(partition_s), {{1, 2}, {0}})
      .heal(sim::Time::from_seconds(heal_s));
  // A non-empty plan implies client failover (primary + 2 backups,
  // 10 s per-attempt deadline inside the paper's 60 s budget).

  // With --trace, the faulted run (not the control) records an event
  // trace: the crash/heal fault markers, every query's attempt/failover
  // tree, and the packet hops between them, for Perfetto or trace_inspect.
  const std::unique_ptr<trace::Tracer> tracer = bench::make_tracer(args);
  cfg.tracer = tracer.get();
  const experiments::ScenarioResult r = experiments::run_scenario(cfg);
  cfg.tracer = nullptr;

  bench::print_run_banner(std::cout, r);
  std::cout << "fault plan:\n" << cfg.fault_plan.describe() << "\n";

  diperf::render_figure(
      std::cout,
      "Resilience: GT3, 3 decision points — dp0 crash/restart, then a "
      "partition isolating dp0, and heal",
      r.collector, T);

  // Availability / accuracy timeline over query-issue time, faulted run
  // against the fault-free control of the same window.
  const double bucket_s = args.quick ? 60.0 : 120.0;
  Table timeline({"time (s)", "queries", "handled", "accuracy",
                  "control acc", "phase"});
  for (double t = 0.0; t < T; t += bucket_s) {
    const PhaseStats b = phase_stats(r.samples, t, t + bucket_s);
    const PhaseStats c = phase_stats(control.samples, t, t + bucket_s);
    std::string phase;
    if (t < crash_s) {
      phase = "nominal";
    } else if (t < restart_s) {
      phase = "dp0 down";
    } else if (t < partition_s) {
      phase = "dp0 restarted";
    } else if (t < heal_s) {
      phase = "partition isolates dp0";
    } else {
      phase = "healed";
    }
    timeline.add_row({Table::num(t, 0), std::to_string(b.total),
                      Table::pct(b.handled_fraction()),
                      b.total ? Table::pct(b.mean_accuracy()) : std::string("-"),
                      c.total ? Table::pct(c.mean_accuracy()) : std::string("-"),
                      phase});
  }
  timeline.render(std::cout);
  std::cout << "\n";

  // Recovery summary: each phase of the faulted run against the same time
  // window of the control run.
  struct Phase {
    const char* name;
    double lo, hi;
  };
  const Phase windows[] = {
      {"nominal (pre-crash)", 0.10 * T, crash_s},
      {"dp0 down", crash_s, restart_s},
      {"dp0 restarted", restart_s, partition_s},
      {"partition isolates dp0", partition_s, heal_s},
      {"healed", heal_s, T},
  };
  Table phases({"phase", "queries", "handled", "accuracy", "control acc",
                "fault cost"});
  for (const Phase& w : windows) {
    const PhaseStats s = phase_stats(r.samples, w.lo, w.hi);
    const PhaseStats c = phase_stats(control.samples, w.lo, w.hi);
    phases.add_row({w.name, std::to_string(s.total),
                    Table::pct(s.handled_fraction()),
                    s.total ? Table::pct(s.mean_accuracy()) : std::string("-"),
                    c.total ? Table::pct(c.mean_accuracy()) : std::string("-"),
                    Table::pct(c.mean_accuracy() - s.mean_accuracy())});
  }
  phases.render(std::cout);
  std::cout << "\n";

  const PhaseStats outage = phase_stats(r.samples, crash_s, restart_s);
  const PhaseStats recovered = phase_stats(r.samples, restart_s, partition_s);
  const PhaseStats healed = phase_stats(r.samples, heal_s, T);
  const PhaseStats control_outage = phase_stats(control.samples, crash_s, restart_s);
  const PhaseStats control_recovered =
      phase_stats(control.samples, restart_s, partition_s);
  const PhaseStats control_healed = phase_stats(control.samples, heal_s, T);

  const bool handled_recovered =
      recovered.handled_fraction() >=
      0.95 * control_recovered.handled_fraction();
  // The post-restart window carries the expected accuracy dip (dp0 is
  // stale until catch-up plus one flooding round complete); convergence
  // is judged once the mesh is whole again, against the control's same
  // window — plain load already costs accuracy with no faults at all.
  const bool accuracy_recovered =
      healed.mean_accuracy() >= control_healed.mean_accuracy() - 0.02;
  std::cout << "handled-by-GRUBER recovered after dp0 restart: "
            << (handled_recovered ? "yes" : "NO") << " ("
            << Table::pct(outage.handled_fraction()) << " during outage vs "
            << Table::pct(control_outage.handled_fraction()) << " control, "
            << Table::pct(recovered.handled_fraction()) << " after restart vs "
            << Table::pct(control_recovered.handled_fraction()) << " control)\n";
  std::cout << "accuracy re-converged after catch-up: "
            << (accuracy_recovered ? "yes" : "NO") << " ("
            << Table::pct(recovered.mean_accuracy()) << " post-restart dip vs "
            << Table::pct(control_recovered.mean_accuracy()) << " control, "
            << Table::pct(healed.mean_accuracy()) << " healed vs "
            << Table::pct(control_healed.mean_accuracy()) << " control)\n\n";

  diperf::render_latency_percentiles(std::cout, r.handled, r.not_handled, r.all);

  diperf::render_resilience(std::cout, r.resilience);

  bench::save_trace(args, tracer.get(), std::cout);

  // --- Dynamic membership: time-to-detect and time-to-rebalance. ----------
  // A separate run with the failure detector on: dp0 crashes for good
  // (no restart), and a brand-new decision point joins later via snapshot
  // bootstrap. Reported: how long the mesh takes to declare dp0 dead, and
  // how long the joiner takes to reach serving state and a fair share of
  // the query flow.
  experiments::ScenarioConfig mcfg =
      bench::paper_config(args, net::ContainerProfile::gt3(), 3);
  mcfg.name = "membership";
  mcfg.seed = args.seed;
  mcfg.n_clients = args.quick ? 40 : 60;
  mcfg.membership = true;
  // p2c routing over piggybacked load hints is what actually shifts query
  // flow onto the joiner once clients learn it.
  mcfg.overload_control = true;
  // Heartbeats ride the exchange rounds, so the exchange interval is the
  // detection clock; 30 s keeps the dead verdict well inside the window.
  mcfg.exchange_interval = sim::Duration::seconds(30);
  const double MT = mcfg.duration.to_seconds();
  const double mcrash_s = 0.25 * MT;
  const double mjoin_s = 0.55 * MT;
  mcfg.fault_plan.crash(sim::Time::from_seconds(mcrash_s), 0)
      .join(sim::Time::from_seconds(mjoin_s));
  const experiments::ScenarioResult m = experiments::run_scenario(mcfg);

  std::cout << "== dynamic membership: crash detection + join rebalance ==\n";
  std::cout << "fault plan:\n" << mcfg.fault_plan.describe() << "\n";

  // Time-to-detect: crash -> the LAST surviving initial peer's table logs
  // the dead transition for dp0.
  double last_dead_s = -1.0;
  bool all_detected = true;
  for (std::size_t d = 1; d < 3 && d < m.dps.size(); ++d) {
    double dead_s = -1.0;
    for (const auto& tr : m.dps[d].membership_transitions) {
      if (tr.peer == DpId(0) && tr.to == ::digruber::digruber::MemberState::kDead) {
        dead_s = tr.at.to_seconds();
        break;
      }
    }
    if (dead_s < 0) {
      all_detected = false;
      continue;
    }
    last_dead_s = std::max(last_dead_s, dead_s);
  }
  // The soak's bound: two suspicion intervals (2 * suspect_after exchange
  // intervals) cover the dead threshold plus one sweep of granularity.
  const double budget_s = 2.0 * mcfg.membership_options.suspect_after *
                          mcfg.exchange_interval.to_seconds();

  // Time-to-rebalance: join -> the first minute bucket in which the joiner
  // handles at least half its fair share (1/3) of the brokered queries.
  const bool joined = m.dps.size() == 4 && m.dps.back().serving_since_s >= 0.0;
  double rebalance_s = -1.0;
  if (joined) {
    const double bucket = 60.0;
    for (double t = mjoin_s; t + bucket <= MT; t += bucket) {
      std::uint64_t total = 0, to_joiner = 0;
      for (const auto& e : m.trace.entries()) {
        const double ts = e.issued.to_seconds();
        if (ts < t || ts >= t + bucket || !e.handled) continue;
        ++total;
        if (e.dp_index == 3) ++to_joiner;
      }
      if (total >= 10 && double(to_joiner) >= double(total) / 3.0 * 0.5) {
        rebalance_s = (t + bucket) - mjoin_s;  // conservative: bucket end
        break;
      }
    }
  }

  Table membership_table({"metric", "value"});
  membership_table.add_row({"dp0 crash at (s)", Table::num(mcrash_s, 0)});
  membership_table.add_row(
      {"last surviving peer declared dp0 dead (s)",
       all_detected ? Table::num(last_dead_s, 0) : std::string("NEVER")});
  membership_table.add_row(
      {"time-to-detect (s)",
       all_detected ? Table::num(last_dead_s - mcrash_s, 0) : std::string("-")});
  membership_table.add_row(
      {"detection budget: 2 suspicion intervals (s)", Table::num(budget_s, 0)});
  membership_table.add_row({"join at (s)", Table::num(mjoin_s, 0)});
  membership_table.add_row(
      {"joiner serving at (s)",
       joined ? Table::num(m.dps.back().serving_since_s, 0) : std::string("NEVER")});
  membership_table.add_row(
      {"time-to-serving (s)",
       joined ? Table::num(m.dps.back().serving_since_s - mjoin_s, 1)
              : std::string("-")});
  membership_table.add_row(
      {"snapshot records bootstrapped (no replay)",
       Table::num(double(m.membership.join_snapshot_records), 0)});
  membership_table.add_row(
      {"time-to-rebalance: half fair share (s)",
       rebalance_s >= 0 ? Table::num(rebalance_s, 0) : std::string("-")});
  membership_table.render(std::cout);
  std::cout << "\n";

  const bool detect_ok = all_detected && last_dead_s - mcrash_s <= budget_s;
  std::cout << "dp0 death detected by every surviving peer within budget: "
            << (detect_ok ? "yes" : "NO") << "\n";
  std::cout << "joiner reached serving via snapshot bootstrap: "
            << (joined ? "yes" : "NO") << ", rebalanced to fair query share: "
            << (rebalance_s >= 0 ? "yes" : "NO") << "\n\n";

  diperf::render_membership(std::cout, m.membership);

  std::cout << "Expected shape: with failover, availability stays at the\n"
               "fault-free control level through the dp0 outage (backups\n"
               "absorb the load); accuracy dips below the control while dp0\n"
               "is blind after restart and re-converges once the catch-up\n"
               "exchange replays active dispatch records; the partition\n"
               "drops cross-island exchange traffic (counted by cause)\n"
               "until the heal, and the round-gap it leaves triggers a\n"
               "second catch-up at the first post-heal exchange. In the\n"
               "membership run, the surviving peers declare the crashed\n"
               "point dead within two suspicion intervals and gossip the\n"
               "verdict to clients (quarantine, no half-open probes), and\n"
               "the late joiner reaches serving from one snapshot plus a\n"
               "catch-up delta — never a full history replay.\n";
  return 0;
}
