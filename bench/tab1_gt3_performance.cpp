// Table 1: GT3 DI-GRUBER overall performance — request share, request
// count, QTime, normalized QTime, utilization, and scheduling accuracy
// for 1/3/10 decision points, split by requests handled / NOT handled by
// GRUBER / all requests (Section 4.4.2).
#include <iostream>
#include <vector>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  std::vector<experiments::ScenarioResult> runs;
  for (const int dps : {1, 3, 10}) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt3(), dps);
    cfg.name = "tab1-" + std::to_string(dps) + "dp";
    runs.push_back(experiments::run_scenario(cfg));
    bench::print_run_banner(std::cout, runs.back());
  }
  bench::render_performance_table(
      std::cout, "Table 1: GT3 DI-GRUBER Overall Performance", runs);

  std::cout << "\nNotes (paper Section 4.4.2): requests handled by GRUBER show\n"
               "better Accuracy, Utilization, and normalized QTime than the\n"
               "timeout-fallback population; the one-decision-point run has a\n"
               "deceptively small QTime because its low throughput admits\n"
               "fewer jobs into the grid.\n";
  return 0;
}
