// Table 2: GT4 DI-GRUBER overall performance for 1/3/10 decision points,
// split by handled / NOT handled / all requests (Section 4.5.2). Per the
// paper, the 3- and 10-decision-point GT4 deployments handle almost all
// requests, so the handled/all split differs mostly in the 1-DP row.
#include <iostream>
#include <vector>

#include "bench_util.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  std::vector<experiments::ScenarioResult> runs;
  for (const int dps : {1, 3, 10}) {
    experiments::ScenarioConfig cfg =
        bench::paper_config(args, net::ContainerProfile::gt4(), dps);
    cfg.name = "tab2-" + std::to_string(dps) + "dp";
    runs.push_back(experiments::run_scenario(cfg));
    bench::print_run_banner(std::cout, runs.back());
  }
  bench::render_performance_table(
      std::cout, "Table 2: GT4 DI-GRUBER Overall Performance", runs);
  return 0;
}
