// Table 3: GRUB-SIM — replay the brokering-query traces from the GT3 and
// GT4 scalability runs through the trace-driven simulator, which detects
// saturation against the DiPerF-fitted capacity model and provisions
// decision points on the fly, reporting how many each deployment actually
// needs (Section 5.2). Paper conclusion: ~4-6 decision points suffice for
// a grid ten times today's Grid3.
#include <iostream>

#include "bench_util.hpp"
#include "digruber/grubsim/grubsim.hpp"

using namespace digruber;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  Table table({"Implementation", "Initial Decision Points",
               "Additional Decision Points", "Total", "Overloads",
               "Replayed avg response (s)"});

  for (const bool gt4 : {false, true}) {
    const net::ContainerProfile profile =
        gt4 ? net::ContainerProfile::gt4() : net::ContainerProfile::gt3();
    for (const int dps : {1, 3, 10}) {
      experiments::ScenarioConfig cfg = bench::paper_config(args, profile, dps);
      cfg.name = std::string("tab3-") + profile.name;
      const experiments::ScenarioResult run = experiments::run_scenario(cfg);

      grubsim::GrubSimConfig sim_config;
      sim_config.mode = grubsim::ReplayMode::kClosedLoop;
      sim_config.think_s = cfg.think.to_seconds();
      sim_config.initial_dps = dps;
      sim_config.dp_capacity_qps = experiments::dp_capacity_qps(
          profile, run.sites, sim::Duration::millis(2.5));
      sim_config.response_threshold_s = 15.0;
      const grubsim::GrubSimResult result =
          grubsim::run_grubsim(run.trace, sim_config);

      table.add_row({profile.name, std::to_string(result.initial_dps),
                     std::to_string(result.added_dps),
                     std::to_string(result.total_dps()),
                     std::to_string(result.overload_events),
                     Table::num(result.avg_response_s, 2)});
    }
  }

  std::cout << "== Table 3: GRUB-SIM Required Decision Points ==\n";
  table.render(std::cout);
  std::cout << "Expected shape (paper): deployments starting with one decision\n"
               "point need several additions; those starting with three need\n"
               "few or none; ten is already overprovisioned. Totals land in\n"
               "the ~4-6 range for both implementations (GT4 slightly higher\n"
               "per unit of load because each decision point is slower).\n";
  return 0;
}
