// Dynamic provisioning: the Section 5 enhancement in action.
//
// Starts the paper's workload against a single GT3 decision point. As the
// DiPerF client ramp saturates it, the decision point's saturation
// detector signals the third-party infrastructure monitor, which
// provisions additional decision points and rebalances clients — watch
// the response time recover without anyone re-deploying by hand.
//
//   ./dynamic_provisioning
#include <iostream>

#include "digruber/common/table.hpp"
#include "digruber/diperf/report.hpp"
#include "digruber/experiments/scenario.hpp"

using namespace digruber;

int main() {
  experiments::ScenarioConfig cfg;
  cfg.name = "dynamic-provisioning";
  cfg.seed = 11;
  cfg.n_dps = 1;  // deliberately under-provisioned
  cfg.n_clients = 100;
  cfg.grid_scale = 5;
  cfg.duration = sim::Duration::minutes(45);
  cfg.think = sim::Duration::seconds(3);
  cfg.dynamic_provisioning = true;
  cfg.max_dynamic_dps = 6;
  cfg.saturation_response_s = 15.0;

  std::cout << "Starting with 1 decision point, " << cfg.n_clients
            << " clients ramping up...\n\n";
  const experiments::ScenarioResult r = experiments::run_scenario(cfg);

  diperf::render_figure(std::cout,
                        "Dynamic provisioning: response recovers as decision "
                        "points are added",
                        r.collector, cfg.duration.to_seconds(), 120.0);

  std::cout << "decision points at start: " << cfg.n_dps
            << ", at end: " << r.final_dps << "\n";
  Table table({"Decision point", "Queries served", "Mean sojourn (s)",
               "Container util", "Saturation signals"});
  for (std::size_t i = 0; i < r.dps.size(); ++i) {
    table.add_row({std::to_string(i), std::to_string(r.dps[i].queries),
                   Table::num(r.dps[i].mean_sojourn_s, 2),
                   Table::pct(r.dps[i].container_utilization),
                   std::to_string(r.dps[i].saturation_signals)});
  }
  table.render(std::cout);

  std::cout << "handled by GRUBER: " << Table::pct(r.handled.request_share)
            << " of " << r.all.requests << " queries; mean response "
            << Table::num(r.all.response_s, 1) << " s overall\n";
  return 0;
}
