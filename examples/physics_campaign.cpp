// Physics campaign: the workload the paper's introduction motivates — an
// LHC-style collaboration running a staged analysis over a shared grid.
//
// Demonstrates:
//   * a USLA document giving three VOs different fair-share bounds,
//   * Euryale running a DagMan workflow (prepare -> N parallel analyses
//     -> merge) with file staging and replica registration,
//   * fault tolerance: a site is taken down mid-campaign and the affected
//     jobs re-plan onto other sites,
//   * a per-VO usage report against the agreed shares at the end.
//
//   ./physics_campaign
#include <iomanip>
#include <iostream>

#include "digruber/digruber/client.hpp"
#include "digruber/digruber/decision_point.hpp"
#include "digruber/euryale/dagman.hpp"
#include "digruber/net/sim_transport.hpp"

using namespace digruber;
namespace broker = ::digruber::digruber;

int main() {
  sim::Simulation sim(/*seed=*/42);
  net::SimTransport transport(sim, net::WanModel(net::WanParams{}, 3));

  // An OSG-2005-sized grid (30 sites, ~3000 CPUs).
  Rng topo_rng = sim.rng().fork();
  grid::Grid grid(sim, grid::TopologySpec::osg2005());

  // Three physics VOs with distinct USLA bounds: CMS holds a hard cap,
  // ATLAS a target (may burst), CDF only a lower-limit guarantee.
  grid::VoCatalog catalog;
  const VoId cms = catalog.add_vo("cms");
  const VoId atlas = catalog.add_vo("atlas");
  const VoId cdf = catalog.add_vo("cdf");
  const GroupId higgs = catalog.add_group(cms, "cms.higgs");
  catalog.add_group(atlas, "atlas.top");
  catalog.add_group(cdf, "cdf.qcd");
  const UserId alice = catalog.add_user(higgs, "alice");

  const auto agreement = usla::parse_agreement(R"(
agreement lhc-campaign
context provider=osg consumer=lhc
term cms: grid -> vo:cms cpu 45+
term atlas: grid -> vo:atlas cpu 35
term cdf: grid -> vo:cdf cpu 10-
term higgs: vo:cms -> group:cms.higgs cpu 70+
goal qtime < 600
goal accuracy > 0.9
)");
  const auto tree = usla::AllocationTree::build({agreement.value()}, catalog);
  if (!tree.ok()) {
    std::cerr << "usla error: " << tree.error() << "\n";
    return 1;
  }
  std::cout << "installed agreement:\n" << usla::format_agreement(agreement.value());

  // Broker + submission host + Euryale planner.
  broker::DecisionPointOptions options;
  options.profile = net::ContainerProfile::gt4();
  options.eval_cost_per_site = sim::Duration::millis(1);
  broker::DecisionPoint dp(sim, transport, DpId(0), catalog, tree.value(), options);
  dp.bootstrap(grid.snapshot_all());

  std::vector<SiteId> all_sites;
  for (std::size_t s = 0; s < grid.site_count(); ++s) all_sites.push_back(SiteId(s));
  broker::DiGruberClient client(sim, transport, ClientId(0), dp.node(), all_sites,
                                  gruber::make_selector("top-k", topo_rng.fork()),
                                  topo_rng.fork());
  euryale::ReplicaRegistry registry;
  euryale::PlannerOptions planner_options;
  planner_options.transfer_bandwidth_bps = 100e6;  // campaign data moves on fast links
  euryale::EuryalePlanner planner(sim, grid, client, registry, planner_options);

  // The campaign DAG: prepare -> 8 parallel analyses -> merge.
  auto make_job = [&](std::uint64_t id, double minutes, int cpus,
                      std::uint64_t in_mb, std::uint64_t out_mb) {
    grid::Job job;
    job.id = JobId(id);
    job.vo = cms;
    job.group = higgs;
    job.user = alice;
    job.cpus = cpus;
    job.runtime = sim::Duration::minutes(minutes);
    job.input_bytes = in_mb * 1'000'000;
    job.output_bytes = out_mb * 1'000'000;
    return job;
  };

  euryale::DagMan dag(planner);
  dag.add_node("prepare", make_job(1, 20, 4, 500, 200));
  for (int i = 0; i < 8; ++i) {
    const std::string name = "analysis-" + std::to_string(i);
    dag.add_node(name, make_job(std::uint64_t(10 + i), 45, 2, 200, 50));
    dag.add_edge("prepare", name);
  }
  dag.add_node("merge", make_job(99, 15, 8, 400, 100));
  for (int i = 0; i < 8; ++i) dag.add_edge("analysis-" + std::to_string(i), "merge");

  // Fault injection: the largest site dies one hour in, for 30 minutes.
  sim.schedule_after(sim::Duration::hours(1), [&] {
    grid::Site& victim = const_cast<grid::Site&>(grid.best_site());
    std::cout << "\n*** t=" << sim.now() << ": site '" << victim.name()
              << "' goes down for 30 minutes ***\n\n";
    victim.take_down(sim::Duration::minutes(30));
  });

  // Competing background VOs keep the grid busy while the campaign runs.
  Rng bg_rng = sim.rng().fork();
  std::uint64_t bg_id = 1000;
  sim::PeriodicTimer background(sim, sim::Duration::seconds(20), [&] {
    grid::Job job;
    job.id = JobId(bg_id++);
    job.vo = bg_rng.bernoulli(0.6) ? atlas : cdf;
    job.group = GroupId(job.vo == atlas ? 1 : 2);
    job.user = alice;
    job.cpus = int(bg_rng.uniform_int(1, 4));
    job.runtime = sim::Duration::minutes(bg_rng.uniform(10, 60));
    planner.run(std::move(job), [](const euryale::PlannerOutcome&) {});
  });

  bool campaign_done = false;
  dag.run([&](int succeeded, int failed, int blocked) {
    campaign_done = true;
    std::cout << "campaign finished at t=" << sim.now() << ": " << succeeded
              << " succeeded, " << failed << " failed, " << blocked
              << " blocked\n";
  });

  sim.run_until(sim::Time::zero() + sim::Duration::hours(6));
  background.stop();
  dp.stop();
  sim.run();

  if (!campaign_done) {
    std::cout << "campaign still running at the 6 h horizon\n";
  }

  // Final report: per-VO consumption vs agreed shares.
  std::cout << "\n--- campaign report ---\n";
  std::cout << "euryale: " << planner.jobs_succeeded() << " jobs succeeded, "
            << planner.replans() << " replans, " << planner.jobs_abandoned()
            << " abandoned, " << planner.bytes_staged() / 1'000'000
            << " MB staged\n";
  std::cout << "replica registry: " << registry.file_count() << " files; hottest:\n";
  for (const auto& [file, popularity] : registry.hottest(3)) {
    std::cout << "  " << file << " (" << popularity << " accesses)\n";
  }
  std::cout << "decision point: " << dp.queries_served() << " queries, "
            << dp.selections_recorded() << " selections recorded\n";

  std::map<VoId, std::int32_t> running;
  for (const auto& site : grid.sites()) {
    for (const VoId vo : {cms, atlas, cdf}) {
      running[vo] += site->running_for_vo(vo);
    }
  }
  std::cout << "cpu-hours consumed: "
            << std::fixed << std::setprecision(1)
            << grid.cpu_seconds_consumed() / 3600.0 << "\n";
  return 0;
}
