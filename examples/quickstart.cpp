// Quickstart: the smallest complete DI-GRUBER deployment.
//
// Builds a five-site grid on the discrete-event substrate, stands up one
// decision point (a GRUBER engine behind a GT3-style Web-service
// container), binds a client to it, and brokers a handful of jobs — the
// full two-round-trip query path: fetch USLA-filtered site loads, run the
// client-side selector, report the selection back.
//
//   ./quickstart
#include <iostream>

#include "digruber/digruber/client.hpp"
#include "digruber/digruber/decision_point.hpp"
#include "digruber/net/sim_transport.hpp"

using namespace digruber;
namespace broker = ::digruber::digruber;

int main() {
  // 1. A simulation and a WAN to run it over.
  sim::Simulation sim(/*seed=*/2026);
  net::SimTransport transport(sim, net::WanModel(net::WanParams{}, 1));

  // 2. A small grid: five sites of varying size.
  grid::TopologySpec spec;
  spec.sites.push_back({"uchicago", {{64, 1.0}}});
  spec.sites.push_back({"anl", {{256, 1.2}}});
  spec.sites.push_back({"fnal", {{512, 1.0}}});
  spec.sites.push_back({"ucsd", {{128, 0.9}}});
  spec.sites.push_back({"bnl", {{96, 1.1}}});
  grid::Grid grid(sim, spec);

  // 3. VOs and USLAs: two collaborations with fair-share targets.
  grid::VoCatalog catalog;
  const VoId cms = catalog.add_vo("cms");
  const VoId atlas = catalog.add_vo("atlas");
  const GroupId higgs = catalog.add_group(cms, "cms.higgs");
  const GroupId top = catalog.add_group(atlas, "atlas.top");
  const UserId alice = catalog.add_user(higgs, "alice");
  catalog.add_user(top, "bob");

  const auto agreement = usla::parse_agreement(R"(
agreement quickstart-shares
context provider=grid consumer=physics
term cms: grid -> vo:cms cpu 60+
term atlas: grid -> vo:atlas cpu 40+
goal accuracy > 0.9
)");
  if (!agreement.ok()) {
    std::cerr << "usla parse error: " << agreement.error() << "\n";
    return 1;
  }
  const auto tree = usla::AllocationTree::build({agreement.value()}, catalog);
  if (!tree.ok()) {
    std::cerr << "usla build error: " << tree.error() << "\n";
    return 1;
  }

  // 4. One decision point, bootstrapped with the grid's current state.
  broker::DecisionPointOptions options;
  options.profile = net::ContainerProfile::gt3();
  broker::DecisionPoint dp(sim, transport, DpId(0), catalog, tree.value(), options);
  dp.bootstrap(grid.snapshot_all());

  // 5. A submission host bound to that decision point.
  broker::DiGruberClient client(
      sim, transport, ClientId(0), dp.node(),
      {SiteId(0), SiteId(1), SiteId(2), SiteId(3), SiteId(4)},
      gruber::make_selector("least-used", Rng(7)), Rng(8));

  // 6. Broker and run five jobs.
  for (int i = 0; i < 5; ++i) {
    grid::Job job;
    job.id = JobId(std::uint64_t(i));
    job.vo = i % 2 ? atlas : cms;
    job.group = i % 2 ? top : higgs;
    job.user = alice;
    job.cpus = 8;
    job.runtime = sim::Duration::minutes(30);

    client.schedule(std::move(job), [&](grid::Job job, broker::QueryOutcome out) {
      std::cout << "job " << job.id << " (vo " << catalog.vo_name(job.vo)
                << ") -> site '" << grid.site(out.site).name() << "' in "
                << out.response.to_seconds() << " s"
                << (out.handled_by_gruber ? "" : " [random fallback]") << "\n";
      grid.site(out.site).submit(std::move(job), [&](const grid::Job& done) {
        std::cout << "  job " << done.id << " finished at t=" << done.completed
                  << " (queued " << done.queue_time().to_seconds() << " s)\n";
      });
    });
  }

  // Run to a horizon: the decision point's periodic exchange timer keeps
  // the event queue non-empty, so bound the run and then drain.
  sim.run_until(sim::Time::zero() + sim::Duration::hours(2));
  dp.stop();
  sim.run();

  std::cout << "\ndecision point served " << dp.queries_served()
            << " queries, recorded " << dp.selections_recorded() << " selections\n"
            << "grid consumed " << grid.cpu_seconds_consumed() / 3600.0
            << " cpu-hours across " << grid.site_count() << " sites\n";
  return 0;
}
