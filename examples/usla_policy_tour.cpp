// USLA policy tour: the usage-SLA machinery on its own, no simulation.
//
// Walks the WS-Agreement-subset document model end to end — parse,
// validate, resolve into the recursive allocation tree, and query the
// evaluator — showing how the three Maui-style bounds (target, upper
// limit `+`, lower limit `-`) behave, how site-scoped rules override
// grid-wide ones, and how shares recurse VO -> group -> user.
//
//   ./usla_policy_tour
#include <iostream>

#include "digruber/common/table.hpp"
#include "digruber/grid/topology.hpp"
#include "digruber/usla/tree.hpp"

using namespace digruber;

int main() {
  const char* document = R"(
# A provider grants three collaborations CPU under different bounds, with
# one site-local override and a recursive share chain inside CMS.
agreement policy-tour
context provider=osg consumer=physics

term cms-cap:       grid -> vo:cms   cpu 40+   # hard upper limit
term atlas-target:  grid -> vo:atlas cpu 30    # target (bursts to 1.5x)
term cdf-floor:     grid -> vo:cdf   cpu 10-   # guaranteed minimum
term fnal-local:    site:fnal -> vo:cms cpu 80+  # FNAL gives CMS more

term higgs-share:   vo:cms -> group:cms.higgs cpu 50+
term alice-share:   group:cms.higgs -> user:cms.higgs cpu 40+

goal qtime < 600
goal accuracy > 0.9
)";

  // Parse and validate.
  const auto parsed = usla::parse_agreement(document);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.error() << "\n";
    return 1;
  }
  if (const auto valid = usla::validate(parsed.value()); !valid.ok()) {
    std::cerr << "validation error: " << valid.error() << "\n";
    return 1;
  }
  std::cout << "parsed agreement '" << parsed.value().name << "' with "
            << parsed.value().terms.size() << " terms and "
            << parsed.value().goals.size() << " goals\n\n";
  std::cout << "canonical form:\n" << usla::format_agreement(parsed.value()) << "\n";

  // Entities and the allocation tree.
  grid::VoCatalog catalog;
  const VoId cms = catalog.add_vo("cms");
  const VoId atlas = catalog.add_vo("atlas");
  const VoId cdf = catalog.add_vo("cdf");
  const GroupId higgs = catalog.add_group(cms, "cms.higgs");
  catalog.add_group(atlas, "atlas.top");
  catalog.add_group(cdf, "cdf.qcd");
  const UserId alice = catalog.add_user(higgs, "alice");

  const std::map<std::string, SiteId> sites{{"fnal", SiteId(0)},
                                            {"uchicago", SiteId(1)}};
  const auto tree = usla::AllocationTree::build({parsed.value()}, catalog, sites);
  if (!tree.ok()) {
    std::cerr << "tree error: " << tree.error() << "\n";
    return 1;
  }

  const usla::UslaEvaluator evaluator(tree.value(), catalog);

  // A 1000-CPU site, fully free, no usage yet.
  auto fresh = [](SiteId site) {
    grid::SiteSnapshot s;
    s.site = site;
    s.total_cpus = 1000;
    s.free_cpus = 1000;
    return s;
  };

  Table caps({"Consumer", "At uchicago (generic)", "At fnal (override)"});
  auto cap_row = [&](const std::string& label, VoId vo) {
    caps.add_row({label,
                  Table::num(evaluator.cap_fraction(vo, SiteId(1)) * 100, 0) + "% ->" +
                      " headroom " + std::to_string(evaluator.vo_headroom(fresh(SiteId(1)), vo)),
                  Table::num(evaluator.cap_fraction(vo, SiteId(0)) * 100, 0) + "% ->" +
                      " headroom " + std::to_string(evaluator.vo_headroom(fresh(SiteId(0)), vo))});
  };
  cap_row("cms   (40%+, fnal 80%+)", cms);
  cap_row("atlas (30% target, x1.5 burst)", atlas);
  cap_row("cdf   (10%- guarantee, uncapped)", cdf);
  std::cout << "effective caps on a free 1000-CPU site:\n";
  caps.render(std::cout);

  std::cout << "cdf guaranteed fraction: "
            << Table::pct(evaluator.guarantee_fraction(cdf)) << "\n\n";

  // The recursive chain: vo cap 40% -> group 50% of that -> user 40% of that.
  const auto site = fresh(SiteId(1));
  const double group_pct = tree.value().group_share(higgs)->percent;
  const double user_pct = tree.value().user_share(alice)->percent;
  std::cout << "recursive chain at uchicago (1000 CPUs):\n"
            << "  cms vo headroom:            "
            << evaluator.vo_headroom(site, cms) << " CPUs (40% cap)\n"
            << "  cms.higgs group share:      " << group_pct
            << "% of the VO cap -> 200 CPUs\n"
            << "  alice user share:           " << user_pct
            << "% of the group cap -> full-chain headroom "
            << evaluator.chain_headroom(site, cms, higgs, alice, 0, 0) << " CPUs\n";

  // Usage eats headroom.
  grid::SiteSnapshot busy = site;
  busy.free_cpus = 700;
  busy.running_per_vo[cms] = 300;
  std::cout << "\nafter cms runs 300 CPUs there:\n"
            << "  cms vo headroom:            " << evaluator.vo_headroom(busy, cms)
            << " CPUs (cap 400 - 300 running)\n";

  // Rejected documents.
  const auto oversubscribed = usla::parse_agreement(
      "agreement bad\n"
      "term a: grid -> vo:cms cpu 60\n"
      "term b: grid -> vo:atlas cpu 60\n");
  std::cout << "\noversubscribed targets rejected: "
            << (usla::validate(oversubscribed.value()).ok() ? "NO (bug!)" : "yes")
            << "\n";
  return 0;
}
