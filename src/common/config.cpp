#include "digruber/common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace digruber {
namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace

Config Config::parse(std::string_view text) {
  Config cfg;
  std::size_t pos = 0;
  int lineno = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;

    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("Config: missing '=' on line " + std::to_string(lineno));
    }
    std::string key = trim(std::string_view(stripped).substr(0, eq));
    std::string value = trim(std::string_view(stripped).substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("Config: empty key on line " + std::to_string(lineno));
    }
    cfg.entries_[std::move(key)] = std::move(value);
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const { return entries_.count(key) > 0; }

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, std::string fallback) const {
  const auto v = get(key);
  return v ? *v : std::move(fallback);
}

long Config::get_int(const std::string& key, long fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    return std::stol(*v);
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key '" + key + "' is not an integer: " + *v);
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key '" + key + "' is not a number: " + *v);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") return false;
  throw std::runtime_error("Config: key '" + key + "' is not a boolean: " + *v);
}

}  // namespace digruber
