#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace digruber {

/// Flat `key = value` configuration with `#` comments. Used by examples and
/// benches so scenario parameters can be tweaked without recompiling.
class Config {
 public:
  Config() = default;

  /// Parse from text. Later assignments win. Throws std::runtime_error on
  /// malformed lines.
  static Config parse(std::string_view text);
  static Config from_file(const std::string& path);

  /// Overlay `key=value` command-line style arguments.
  void set(std::string key, std::string value);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key, std::string fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace digruber
