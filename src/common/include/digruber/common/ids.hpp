#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace digruber {

/// Strongly typed integer identifier. `Tag` distinguishes id spaces at
/// compile time so a SiteId cannot be passed where a JobId is expected.
template <class Tag>
class Id {
 public:
  using value_type = std::uint64_t;

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

  static constexpr value_type kInvalid = ~value_type{0};

  /// Wire-format support (see net/wire/archive.hpp).
  template <class Archive>
  void serialize(Archive& ar) {
    ar & value_;
  }

 private:
  value_type value_ = kInvalid;
};

struct SiteTag {};
struct ClusterTag {};
struct VoTag {};
struct GroupTag {};
struct UserTag {};
struct JobTag {};
struct NodeTag {};     // network endpoint
struct DpTag {};       // decision point
struct ClientTag {};   // submission host / tester
struct RequestTag {};  // rpc correlation

using SiteId = Id<SiteTag>;
using ClusterId = Id<ClusterTag>;
using VoId = Id<VoTag>;
using GroupId = Id<GroupTag>;
using UserId = Id<UserTag>;
using JobId = Id<JobTag>;
using NodeId = Id<NodeTag>;
using DpId = Id<DpTag>;
using ClientId = Id<ClientTag>;
using RequestId = Id<RequestTag>;

}  // namespace digruber

namespace std {
template <class Tag>
struct hash<digruber::Id<Tag>> {
  size_t operator()(digruber::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
