#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace digruber::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are dropped. Not synchronized:
/// set it once at startup before spawning threads.
void set_level(Level level);
Level level();

/// Emit one line to stderr: `[level] component: message`. Thread-safe.
void write(Level level, std::string_view component, std::string_view message);

namespace detail {
template <class... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <class... Args>
void trace(std::string_view component, const Args&... args) {
  if (level() <= Level::kTrace) write(Level::kTrace, component, detail::concat(args...));
}
template <class... Args>
void debug(std::string_view component, const Args&... args) {
  if (level() <= Level::kDebug) write(Level::kDebug, component, detail::concat(args...));
}
template <class... Args>
void info(std::string_view component, const Args&... args) {
  if (level() <= Level::kInfo) write(Level::kInfo, component, detail::concat(args...));
}
template <class... Args>
void warn(std::string_view component, const Args&... args) {
  if (level() <= Level::kWarn) write(Level::kWarn, component, detail::concat(args...));
}
template <class... Args>
void error(std::string_view component, const Args&... args) {
  if (level() <= Level::kError) write(Level::kError, component, detail::concat(args...));
}

}  // namespace digruber::log
