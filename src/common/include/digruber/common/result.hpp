#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace digruber {

/// Minimal expected<T, E>-style result (we target C++20; std::expected is 23).
template <class T, class E = std::string>
class Result {
 public:
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}

  static Result failure(E error) { return Result(ErrTag{}, std::move(error)); }

  [[nodiscard]] bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(storage_));
  }
  [[nodiscard]] const E& error() const {
    assert(!ok());
    return std::get<1>(storage_);
  }

 private:
  struct ErrTag {};
  Result(ErrTag, E error) : storage_(std::in_place_index<1>, std::move(error)) {}
  std::variant<T, E> storage_;
};

/// Result for operations with no payload.
template <class E = std::string>
class Status {
 public:
  Status() = default;
  static Status failure(E error) { return Status(std::move(error)); }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const E& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  explicit Status(E error) : error_(std::move(error)) {}
  std::optional<E> error_;
};

}  // namespace digruber
