#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace digruber {

/// xoshiro256** — fast, high-quality, deterministic across platforms.
/// Satisfies UniformRandomBitGenerator, but all experiment code should use
/// the member distributions below so results never depend on libstdc++'s
/// distribution implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Derive an independent stream (for per-actor determinism regardless of
  /// scheduling order).
  [[nodiscard]] Rng fork();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n), n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// True with probability p.
  bool bernoulli(double p);
  /// Exponential with given mean (> 0).
  double exponential(double mean);
  /// Standard normal via Box–Muller (no cached spare: keeps streams forkable).
  double normal(double mean, double stddev);
  /// Lognormal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);
  /// Lognormal parameterized by its own mean and coefficient of variation.
  double lognormal_mean_cv(double mean, double cv);
  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);
  /// Zipf-distributed rank in [0, n) with exponent s >= 0.
  std::uint64_t zipf(std::uint64_t n, double s);

 private:
  std::uint64_t next_raw();
  std::uint64_t state_[4];
};

/// Weighted discrete sampling with O(1) draws (Walker alias method).
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);
  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace digruber
