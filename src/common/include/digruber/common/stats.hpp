#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace digruber {

/// Constant-memory running statistics (Welford's online algorithm).
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * double(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Keeps all samples; provides exact quantiles. Used for the per-figure
/// summary tables (min / median / average / max / stddev).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated quantile, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// The five-number summary the paper prints under every DiPerF figure.
struct Summary {
  double min = 0, median = 0, average = 0, max = 0, stddev = 0;
  std::size_t count = 0;
};

Summary summarize(const SampleSet& s);

/// Ordinary least squares y = a + b*x fit; used by the DiPerF performance
/// model (response time vs. offered load).
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace digruber
