#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace digruber {

/// ASCII table renderer used by the benchmark harnesses to print the
/// paper's tables; also emits CSV for post-processing.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  void render(std::ostream& os) const;
  void render_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace digruber
