#include "digruber/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace digruber::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_write_mutex;

const char* name_of(Level level) {
  switch (level) {
    case Level::kTrace: return "trace";
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, std::string_view component, std::string_view message) {
  const std::scoped_lock lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", name_of(lvl),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace digruber::log
