#include "digruber/common/rng.hpp"

#include <cassert>
#include <stdexcept>

namespace digruber {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_raw() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng::result_type Rng::operator()() { return next_raw(); }

Rng Rng::fork() { return Rng(next_raw()); }

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_raw() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Debiased modulo via rejection (Lemire-style threshold).
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_raw();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_raw() : uniform_index(span));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  assert(mean > 0 && cv >= 0);
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return lognormal(mu, std::sqrt(sigma2));
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0 && alpha > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  assert(n > 0);
  // Rejection-inversion would be overkill here; n is small in our use
  // (site and file popularity ranks), so invert the CDF directly.
  double total = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) total += 1.0 / std::pow(double(k), s);
  double target = uniform() * total;
  for (std::uint64_t k = 1; k <= n; ++k) {
    target -= 1.0 / std::pow(double(k), s);
    if (target <= 0) return k - 1;
  }
  return n - 1;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasSampler: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("AliasSampler: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("AliasSampler: zero total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * double(n) / total;

  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Rng& rng) const {
  const std::size_t column = rng.uniform_index(prob_.size());
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

}  // namespace digruber
