#include "digruber/common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace digruber {

void StreamingStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / double(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = double(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * double(count_) * double(other.count_) / n;
  mean_ += delta * double(other.count_) / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  return count_ ? m2_ / double(count_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / double(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double s : samples_) ss += (s - m) * (s - m);
  return std::sqrt(ss / double(samples_.size()));
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * double(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - double(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Summary summarize(const SampleSet& s) {
  Summary out;
  out.min = s.min();
  out.median = s.median();
  out.average = s.mean();
  out.max = s.max();
  out.stddev = s.stddev();
  out.count = s.count();
  return out;
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / double(n), my = sy / double(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace digruber
