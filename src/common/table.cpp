#include "digruber/common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace digruber {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::render(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto rule = [&] {
    os << '+';
    for (std::size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::render_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      const bool quote = cells[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace digruber
