#include "digruber/digruber/client.hpp"

#include <cassert>
#include <utility>

namespace digruber::digruber {

DiGruberClient::DiGruberClient(sim::Simulation& sim, net::Transport& transport,
                               ClientId id, NodeId decision_point,
                               std::vector<SiteId> all_sites,
                               std::unique_ptr<gruber::SiteSelector> selector,
                               Rng rng, ClientOptions options)
    : sim_(sim),
      rpc_(sim, transport),
      id_(id),
      decision_point_(decision_point),
      all_sites_(std::move(all_sites)),
      selector_(std::move(selector)),
      rng_(rng),
      options_(options) {
  assert(!all_sites_.empty());
}

void DiGruberClient::finish_with_fallback(grid::Job job, Done done, sim::Time t0,
                                          bool starved) {
  ++fallbacks_;
  if (starved) ++starvations_;
  QueryOutcome outcome;
  outcome.site = all_sites_[rng_.uniform_index(all_sites_.size())];
  outcome.handled_by_gruber = false;
  outcome.starved = starved;
  outcome.response = sim_.now() - t0;
  done(std::move(job), outcome);
}

void DiGruberClient::schedule(grid::Job job, Done done) {
  ++queries_;
  const sim::Time t0 = sim_.now();

  GetSiteLoadsRequest request;
  request.job = job.id;
  request.vo = job.vo;
  request.group = job.group;
  request.user = job.user;
  request.cpus = job.cpus;

  rpc_.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
      decision_point_, kGetSiteLoads, request, options_.timeout,
      [this, job = std::move(job), done = std::move(done), t0](
          Result<GetSiteLoadsReply> result) mutable {
        if (!result.ok()) {
          finish_with_fallback(std::move(job), std::move(done), t0, false);
          return;
        }
        const GetSiteLoadsReply& reply = result.value();
        const std::optional<SiteId> site = selector_->select(reply.candidates, job);
        if (!site) {
          finish_with_fallback(std::move(job), std::move(done), t0, true);
          return;
        }
        std::int32_t believed_free = -1;
        for (const gruber::SiteLoad& load : reply.candidates) {
          if (load.site == *site) {
            believed_free = load.raw_free;
            break;
          }
        }

        // Second round trip: inform the decision point of the selection so
        // it can steer subsequent queries. The query is complete when the
        // acknowledgement arrives (or its share of the deadline expires).
        ReportSelectionRequest report;
        report.job = job.id;
        report.site = *site;
        report.vo = job.vo;
        report.group = job.group;
        report.user = job.user;
        report.cpus = job.cpus;
        report.est_runtime = job.runtime;

        const sim::Duration elapsed = sim_.now() - t0;
        sim::Duration remaining = options_.timeout - elapsed;
        if (remaining < sim::Duration::seconds(1)) remaining = sim::Duration::seconds(1);

        rpc_.call<ReportSelectionRequest, Ack>(
            decision_point_, kReportSelection, report, remaining,
            [this, job = std::move(job), done = std::move(done), t0, site = *site,
             believed_free](Result<Ack> /*ack*/) mutable {
              // Whether or not the ack made it back, the selection stands:
              // it was computed from decision-point state.
              ++handled_;
              QueryOutcome outcome;
              outcome.site = site;
              outcome.handled_by_gruber = true;
              outcome.response = sim_.now() - t0;
              outcome.believed_free = believed_free;
              done(std::move(job), outcome);
            });
      });
}

}  // namespace digruber::digruber
