#include "digruber/digruber/client.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace digruber::digruber {

DiGruberClient::DiGruberClient(sim::Simulation& sim, net::Transport& transport,
                               ClientId id, NodeId decision_point,
                               std::vector<SiteId> all_sites,
                               std::unique_ptr<gruber::SiteSelector> selector,
                               Rng rng, ClientOptions options)
    : DiGruberClient(sim, transport, id, std::vector<NodeId>{decision_point},
                     std::move(all_sites), std::move(selector), rng, options) {}

DiGruberClient::DiGruberClient(sim::Simulation& sim, net::Transport& transport,
                               ClientId id, std::vector<NodeId> decision_points,
                               std::vector<SiteId> all_sites,
                               std::unique_ptr<gruber::SiteSelector> selector,
                               Rng rng, ClientOptions options)
    : sim_(sim),
      rpc_(sim, transport),
      id_(id),
      dps_(std::move(decision_points)),
      health_(dps_.size()),
      all_sites_(std::move(all_sites)),
      selector_(std::move(selector)),
      rng_(rng),
      options_(options) {
  assert(!dps_.empty());
  assert(!all_sites_.empty());
  install_wire_categorizer();
  if (options_.frame_checksums) rpc_.set_frame_checksums(true);
  dp_score_.assign(dps_.size(), 0.0);
  dp_price_.assign(dps_.size(), 0.0);
  dp_wait_.assign(dps_.size(), 0.0);
  retry_tokens_ = options_.retry_budget_capacity;
}

void DiGruberClient::rebind(NodeId decision_point) {
  dps_.front() = decision_point;
  health_.front() = DpHealth{};
  dp_score_.front() = 0.0;
  dp_price_.front() = 0.0;
  dp_wait_.front() = 0.0;
}

void DiGruberClient::apply_load_hints(const std::vector<DpLoadHint>& hints,
                                      const std::vector<double>& prices) {
  if (!options_.overload_aware && !options_.market_placement) return;
  for (std::size_t k = 0; k < hints.size(); ++k) {
    const DpLoadHint& hint = hints[k];
    for (std::size_t i = 0; i < dps_.size(); ++i) {
      if (dps_[i].value() == hint.node) {
        if (options_.overload_aware) {
          dp_score_[i] = hint.est_wait_s + 0.01 * double(hint.queue_depth);
        }
        if (options_.market_placement) {
          dp_wait_[i] = hint.est_wait_s;
          // Quotes align index-wise with the hints; a missing or zero
          // entry means "no quote", which keeps the point p2c-only.
          if (k < prices.size()) dp_price_[i] = prices[k];
        }
        break;
      }
    }
  }
}

void DiGruberClient::quarantine(std::size_t idx) {
  DpHealth& h = health_[idx];
  h = DpHealth{};
  h.quarantined = true;
  dp_score_[idx] = 0.0;
  dp_price_[idx] = 0.0;
  dp_wait_[idx] = 0.0;
  ++dps_quarantined_;
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kClient, id_.value(), "membership.quarantine",
               t->ambient(), std::int64_t(idx),
               std::int64_t(dps_[idx].value()));
  }
}

void DiGruberClient::apply_membership(const MembershipUpdate& update) {
  if (!options_.membership_aware || update.epoch <= epoch_) return;
  epoch_ = update.epoch;
  ++membership_updates_;
  for (const MemberInfo& member : update.members) {
    if (member.node == 0) continue;
    std::size_t idx = dps_.size();
    for (std::size_t i = 0; i < dps_.size(); ++i) {
      if (dps_[i].value() == member.node) {
        idx = i;
        break;
      }
    }
    const bool known = idx < dps_.size();
    switch (member.state) {
      case MemberState::kAlive:
        if (!known) {
          // A point that joined mid-run: append as a live routing target
          // with a fresh breaker. p2c and the failover scans pick it up
          // on the next attempt.
          dps_.push_back(NodeId(member.node));
          health_.push_back(DpHealth{});
          dp_score_.push_back(0.0);
          dp_price_.push_back(0.0);
          dp_wait_.push_back(0.0);
          ++dps_added_;
          if (auto* t = trace::current()) {
            t->instant(trace::Category::kClient, id_.value(),
                       "membership.dp_added", t->ambient(),
                       std::int64_t(member.node),
                       std::int64_t(update.epoch));
          }
        } else if (health_[idx].quarantined) {
          // Resurrected (restarted under a newer incarnation): lift the
          // quarantine with a clean bill of health.
          health_[idx] = DpHealth{};
          dp_score_[idx] = 0.0;
          dp_price_[idx] = 0.0;
          dp_wait_[idx] = 0.0;
        }
        break;
      case MemberState::kSuspect:
        // Suspicion is not eviction; the breaker handles flakiness.
        break;
      case MemberState::kDead:
      case MemberState::kLeft:
        if (known && !health_[idx].quarantined) quarantine(idx);
        break;
    }
  }
}

void DiGruberClient::finish_with_fallback(grid::Job job, Done done, sim::Time t0,
                                          bool starved, trace::SpanContext qctx) {
  ++fallbacks_;
  if (starved) ++starvations_;
  QueryOutcome outcome;
  outcome.site = all_sites_[rng_.uniform_index(all_sites_.size())];
  outcome.handled_by_gruber = false;
  outcome.starved = starved;
  outcome.response = sim_.now() - t0;
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kClient, id_.value(), "query.fallback", qctx,
               std::int64_t(outcome.site.value()), starved ? 1 : 0);
    t->end(trace::Category::kClient, id_.value(), "query", qctx, /*handled=*/0,
           std::int64_t(outcome.site.value()));
  }
  done(std::move(job), outcome);
}

int DiGruberClient::pick_dp(const grid::Job& job) {
  if (options_.market_placement && (job.budget > 0 || job.deadline_s > 0)) {
    // Market placement: minimize quoted cost (price * cpus * runtime)
    // over the quoted, deadline-feasible, closed-breaker set. Ties break
    // toward the lower index, so the choice is deterministic (no rng
    // draws — economic jobs consume no p2c randomness).
    int best = -1;
    double best_cost = 0;
    const double runtime_s = job.runtime.to_seconds();
    for (std::size_t i = 0; i < dps_.size(); ++i) {
      if (health_[i].open || health_[i].quarantined) continue;
      if (dp_price_[i] <= 0) continue;  // no quote heard yet
      if (job.deadline_s > 0 && dp_wait_[i] + runtime_s > job.deadline_s) {
        continue;  // cannot meet the deadline through this point
      }
      const double cost = dp_price_[i] * double(job.cpus) * runtime_s;
      if (best < 0 || cost < best_cost) {
        best = int(i);
        best_cost = cost;
      }
    }
    if (best >= 0) {
      if (job.budget > 0 && best_cost > job.budget) {
        // Too expensive everywhere: decline to buy. The job still runs —
        // the load-based path below places it — but the rejection is
        // visible to the economy counters.
        ++budget_rejections_;
      } else {
        ++priced_dispatches_;
        return best;
      }
    } else {
      ++market_fallbacks_;  // no usable offer: fall back to p2c
    }
  }
  if (options_.overload_aware) {
    // Power-of-two-choices over the healthy set: sample two distinct
    // candidates and take the one with the lower advertised load. Near-
    // optimal load spreading with O(1) state, and immune to herding —
    // unlike "everyone picks the least loaded", which stampedes the
    // momentarily-idlest decision point.
    std::vector<std::size_t> closed;
    closed.reserve(dps_.size());
    for (std::size_t i = 0; i < dps_.size(); ++i) {
      if (!health_[i].open && !health_[i].quarantined) closed.push_back(i);
    }
    if (closed.size() >= 2) {
      const std::size_t a = closed[rng_.uniform_index(closed.size())];
      std::size_t b = a;
      while (b == a) b = closed[rng_.uniform_index(closed.size())];
      ++p2c_decisions_;
      return int(dp_score_[a] <= dp_score_[b] ? a : b);
    }
    if (closed.size() == 1) return int(closed.front());
    // All breakers open: fall through to the half-open probe scan.
  } else {
    for (std::size_t i = 0; i < dps_.size(); ++i) {
      if (!health_[i].open && !health_[i].quarantined) return int(i);
    }
  }
  for (std::size_t i = 0; i < dps_.size(); ++i) {
    DpHealth& h = health_[i];
    // Quarantined points are exempt from half-open probing: membership
    // declared them dead/left, so probes would re-discover a permanent
    // failure one timeout at a time, forever.
    if (h.quarantined) continue;
    if (!h.half_open && sim_.now() >= h.open_until) {
      h.half_open = true;  // one probe at a time per decision point
      return int(i);
    }
  }
  return -1;
}

void DiGruberClient::on_dp_failure(std::size_t idx) {
  DpHealth& h = health_[idx];
  ++h.consecutive_failures;
  if (h.half_open) {
    // Failed probe: back to open for another cooldown.
    h.half_open = false;
    h.open_until = sim_.now() + options_.breaker_cooldown;
    ++breaker_trips_;
    if (auto* t = trace::current()) {
      t->instant(trace::Category::kClient, id_.value(), "breaker.probe_failed",
                 t->ambient(), std::int64_t(idx));
    }
    return;
  }
  if (!h.open && h.consecutive_failures >= options_.breaker_threshold) {
    h.open = true;
    h.open_until = sim_.now() + options_.breaker_cooldown;
    ++breaker_trips_;
    if (auto* t = trace::current()) {
      t->instant(trace::Category::kClient, id_.value(), "breaker.open",
                 t->ambient(), std::int64_t(idx));
    }
  }
}

void DiGruberClient::on_dp_success(std::size_t idx) { health_[idx] = DpHealth{}; }

void DiGruberClient::complete_with_reply(grid::Job job, Done done, sim::Time t0,
                                         NodeId dp, const GetSiteLoadsReply& reply,
                                         trace::SpanContext qctx) {
  if (reply.has_membership) apply_membership(reply.membership);
  apply_load_hints(reply.dp_loads, reply.dp_prices);
  if (reply.has_degraded && reply.degraded.level >= 1) {
    // Level-1 degraded reply: the answer is usable (capacity already
    // discounted server-side) but the point's view is stale — nudge p2c
    // toward fresher peers for the next queries.
    ++degraded_hints_seen_;
    if (options_.overload_aware) {
      for (std::size_t i = 0; i < dps_.size(); ++i) {
        if (dps_[i] == dp) {
          dp_score_[i] += double(reply.degraded.level);
          break;
        }
      }
    }
  }
  const std::optional<SiteId> site = selector_->select(reply.candidates, job);
  if (!site) {
    finish_with_fallback(std::move(job), std::move(done), t0, true, qctx);
    return;
  }
  std::int32_t believed_free = -1;
  for (const gruber::SiteLoad& load : reply.candidates) {
    if (load.site == *site) {
      believed_free = load.raw_free;
      break;
    }
  }

  // Second round trip: inform the decision point of the selection so
  // it can steer subsequent queries. The query is complete when the
  // acknowledgement arrives (or its share of the deadline expires).
  ReportSelectionRequest report;
  report.job = job.id;
  report.site = *site;
  report.vo = job.vo;
  report.group = job.group;
  report.user = job.user;
  report.cpus = job.cpus;
  report.est_runtime = job.runtime;
  if (options_.market_placement && (job.budget > 0 || job.deadline_s > 0)) {
    report.has_bid = true;
    report.budget = job.budget;
    report.deadline_s = job.deadline_s;
  }
  if (options_.request_ids) {
    // One id per job, assigned here — the first place the report exists —
    // and stable across every retry of it, which is what lets the decision
    // point collapse retries to one dispatch.
    report.has_request_id = true;
    report.request_client = id_.value();
    report.request_seq = next_request_seq_++;
  }

  // The selection-report round trip gets its own child span; the guard
  // makes it the ambient context so the rpc layer propagates it.
  trace::SpanContext rctx;
  if (auto* t = trace::current()) {
    rctx = t->begin(trace::Category::kClient, id_.value(), "query.report", qctx,
                    std::int64_t(site->value()), believed_free);
  }
  send_report(std::move(report), std::move(job), std::move(done), t0, dp, *site,
              believed_free, qctx, rctx, 0);
}

void DiGruberClient::send_report(ReportSelectionRequest report, grid::Job job,
                                 Done done, sim::Time t0, NodeId dp, SiteId site,
                                 std::int32_t believed_free,
                                 trace::SpanContext qctx, trace::SpanContext rctx,
                                 std::uint32_t attempt_n) {
  const sim::Duration elapsed = sim_.now() - t0;
  sim::Duration remaining = options_.timeout - elapsed;
  if (remaining < sim::Duration::seconds(1)) remaining = sim::Duration::seconds(1);

  trace::ContextGuard guard(rctx);
  net::RpcClient::CallOptions copts;
  if (options_.overload_aware) copts.deadline = t0 + options_.timeout;
  rpc_.call<ReportSelectionRequest, Ack>(
      dp, kReportSelection, report, remaining, copts,
      [this, report, job = std::move(job), done = std::move(done), t0, site,
       believed_free, dp, qctx, rctx, attempt_n](Result<Ack> ack) mutable {
        if (!ack.ok() && options_.request_ids &&
            attempt_n < options_.report_max_retries &&
            sim_.now() + options_.report_retry_backoff < t0 + options_.timeout) {
          // Re-send to the SAME decision point after a fixed (rng-free)
          // backoff: the point may have crashed with the dispatch already
          // on disk, and only it can answer from its dedup window. A
          // re-broker to another point is exactly the double dispatch the
          // request id exists to prevent.
          ++report_retries_;
          if (auto* t = trace::current()) {
            t->instant(trace::Category::kClient, id_.value(), "report.retry",
                       rctx, std::int64_t(attempt_n + 1),
                       std::int64_t(report.request_seq));
          }
          sim_.schedule_after(
              options_.report_retry_backoff,
              [this, report = std::move(report), job = std::move(job),
               done = std::move(done), t0, dp, site, believed_free, qctx, rctx,
               attempt_n]() mutable {
                send_report(std::move(report), std::move(job), std::move(done),
                            t0, dp, site, believed_free, qctx, rctx,
                            attempt_n + 1);
              });
          return;
        }
        // Whether or not the ack made it back, the selection stands:
        // it was computed from decision-point state.
        ++handled_;
        QueryOutcome outcome;
        outcome.site = site;
        outcome.handled_by_gruber = true;
        outcome.response = sim_.now() - t0;
        outcome.believed_free = believed_free;
        outcome.served_by = dp;
        if (ack.ok() && ack.value().has_original) {
          // The retry hit the dedup window: the point had already committed
          // this request, and the decision that counts is the original one.
          ++dedup_replies_;
          outcome.site = ack.value().original_site;
        }
        if (auto* t = trace::current()) {
          t->end(trace::Category::kClient, id_.value(), "query.report", rctx,
                 ack.ok() ? 1 : 0);
          t->end(trace::Category::kClient, id_.value(), "query", qctx,
                 /*handled=*/1, std::int64_t(site.value()));
        }
        done(std::move(job), outcome);
      });
}

void DiGruberClient::schedule(grid::Job job, Done done) {
  ++queries_;
  const sim::Time t0 = sim_.now();

  // Root span of this query's trace tree: every attempt, handler, and
  // packet hop it causes correlates under one trace id.
  trace::SpanContext qctx;
  if (auto* t = trace::current()) {
    qctx = t->begin(trace::Category::kClient, id_.value(), "query", {},
                    std::int64_t(job.id.value()), std::int64_t(job.vo.value()));
  }

  if (options_.overload_aware) {
    // Refill the retry bucket per scheduled query: sustained retry rate is
    // bounded at `refill` retries per query, bursts at `capacity`.
    retry_tokens_ = std::min(options_.retry_budget_capacity,
                             retry_tokens_ + options_.retry_budget_refill);
  }

  if (failover_active()) {
    attempt(std::move(job), std::move(done), t0, 0, options_.backoff_base_s, qctx);
    return;
  }

  // Legacy single-shot path: one attempt against the primary with the
  // full deadline, random fallback on any failure.
  GetSiteLoadsRequest request;
  request.job = job.id;
  request.vo = job.vo;
  request.group = job.group;
  request.user = job.user;
  request.cpus = job.cpus;
  if (options_.membership_aware) {
    request.has_epoch = true;
    request.membership_epoch = epoch_;
  }
  if (options_.market_placement && (job.budget > 0 || job.deadline_s > 0)) {
    // The bid rides second, forcing the epoch trailer (epoch 0 is a
    // no-op on a decision point without a newer membership view).
    request.has_epoch = true;
    request.has_bid = true;
    request.budget = job.budget;
    request.deadline_s = job.deadline_s;
  }

  trace::SpanContext actx;
  if (auto* t = trace::current()) {
    actx = t->begin(trace::Category::kClient, id_.value(), "query.attempt", qctx,
                    0, std::int64_t(dps_.front().value()));
  }
  trace::ContextGuard guard(actx);
  rpc_.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
      dps_.front(), kGetSiteLoads, request, options_.timeout,
      [this, job = std::move(job), done = std::move(done), t0, qctx,
       actx](Result<GetSiteLoadsReply> result) mutable {
        if (auto* t = trace::current()) {
          t->end(trace::Category::kClient, id_.value(), "query.attempt", actx,
                 result.ok() ? 1 : 0);
        }
        if (!result.ok()) {
          finish_with_fallback(std::move(job), std::move(done), t0, false, qctx);
          return;
        }
        // dps_.front() re-read here: a mid-query rebind directs the
        // report to the new primary, as the pre-failover client did.
        complete_with_reply(std::move(job), std::move(done), t0, dps_.front(),
                            result.value(), qctx);
      });
}

void DiGruberClient::attempt(grid::Job job, Done done, sim::Time t0,
                             std::uint32_t attempt_n, double prev_delay_s,
                             trace::SpanContext qctx) {
  const sim::Time deadline = t0 + options_.timeout;
  const int idx = pick_dp(job);
  if (idx < 0) {
    // Every decision point's breaker is open and cooling down (or probing).
    ++all_down_fallbacks_;
    if (auto* t = trace::current()) {
      t->instant(trace::Category::kClient, id_.value(), "query.all_dps_down",
                 qctx, std::int64_t(attempt_n));
    }
    finish_with_fallback(std::move(job), std::move(done), t0, false, qctx);
    return;
  }
  const sim::Duration remaining = deadline - sim_.now();
  if (remaining < sim::Duration::seconds(1)) {
    finish_with_fallback(std::move(job), std::move(done), t0, false, qctx);
    return;
  }
  sim::Duration per_attempt = remaining;
  if (options_.attempt_timeout > sim::Duration::zero() &&
      options_.attempt_timeout < per_attempt) {
    per_attempt = options_.attempt_timeout;
  }

  GetSiteLoadsRequest request;
  request.job = job.id;
  request.vo = job.vo;
  request.group = job.group;
  request.user = job.user;
  request.cpus = job.cpus;
  if (options_.membership_aware) {
    request.has_epoch = true;
    request.membership_epoch = epoch_;
  }
  if (options_.market_placement && (job.budget > 0 || job.deadline_s > 0)) {
    // The bid rides second, forcing the epoch trailer (epoch 0 is a
    // no-op on a decision point without a newer membership view).
    request.has_epoch = true;
    request.has_bid = true;
    request.budget = job.budget;
    request.deadline_s = job.deadline_s;
  }

  const NodeId dp = dps_[std::size_t(idx)];
  trace::SpanContext actx;
  if (auto* t = trace::current()) {
    actx = t->begin(trace::Category::kClient, id_.value(), "query.attempt", qctx,
                    std::int64_t(attempt_n), std::int64_t(dp.value()));
  }
  trace::ContextGuard guard(actx);
  net::RpcClient::CallOptions copts;
  // The wire deadline is the ATTEMPT deadline, not the full query budget: a
  // reply that lands after this attempt's timeout is discarded client-side,
  // so serving past it is wasted worker time even with budget remaining.
  if (options_.overload_aware) copts.deadline = sim_.now() + per_attempt;
  rpc_.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
      dp, kGetSiteLoads, request, per_attempt, copts,
      [this, job = std::move(job), done = std::move(done), t0, attempt_n,
       prev_delay_s, idx, dp, qctx,
       actx](Result<GetSiteLoadsReply> result) mutable {
        if (auto* t = trace::current()) {
          t->end(trace::Category::kClient, id_.value(), "query.attempt", actx,
                 result.ok() ? 1 : 0);
        }
        if (result.ok()) {
          on_dp_success(std::size_t(idx));
          complete_with_reply(std::move(job), std::move(done), t0, dp,
                              result.value(), qctx);
          return;
        }

        // A typed overload NACK means the decision point is alive but
        // saturated: keep its breaker closed (it answered), but penalize
        // its load score so power-of-two-choices steers elsewhere until a
        // fresh hint arrives. A draining NACK means it is leaving or
        // still joining: with membership-aware routing, quarantine it
        // outright (a membership update lifts the quarantine if it ever
        // comes back) and redirect instead of penalizing.
        sim::Duration retry_after = sim::Duration::zero();
        std::uint8_t nack_reason = net::kNackQueueFull;
        const bool overloaded =
            net::parse_overload_error(result.error(), retry_after, nack_reason);
        if (overloaded) {
          ++overload_nacks_;
          on_dp_success(std::size_t(idx));
          if (nack_reason == net::kNackDegraded) {
            // Degraded is a routing hint, not a death verdict: the point
            // is alive but partitioned from a quorum of its peers, and it
            // recovers the moment the partition heals. Penalize its score
            // so p2c steers elsewhere meanwhile, but NEVER quarantine —
            // quarantine is reserved for membership-declared dead/left
            // points, and a quarantined entry would stay unroutable until
            // a membership epoch bump that a mere heal does not produce.
            ++degraded_redirects_;
            dp_score_[std::size_t(idx)] += retry_after.to_seconds() + 1.0;
            if (auto* t = trace::current()) {
              t->instant(trace::Category::kClient, id_.value(),
                         "query.degraded_redirect", qctx,
                         std::int64_t(attempt_n), std::int64_t(dp.value()));
            }
          } else if (nack_reason == net::kNackDraining &&
                     options_.membership_aware) {
            ++drain_redirects_;
            quarantine(std::size_t(idx));
          } else {
            dp_score_[std::size_t(idx)] += retry_after.to_seconds() + 1.0;
          }
        } else {
          on_dp_failure(std::size_t(idx));
        }

        // Adaptive retry: each retry spends a token; an empty bucket means
        // this client is already amplifying load and must degrade to the
        // random fallback instead of hammering the saturated mesh.
        if (options_.overload_aware) {
          if (retry_tokens_ < 1.0) {
            ++retries_budget_denied_;
            if (auto* t = trace::current()) {
              t->instant(trace::Category::kClient, id_.value(),
                         "retry.budget_denied", qctx, std::int64_t(attempt_n));
            }
            finish_with_fallback(std::move(job), std::move(done), t0, false,
                                 qctx);
            return;
          }
          retry_tokens_ -= 1.0;
        }

        // Decorrelated jitter: spread the next attempt uniformly over
        // [base, 3 * previous delay), capped. One draw per retry.
        const double hi =
            std::max(options_.backoff_base_s * 1.001, 3.0 * prev_delay_s);
        double delay_s = std::min(options_.backoff_max_s,
                                  rng_.uniform(options_.backoff_base_s, hi));
        // Honor the server's own drain estimate: retrying sooner than
        // retry_after is guaranteed wasted work.
        if (overloaded && retry_after.to_seconds() > delay_s) {
          delay_s = retry_after.to_seconds();
          ++retry_after_honored_;
          if (auto* t = trace::current()) {
            t->instant(trace::Category::kClient, id_.value(),
                       "overload.retry_after", qctx, std::int64_t(attempt_n),
                       retry_after.us());
          }
        }

        const sim::Time deadline = t0 + options_.timeout;
        const sim::Time next = sim_.now() + sim::Duration::seconds(delay_s);
        if (next + sim::Duration::seconds(1) > deadline) {
          finish_with_fallback(std::move(job), std::move(done), t0, false, qctx);
          return;
        }
        ++failovers_;
        if (auto* t = trace::current()) {
          t->instant(trace::Category::kClient, id_.value(), "query.failover",
                     qctx, std::int64_t(attempt_n),
                     (next - sim_.now()).us());
        }
        sim_.schedule_at(next, [this, job = std::move(job), done = std::move(done),
                                t0, attempt_n, delay_s, qctx]() mutable {
          attempt(std::move(job), std::move(done), t0, attempt_n + 1, delay_s,
                  qctx);
        });
      });
}

}  // namespace digruber::digruber
