#include "digruber/digruber/decision_point.hpp"

#include <algorithm>
#include <utility>

#include "digruber/common/log.hpp"
#include "digruber/durable/wal.hpp"
#include "digruber/overlay/trailer_stack.hpp"
#include "digruber/trace/trace.hpp"

namespace digruber::digruber {

namespace {

/// Trace-instant names per membership transition target (TraceEvent keeps
/// a `const char*`, so the names must be literals).
const char* transition_instant_name(MemberState state) {
  switch (state) {
    case MemberState::kAlive:
      return "membership.alive";
    case MemberState::kSuspect:
      return "membership.suspect";
    case MemberState::kDead:
      return "membership.dead";
    case MemberState::kLeft:
      return "membership.left";
  }
  return "membership.?";
}

}  // namespace

DecisionPoint::DecisionPoint(sim::Simulation& sim, net::Transport& transport,
                             DpId id, const grid::VoCatalog& catalog,
                             const usla::AllocationTree& tree,
                             DecisionPointOptions options)
    : sim_(sim),
      id_(id),
      options_(std::move(options)),
      engine_(catalog, tree),
      server_(sim, transport, options_.profile),
      peer_client_(sim, transport) {
  install_wire_categorizer();
  strategy_ = overlay::make_strategy(options_.overlay, id_);
  if (options_.frame_checksums) {
    server_.set_frame_checksums(true);
    peer_client_.set_frame_checksums(true);
  }
  if (options_.economy.enabled &&
      options_.economy.allocator == economy::Allocator::kKarma &&
      options_.economy.capacity_cpus > 0) {
    bank_ = std::make_unique<economy::CreditBank>(
        options_.economy, economy::shares_from_tree(tree, catalog.vo_count()));
  }
  if (options_.durability.enabled) {
    disk_ = std::make_unique<durable::SimDisk>(options_.durability.disk,
                                               options_.durability.disk_seed);
  }
  server_.register_method(kGetSiteLoads,
                          [this](std::span<const std::uint8_t> body, NodeId from) {
                            return handle_get_site_loads(body, from);
                          });
  server_.register_method(kReportSelection,
                          [this](std::span<const std::uint8_t> body, NodeId from) {
                            return handle_report_selection(body, from);
                          });
  // Exchange and catch-up are control-plane traffic: under overload the
  // container must keep the mesh converging, so they are never shed behind
  // the query backlog.
  server_.register_method(
      kExchange,
      [this](std::span<const std::uint8_t> body, NodeId from) {
        return handle_exchange(body, from);
      },
      net::Priority::kControl);
  server_.register_method(
      kCatchUp,
      [this](std::span<const std::uint8_t> body, NodeId from) {
        return handle_catch_up(body, from);
      },
      net::Priority::kControl);
  if (options_.partition.enabled ||
      options_.overlay.kind != overlay::Kind::kMesh) {
    // Delta anti-entropy is control-plane traffic like catch-up: a healing
    // mesh must reconcile even while the query backlog is deep. Sparse
    // overlays need it even without partition tolerance: a record flushed
    // while rosters transiently diverge can dead-end mid-path, and unlike
    // the full mesh no later round re-offers it — the piggybacked digest
    // is the only way the hole is ever discovered.
    server_.register_method(
        kDeltaPull,
        [this](std::span<const std::uint8_t> body, NodeId from) {
          return handle_delta_pull(body, from);
        },
        net::Priority::kControl);
  }

  if (options_.membership.enabled) {
    membership_ = std::make_unique<MembershipTable>(
        id_, server_.node().value(), options_.membership);
    server_.register_method(
        kJoinSnapshot,
        [this](std::span<const std::uint8_t> body, NodeId from) {
          return handle_join_snapshot(body, from);
        },
        net::Priority::kControl);
    server_.register_method(
        kLeave,
        [this](std::span<const std::uint8_t> body, NodeId from) {
          return handle_leave(body, from);
        },
        net::Priority::kControl);
  }
  if (options_.membership.enabled || options_.partition.enabled ||
      options_.durability.enabled) {
    // Door policy: refuse query-class work with a typed NACK before it
    // consumes a container slot; control frames (exchange, catch-up, join,
    // leave, delta pull) always flow. Three refusal causes share the gate:
    // joining/draining (kNackDraining), recovery replay in progress (also
    // kNackDraining — the point is up but its state is still rebuilding),
    // and degraded-mode admission while a quorum of peers is stale
    // (kNackDegraded).
    server_.set_refusal_gate(
        [this](std::uint16_t method, net::wire::OverloadNack& nack) {
          switch (method) {
            case kGetSiteLoads:
            case kReportSelection:
            case kCreateInstance:
              break;
            default:
              return false;
          }
          if (!serving_) {
            nack.reason = net::kNackDraining;
            nack.retry_after_us =
                joining_ ? options_.membership.join_retry_backoff.us() : 0;
            return true;
          }
          // Degraded level 2 (quorum lost): refuse *placement* work so the
          // split cannot widen — but let kReportSelection through. The
          // client already committed that dispatch; refusing the report
          // would lose the record and worsen the accounting gap the
          // refusal exists to contain.
          if (options_.partition.enabled && method != kReportSelection &&
              degraded_hint(sim_.now()).level >= 2) {
            ++degraded_refusals_;
            nack.reason = net::kNackDegraded;
            nack.retry_after_us = options_.exchange_interval.us() / 2;
            return true;
          }
          return false;
        });
  }

  start_timers();
}

void DecisionPoint::refresh_neighbors() {
  if (!membership_) return;
  neighbors_ = membership_->live_peer_nodes();
  if (strategy_->kind() != overlay::Kind::kMesh) {
    // Feed the same live set (alive + suspect, DpId order) to the overlay
    // so trees and super-peer assignments repair under churn: every
    // survivor re-derives the same structure from its converged view.
    overlay_peers_.clear();
    for (const MemberInfo& info : membership_->members()) {
      if (info.dp == id_) continue;
      if (info.state == MemberState::kAlive ||
          info.state == MemberState::kSuspect) {
        overlay_peers_.push_back({info.dp, NodeId(info.node)});
      }
    }
    rebuild_strategy(/*initial=*/false);
  }
}

void DecisionPoint::rebuild_strategy(bool initial) {
  overlay::View view;
  view.self = id_;
  view.peers = overlay_peers_;
  const bool changed = strategy_->rebuild(view);
  if (changed && membership_) {
    // A repair re-wires the watch set; peers that just became neighbors
    // have legitimately never pushed here, so their silence clocks start
    // from the re-wiring instead of instantly tripping the detector.
    if (const auto* watch = strategy_->watch_peers()) {
      membership_->start_watch_grace(*watch, sim_.now());
    }
  }
  if (initial || !changed) return;
  ++overlay_rebuilds_;
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "overlay.rebuild", {},
               std::int64_t(overlay_peers_.size()),
               std::int64_t(overlay_rebuilds_));
  }
}

void DecisionPoint::trace_transitions(
    const std::vector<MembershipTransition>& transitions) {
  auto* t = trace::current();
  if (!t) return;
  for (const MembershipTransition& tr : transitions) {
    t->instant(trace::Category::kDp, id_.value(),
               transition_instant_name(tr.to), t->ambient(),
               std::int64_t(tr.peer.value()), std::int64_t(tr.incarnation));
  }
}

void DecisionPoint::seed_membership(const std::vector<MemberInfo>& members) {
  if (!membership_) return;
  membership_->seed(members, sim_.now());
  refresh_neighbors();
}

void DecisionPoint::join(std::vector<NodeId> seeds) {
  if (!membership_ || !running_ || left_ || joining_) return;
  serving_ = false;
  joining_ = true;
  join_seeds_ = std::move(seeds);
  join_started_ = sim_.now();
  join_attempt_ = 0;
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "membership.join_start", {},
               std::int64_t(join_seeds_.size()));
  }
  if (join_seeds_.empty()) {
    // Mesh founder: nothing to bootstrap from, serve immediately.
    joining_ = false;
    serving_ = true;
    serving_since_ = sim_.now();
    return;
  }
  try_join();
}

void DecisionPoint::try_join() {
  if (!running_ || !joining_) return;
  const NodeId seed = join_seeds_[join_attempt_ % join_seeds_.size()];
  ++join_attempt_;
  JoinSnapshotRequest request;
  request.from = id_;
  request.node = server_.node().value();
  request.incarnation = incarnation_;
  trace::SpanContext jctx;
  if (auto* t = trace::current()) {
    jctx = t->begin(trace::Category::kDp, id_.value(),
                    "membership.join_snapshot", {},
                    std::int64_t(seed.value()), std::int64_t(join_attempt_));
  }
  trace::ContextGuard jguard(jctx);
  peer_client_.call<JoinSnapshotRequest, JoinSnapshotReply>(
      seed, kJoinSnapshot, request, options_.membership.join_snapshot_timeout,
      [this, incarnation = incarnation_,
       jctx](Result<JoinSnapshotReply> result) {
        // A crash while the transfer was in flight invalidates it.
        if (!running_ || incarnation_ != incarnation || !joining_) return;
        trace::ContextGuard guard(jctx);
        if (!result.ok()) {
          // Transfer failed (seed crashed, partitioned, or itself not
          // serving): abort cleanly — no partial state was applied — and
          // rotate to the next seed after a backoff.
          ++join_retries_;
          if (auto* t = trace::current()) {
            t->instant(trace::Category::kDp, id_.value(),
                       "membership.join_retry", jctx,
                       std::int64_t(join_retries_));
          }
          sim_.schedule_after(
              options_.membership.join_retry_backoff, [this, incarnation] {
                if (running_ && incarnation_ == incarnation && joining_) {
                  try_join();
                }
              });
          return;
        }
        const JoinSnapshotReply& reply = result.value();
        // Bootstrap = the seed's base snapshots + its recent-dispatch
        // window, registered in the dedup sets so the flooded copies of
        // the same records are recognized as duplicates.
        for (const grid::SiteSnapshot& base : reply.bases) {
          engine_.view().apply_snapshot(base);
        }
        for (const gruber::DispatchRecord& record : reply.records) {
          auto& seen = applied_[record.origin];
          if (!seen.insert(record.seq).second) {
            ++records_duplicate_;
            continue;
          }
          engine_.record(record);
          ++join_snapshot_records_;
          wal_log_dispatch(record, false, 0, 0);
          charge_bank(record);  // after the frame: settle order, see above
        }
        wal_commit();
        for (const DpLoadHint& hint : reply.hints) {
          if (hint.node != server_.node().value()) {
            peer_hints_[hint.node] = hint;
          }
        }
        trace_transitions(membership_->absorb(reply.membership, sim_.now()));
        refresh_neighbors();
        joining_ = false;
        serving_ = true;
        serving_since_ = sim_.now();
        // The learned view is this point's durable config from here on: a
        // later crash restarts against these members, not the join seeds.
        membership_->adopt_current_as_seeds();
        if (auto* t = trace::current()) {
          t->end(trace::Category::kDp, id_.value(), "membership.join_snapshot",
                 jctx, std::int64_t(join_snapshot_records_),
                 std::int64_t(join_retries_));
          t->instant(trace::Category::kDp, id_.value(),
                     "membership.join_complete", jctx,
                     std::int64_t(join_snapshot_records_),
                     std::int64_t((sim_.now() - join_started_).us()));
        }
        // Announce: the first exchange carries this point's alive entry,
        // so peers admit it and start flooding records its way...
        run_exchange();
        // ...and the post-snapshot delta rides the anti-entropy path; the
        // dedup sets discard whatever overlaps the snapshot window.
        run_catch_up();
        log::info("digruber", "dp ", id_.value(), " joined via snapshot (",
                  join_snapshot_records_, " records, ", join_retries_,
                  " retries)");
      });
}

void DecisionPoint::leave() {
  if (!membership_ || !running_ || left_ || joining_) return;
  left_ = true;
  serving_ = false;
  membership_->set_self_state(MemberState::kLeft);
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "membership.leave", {},
               std::int64_t(fresh_.size()));
  }
  // Final flush: ship the not-yet-flooded records (with the kLeft self
  // entry on the trailer), then the explicit announcement so peers drop
  // this point without waiting out the suspicion thresholds.
  run_exchange(/*final_flush=*/true);
  LeaveAnnouncement announce;
  announce.from = id_;
  announce.node = server_.node().value();
  announce.incarnation = incarnation_;
  peer_client_.notify_all(neighbors_, kLeave, announce);
  exchange_timer_.reset();
  saturation_timer_.reset();
  log::info("digruber", "dp ", id_.value(), " left the mesh");
}

net::Served DecisionPoint::handle_join_snapshot(
    std::span<const std::uint8_t> body, NodeId /*from*/) {
  JoinSnapshotRequest request;
  if (!net::wire::decode(body, request)) return {};
  // A non-serving point must not hand out bootstrap state: a joiner fed a
  // partial view would itself go partial. Swallow the request — the
  // joiner's transfer deadline rotates it to another seed. The joiner is
  // NOT admitted to the membership view here: it announces itself with
  // its first exchange once it is actually able to serve, so clients
  // never learn (and route to) a still-bootstrapping point.
  if (!membership_ || !serving_) return {};
  ++snapshots_served_;

  JoinSnapshotReply reply;
  reply.from = id_;
  reply.exchange_round = exchange_round_;
  reply.membership = membership_->update();
  reply.bases = engine_.view().base_snapshots();
  reply.records = engine_.view().active_records(sim_.now());
  reply.hints.push_back(self_hint());
  for (const auto& [node, hint] : peer_hints_) reply.hints.push_back(hint);
  std::sort(reply.hints.begin(), reply.hints.end(),
            [](const DpLoadHint& a, const DpLoadHint& b) {
              return a.node < b.node;
            });

  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "membership.snapshot_served",
               t->ambient(), std::int64_t(request.from.value()),
               std::int64_t(reply.records.size()));
  }

  net::Served served;
  served.handler_cost = sim::Duration::millis(0.2) *
                        double(reply.records.size() + reply.bases.size() + 1);
  served.reply = net::wire::encode_buffer(reply);
  return served;
}

net::Served DecisionPoint::handle_leave(std::span<const std::uint8_t> body,
                                        NodeId /*from*/) {
  LeaveAnnouncement announce;
  if (!net::wire::decode(body, announce)) return {};
  if (membership_) {
    if (auto tr = membership_->mark_left(announce.from, announce.incarnation,
                                         sim_.now())) {
      trace_transitions({*tr});
      refresh_neighbors();
    }
  }
  net::Served served;
  served.handler_cost = sim::Duration::millis(0.2);
  return served;  // one-way: empty reply
}

void DecisionPoint::start_timers() {
  if (options_.dissemination != Dissemination::kNone) {
    exchange_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, options_.exchange_interval, [this] { run_exchange(); },
        options_.exchange_interval);
  }
  if (options_.infrastructure_monitor) {
    saturation_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, sim::Duration::seconds(30), [this] { check_saturation(); },
        options_.saturation_window);
  }
  if (disk_) {
    checkpoint_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, options_.durability.checkpoint_interval,
        [this] { write_checkpoint(); }, options_.durability.checkpoint_interval);
  }
}

void DecisionPoint::stop() {
  if (exchange_timer_) exchange_timer_->stop();
  if (saturation_timer_) saturation_timer_->stop();
  if (checkpoint_timer_) checkpoint_timer_->stop();
}

void DecisionPoint::crash() {
  if (!running_) return;
  running_ = false;
  exchange_timer_.reset();
  saturation_timer_.reset();
  checkpoint_timer_.reset();
  server_.shutdown();
  peer_client_.shutdown();
  if (disk_) {
    // I11 audit snapshot: every active record was WAL-logged and fsynced
    // before its handler replied, so all of them are durably committed at
    // this instant. Observer-only bookkeeping — it reads state, changes
    // nothing, and survives the crash the way an external checker's
    // notebook would.
    pre_crash_committed_.clear();
    for (const gruber::DispatchRecord& record :
         engine_.view().active_records(sim_.now())) {
      pre_crash_committed_.emplace_back(record.origin, record.seq,
                                        record.when + record.est_runtime);
    }
  }
  // Everything below is volatile process state: gone with the crash. The
  // SimDisk is deliberately NOT touched — crash models lost RAM, not lost
  // disk; its contents are what restart() replays.
  fresh_.clear();
  fresh_meta_.clear();
  applied_.clear();
  last_peer_round_.clear();
  peer_hints_.clear();
  peer_prices_.clear();
  peer_last_heard_.clear();
  last_delta_pull_.clear();
  dedup_.clear();
  dedup_order_.clear();
  wal_dirty_ = false;
  pending_wal_cost_ = sim::Duration::zero();
  engine_.view().clear();
  // Credit ledgers are soft state too: the next life starts from a fresh
  // endowment (the conservation identity holds over the new lifetime).
  if (bank_) bank_->reset(sim_.now());
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "dp.crash", {},
               std::int64_t(incarnation_));
  }
  log::info("digruber", "dp ", id_.value(), " crashed");
}

void DecisionPoint::restart(const std::vector<grid::SiteSnapshot>& snapshots) {
  if (running_ || left_) return;
  // Without a disk the in-memory counter is all there is; the durable path
  // derives the bump from the persisted floor inside the replay below (the
  // in-memory value would have died with the process in a real deployment).
  if (!disk_) ++incarnation_;
  ++restarts_;
  const bool server_up = server_.restart();
  const bool client_up = peer_client_.restart();
  if (!server_up || !client_up) {
    log::info("digruber", "dp ", id_.value(), " restart failed: address in use");
    return;
  }
  running_ = true;
  engine_.view().clear();
  bootstrap(snapshots);
  sim::Duration replay_cost;
  trace::SpanContext rctx;
  if (disk_) {
    // Durable recovery: replay checkpoint+WAL into the cleared state, then
    // resume from a monotonically-advanced incarnation. The replay raises
    // incarnation_ to the persisted floor; the bump on top guarantees this
    // life is strictly newer than anything peers ever heard.
    if (auto* t = trace::current()) {
      rctx = t->begin(trace::Category::kDp, id_.value(), "dp.recover.replay",
                      {}, std::int64_t(disk_->log().size()),
                      std::int64_t(disk_->checkpoint().size()));
    }
    trace::ContextGuard rguard(rctx);
    replay_cost = replay_from_disk();
    ++incarnation_;
    ++recoveries_;
    last_recovery_cost_ = replay_cost;
    // Persist the bump (with a barrier) so the *next* recovery starts
    // higher still, even if no checkpoint intervenes.
    WalIncarnation bump;
    bump.incarnation = incarnation_;
    const std::vector<std::uint8_t> payload = net::wire::encode(bump);
    wal_append_frame(WalRecordType::kIncarnation, payload);
    wal_commit();
  }
  // Fresh sequence epoch: next_seq_ died with the crash, and peers hold
  // dedup entries for every pre-crash (origin, seq). A disjoint epoch keeps
  // post-restart records flooding correctly without waiting for catch-up.
  next_seq_ = (std::uint64_t(incarnation_) << 32) + 1;
  // Re-base the saturation window on the container's surviving statistics
  // so the first post-restart check does not average over the outage.
  const StreamingStats& stats = server_.container().sojourn_stats();
  window_base_count_ = stats.count();
  window_base_sum_s_ = stats.mean() * double(stats.count());
  last_signal_ = sim::Time::zero();
  if (membership_) {
    // Everything learned at runtime was volatile; restart against the
    // durable seed list with the bumped incarnation, so peers holding a
    // dead verdict for the previous life resurrect this one. With a disk
    // the incarnation is the persisted floor + 1 — strictly above anything
    // gossiped before the crash — so the first heartbeat refutes stale
    // suspicion immediately instead of waiting a resurrection round trip.
    membership_->reset_to_seeds(sim_.now(), incarnation_);
    joining_ = false;
  }
  if (disk_) {
    // Serve only once the accounted replay time has elapsed: until then the
    // door gate drains queries with kNackDraining, modelling a recovering
    // broker that is up but still reading its log.
    serving_ = false;
    sim_.schedule_after(replay_cost, [this, incarnation = incarnation_, rctx] {
      if (!running_ || incarnation_ != incarnation) return;
      trace::ContextGuard guard(rctx);
      serving_ = true;
      serving_since_ = sim_.now();
      if (membership_) refresh_neighbors();
      start_timers();
      if (auto* t = trace::current()) {
        t->end(trace::Category::kDp, id_.value(), "dp.recover.replay", rctx,
               std::int64_t(replay_records_), std::int64_t(replay_frames_));
        t->instant(trace::Category::kDp, id_.value(), "dp.restart", rctx,
                   std::int64_t(incarnation_));
      }
      // Anti-entropy for the gap only: with partition tolerance on, the
      // piggybacked digests on the next exchange rounds trigger targeted
      // delta pulls for exactly the diverged VOs — no full-snapshot
      // transfer. Without digests there is no way to bound the gap, so
      // fall back to the full catch-up.
      if (!options_.partition.enabled) run_catch_up();
      log::info("digruber", "dp ", id_.value(), " recovered (incarnation ",
                incarnation_, ", ", replay_records_, " records replayed)");
    });
    return;
  }
  if (membership_) {
    serving_ = true;
    refresh_neighbors();
  }
  start_timers();
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "dp.restart", {},
               std::int64_t(incarnation_));
  }
  run_catch_up();
  log::info("digruber", "dp ", id_.value(), " restarted (incarnation ",
            incarnation_, ")");
}

void DecisionPoint::run_catch_up() {
  last_catch_up_ = sim_.now();
  CatchUpRequest request;
  request.from = id_;
  request.incarnation = incarnation_;
  // The catch-up span covers issuing the fan-out; each neighbor's reply
  // lands later as a "dp.catchup_applied" instant under the same trace.
  trace::SpanContext cctx;
  if (auto* t = trace::current()) {
    cctx = t->begin(trace::Category::kDp, id_.value(), "dp.catchup", {},
                    std::int64_t(neighbors_.size()),
                    std::int64_t(incarnation_));
  }
  trace::ContextGuard cguard(cctx);
  for (const NodeId neighbor : neighbors_) {
    peer_client_.call<CatchUpRequest, CatchUpReply>(
        neighbor, kCatchUp, request, options_.catchup_timeout,
        [this, incarnation = incarnation_, cctx](Result<CatchUpReply> result) {
          // A second crash while this call was in flight invalidates it.
          if (!running_ || incarnation_ != incarnation) return;
          if (!result.ok()) return;
          catchup_records_received_ += result.value().records.size();
          std::int64_t applied = 0;
          for (const gruber::DispatchRecord& record : result.value().records) {
            auto& seen = applied_[record.origin];
            if (!seen.insert(record.seq).second) {
              ++records_duplicate_;
              continue;
            }
            engine_.record(record);
            ++resync_applied_;
            ++applied;
            wal_log_dispatch(record, false, 0, 0);
            charge_bank(record);  // after the frame: settle order, see above
            // Not re-buffered into fresh_: neighbors already hold these.
          }
          wal_commit();
          if (auto* t = trace::current()) {
            t->instant(trace::Category::kDp, id_.value(), "dp.catchup_applied",
                       cctx, applied,
                       std::int64_t(result.value().records.size()));
          }
        });
  }
  if (auto* t = trace::current()) {
    t->end(trace::Category::kDp, id_.value(), "dp.catchup", cctx,
           std::int64_t(neighbors_.size()));
  }
}

net::Served DecisionPoint::handle_catch_up(std::span<const std::uint8_t> body,
                                           NodeId /*from*/) {
  CatchUpRequest request;
  if (!net::wire::decode(body, request)) return {};
  ++catchups_served_;

  CatchUpReply reply;
  reply.from = id_;
  reply.records = engine_.view().active_records(sim_.now());

  net::Served served;
  served.handler_cost =
      sim::Duration::millis(0.2) * double(reply.records.size() + 1);
  served.reply = net::wire::encode_buffer(reply);
  return served;
}

gruber::ViewDigest DecisionPoint::settled_digest(sim::Time now) const {
  const sim::Duration slack = options_.partition.digest_slack;
  // Sparse overlays deliver over up to ttl() relay rounds; state younger
  // than that is legitimately in flight, not divergence. Summarizing it
  // would flag every healthy relay as a mismatch and trigger a delta pull
  // each round. Mesh keeps the legacy one-interval window (ttl is 0).
  const double settle_rounds = 1.0 + double(strategy_->ttl());
  return engine_.view().digest(
      now - (options_.exchange_interval * settle_rounds + slack), now + slack);
}

void DecisionPoint::maybe_delta_pull(const ExchangeMessage& message) {
  // Evaluate the *sender's* window, not a fresh local one: both sides must
  // summarize the same (as_of, horizon] slice for equality to mean
  // agreement.
  const gruber::ViewDigest local =
      engine_.view().digest(message.digest.as_of, message.digest.horizon);
  if (local == message.digest) return;
  ++digest_mismatches_;
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "dp.digest_mismatch",
               t->ambient(), std::int64_t(message.from.value()),
               std::int64_t(message.exchange_round));
  }
  // The digest trailer forces the load trailer, so the sender's server
  // address is always on the frame; a malformed one just skips the pull
  // (the next round re-detects the divergence).
  if (!message.has_load || message.load.node == 0) return;
  // Throttle per peer: the mismatch repeats every exchange round until the
  // views converge, and one in-flight pull is enough to get there.
  const auto [it, first_pull] =
      last_delta_pull_.try_emplace(message.from, sim_.now());
  if (!first_pull) {
    if (sim_.now() - it->second < options_.partition.delta_pull_min_gap) return;
    it->second = sim_.now();
  }
  std::vector<VoId> vos = gruber::diverged_vos(local, message.digest);
  const bool want_bases = local.base_hash != message.digest.base_hash;
  if (vos.empty() && !want_bases) return;  // epoch-only skew: nothing to pull
  run_delta_pull(NodeId(message.load.node), message.from,
                 message.exchange_round, std::move(vos), want_bases);
}

void DecisionPoint::run_delta_pull(NodeId peer_node, DpId peer,
                                   std::uint64_t round, std::vector<VoId> vos,
                                   bool want_bases) {
  ++delta_pulls_sent_;
  DeltaPullRequest request;
  request.from = id_;
  request.digest_round = round;
  request.vos = std::move(vos);
  request.want_bases = want_bases;
  trace::SpanContext dctx;
  if (auto* t = trace::current()) {
    dctx = t->begin(trace::Category::kDp, id_.value(), "dp.delta_pull", {},
                    std::int64_t(peer.value()),
                    std::int64_t(request.vos.size()));
  }
  trace::ContextGuard dguard(dctx);
  peer_client_.call<DeltaPullRequest, DeltaPullReply>(
      peer_node, kDeltaPull, request, options_.partition.delta_pull_timeout,
      [this, incarnation = incarnation_, dctx](Result<DeltaPullReply> result) {
        // A crash while the pull was in flight invalidates it.
        if (!running_ || incarnation_ != incarnation) return;
        if (!result.ok()) return;
        trace::ContextGuard guard(dctx);
        const DeltaPullReply& reply = result.value();
        const sim::Time now = sim_.now();
        std::int64_t applied = 0;
        for (const grid::SiteSnapshot& base : reply.bases) {
          engine_.view().apply_snapshot(base);  // as_of guard drops stale ones
        }
        for (const gruber::DispatchRecord& record : reply.records) {
          // An already-expired record must not resurrect: the merge would
          // re-admit it for one prune cycle and skew the digest.
          if (record.when + record.est_runtime <= now) continue;
          // Register in the flooding dedup set *before* merging, so a
          // full kCatchUp racing this pull (a round gap and a digest
          // mismatch often fire together) cannot re-apply the record.
          applied_[record.origin].insert(record.seq);
          const auto merged = engine_.view().merge_record(record, now);
          if (merged.conflict) ++delta_conflicts_;
          if (merged.double_commit) ++double_commits_;
          if (merged.applied) {
            ++delta_records_applied_;
            ++applied;
            wal_log_dispatch(record, false, 0, 0);
            charge_bank(record);  // after the frame: settle order, see above
            // Not re-buffered into fresh_: the peer holds these, and other
            // peers detect their own divergence from its digest.
          } else if (!merged.conflict) {
            ++records_duplicate_;
          }
        }
        wal_commit();
        // The reply carried the peer's settled digest at serve time:
        // matching it over the same window means this single pull fully
        // reconciled the pair.
        if (engine_.view().digest(reply.digest.as_of, reply.digest.horizon) ==
            reply.digest) {
          ++delta_converged_;
        }
        if (auto* t = trace::current()) {
          t->end(trace::Category::kDp, id_.value(), "dp.delta_pull", dctx,
                 applied, std::int64_t(result.value().records.size()));
        }
      });
}

net::Served DecisionPoint::handle_delta_pull(std::span<const std::uint8_t> body,
                                             NodeId /*from*/) {
  DeltaPullRequest request;
  if (!net::wire::decode(body, request)) return {};
  ++delta_pulls_served_;

  DeltaPullReply reply;
  reply.from = id_;
  reply.records = engine_.view().records_for_vos(request.vos, sim_.now());
  if (request.want_bases) reply.bases = engine_.view().base_snapshots();
  reply.digest = settled_digest(sim_.now());

  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "dp.delta_served",
               t->ambient(), std::int64_t(request.from.value()),
               std::int64_t(reply.records.size()));
  }

  net::Served served;
  served.handler_cost =
      sim::Duration::millis(0.2) * double(reply.records.size() + 1);
  served.reply = net::wire::encode_buffer(reply);
  return served;
}

DegradedHint DecisionPoint::degraded_hint(sim::Time now) const {
  DegradedHint hint;
  if (!options_.partition.enabled) return hint;
  const sim::Duration threshold = options_.partition.staleness_threshold;
  std::size_t stale = 0;
  std::size_t known = 0;
  std::int64_t worst = 0;
  if (membership_) {
    // The failure detector is the staleness oracle: suspect/dead verdicts
    // mark a peer stale immediately, the last-heard clock catches peers
    // the detector has not yet judged. Left members departed on purpose —
    // their absence carries no information this point is missing.
    for (const MemberInfo& info : membership_->members()) {
      if (info.dp == id_ || info.state == MemberState::kLeft) continue;
      ++known;
      bool is_stale = info.state != MemberState::kAlive;
      const auto it = peer_last_heard_.find(info.dp);
      if (it != peer_last_heard_.end() && now - it->second > threshold) {
        is_stale = true;
      }
      if (is_stale) {
        ++stale;
        const std::int64_t age = it != peer_last_heard_.end()
                                     ? (now - it->second).us()
                                     : threshold.us();
        worst = std::max(worst, age);
      }
    }
  } else {
    // Static mesh: every configured neighbor is expected to keep
    // exchanging. Neighbors never heard from count as stale only once the
    // staleness clock could have expired at all (grace for startup).
    known = neighbors_.size();
    for (const auto& [dp, heard] : peer_last_heard_) {
      const sim::Duration age = now - heard;
      if (age > threshold) {
        ++stale;
        worst = std::max(worst, age.us());
      }
    }
    if (now - sim::Time::zero() > threshold &&
        known > peer_last_heard_.size()) {
      stale += known - peer_last_heard_.size();
      worst = std::max(worst, (now - sim::Time::zero()).us());
    }
  }
  hint.stale_peers = std::uint32_t(stale);
  hint.stale_sites =
      std::uint32_t(engine_.view().stale_site_count(now, threshold));
  hint.staleness_us = worst;
  if (known == 0 || (stale == 0 && hint.stale_sites == 0)) return hint;
  hint.level = (stale * 2 > known) ? 2 : 1;
  return hint;
}

void DecisionPoint::bootstrap(const std::vector<grid::SiteSnapshot>& snapshots) {
  engine_.view().bootstrap(snapshots);
}

void DecisionPoint::set_neighbors(std::vector<NodeId> neighbors) {
  neighbors_ = std::move(neighbors);
}

void DecisionPoint::set_overlay_view(std::vector<overlay::Member> peers) {
  std::sort(peers.begin(), peers.end(),
            [](const overlay::Member& a, const overlay::Member& b) {
              return a.dp < b.dp;
            });
  neighbors_.clear();
  neighbors_.reserve(peers.size());
  for (const overlay::Member& peer : peers) neighbors_.push_back(peer.node);
  overlay_peers_ = std::move(peers);
  rebuild_strategy(/*initial=*/true);
}

net::Served DecisionPoint::handle_get_site_loads(std::span<const std::uint8_t> body,
                                                 NodeId /*from*/) {
  GetSiteLoadsRequest request;
  if (!net::wire::decode(body, request)) return {};
  ++queries_;

  grid::Job probe;
  probe.id = request.job;
  probe.vo = request.vo;
  probe.group = request.group;
  probe.user = request.user;
  probe.cpus = request.cpus;

  GetSiteLoadsReply reply;
  reply.candidates = engine_.candidates(probe, sim_.now());
  reply.as_of = sim_.now();
  // Karma admission gate: a VO past its fair share plus credits keeps
  // brokering only while the grid has idle capacity *and* it wins the
  // severity-then-credit arbitration among over-allowance contenders.
  // Denial empties the candidate list — the client falls back — so the
  // broker stops amplifying a strategic VO without touching the wire shape.
  if (bank_ && !reply.candidates.empty()) {
    switch (bank_->admit(request.vo, sim_.now(), free_fraction(sim_.now()))) {
      case economy::Admit::kWithinShare:
        break;
      case economy::Admit::kGrace:
        ++grace_admissions_;
        break;
      case economy::Admit::kDenied:
        ++credit_denials_;
        reply.candidates.clear();
        break;
    }
  }
  // Staleness-guarded admission, level 1: some peers (or site state) are
  // stale, so part of the believed-free capacity may already be committed
  // on the far side of a split. Discount the usable estimate — clients
  // place conservatively — but keep raw_free as the undiscounted belief
  // for scheduling-accuracy audits. (Level 2 never reaches this handler:
  // the refusal gate NACKs the query as degraded first.)
  const DegradedHint degraded =
      options_.partition.enabled ? degraded_hint(sim_.now()) : DegradedHint{};
  if (degraded.level >= 1 && options_.partition.stale_discount > 0.0) {
    const double keep = 1.0 - options_.partition.stale_discount;
    for (gruber::SiteLoad& load : reply.candidates) {
      load.free_estimate = std::int32_t(double(load.free_estimate) * keep);
    }
  }
  // Membership piggyback: the client told us its epoch; attach the view
  // only when it is stale. Trailing fields stack positionally, so the
  // membership trailer forces the dp_loads one (at least the self hint),
  // and the partition-tolerance digest trailer forces both.
  const bool attach_membership = membership_ && request.has_epoch &&
                                 request.membership_epoch < membership_->epoch();
  const bool attach_digest = options_.partition.enabled;
  const bool attach_prices = options_.economy.enabled;
  // Same positional TrailerStack contract as the exchange path: a slot is
  // *wanted* on its own merit; wanting a later slot forces every earlier
  // one onto the reply (forced dp_loads still carry the full hint set —
  // the bytes double as the failover hint table — while forced
  // membership/digest/degraded slots stay empty no-ops).
  overlay::TrailerStack trailers;
  trailers
      .slot(options_.advertise_load,
            [&](bool) {
              // Own hint plus whatever peers piggybacked on recent
              // exchanges, in node order so the reply bytes are
              // deterministic across runs.
              reply.dp_loads.push_back(self_hint());
              for (const auto& [node, hint] : peer_hints_) {
                reply.dp_loads.push_back(hint);
              }
              std::sort(reply.dp_loads.begin(), reply.dp_loads.end(),
                        [](const DpLoadHint& a, const DpLoadHint& b) {
                          return a.node < b.node;
                        });
            })
      .slot(attach_membership,
            [&](bool) {
              reply.has_membership = true;
              // Without a membership table the slot is an empty update — a
              // no-op on the receiver, emitted only to keep the trailer
              // positions aligned.
              if (membership_) reply.membership = membership_->update();
            })
      .slot(attach_digest,
            [&](bool forced) {
              reply.has_digest = true;
              if (!forced) reply.digest = settled_digest(sim_.now());
            })
      .slot(attach_digest && degraded.level >= 1,
            [&](bool forced) {
              reply.has_degraded = true;  // forced: empty level-0, a no-op
              if (!forced) {
                reply.degraded = degraded;
                ++degraded_replies_;
              }
            })
      .slot(attach_prices,
            [&](bool) {
              // Quotes aligned index-wise with dp_loads: own price for the
              // self hint, the freshest exchanged quote for each peer
              // (0 = no quote yet).
              reply.dp_prices.reserve(reply.dp_loads.size());
              const std::uint64_t self_node = server_.node().value();
              for (const DpLoadHint& hint : reply.dp_loads) {
                if (hint.node == self_node) {
                  reply.dp_prices.push_back(self_price());
                } else {
                  const auto it = peer_prices_.find(hint.node);
                  reply.dp_prices.push_back(
                      it != peer_prices_.end() ? it->second : 0.0);
                }
              }
              ++priced_replies_;
            })
      .compose();

  // Ambient here is the rpc.serve span, so the instant lands inside the
  // caller's query trace.
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "dp.get_site_loads",
               t->ambient(), std::int64_t(reply.candidates.size()),
               std::int64_t(request.vo.value()));
  }

  net::Served served;
  served.handler_cost =
      options_.eval_cost_per_site * double(engine_.view().site_count());
  served.reply = net::wire::encode_buffer(reply);
  return served;
}

net::Served DecisionPoint::handle_report_selection(std::span<const std::uint8_t> body,
                                                   NodeId /*from*/) {
  ReportSelectionRequest request;
  if (!net::wire::decode(body, request)) return {};

  if (disk_ && request.has_request_id) {
    // Exactly-once: a retry of an already-committed report returns the
    // original decision instead of re-allocating and re-metering. The
    // window survives crashes — rebuilt from checkpoint + WAL — so even a
    // retry that lands after recovery collapses to one dispatch.
    const auto hit =
        dedup_.find(std::make_pair(request.request_client, request.request_seq));
    if (hit != dedup_.end()) {
      ++dedup_hits_;
      if (auto* t = trace::current()) {
        t->instant(trace::Category::kDp, id_.value(), "dp.dedup_hit",
                   t->ambient(), std::int64_t(request.request_client),
                   std::int64_t(request.request_seq));
      }
      Ack ack;
      ack.has_original = true;
      ack.original_site = hit->second;
      net::Served served;
      served.handler_cost = sim::Duration::millis(0.5);
      served.reply = net::wire::encode_buffer(ack);
      return served;
    }
  }

  // Counted here, below the dedup gate: a collapsed retry is not a new
  // recorded selection.
  ++selections_;
  gruber::DispatchRecord record;
  record.origin = id_;
  record.seq = next_seq_++;
  record.site = request.site;
  record.vo = request.vo;
  record.group = request.group;
  record.user = request.user;
  record.cpus = request.cpus;
  record.when = sim_.now();
  record.est_runtime = request.est_runtime;

  engine_.record(record);
  applied_[id_].insert(record.seq);
  if (options_.overlay_audit) {
    own_record_log_.emplace_back(record.seq, record.when.to_seconds());
  }
  // The request-id trailer forces (possibly all-zero) bid bytes onto the
  // wire, so presence alone no longer implies a priced report.
  if (request.has_bid && (request.budget > 0 || request.deadline_s > 0)) {
    ++priced_selections_;
  }
  if (options_.dissemination != Dissemination::kNone) {
    fresh_.push_back(record);
    fresh_meta_.push_back({id_, 0});
  }

  if (disk_) {
    wal_log_dispatch(record, request.has_request_id, request.request_client,
                     request.request_seq);
    if (request.has_request_id) {
      dedup_insert(request.request_client, request.request_seq, record.site);
    }
  }
  // After the dispatch frame: if this charge crosses an epoch boundary it
  // appends a settle cross-check frame, and replay verifies that frame
  // after re-driving the charge — the WAL order must match.
  charge_bank(record);
  if (request.has_request_id) {
    audit_dispatch(request.request_client, request.request_seq);
  }

  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "dp.report_selection",
               t->ambient(), std::int64_t(request.site.value()),
               std::int64_t(request.cpus));
  }

  net::Served served;
  // The commit is durable before the ack leaves: the fsync barrier rides
  // on the handler cost, so the reply cannot outrun the log.
  served.handler_cost = sim::Duration::millis(5) + wal_commit();
  served.reply = net::wire::encode_buffer(Ack{});
  return served;
}

net::Served DecisionPoint::handle_exchange(std::span<const std::uint8_t> body,
                                           NodeId /*from*/) {
  ExchangeMessage message;
  if (!net::wire::decode(body, message)) return {};
  ++exchanges_received_;

  // Flooding never retransmits: a jump in the peer's round counter means
  // dropped rounds (partition, loss) whose records would otherwise stay
  // unknown here until they age out. Re-sync via the catch-up exchange,
  // at most once per exchange interval (a heal makes every peer's gap
  // visible at the same tick). A round at or below the last one seen is a
  // peer restart — its counter reset — not a gap.
  const auto [it, first_contact] =
      last_peer_round_.try_emplace(message.from, message.exchange_round);
  if (!first_contact) {
    const bool gap = message.exchange_round > it->second + 1;
    it->second = message.exchange_round;
    if (gap && (last_catch_up_ == sim::Time::zero() ||
                sim_.now() - last_catch_up_ >= options_.exchange_interval)) {
      ++gap_resyncs_;
      run_catch_up();
    }
  }

  // Overlay relay depth: each record applied from this frame re-floods
  // one hop deeper than *it* has traveled (per-record depths ride the hop
  // trailer — one deep record must not burn the relay budget of a fresh
  // one in the same frame). Sparse overlays bound the depth by the
  // strategy TTL — an over-deep record is still *applied* (the bound
  // suppresses relaying, never learning), leaving residual convergence to
  // the anti-entropy paths.
  const std::uint32_t relay_ttl = strategy_->ttl();
  if (message.has_hops) {
    overlay_max_hops_ =
        std::max<std::uint64_t>(overlay_max_hops_, message.hops);
  }
  std::uint64_t relays_dropped = 0;
  for (std::size_t i = 0; i < message.dispatches.size(); ++i) {
    const gruber::DispatchRecord& record = message.dispatches[i];
    auto& seen = applied_[record.origin];
    if (!seen.insert(record.seq).second) {
      ++records_duplicate_;
      continue;
    }
    engine_.record(record);
    ++records_applied_;
    wal_log_dispatch(record, false, 0, 0);
    // After the frame: a boundary-crossing charge appends a settle
    // cross-check frame, which replay verifies after re-driving the
    // charge — the WAL order must match.
    charge_bank(record);
    // Flooding: relay fresh records onward at the next exchange tick.
    const std::uint32_t prior =
        message.has_hops && i < message.hop_depths.size()
            ? message.hop_depths[i]
            : 0;
    const std::uint32_t relay_depth = message.has_hops ? prior + 1 : 1;
    if (relay_ttl == 0 || relay_depth <= relay_ttl) {
      fresh_.push_back(record);
      fresh_meta_.push_back({message.from, relay_ttl > 0 ? relay_depth : 0});
    } else {
      ++overlay_relays_suppressed_;
      ++relays_dropped;
    }
  }
  if (relays_dropped > 0) {
    if (auto* t = trace::current()) {
      t->instant(trace::Category::kDp, id_.value(), "overlay.relay_drop",
                 t->ambient(), std::int64_t(relays_dropped),
                 std::int64_t(message.hops));
    }
  }
  for (const grid::SiteSnapshot& snapshot : message.snapshots) {
    engine_.view().apply_snapshot(snapshot);
  }
  if (message.has_load) peer_hints_[message.load.node] = message.load;
  if (message.has_price && message.has_load && message.load.node != 0) {
    peer_prices_[message.load.node] = message.price;
  }

  if (options_.partition.enabled) peer_last_heard_[message.from] = sim_.now();
  if (options_.partition.enabled ||
      strategy_->kind() != overlay::Kind::kMesh) {
    // The frame doubles as the staleness heartbeat for degraded-mode
    // admission (partition mode only, above), and its piggybacked digest —
    // compared only *after* the frame's own records were applied — is the
    // split-brain detector: any divergence the frame itself did not repair
    // triggers a targeted delta pull. Sparse overlays always compare: a
    // roster-divergence transient can strand a record mid-path, and the
    // digest exchange along the surviving edges is what backfills it. An
    // economy-only sender emits an *empty* digest slot just to reach the
    // price trailer; empty means "no digest", not "diverged from an empty
    // view" — there is nothing to pull from it.
    const bool digest_empty = message.digest.base_hash == 0 &&
                              message.digest.vos.empty() &&
                              message.digest.epochs.empty();
    if (message.has_digest && !digest_empty) maybe_delta_pull(message);
  }

  if (membership_ && message.has_membership) {
    // The frame itself is the heartbeat: refresh the sender's last-heard
    // time (refuting any suspicion) using the incarnation it claims for
    // itself, then merge the rest of the gossiped view.
    bool changed = false;
    for (const MemberInfo& info : message.membership.members) {
      if (info.dp != message.from) continue;
      if (info.state == MemberState::kAlive) {
        if (auto tr = membership_->heard_from(info.dp, info.node,
                                              info.incarnation, sim_.now())) {
          trace_transitions({*tr});
          changed = true;
        }
      }
      break;
    }
    const auto transitions =
        membership_->absorb(message.membership, sim_.now());
    trace_transitions(transitions);
    if (changed || !transitions.empty()) refresh_neighbors();
  }

  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "dp.exchange_recv",
               t->ambient(), std::int64_t(message.dispatches.size()),
               std::int64_t(message.from.value()));
  }

  net::Served served;
  served.handler_cost =
      sim::Duration::millis(0.2) * double(message.dispatches.size() + 1) +
      wal_commit();
  return served;  // one-way: empty reply
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
DecisionPoint::applied_keys() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keys;
  for (const auto& [origin, seqs] : applied_) {
    for (const std::uint64_t seq : seqs) keys.emplace_back(origin.value(), seq);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

DpLoadHint DecisionPoint::self_hint() const {
  const net::ServiceContainer& container = server_.container();
  DpLoadHint hint;
  hint.node = server_.node().value();
  hint.queue_depth = std::int32_t(container.queue_depth());
  hint.utilization =
      double(container.busy_workers()) / double(container.profile().workers);
  hint.est_wait_s = container.est_sojourn().to_seconds();
  return hint;
}

double DecisionPoint::self_price() const {
  const DpLoadHint hint = self_hint();
  return economy::quote_price(options_.economy, hint.utilization,
                              hint.est_wait_s);
}

double DecisionPoint::free_fraction(sim::Time now) const {
  std::int64_t total = 0;
  std::int64_t free = 0;
  for (const gruber::SiteLoad& load : engine_.view().loads(now)) {
    total += load.total_cpus;
    free += std::max<std::int32_t>(0, load.free_estimate);
  }
  return total > 0 ? double(free) / double(total) : 1.0;
}

void DecisionPoint::charge_bank(const gruber::DispatchRecord& record) {
  charge_bank_at(record, sim_.now());
}

void DecisionPoint::charge_bank_at(const gruber::DispatchRecord& record,
                                   sim::Time at) {
  if (!bank_) return;
  const std::uint64_t settled_before = bank_->epochs_settled();
  // Meter in CPU-seconds against the record's VO. Every record-apply path
  // funnels here after the flooding dedup, so replicated banks converge on
  // the same ledgers without double-charging. Replay calls with the frame's
  // original apply time, so restored ledgers settle in the same epochs.
  bank_->charge(record.vo,
                double(record.cpus) * record.est_runtime.to_seconds(), at);
  if (disk_ && !replaying_) {
    const std::uint64_t settled_after = bank_->epochs_settled();
    if (settled_after != settled_before) {
      // Epoch boundary crossed under this charge: log the settlement
      // counters as a replay cross-check. Recovery recomputes settlement
      // from the charges themselves and verifies it reaches the same spot.
      WalEpochSettle settle;
      settle.epochs_settled = settled_after;
      settle.expired_pool = bank_->stats().expired_pool;
      const std::vector<std::uint8_t> payload = net::wire::encode(settle);
      wal_append_frame(WalRecordType::kEpochSettle, payload);
    }
  }
}

void DecisionPoint::run_exchange(bool final_flush) {
  if (membership_ && !serving_ && !final_flush) return;
  if (membership_ && !final_flush) {
    // Failure-detector tick, swept on the heartbeat cadence it measures
    // against — no extra timer. Dead peers drop out of the neighbor set
    // before this round's fan-out, so nothing is sent to them. The
    // strategy scopes the detector: sparse symmetric overlays restrict
    // the timers to their overlay neighbors (silence from a non-adjacent
    // peer is the topology working), gossip stretches the clocks by its
    // expected contact period. The mesh keeps the legacy everyone-every-
    // round contract bit-identically.
    const double stretch = strategy_->watch_stretch();
    const sim::Duration heartbeat =
        stretch == 1.0 ? options_.exchange_interval
                       : sim::Duration::seconds(
                             options_.exchange_interval.to_seconds() * stretch);
    const auto swept =
        membership_->sweep(sim_.now(), heartbeat, strategy_->watch_peers());
    trace_transitions(swept.transitions);
    if (!swept.transitions.empty()) refresh_neighbors();
  }
  // Grave-probe pool: a dead verdict is mutually silencing — nobody
  // pushes to a peer it believes dead, so a falsely-buried survivor
  // (asymmetric partition verdicts) would never see the accusation it
  // must refute with an incarnation bump. Sparse overlays copy each
  // round's frame to one rotating dead peer: a true corpse ignores it; a
  // zombie reads the gossiped claim about itself, bumps, and its next
  // frames resurrect it everywhere. Collected before the empty-neighbor
  // bail so a fully-isolated survivor still probes its way back in.
  std::vector<NodeId> graves;
  if (membership_ && !final_flush &&
      strategy_->kind() != overlay::Kind::kMesh) {
    for (const MemberInfo& info : membership_->members()) {
      if (info.dp != id_ && info.state == MemberState::kDead) {
        graves.push_back(NodeId(info.node));
      }
    }
  }
  if ((neighbors_.empty() && graves.empty()) ||
      options_.dissemination == Dissemination::kNone) {
    return;
  }
  const bool sparse = strategy_->kind() != overlay::Kind::kMesh;
  ExchangeMessage message;
  message.from = id_;
  message.exchange_round = ++exchange_round_;
  if (!sparse) {
    // Mesh: one shared frame for every neighbor, exactly the legacy path.
    message.dispatches = std::move(fresh_);
    fresh_.clear();
    fresh_meta_.clear();
  }
  const std::size_t flushed = sparse ? fresh_.size() : message.dispatches.size();
  // Trailing fields stack positionally (see TrailerStack): attaching a
  // later trailer forces all earlier slots onto the frame. A forced load
  // hint still carries the full snapshot (it doubles as the sender's
  // pull-target address), a forced membership slot without a table is an
  // empty update, a forced digest stays empty — receivers treat an empty
  // digest as absent, never as divergence — and a forced price is a
  // no-quote 0.0. The hop trailer rides fifth, wanted only by sparse
  // overlays, so the mesh default emits nothing and keeps the legacy
  // byte layout.
  overlay::TrailerStack trailers;
  trailers
      .slot(options_.advertise_load,
            [&](bool) {
              message.has_load = true;
              message.load = self_hint();
            })
      .slot(membership_ != nullptr,
            [&](bool) {
              message.has_membership = true;
              if (membership_) message.membership = membership_->update();
            })
      .slot(options_.partition.enabled ||
                strategy_->kind() != overlay::Kind::kMesh,
            [&](bool forced) {
              message.has_digest = true;
              if (!forced) message.digest = settled_digest(sim_.now());
            })
      .slot(options_.economy.enabled,
            [&](bool forced) {
              message.has_price = true;
              if (!forced) message.price = self_price();
            })
      .slot(strategy_->ttl() > 0,
            [&](bool) {
              // Placeholder: sparse frames are composed per target below,
              // each stamped with the max depth of the records it carries.
              message.has_hops = true;
              message.hops = 0;
            })
      .compose();
  trace::SpanContext xctx;
  if (auto* t = trace::current()) {
    xctx = t->begin(trace::Category::kDp, id_.value(), "dp.exchange", {},
                    std::int64_t(message.exchange_round),
                    std::int64_t(flushed));
  }
  trace::ContextGuard xguard(xctx);
  if (options_.dissemination == Dissemination::kUslaAndUsage) {
    // Strategy 1 also ships the sender's estimated site states. They are
    // stamped one exchange interval in the past: the sender cannot know
    // dispatches its peers made since the previous round, so a "now"
    // timestamp would wrongly clobber the receiver's fresher local records.
    const sim::Time now = sim_.now();
    sim::Time claim = sim::Time::zero();
    if (now - sim::Time::zero() > options_.exchange_interval) {
      claim = now - options_.exchange_interval;
    }
    for (const gruber::SiteLoad& load : engine_.view().loads(now)) {
      grid::SiteSnapshot snapshot = engine_.view().estimated_snapshot(load.site, now);
      snapshot.as_of = claim;
      message.snapshots.push_back(std::move(snapshot));
    }
  }
  // Strategy fan-out. The mesh pushes one shared frame to every live
  // neighbor (the paper's flooding: one encode plus K refcount bumps).
  // Sparse overlays derive a smaller per-round push set from the same
  // roster and compose one frame *per target* — split-horizon: a record
  // is never relayed back to the peer it was learned from (a leaf's only
  // target is its parent, so echoing would both waste the edge and
  // inflate the frame's hop stamp past the TTL for every record riding
  // along), and each frame's hop trailer reflects only the records it
  // actually carries.
  const std::vector<NodeId>* targets = &neighbors_;
  std::vector<NodeId> selected;
  if (sparse) {
    strategy_->select(message.exchange_round, neighbors_, selected);
    // A sparse strategy wired through raw set_neighbors (no roster) has
    // no structure to select from; degrade to the mesh push set rather
    // than silently sending nothing.
    if (selected.empty()) selected = neighbors_;
    targets = &selected;
    if (!graves.empty()) {
      selected.push_back(graves[message.exchange_round % graves.size()]);
      ++overlay_grave_probes_;
      if (auto* t = trace::current()) {
        t->instant(trace::Category::kDp, id_.value(), "overlay.grave_probe",
                   xctx, std::int64_t(graves.size()),
                   std::int64_t(message.exchange_round));
      }
    }
  }
  if (!sparse) {
    // One shared frame, a copy per peer: count every copy so
    // bytes-per-round comparisons against sparse strategies (which
    // really do encode per target) stay honest.
    overlay_bytes_sent_ += net::wire::encoded_size(message) * targets->size();
    peer_client_.notify_all(*targets, kExchange, message);
  } else {
    for (const NodeId target : *targets) {
      DpId source = id_;  // sentinel: own records are never excluded
      bool known = false;
      for (const overlay::Member& m : overlay_peers_) {
        if (m.node == target) {
          source = m.dp;
          known = true;
          break;
        }
      }
      message.dispatches.clear();
      message.hop_depths.clear();
      std::uint32_t hops = 0;
      for (std::size_t i = 0; i < fresh_.size(); ++i) {
        if (known && fresh_meta_[i].from == source) continue;
        message.dispatches.push_back(fresh_[i]);
        message.hop_depths.push_back(fresh_meta_[i].depth);
        hops = std::max(hops, fresh_meta_[i].depth);
      }
      message.hops = hops;
      overlay_bytes_sent_ += net::wire::encoded_size(message);
      peer_client_.notify(target, kExchange, message);
    }
    fresh_.clear();
    fresh_meta_.clear();
  }
  exchanges_sent_ += targets->size();
  overlay_fanout_total_ += targets->size();
  ++overlay_rounds_;
  if (auto* t = trace::current()) {
    t->end(trace::Category::kDp, id_.value(), "dp.exchange", xctx,
           std::int64_t(targets->size()));
  }
}

void DecisionPoint::wal_append_frame(WalRecordType type,
                                     std::span<const std::uint8_t> payload) {
  // No disk: durability is off. Replaying: the frames being applied are
  // already on disk — re-appending them would double the log every
  // recovery.
  if (!disk_ || replaying_) return;
  const sim::Duration cost =
      durable::wal_append(*disk_, std::uint8_t(type), payload);
  pending_wal_cost_ = pending_wal_cost_ + cost;
  wal_dirty_ = true;
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "wal.append", t->ambient(),
               std::int64_t(payload.size()), std::int64_t(cost.us()));
  }
}

void DecisionPoint::wal_log_dispatch(const gruber::DispatchRecord& record,
                                     bool has_request_id,
                                     std::uint64_t request_client,
                                     std::uint64_t request_seq) {
  if (!disk_ || replaying_) return;
  WalDispatch frame;
  frame.record = record;
  frame.applied_at = sim_.now();
  frame.has_request_id = has_request_id;
  frame.request_client = request_client;
  frame.request_seq = request_seq;
  const std::vector<std::uint8_t> payload = net::wire::encode(frame);
  wal_append_frame(WalRecordType::kDispatch, payload);
}

sim::Duration DecisionPoint::wal_commit() {
  if (!disk_ || !wal_dirty_) return sim::Duration{};
  const sim::Duration cost = pending_wal_cost_ + disk_->fsync();
  wal_dirty_ = false;
  pending_wal_cost_ = sim::Duration{};
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "wal.fsync", t->ambient(),
               std::int64_t(disk_->log().size()), std::int64_t(cost.us()));
  }
  return cost;
}

void DecisionPoint::dedup_insert(std::uint64_t client, std::uint64_t seq,
                                 SiteId site) {
  const auto key = std::make_pair(client, seq);
  if (!dedup_.emplace(key, site).second) return;
  dedup_order_.push_back(key);
  while (dedup_order_.size() > options_.durability.dedup_window) {
    dedup_.erase(dedup_order_.front());
    dedup_order_.pop_front();
  }
}

void DecisionPoint::audit_dispatch(std::uint64_t client, std::uint64_t seq) {
  // Observer-only ground truth for I12 — deliberately not cleared by
  // crash(), so a duplicate committed across a crash/recovery boundary is
  // still counted.
  if (++dispatch_audit_[std::make_pair(client, seq)] > 1) {
    ++duplicate_dispatches_;
  }
}

void DecisionPoint::write_checkpoint() {
  if (!disk_ || !running_) return;
  DpCheckpoint checkpoint;
  checkpoint.incarnation = incarnation_;
  checkpoint.taken_at = sim_.now();
  checkpoint.active = engine_.view().active_records(sim_.now());
  checkpoint.dedup.reserve(dedup_order_.size());
  // Oldest-first, so a restore followed by inserts evicts in the original
  // order.
  for (const auto& key : dedup_order_) {
    const auto it = dedup_.find(key);
    if (it == dedup_.end()) continue;
    checkpoint.dedup.push_back({key.first, key.second, it->second});
  }
  if (bank_) {
    checkpoint.has_bank = true;
    checkpoint.bank = bank_->image();
  }
  disk_->write_checkpoint(
      durable::make_checkpoint_image(net::wire::encode(checkpoint)));
  // The checkpoint covers everything the log held; truncating bounds both
  // the device and the next recovery's replay time.
  disk_->truncate_log();
  wal_dirty_ = false;
  pending_wal_cost_ = sim::Duration{};
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "dp.checkpoint", {},
               std::int64_t(checkpoint.active.size()),
               std::int64_t(disk_->checkpoint().size()));
  }
}

sim::Duration DecisionPoint::replay_from_disk() {
  replaying_ = true;
  const sim::Time now = sim_.now();
  const std::uint64_t frames_before = replay_frames_;
  std::uint32_t persisted_incarnation = 0;
  bool bank_restored = false;

  // 1. Checkpoint. A corrupt or torn image reads as "no checkpoint": fall
  // back to replaying the WAL from a pristine bank. (The WAL was truncated
  // when that checkpoint was written, so a corrupt image genuinely loses
  // the pre-checkpoint records — I11 surfaces that as replay mismatches.)
  if (!disk_->checkpoint().empty()) {
    const auto payload = durable::read_checkpoint_image(disk_->checkpoint());
    DpCheckpoint checkpoint;
    if (payload && net::wire::decode(*payload, checkpoint)) {
      persisted_incarnation = checkpoint.incarnation;
      if (checkpoint.has_bank && bank_) {
        bank_->restore(checkpoint.bank);
        bank_restored = true;
      }
      for (const gruber::DispatchRecord& record : checkpoint.active) {
        applied_[record.origin].insert(record.seq);
        if (record.when + record.est_runtime > now) {
          engine_.record(record);
          ++replay_records_;
        }
      }
      for (const DedupEntry& entry : checkpoint.dedup) {
        dedup_insert(entry.client, entry.seq, entry.site);
        ++replay_dedup_;
      }
    } else {
      ++checkpoint_fallbacks_;
    }
  }
  // Checkpoint bank charges are inside the image; without one, replay
  // re-drives every logged charge against a pristine bank, which
  // reproduces the live ledgers exactly (settlement is a pure function of
  // the charge order and times).
  if (!bank_restored && bank_) bank_->reset(sim::Time::zero());

  // 2. WAL scan. The scanner stops at the first short or corrupt frame
  // (torn tail): everything before it is intact by CRC.
  const durable::WalScan scan = durable::wal_scan(
      disk_->log(), [&](std::uint8_t type, std::span<const std::uint8_t> payload) {
        ++replay_frames_;
        switch (WalRecordType(type)) {
          case WalRecordType::kDispatch: {
            WalDispatch frame;
            if (!net::wire::decode(payload, frame)) {
              ++replay_mismatches_;
              return;
            }
            const gruber::DispatchRecord& record = frame.record;
            if (applied_[record.origin].insert(record.seq).second) {
              if (record.when + record.est_runtime > now) {
                engine_.record(record);
              }
              ++replay_records_;
            }
            // Charged per FRAME, not per unique (origin, seq): a
            // delta-merge twin logs a second frame for a seq already
            // applied, and its charge really happened — skipping it here
            // leaves the bank un-rolled past the twin's epoch boundary and
            // the next settle cross-check reads stale counters.
            charge_bank_at(record, frame.applied_at);
            if (frame.has_request_id) {
              dedup_insert(frame.request_client, frame.request_seq,
                           record.site);
              ++replay_dedup_;
            }
            break;
          }
          case WalRecordType::kEpochSettle: {
            WalEpochSettle settle;
            if (!net::wire::decode(payload, settle)) {
              ++replay_mismatches_;
              return;
            }
            // Cross-check: the recomputed settlement must be exactly where
            // the live bank was when this frame was logged.
            if (bank_ && bank_->epochs_settled() != settle.epochs_settled) {
              ++replay_mismatches_;
            }
            break;
          }
          case WalRecordType::kIncarnation: {
            WalIncarnation bump;
            if (!net::wire::decode(payload, bump)) {
              ++replay_mismatches_;
              return;
            }
            persisted_incarnation =
                std::max(persisted_incarnation, bump.incarnation);
            break;
          }
          default:
            ++replay_mismatches_;
            break;
        }
      });
  if (scan.truncated) ++replay_truncations_;

  // 3. I11 audit: every record committed (fsynced) before the crash and
  // still unexpired must be back. pre_crash_committed_ is observer state
  // captured by crash(); misses on a clean disk are recovery bugs, misses
  // after injected torn tails / bit rot are the faults working as intended
  // (chaos gates the invariant on clean-disk points).
  for (const auto& [origin, seq, expiry] : pre_crash_committed_) {
    if (expiry <= now) continue;
    const auto it = applied_.find(origin);
    if (it == applied_.end() || it->second.count(seq) == 0) {
      ++replay_mismatches_;
    }
  }
  pre_crash_committed_.clear();

  replaying_ = false;
  incarnation_ = std::max(incarnation_, persisted_incarnation);
  // Accounted replay time: one sequential read of checkpoint + log, plus a
  // small per-frame CPU cost for decode/apply.
  return disk_->read_all_cost() +
         sim::Duration::micros(20) * double(replay_frames_ - frames_before);
}

void DecisionPoint::inject_disk_tear() {
  if (!disk_) return;
  disk_->tear_tail();
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "disk.torn", {},
               std::int64_t(disk_->log().size()));
  }
}

void DecisionPoint::inject_disk_rot() {
  if (!disk_) return;
  disk_->corrupt_bit();
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "disk.bit_rot", {},
               std::int64_t(disk_->log().size()),
               std::int64_t(disk_->checkpoint().size()));
  }
}

void DecisionPoint::set_disk_stall(double factor) {
  if (!disk_) return;
  disk_->set_stall(factor);
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "disk.stall", {},
               std::int64_t(factor * 100));
  }
}

void DecisionPoint::check_saturation() {
  if (!serving_) return;  // joining/draining: not taking query load
  const StreamingStats& stats = server_.container().sojourn_stats();
  const std::uint64_t count = stats.count();
  const double sum = stats.mean() * double(count);
  const std::uint64_t window_count = count - window_base_count_;
  const double window_avg =
      window_count > 0 ? (sum - window_base_sum_s_) / double(window_count) : 0.0;
  window_base_count_ = count;
  window_base_sum_s_ = sum;

  if (window_avg < options_.saturation_response_s) return;
  if (last_signal_ > sim::Time::zero() &&
      sim_.now() - last_signal_ < options_.saturation_cooldown) {
    return;
  }
  last_signal_ = sim_.now();
  ++saturation_signals_;

  if (auto* t = trace::current()) {
    t->instant(trace::Category::kDp, id_.value(), "dp.saturated", {},
               std::int64_t(server_.container().queue_depth()),
               std::int64_t(window_avg * 1e6));
  }

  SaturationSignal signal;
  signal.from = id_;
  signal.avg_response_s = window_avg;
  signal.observed_qps = double(window_count) / sim::Duration::seconds(30).to_seconds();
  signal.queue_depth = std::int32_t(server_.container().queue_depth());
  peer_client_.notify(*options_.infrastructure_monitor, kSaturation, signal);
  log::info("digruber", "dp ", id_.value(), " saturated: avg response ",
            window_avg, "s, queue ", signal.queue_depth);
}

std::vector<std::vector<std::size_t>> overlay_neighbors(std::size_t n,
                                                        Overlay overlay) {
  std::vector<std::vector<std::size_t>> out(n);
  if (n < 2) return out;
  switch (overlay) {
    case Overlay::kMesh:
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          if (i != j) out[i].push_back(j);
      break;
    case Overlay::kRing:
      for (std::size_t i = 0; i < n; ++i) {
        out[i].push_back((i + 1) % n);
        out[i].push_back((i + n - 1) % n);
      }
      break;
    case Overlay::kStar:
      for (std::size_t i = 1; i < n; ++i) {
        out[0].push_back(i);
        out[i].push_back(0);
      }
      break;
  }
  // Ring of 2 would duplicate the single neighbor.
  if (overlay == Overlay::kRing && n == 2) {
    out[0] = {1};
    out[1] = {0};
  }
  return out;
}

void connect(std::vector<DecisionPoint*> dps, Overlay overlay) {
  const auto neighbors = overlay_neighbors(dps.size(), overlay);
  for (std::size_t i = 0; i < dps.size(); ++i) {
    std::vector<NodeId> nodes;
    nodes.reserve(neighbors[i].size());
    for (const std::size_t j : neighbors[i]) nodes.push_back(dps[j]->node());
    dps[i]->set_neighbors(std::move(nodes));
  }
}

void connect(std::vector<DecisionPoint*> dps, const overlay::Options& options) {
  if (options.kind == overlay::Kind::kMesh) {
    // Bit-exact legacy wiring: raw neighbor lists, no roster, no strategy
    // structure to maintain.
    connect(std::move(dps), Overlay::kMesh);
    return;
  }
  std::vector<overlay::Member> all;
  all.reserve(dps.size());
  for (const DecisionPoint* dp : dps) all.push_back({dp->id(), dp->node()});
  for (DecisionPoint* dp : dps) {
    std::vector<overlay::Member> peers;
    peers.reserve(all.size() - 1);
    for (const overlay::Member& m : all) {
      if (m.dp != dp->id()) peers.push_back(m);
    }
    dp->set_overlay_view(std::move(peers));
  }
}

}  // namespace digruber::digruber
