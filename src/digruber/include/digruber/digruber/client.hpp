#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "digruber/digruber/protocol.hpp"
#include "digruber/gruber/selectors.hpp"
#include "digruber/net/rpc.hpp"
#include "digruber/trace/trace.hpp"

namespace digruber::digruber {

struct ClientOptions {
  /// Per-query deadline; on expiry the client's site selector picks a
  /// random site without considering USLAs (paper Section 4.3).
  sim::Duration timeout = sim::Duration::seconds(60);

  /// Failover (all within the `timeout` budget above; the paper's 60 s
  /// total-deadline semantics are unchanged). Zero disables per-attempt
  /// deadlines: with a single decision point that reproduces the original
  /// one-shot client byte for byte.
  sim::Duration attempt_timeout = sim::Duration::zero();
  /// Decorrelated-jitter backoff between attempts:
  /// delay = min(backoff_max_s, U[backoff_base_s, 3 * previous delay)).
  /// Unlike jittered exponential, consecutive retries across a fleet
  /// desynchronize instead of phase-locking into retry waves. One rng draw
  /// per retry, and only when a retry actually happens, so fault-free runs
  /// consume no extra randomness.
  double backoff_base_s = 0.5;
  double backoff_max_s = 8.0;
  /// Circuit breaker: consecutive failures that open a decision point's
  /// breaker, and how long it stays open before a half-open probe.
  std::uint32_t breaker_threshold = 3;
  sim::Duration breaker_cooldown = sim::Duration::seconds(30);

  /// Overload-aware mode (off by default; enabling changes rng consumption
  /// and wire bytes, so default runs stay byte-identical):
  ///  - attaches the query's absolute deadline to each RPC so containers
  ///    can shed doomed work,
  ///  - honors the retry_after hint in typed overload NACKs,
  ///  - spends retries from a per-client token bucket (adaptive retry:
  ///    bounded amplification under overload),
  ///  - picks failover targets by power-of-two-choices over the DP load
  ///    hints piggybacked on query replies.
  bool overload_aware = false;
  /// Token bucket: capacity and per-scheduled-query refill. At ~10% refill
  /// a client can retry every query occasionally or a few queries hard,
  /// but cannot multiply offered load when the whole mesh is saturated.
  double retry_budget_capacity = 10.0;
  double retry_budget_refill = 0.1;

  /// Membership-aware routing (off by default; enabling changes wire
  /// bytes, so default runs stay byte-identical):
  ///  - attaches the client's membership epoch to each query so a
  ///    decision point with a newer view piggybacks it on the reply,
  ///  - folds those updates into the DP list: newly joined points become
  ///    failover targets, dead/left points are quarantined — removed from
  ///    p2c and failover order with NO half-open re-probing (membership,
  ///    not per-call timeouts, decides when a point is gone),
  ///  - treats a typed draining NACK as a redirect, not a failure.
  bool membership_aware = false;

  /// Emit CRC-32C frame-checksum trailers (v3 frames) on every request
  /// this client sends. Off by default: legacy bytes.
  bool frame_checksums = false;

  /// Market placement (off by default; enabling changes rng consumption
  /// and wire bytes, so default runs stay byte-identical):
  ///  - jobs carrying a budget or deadline ride a bid trailer on the
  ///    query and selection-report frames,
  ///  - decision-point choice minimizes quoted cost (price * cpus *
  ///    runtime) over the deadline-feasible quoted set instead of p2c,
  ///  - jobs without economic fields — or when no quotes have arrived —
  ///    fall back to the load-based path unchanged.
  bool market_placement = false;

  /// Exactly-once dispatch (off by default; enabling widens the
  /// selection-report frame, so default runs stay byte-identical):
  ///  - stamps every selection report with a durable (client, seq)
  ///    request id, assigned once per job,
  ///  - retries a failed report to the SAME decision point after a fixed
  ///    backoff (deterministic: zero rng draws), bounded by the query
  ///    deadline; the point's persisted dedup window collapses the
  ///    retries to one dispatch and returns the original decision.
  bool request_ids = false;
  std::uint32_t report_max_retries = 3;
  sim::Duration report_retry_backoff = sim::Duration::seconds(2);
};

struct QueryOutcome {
  SiteId site;
  bool handled_by_gruber = false;  // true: site came from the decision point
  bool starved = false;            // reply arrived but no admissible site
  sim::Duration response = sim::Duration::zero();
  /// The decision point's free-CPU estimate for the chosen site (-1 for
  /// the random fallback, which picks blind). Scheduling accuracy compares
  /// this belief against ground truth.
  std::int32_t believed_free = -1;
  /// Which decision point answered (invalid for the random fallback).
  NodeId served_by;
};

/// A DI-GRUBER client: a submission host bound to a decision point — or,
/// with failover enabled, to an ordered list of them. Runs the
/// two-round-trip brokering query (fetch loads, report selection) with
/// client-side site-selector logic. On decision-point failure it retries
/// across the list with exponential backoff and a per-point circuit
/// breaker, degrading to random site selection only when the deadline
/// expires or every decision point is down.
class DiGruberClient {
 public:
  using Done = std::function<void(grid::Job job, QueryOutcome outcome)>;

  DiGruberClient(sim::Simulation& sim, net::Transport& transport, ClientId id,
                 NodeId decision_point, std::vector<SiteId> all_sites,
                 std::unique_ptr<gruber::SiteSelector> selector, Rng rng,
                 ClientOptions options = {});

  /// Failover form: `decision_points[0]` is the primary, the rest are
  /// backups tried in order when earlier entries fail or trip the breaker.
  DiGruberClient(sim::Simulation& sim, net::Transport& transport, ClientId id,
                 std::vector<NodeId> decision_points, std::vector<SiteId> all_sites,
                 std::unique_ptr<gruber::SiteSelector> selector, Rng rng,
                 ClientOptions options = {});

  /// Schedule one job; `done` fires exactly once with the chosen site.
  void schedule(grid::Job job, Done done);

  [[nodiscard]] ClientId id() const { return id_; }
  /// This client's own transport address (needed when a partition plan
  /// splits the client fleet across islands).
  [[nodiscard]] NodeId node() const { return rpc_.node(); }
  [[nodiscard]] NodeId decision_point() const { return dps_.front(); }
  [[nodiscard]] const std::vector<NodeId>& decision_points() const { return dps_; }
  [[nodiscard]] std::uint64_t queries() const { return queries_; }
  [[nodiscard]] std::uint64_t handled() const { return handled_; }
  [[nodiscard]] std::uint64_t fallbacks() const { return fallbacks_; }
  [[nodiscard]] std::uint64_t starvations() const { return starvations_; }
  /// Attempts retried on another (or the same, after backoff) decision
  /// point because an earlier attempt failed.
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  /// Circuit-breaker transitions to open (including failed half-open probes).
  [[nodiscard]] std::uint64_t breaker_trips() const { return breaker_trips_; }
  /// Random-site fallbacks taken because no decision point was eligible.
  [[nodiscard]] std::uint64_t all_dps_down_fallbacks() const {
    return all_down_fallbacks_;
  }
  /// Typed overload rejections received from decision points.
  [[nodiscard]] std::uint64_t overload_nacks() const { return overload_nacks_; }
  /// Retries whose delay was stretched to honor a server retry_after hint.
  [[nodiscard]] std::uint64_t retry_after_honored() const {
    return retry_after_honored_;
  }
  /// Retries suppressed because the token bucket was empty.
  [[nodiscard]] std::uint64_t retries_budget_denied() const {
    return retries_budget_denied_;
  }
  /// Attempts routed by power-of-two-choices over DP load hints.
  [[nodiscard]] std::uint64_t p2c_decisions() const { return p2c_decisions_; }

  /// Market-placement telemetry (all zero unless market_placement is on).
  /// Attempts routed by minimizing quoted cost subject to the deadline.
  [[nodiscard]] std::uint64_t priced_dispatches() const {
    return priced_dispatches_;
  }
  /// Market picks declined because the cheapest feasible quote exceeded
  /// the job's budget (the job was placed by the load-based path instead).
  [[nodiscard]] std::uint64_t budget_rejections() const {
    return budget_rejections_;
  }
  /// Economic jobs routed by the load-based path because no decision
  /// point had a usable (quoted, deadline-feasible) offer.
  [[nodiscard]] std::uint64_t market_fallbacks() const {
    return market_fallbacks_;
  }

  /// Membership-aware routing telemetry.
  [[nodiscard]] std::uint64_t membership_epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t membership_updates_applied() const {
    return membership_updates_;
  }
  /// Decision points learned (joined mid-run) via membership updates.
  [[nodiscard]] std::uint64_t dps_added() const { return dps_added_; }
  /// Decision points quarantined because membership declared them dead or
  /// left. Quarantined points get no probes — not even half-open ones.
  [[nodiscard]] std::uint64_t dps_quarantined() const { return dps_quarantined_; }
  /// Attempts answered with a typed draining NACK and redirected.
  [[nodiscard]] std::uint64_t drain_redirects() const { return drain_redirects_; }
  /// Attempts answered with a typed degraded NACK (partition tolerance)
  /// and rerouted. Unlike dead/left points, a degraded point is alive and
  /// is NEVER quarantined — it recovers as soon as its partition heals.
  [[nodiscard]] std::uint64_t degraded_redirects() const {
    return degraded_redirects_;
  }
  /// Replies that carried a degraded-mode hint (level >= 1).
  [[nodiscard]] std::uint64_t degraded_hints_seen() const {
    return degraded_hints_seen_;
  }

  /// Exactly-once telemetry (all zero unless request_ids is on).
  /// Selection reports re-sent after a failed or timed-out attempt.
  [[nodiscard]] std::uint64_t report_retries() const { return report_retries_; }
  /// Report acks that returned the original decision from the decision
  /// point's dedup window (the retry hit an already-committed dispatch).
  [[nodiscard]] std::uint64_t dedup_replies() const { return dedup_replies_; }
  [[nodiscard]] bool is_quarantined(std::size_t idx) const {
    return idx < health_.size() && health_[idx].quarantined;
  }

  /// Rebind the primary to a different decision point (dynamic
  /// rebalancing, Section 5). Backups are kept; the new primary starts
  /// with a closed breaker.
  void rebind(NodeId decision_point);

 private:
  /// Per-decision-point circuit-breaker state.
  struct DpHealth {
    std::uint32_t consecutive_failures = 0;
    bool open = false;
    bool half_open = false;  // probe in flight
    /// Membership declared this point dead or left: excluded from every
    /// scan, including the half-open probe loop. Cleared only by a
    /// membership update that reports the point alive again (restart).
    bool quarantined = false;
    sim::Time open_until;
  };

  [[nodiscard]] bool failover_active() const {
    return dps_.size() > 1 || options_.attempt_timeout > sim::Duration::zero();
  }
  /// First decision point with a closed breaker; failing that, the first
  /// open one whose cooldown expired (marked half-open). -1 if all down.
  /// With market placement on, a job carrying economic fields is routed
  /// to the cheapest deadline-feasible quoted point first.
  [[nodiscard]] int pick_dp(const grid::Job& job);
  void on_dp_failure(std::size_t idx);
  void on_dp_success(std::size_t idx);
  /// Fold the DP load hints piggybacked on a query reply into the
  /// power-of-two-choices scores (overload-aware mode) and the per-DP
  /// wait/price books (market placement). `prices` aligns index-wise with
  /// `hints` and may be empty (no quotes on this reply).
  void apply_load_hints(const std::vector<DpLoadHint>& hints,
                        const std::vector<double>& prices);
  /// Fold a piggybacked membership update into the DP list (add joiners,
  /// quarantine dead/left, un-quarantine resurrected). Epoch-gated.
  void apply_membership(const MembershipUpdate& update);
  void quarantine(std::size_t idx);

  void attempt(grid::Job job, Done done, sim::Time t0, std::uint32_t attempt_n,
               double prev_delay_s, trace::SpanContext qctx);
  /// Shared second round trip: run the selector over `reply` and report
  /// the selection to `dp` (the decision point that answered).
  void complete_with_reply(grid::Job job, Done done, sim::Time t0, NodeId dp,
                           const GetSiteLoadsReply& reply, trace::SpanContext qctx);
  /// Send (or re-send) a selection report. With request_ids on, a failed
  /// attempt is retried to the same decision point after a fixed backoff.
  void send_report(ReportSelectionRequest report, grid::Job job, Done done,
                   sim::Time t0, NodeId dp, SiteId site,
                   std::int32_t believed_free, trace::SpanContext qctx,
                   trace::SpanContext rctx, std::uint32_t attempt_n);
  void finish_with_fallback(grid::Job job, Done done, sim::Time t0, bool starved,
                            trace::SpanContext qctx);

  sim::Simulation& sim_;
  net::RpcClient rpc_;
  ClientId id_;
  std::vector<NodeId> dps_;
  std::vector<DpHealth> health_;
  /// Per-DP load score (estimated wait + queue-depth tiebreak) fed by
  /// piggybacked hints; lower is better. Only used in overload-aware mode.
  std::vector<double> dp_score_;
  /// Per-DP price quote and raw estimated wait (market placement only;
  /// price 0 = no quote heard yet, so the point is not market-eligible).
  std::vector<double> dp_price_;
  std::vector<double> dp_wait_;
  std::vector<SiteId> all_sites_;
  std::unique_ptr<gruber::SiteSelector> selector_;
  Rng rng_;
  ClientOptions options_;

  std::uint64_t queries_ = 0;
  std::uint64_t handled_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t starvations_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t breaker_trips_ = 0;
  std::uint64_t all_down_fallbacks_ = 0;
  std::uint64_t overload_nacks_ = 0;
  std::uint64_t retry_after_honored_ = 0;
  std::uint64_t retries_budget_denied_ = 0;
  std::uint64_t p2c_decisions_ = 0;
  std::uint64_t priced_dispatches_ = 0;
  std::uint64_t budget_rejections_ = 0;
  std::uint64_t market_fallbacks_ = 0;
  /// Retry token bucket (overload-aware mode): refilled on schedule(),
  /// debited one token per retry attempt.
  double retry_tokens_ = 0.0;
  /// Membership-aware routing state: last applied epoch + telemetry.
  std::uint64_t epoch_ = 0;
  std::uint64_t membership_updates_ = 0;
  std::uint64_t dps_added_ = 0;
  std::uint64_t dps_quarantined_ = 0;
  std::uint64_t drain_redirects_ = 0;
  std::uint64_t degraded_redirects_ = 0;
  std::uint64_t degraded_hints_seen_ = 0;
  /// Exactly-once dispatch state: next request id (assigned once per job,
  /// stable across that job's report retries) + telemetry.
  std::uint64_t next_request_seq_ = 1;
  std::uint64_t report_retries_ = 0;
  std::uint64_t dedup_replies_ = 0;
};

}  // namespace digruber::digruber
