#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "digruber/digruber/protocol.hpp"
#include "digruber/gruber/selectors.hpp"
#include "digruber/net/rpc.hpp"

namespace digruber::digruber {

struct ClientOptions {
  /// Per-query deadline; on expiry the client's site selector picks a
  /// random site without considering USLAs (paper Section 4.3).
  sim::Duration timeout = sim::Duration::seconds(60);
};

struct QueryOutcome {
  SiteId site;
  bool handled_by_gruber = false;  // true: site came from the decision point
  bool starved = false;            // reply arrived but no admissible site
  sim::Duration response = sim::Duration::zero();
  /// The decision point's free-CPU estimate for the chosen site (-1 for
  /// the random fallback, which picks blind). Scheduling accuracy compares
  /// this belief against ground truth.
  std::int32_t believed_free = -1;
};

/// A DI-GRUBER client: a submission host statically bound to one decision
/// point. Runs the two-round-trip brokering query (fetch loads, report
/// selection) with client-side site-selector logic, degrading gracefully
/// to random site selection when the decision point saturates.
class DiGruberClient {
 public:
  using Done = std::function<void(grid::Job job, QueryOutcome outcome)>;

  DiGruberClient(sim::Simulation& sim, net::Transport& transport, ClientId id,
                 NodeId decision_point, std::vector<SiteId> all_sites,
                 std::unique_ptr<gruber::SiteSelector> selector, Rng rng,
                 ClientOptions options = {});

  /// Schedule one job; `done` fires exactly once with the chosen site.
  void schedule(grid::Job job, Done done);

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] NodeId decision_point() const { return decision_point_; }
  [[nodiscard]] std::uint64_t queries() const { return queries_; }
  [[nodiscard]] std::uint64_t handled() const { return handled_; }
  [[nodiscard]] std::uint64_t fallbacks() const { return fallbacks_; }
  [[nodiscard]] std::uint64_t starvations() const { return starvations_; }

  /// Rebind to a different decision point (dynamic rebalancing, Section 5).
  void rebind(NodeId decision_point) { decision_point_ = decision_point; }

 private:
  void finish_with_fallback(grid::Job job, Done done, sim::Time t0, bool starved);

  sim::Simulation& sim_;
  net::RpcClient rpc_;
  ClientId id_;
  NodeId decision_point_;
  std::vector<SiteId> all_sites_;
  std::unique_ptr<gruber::SiteSelector> selector_;
  Rng rng_;
  ClientOptions options_;

  std::uint64_t queries_ = 0;
  std::uint64_t handled_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t starvations_ = 0;
};

}  // namespace digruber::digruber
