#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "digruber/digruber/protocol.hpp"
#include "digruber/gruber/selectors.hpp"
#include "digruber/net/rpc.hpp"
#include "digruber/trace/trace.hpp"

namespace digruber::digruber {

struct ClientOptions {
  /// Per-query deadline; on expiry the client's site selector picks a
  /// random site without considering USLAs (paper Section 4.3).
  sim::Duration timeout = sim::Duration::seconds(60);

  /// Failover (all within the `timeout` budget above; the paper's 60 s
  /// total-deadline semantics are unchanged). Zero disables per-attempt
  /// deadlines: with a single decision point that reproduces the original
  /// one-shot client byte for byte.
  sim::Duration attempt_timeout = sim::Duration::zero();
  /// Exponential backoff between attempts: base * 2^(n-1), capped.
  double backoff_base_s = 0.5;
  double backoff_max_s = 8.0;
  /// Multiplicative jitter: delay *= 1 + jitter * U[0,1). Drawn only when
  /// a retry actually happens, so fault-free runs consume no extra
  /// randomness.
  double backoff_jitter = 0.2;
  /// Circuit breaker: consecutive failures that open a decision point's
  /// breaker, and how long it stays open before a half-open probe.
  std::uint32_t breaker_threshold = 3;
  sim::Duration breaker_cooldown = sim::Duration::seconds(30);
};

struct QueryOutcome {
  SiteId site;
  bool handled_by_gruber = false;  // true: site came from the decision point
  bool starved = false;            // reply arrived but no admissible site
  sim::Duration response = sim::Duration::zero();
  /// The decision point's free-CPU estimate for the chosen site (-1 for
  /// the random fallback, which picks blind). Scheduling accuracy compares
  /// this belief against ground truth.
  std::int32_t believed_free = -1;
  /// Which decision point answered (invalid for the random fallback).
  NodeId served_by;
};

/// A DI-GRUBER client: a submission host bound to a decision point — or,
/// with failover enabled, to an ordered list of them. Runs the
/// two-round-trip brokering query (fetch loads, report selection) with
/// client-side site-selector logic. On decision-point failure it retries
/// across the list with exponential backoff and a per-point circuit
/// breaker, degrading to random site selection only when the deadline
/// expires or every decision point is down.
class DiGruberClient {
 public:
  using Done = std::function<void(grid::Job job, QueryOutcome outcome)>;

  DiGruberClient(sim::Simulation& sim, net::Transport& transport, ClientId id,
                 NodeId decision_point, std::vector<SiteId> all_sites,
                 std::unique_ptr<gruber::SiteSelector> selector, Rng rng,
                 ClientOptions options = {});

  /// Failover form: `decision_points[0]` is the primary, the rest are
  /// backups tried in order when earlier entries fail or trip the breaker.
  DiGruberClient(sim::Simulation& sim, net::Transport& transport, ClientId id,
                 std::vector<NodeId> decision_points, std::vector<SiteId> all_sites,
                 std::unique_ptr<gruber::SiteSelector> selector, Rng rng,
                 ClientOptions options = {});

  /// Schedule one job; `done` fires exactly once with the chosen site.
  void schedule(grid::Job job, Done done);

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] NodeId decision_point() const { return dps_.front(); }
  [[nodiscard]] const std::vector<NodeId>& decision_points() const { return dps_; }
  [[nodiscard]] std::uint64_t queries() const { return queries_; }
  [[nodiscard]] std::uint64_t handled() const { return handled_; }
  [[nodiscard]] std::uint64_t fallbacks() const { return fallbacks_; }
  [[nodiscard]] std::uint64_t starvations() const { return starvations_; }
  /// Attempts retried on another (or the same, after backoff) decision
  /// point because an earlier attempt failed.
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  /// Circuit-breaker transitions to open (including failed half-open probes).
  [[nodiscard]] std::uint64_t breaker_trips() const { return breaker_trips_; }
  /// Random-site fallbacks taken because no decision point was eligible.
  [[nodiscard]] std::uint64_t all_dps_down_fallbacks() const {
    return all_down_fallbacks_;
  }

  /// Rebind the primary to a different decision point (dynamic
  /// rebalancing, Section 5). Backups are kept; the new primary starts
  /// with a closed breaker.
  void rebind(NodeId decision_point);

 private:
  /// Per-decision-point circuit-breaker state.
  struct DpHealth {
    std::uint32_t consecutive_failures = 0;
    bool open = false;
    bool half_open = false;  // probe in flight
    sim::Time open_until;
  };

  [[nodiscard]] bool failover_active() const {
    return dps_.size() > 1 || options_.attempt_timeout > sim::Duration::zero();
  }
  /// First decision point with a closed breaker; failing that, the first
  /// open one whose cooldown expired (marked half-open). -1 if all down.
  [[nodiscard]] int pick_dp();
  void on_dp_failure(std::size_t idx);
  void on_dp_success(std::size_t idx);

  void attempt(grid::Job job, Done done, sim::Time t0, std::uint32_t attempt_n,
               trace::SpanContext qctx);
  /// Shared second round trip: run the selector over `reply` and report
  /// the selection to `dp` (the decision point that answered).
  void complete_with_reply(grid::Job job, Done done, sim::Time t0, NodeId dp,
                           const GetSiteLoadsReply& reply, trace::SpanContext qctx);
  void finish_with_fallback(grid::Job job, Done done, sim::Time t0, bool starved,
                            trace::SpanContext qctx);

  sim::Simulation& sim_;
  net::RpcClient rpc_;
  ClientId id_;
  std::vector<NodeId> dps_;
  std::vector<DpHealth> health_;
  std::vector<SiteId> all_sites_;
  std::unique_ptr<gruber::SiteSelector> selector_;
  Rng rng_;
  ClientOptions options_;

  std::uint64_t queries_ = 0;
  std::uint64_t handled_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t starvations_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t breaker_trips_ = 0;
  std::uint64_t all_down_fallbacks_ = 0;
};

}  // namespace digruber::digruber
