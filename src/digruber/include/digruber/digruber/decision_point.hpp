#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <map>
#include <tuple>

#include "digruber/common/stats.hpp"
#include "digruber/digruber/durability.hpp"
#include "digruber/digruber/membership.hpp"
#include "digruber/digruber/protocol.hpp"
#include "digruber/economy/economy.hpp"
#include "digruber/grid/topology.hpp"
#include "digruber/gruber/engine.hpp"
#include "digruber/net/rpc.hpp"
#include "digruber/overlay/overlay.hpp"
#include "digruber/sim/simulation.hpp"

namespace digruber::digruber {

/// How brokering state is disseminated among decision points (paper
/// Section 3.5). The experiments use kUsageOnly.
enum class Dissemination : std::uint8_t {
  /// Strategy 1: exchange USLA/snapshot state and usage.
  kUslaAndUsage = 0,
  /// Strategy 2: exchange only utilization (dispatch records); static
  /// resource knowledge is assumed complete.
  kUsageOnly,
  /// Strategy 3: no exchange; each decision point relies on its own
  /// observations only.
  kNone,
};

/// Partition tolerance: split-brain detection via piggybacked state
/// digests, targeted delta anti-entropy on divergence, and
/// staleness-guarded admission. Off by default — no digest trailers are
/// emitted, no delta pulls happen, admission is never degraded, and every
/// message keeps its legacy byte layout.
struct PartitionToleranceOptions {
  bool enabled = false;
  /// A peer not heard from for longer than this is *stale*: its dispatch
  /// decisions may be missing from the local view. With membership on,
  /// suspect/dead verdicts also mark a peer stale regardless of this
  /// clock, so the failure detector drives admission directly.
  sim::Duration staleness_threshold = sim::Duration::minutes(2);
  /// Fraction of believed-free capacity discounted in query replies while
  /// degraded (level 1): stale peers may have committed part of that
  /// capacity on the other side of the split.
  double stale_discount = 0.5;
  /// Settled-window padding for digests (see gruber::ViewDigest): records
  /// younger than one exchange interval plus this slack are too fresh to
  /// compare (still propagating), and records expiring within this slack
  /// of the sender's clock are excluded so in-flight expiry cannot fake a
  /// divergence. Must exceed the worst one-way exchange delay.
  sim::Duration digest_slack = sim::Duration::seconds(5);
  /// Throttle: at most one delta pull per peer per this interval (a digest
  /// mismatch repeats on every exchange round until the views converge).
  sim::Duration delta_pull_min_gap = sim::Duration::seconds(30);
  /// Deadline for each targeted delta anti-entropy pull.
  sim::Duration delta_pull_timeout = sim::Duration::seconds(30);
};

struct DecisionPointOptions {
  net::ContainerProfile profile = net::ContainerProfile::gt3();
  sim::Duration exchange_interval = sim::Duration::minutes(3);
  Dissemination dissemination = Dissemination::kUsageOnly;
  /// Modelled per-site USLA evaluation cost inside the engine handler.
  sim::Duration eval_cost_per_site = sim::Duration::millis(2.5);
  /// Saturation detection (Section 5): sliding response-time window.
  sim::Duration saturation_window = sim::Duration::seconds(60);
  double saturation_response_s = 30.0;
  sim::Duration saturation_cooldown = sim::Duration::minutes(2);
  std::optional<NodeId> infrastructure_monitor;
  /// Deadline for each per-neighbor anti-entropy catch-up call after a
  /// restart.
  sim::Duration catchup_timeout = sim::Duration::seconds(30);
  /// Piggyback this point's container-load hint on outgoing exchanges and
  /// attach known DP loads to query replies (for client-side load-aware
  /// failover). Off by default: legacy messages stay byte-identical.
  bool advertise_load = false;
  /// Dynamic membership (failure detector + runtime join/leave). Off by
  /// default: the mesh is the static `set_neighbors` wiring and all
  /// messages keep their legacy byte layout. When enabled, the neighbor
  /// set is derived from the membership table, exchanges carry the
  /// gossiped view, and heartbeats piggyback on the exchange rounds.
  MembershipOptions membership{};
  /// Partition tolerance (digest piggyback + delta anti-entropy +
  /// staleness-guarded admission). Off by default: byte-identical wire.
  PartitionToleranceOptions partition{};
  /// Emit CRC-32C frame-checksum trailers (v3 frames) on every frame this
  /// point sends. Verification of incoming v3 frames is always on; this
  /// only controls emission, so the default stays byte-identical.
  bool frame_checksums = false;
  /// Economic brokering (price quoting + the karma credit allocator). Off
  /// by default: no price trailers are emitted, no credit bank exists, and
  /// every message keeps its legacy byte layout.
  economy::EconomyOptions economy{};
  /// Durable local state (WAL + checkpoints on a simulated device) with
  /// checkpoint+WAL replay on restart and an exactly-once dispatch dedup
  /// window. Off by default: no disk exists and recovery stays the
  /// peer-only anti-entropy path.
  DurabilityOptions durability{};
  /// Dissemination overlay strategy (who each exchange round pushes to
  /// and the relay TTL riding along). Defaults to the paper's full mesh:
  /// every live neighbor, no hop trailer, byte-identical wire.
  overlay::Options overlay{};
  /// Observer-only I13 bookkeeping (chaos --overlay): log every own
  /// accepted record's (seq, time) so the harness can bound convergence.
  /// Reads state, changes no decision path.
  bool overlay_audit = false;
};

/// A DI-GRUBER decision point: a GRUBER engine exposed as a Web service
/// on a GT3/GT4-like container, loosely synchronized with its peers by a
/// periodic flooding exchange of dispatch records.
class DecisionPoint {
 public:
  DecisionPoint(sim::Simulation& sim, net::Transport& transport, DpId id,
                const grid::VoCatalog& catalog, const usla::AllocationTree& tree,
                DecisionPointOptions options);

  [[nodiscard]] DpId id() const { return id_; }
  [[nodiscard]] NodeId node() const { return server_.node(); }
  /// Address of the outbound peer-RPC endpoint (needed when partitioning:
  /// both of the host's endpoints live on the same island).
  [[nodiscard]] NodeId peer_node() const { return peer_client_.node(); }
  [[nodiscard]] gruber::GruberEngine& engine() { return engine_; }
  [[nodiscard]] const net::RpcServer& server() const { return server_; }
  [[nodiscard]] const DecisionPointOptions& options() const { return options_; }

  /// Install complete static knowledge of the grid (strategy 2 premise).
  void bootstrap(const std::vector<grid::SiteSnapshot>& snapshots);

  /// Peers this decision point pushes exchange messages to.
  void set_neighbors(std::vector<NodeId> neighbors);

  /// Static overlay wiring: install the full live peer roster (sorted or
  /// not; it is sorted by DpId here) and let the strategy derive this
  /// point's push set from it. `set_neighbors` remains the raw
  /// mesh-equivalent wiring; under membership the view is re-derived from
  /// the table instead and both calls are superseded by refresh.
  void set_overlay_view(std::vector<overlay::Member> peers);

  /// Fault injection: kill this decision point. It detaches from the
  /// network (in-flight requests are lost, packets to it drop), its timers
  /// stop, and all volatile brokering state — grid view, dedup sets, the
  /// un-flooded record buffer — is discarded. Idempotent.
  void crash();

  /// Bring a crashed decision point back at the same address: re-bootstrap
  /// static grid knowledge, restart timers, and run an anti-entropy
  /// catch-up exchange with every neighbor so dedup state and dispatch
  /// records re-converge. New own records use a fresh sequence epoch so
  /// peers never mistake them for pre-crash duplicates.
  void restart(const std::vector<grid::SiteSnapshot>& snapshots);

  [[nodiscard]] bool running() const { return running_; }
  /// Restart generation (0 until the first restart).
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }

  /// --- Dynamic membership (no-ops unless options.membership.enabled) ---

  /// Install the deployment-time member set (self included or not; the
  /// table filters its own entry) and derive the neighbor list from it.
  void seed_membership(const std::vector<MemberInfo>& members);
  /// Runtime join: bootstrap from one of `seeds` via a state snapshot,
  /// then serve. Until the snapshot lands this point is *not serving*:
  /// query traffic is refused with a typed draining NACK, and no exchange
  /// frames are emitted. A failed transfer rotates to the next seed after
  /// a backoff.
  void join(std::vector<NodeId> seeds);
  /// Graceful leave: stop accepting queries, flush the final exchange,
  /// announce departure to every neighbor, and stop the timers. The
  /// server stays attached so stragglers get drain NACKs.
  void leave();

  /// False while joining (pre-snapshot) or after leave().
  [[nodiscard]] bool serving() const { return serving_; }
  [[nodiscard]] bool left() const { return left_; }
  /// The membership view (nullptr when membership is disabled).
  [[nodiscard]] const MembershipTable* membership() const {
    return membership_.get();
  }
  /// Join lifecycle timestamps (zero until reached): when join() was
  /// called and when the point reached query-serving state.
  [[nodiscard]] sim::Time join_started_at() const { return join_started_; }
  [[nodiscard]] sim::Time serving_since() const { return serving_since_; }
  [[nodiscard]] std::uint64_t join_retries() const { return join_retries_; }
  /// Bootstrap snapshots this point served to joiners.
  [[nodiscard]] std::uint64_t snapshots_served() const { return snapshots_served_; }
  /// Dispatch records applied from a join snapshot (vs full-history replay).
  [[nodiscard]] std::uint64_t join_snapshot_records() const {
    return join_snapshot_records_;
  }
  /// Query requests refused at the door while joining or draining.
  [[nodiscard]] std::uint64_t drain_nacks_sent() const {
    return server_.requests_refused_by_gate();
  }

  /// Counters for the experiment harness.
  [[nodiscard]] std::uint64_t queries_served() const { return queries_; }
  [[nodiscard]] std::uint64_t selections_recorded() const { return selections_; }
  [[nodiscard]] std::uint64_t exchanges_sent() const { return exchanges_sent_; }
  [[nodiscard]] std::uint64_t exchanges_received() const { return exchanges_received_; }
  [[nodiscard]] std::uint64_t records_applied() const { return records_applied_; }
  [[nodiscard]] std::uint64_t records_duplicate() const { return records_duplicate_; }
  [[nodiscard]] std::uint64_t saturation_signals() const { return saturation_signals_; }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }
  /// Records re-learned from neighbors during post-restart catch-up.
  [[nodiscard]] std::uint64_t resync_records_applied() const { return resync_applied_; }
  /// Catch-ups triggered by a flooding-round gap (partition/loss rejoin).
  [[nodiscard]] std::uint64_t gap_resyncs() const { return gap_resyncs_; }
  /// Catch-up requests this point answered for restarted neighbors.
  [[nodiscard]] std::uint64_t catchups_served() const { return catchups_served_; }
  /// Records shipped TO this point in kCatchUp replies (duplicates
  /// included): the full-snapshot anti-entropy transfer volume a restart
  /// pays, and the number durable replay + delta pulls exist to shrink.
  [[nodiscard]] std::uint64_t catchup_records_received() const {
    return catchup_records_received_;
  }

  /// --- Partition tolerance (all zero unless options.partition.enabled) ---

  /// Exchange rounds whose piggybacked digest disagreed with the local view.
  [[nodiscard]] std::uint64_t digest_mismatches() const { return digest_mismatches_; }
  /// Targeted delta anti-entropy pulls issued / answered.
  [[nodiscard]] std::uint64_t delta_pulls_sent() const { return delta_pulls_sent_; }
  [[nodiscard]] std::uint64_t delta_pulls_served() const { return delta_pulls_served_; }
  /// Records learned through delta pulls (vs full kCatchUp snapshots).
  [[nodiscard]] std::uint64_t delta_records_applied() const {
    return delta_records_applied_;
  }
  /// (origin, seq) twins that disagreed on content and had to be resolved.
  [[nodiscard]] std::uint64_t delta_conflicts() const { return delta_conflicts_; }
  /// Same logical work admitted by two origins across a split.
  [[nodiscard]] std::uint64_t double_commits() const { return double_commits_; }
  /// Delta pulls after which the local digest matched the peer's.
  [[nodiscard]] std::uint64_t delta_converged() const { return delta_converged_; }
  /// Queries refused with kNackDegraded (quorum of peers stale).
  [[nodiscard]] std::uint64_t degraded_refusals() const { return degraded_refusals_; }
  /// Replies that carried a degraded-mode hint (level >= 1).
  [[nodiscard]] std::uint64_t degraded_replies() const { return degraded_replies_; }
  /// Current degraded assessment (level 0 when healthy or PT disabled).
  [[nodiscard]] DegradedHint degraded_hint(sim::Time now) const;

  /// --- Economy (all zero/null unless options.economy.enabled) ---

  /// The credit bank (nullptr unless the karma allocator is active).
  [[nodiscard]] const economy::CreditBank* bank() const { return bank_.get(); }
  /// Queries whose VO the karma gate refused to broker (empty candidates).
  [[nodiscard]] std::uint64_t credit_denials() const { return credit_denials_; }
  /// Over-allowance queries grace-admitted (arbitration winner, idle grid).
  [[nodiscard]] std::uint64_t grace_admissions() const { return grace_admissions_; }
  /// Query replies that carried price quotes.
  [[nodiscard]] std::uint64_t priced_replies() const { return priced_replies_; }
  /// Selections reported with an economic bid attached.
  [[nodiscard]] std::uint64_t priced_selections() const { return priced_selections_; }

  /// --- Durability (all zero/null unless options.durability.enabled) ---

  /// The simulated storage device (nullptr when durability is off). The
  /// device survives crash() by design: crash models lost RAM, not lost
  /// disk.
  [[nodiscard]] const durable::SimDisk* disk() const { return disk_.get(); }
  /// Checkpoint+WAL replays performed at restart.
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  /// WAL frames read back intact during replays.
  [[nodiscard]] std::uint64_t replay_frames() const { return replay_frames_; }
  /// Dispatch records re-applied to the view from local state (vs fetched
  /// from peers through catch-up/delta anti-entropy).
  [[nodiscard]] std::uint64_t replay_records() const { return replay_records_; }
  /// Dedup-window entries rebuilt from checkpoint+WAL.
  [[nodiscard]] std::uint64_t replay_dedup_entries() const { return replay_dedup_; }
  /// Replays that hit a torn/corrupt WAL tail and truncated there.
  [[nodiscard]] std::uint64_t replay_truncations() const { return replay_truncations_; }
  /// Replays whose checkpoint slot was absent or failed its checksum.
  [[nodiscard]] std::uint64_t checkpoint_fallbacks() const { return checkpoint_fallbacks_; }
  /// I11 audit: durably-committed records missing after a replay (always
  /// zero unless a disk fault destroyed committed bytes).
  [[nodiscard]] std::uint64_t replay_mismatches() const { return replay_mismatches_; }
  /// Retried reports collapsed by the dedup window to the original decision.
  [[nodiscard]] std::uint64_t dedup_hits() const { return dedup_hits_; }
  /// I12 audit: distinct dispatch records created for one request id
  /// (ground truth across crashes; zero means exactly-once held).
  [[nodiscard]] std::uint64_t duplicate_dispatches() const { return duplicate_dispatches_; }
  /// Accounted sim-time cost of the most recent recovery replay.
  [[nodiscard]] sim::Duration last_recovery_cost() const { return last_recovery_cost_; }

  /// --- Overlay (mesh defaults: rounds/fanout count, rest stays zero) ---

  /// Exchange rounds that actually pushed to at least one peer.
  [[nodiscard]] std::uint64_t overlay_rounds() const { return overlay_rounds_; }
  /// Sum of per-round push-set sizes (fanout_total / rounds = mean fanout).
  [[nodiscard]] std::uint64_t overlay_fanout_total() const {
    return overlay_fanout_total_;
  }
  /// Deepest relay depth observed on any received exchange frame.
  [[nodiscard]] std::uint64_t overlay_max_hops() const { return overlay_max_hops_; }
  /// Fresh records not re-relayed because their frame hit the strategy TTL.
  [[nodiscard]] std::uint64_t overlay_relays_suppressed() const {
    return overlay_relays_suppressed_;
  }
  /// Strategy structure rebuilds that changed this point's push set
  /// (tree/super-peer repair under churn).
  [[nodiscard]] std::uint64_t overlay_rebuilds() const { return overlay_rebuilds_; }
  /// Exchange frames copied to a rotating dead peer so a falsely-buried
  /// point can learn the verdict and refute it (sparse overlays only).
  [[nodiscard]] std::uint64_t overlay_grave_probes() const {
    return overlay_grave_probes_;
  }
  /// Exchange body bytes this point put on the wire, counting every copy
  /// sent (a mesh broadcast is one encode but fan-out many sends).
  [[nodiscard]] std::uint64_t overlay_bytes_sent() const {
    return overlay_bytes_sent_;
  }
  /// I13 audit snapshots: every (origin, seq) this point has applied, and
  /// the (seq, accepted-at-seconds) log of its own records (only kept
  /// when options.overlay_audit; survives crash like the other audit
  /// notebooks — observer-only ground truth).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  applied_keys() const;
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, double>>&
  own_record_log() const {
    return own_record_log_;
  }

  /// Disk fault hooks (FaultPlan-driven; no-ops when durability is off).
  void inject_disk_tear();
  void inject_disk_rot();
  void set_disk_stall(double factor);

  /// Response-time samples the detector monitors (exposed for GRUB-SIM).
  [[nodiscard]] const StreamingStats& response_stats() const {
    return server_.container().sojourn_stats();
  }

  void stop();

 private:
  net::Served handle_get_site_loads(std::span<const std::uint8_t> body, NodeId from);
  net::Served handle_report_selection(std::span<const std::uint8_t> body, NodeId from);
  net::Served handle_exchange(std::span<const std::uint8_t> body, NodeId from);
  net::Served handle_catch_up(std::span<const std::uint8_t> body, NodeId from);
  net::Served handle_join_snapshot(std::span<const std::uint8_t> body, NodeId from);
  net::Served handle_leave(std::span<const std::uint8_t> body, NodeId from);
  net::Served handle_delta_pull(std::span<const std::uint8_t> body, NodeId from);
  /// Digest-mismatch check on a received exchange (after its records were
  /// applied); issues a throttled delta pull when the views diverge.
  /// This point's digest over the settled window ending one exchange
  /// interval (plus slack) before `now` — the window every healthy peer
  /// has fully absorbed, so any mismatch is real divergence.
  [[nodiscard]] gruber::ViewDigest settled_digest(sim::Time now) const;
  void maybe_delta_pull(const ExchangeMessage& message);
  /// Pull the diverged VO ranges (and base state when `want_bases`) from a
  /// peer and merge the reply deterministically.
  void run_delta_pull(NodeId peer_node, DpId peer, std::uint64_t round,
                      std::vector<VoId> vos, bool want_bases);
  /// Snapshot of this point's container load for piggybacking.
  [[nodiscard]] DpLoadHint self_hint() const;
  /// Congestion-derived price quote for placements through this point.
  [[nodiscard]] double self_price() const;
  /// Grid free fraction from the local view (the karma scarcity signal).
  [[nodiscard]] double free_fraction(sim::Time now) const;
  /// Meter a newly-applied dispatch record against the credit bank (all
  /// record-apply paths: own selections, flooding, catch-up, delta pulls,
  /// join snapshots).
  void charge_bank(const gruber::DispatchRecord& record);
  /// Same, metered at an explicit time: recovery replay re-drives charges
  /// with their original apply times so settlement lands in the original
  /// epochs.
  void charge_bank_at(const gruber::DispatchRecord& record, sim::Time at);
  /// Append one frame to the WAL (no-op when durability is off or while
  /// replaying). The accounted write latency accumulates into
  /// pending_wal_cost_, folded into the next wal_commit().
  void wal_append_frame(WalRecordType type, std::span<const std::uint8_t> payload);
  /// Append one applied dispatch record to the WAL.
  void wal_log_dispatch(const gruber::DispatchRecord& record,
                        bool has_request_id, std::uint64_t request_client,
                        std::uint64_t request_seq);
  /// Durability barrier after a batch of appends. Returns the accumulated
  /// append latency plus the fsync cost (zero when nothing was appended).
  sim::Duration wal_commit();
  /// Remember (client, seq) -> site in the bounded dedup window.
  void dedup_insert(std::uint64_t client, std::uint64_t seq, SiteId site);
  /// I12 ground-truth audit: count dispatch records per request id.
  void audit_dispatch(std::uint64_t client, std::uint64_t seq);
  /// Periodic checkpoint: serialize state, replace the slot, truncate the
  /// WAL.
  void write_checkpoint();
  /// Recovery replay at restart: restore checkpoint, scan the WAL, rebuild
  /// view/bank/dedup/incarnation. Returns the accounted replay cost.
  sim::Duration replay_from_disk();

  void run_exchange(bool final_flush = false);
  void run_catch_up();
  void check_saturation();
  void start_timers();
  /// Re-derive the neighbor list from the membership table's live set.
  void refresh_neighbors();
  /// Re-derive the strategy's structure from the current overlay view;
  /// counts (and traces) the rebuild when the push set changed and the
  /// call is a repair rather than initial wiring.
  void rebuild_strategy(bool initial);
  /// Emit one trace instant per membership transition ("membership.<state>").
  void trace_transitions(const std::vector<MembershipTransition>& transitions);
  /// One join attempt against the next seed in rotation.
  void try_join();

  sim::Simulation& sim_;
  DpId id_;
  DecisionPointOptions options_;
  gruber::GruberEngine engine_;
  net::RpcServer server_;
  net::RpcClient peer_client_;

  std::vector<NodeId> neighbors_;
  /// Dissemination strategy (never null; FullMesh by default) plus the
  /// live roster it derives structure from. Under static wiring the
  /// roster comes from set_overlay_view; under membership it is rebuilt
  /// from the table's live set on every refresh.
  std::unique_ptr<overlay::Strategy> strategy_;
  std::vector<overlay::Member> overlay_peers_;
  /// Per-record relay bookkeeping parallel to fresh_: which peer the
  /// record was learned from (self for own records) and the relay depth
  /// it arrived at. Sparse overlays compose per-target frames from it —
  /// split-horizon: a record is never relayed back to the peer that sent
  /// it, and each frame's hop trailer is the max depth of the records it
  /// actually carries, so one deep record cannot poison the relay budget
  /// of records that rode in shallow. Volatile, like fresh_.
  struct FreshMeta {
    DpId from;
    std::uint32_t depth = 0;
  };
  std::vector<FreshMeta> fresh_meta_;
  std::uint64_t overlay_rounds_ = 0;
  std::uint64_t overlay_fanout_total_ = 0;
  std::uint64_t overlay_max_hops_ = 0;
  std::uint64_t overlay_relays_suppressed_ = 0;
  std::uint64_t overlay_rebuilds_ = 0;
  std::uint64_t overlay_grave_probes_ = 0;
  std::uint64_t overlay_bytes_sent_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t exchange_round_ = 0;
  /// Records learned since the last exchange tick (own + relayed).
  std::vector<gruber::DispatchRecord> fresh_;
  /// Dedup for flooding: per-origin applied sequence numbers.
  std::unordered_map<DpId, std::unordered_set<std::uint64_t>> applied_;
  /// Last exchange round seen per peer. A jump of more than one means
  /// flooding rounds were lost (partition, loss) — since flooding never
  /// retransmits, the gap triggers an anti-entropy catch-up.
  std::unordered_map<DpId, std::uint64_t> last_peer_round_;
  sim::Time last_catch_up_;
  /// Freshest load hint heard from each peer (keyed by its server node),
  /// attached to query replies when advertise_load is on. Volatile: lost
  /// on crash like the rest of the soft state.
  std::unordered_map<std::uint64_t, DpLoadHint> peer_hints_;
  /// Freshest price quote heard from each peer (keyed by its server node),
  /// relayed to clients beside the load hints. Volatile like peer_hints_.
  std::unordered_map<std::uint64_t, double> peer_prices_;

  bool running_ = true;
  std::uint32_t incarnation_ = 0;

  /// Dynamic-membership state (unused when options.membership.enabled is
  /// false: membership_ stays null and serving_ stays true forever).
  std::unique_ptr<MembershipTable> membership_;
  bool serving_ = true;
  bool joining_ = false;
  bool left_ = false;
  std::vector<NodeId> join_seeds_;
  std::uint32_t join_attempt_ = 0;
  sim::Time join_started_;
  sim::Time serving_since_;
  std::uint64_t join_retries_ = 0;
  std::uint64_t snapshots_served_ = 0;
  std::uint64_t join_snapshot_records_ = 0;

  std::uint64_t queries_ = 0;
  std::uint64_t selections_ = 0;
  std::uint64_t exchanges_sent_ = 0;
  std::uint64_t exchanges_received_ = 0;
  std::uint64_t records_applied_ = 0;
  std::uint64_t records_duplicate_ = 0;
  std::uint64_t saturation_signals_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t resync_applied_ = 0;
  std::uint64_t catchups_served_ = 0;
  std::uint64_t catchup_records_received_ = 0;
  std::uint64_t gap_resyncs_ = 0;

  /// Partition-tolerance state (only touched when options.partition.enabled):
  /// per-peer last-heard times — the staleness clock behind degraded-mode
  /// admission — and per-peer delta-pull throttle stamps. Volatile.
  std::unordered_map<DpId, sim::Time> peer_last_heard_;
  std::unordered_map<DpId, sim::Time> last_delta_pull_;
  std::uint64_t digest_mismatches_ = 0;
  std::uint64_t delta_pulls_sent_ = 0;
  std::uint64_t delta_pulls_served_ = 0;
  std::uint64_t delta_records_applied_ = 0;
  std::uint64_t delta_conflicts_ = 0;
  std::uint64_t double_commits_ = 0;
  std::uint64_t delta_converged_ = 0;
  std::uint64_t degraded_refusals_ = 0;
  std::uint64_t degraded_replies_ = 0;

  /// Economy state (only touched when options.economy.enabled): the credit
  /// bank is created when the karma allocator is selected and survives
  /// crashes only as a fresh endowment (reset(), like the rest of the soft
  /// state).
  std::unique_ptr<economy::CreditBank> bank_;
  std::uint64_t credit_denials_ = 0;
  std::uint64_t grace_admissions_ = 0;
  std::uint64_t priced_replies_ = 0;
  std::uint64_t priced_selections_ = 0;

  /// Durable state (only when options.durability.enabled). The disk is
  /// deliberately *not* reset by crash(); everything else here is volatile
  /// and rebuilt from the disk at restart.
  std::unique_ptr<durable::SimDisk> disk_;
  bool replaying_ = false;
  bool wal_dirty_ = false;  // appends since the last fsync barrier
  sim::Duration pending_wal_cost_;  // append latency awaiting the barrier
  /// Exactly-once dedup window: (client, seq) -> original placement,
  /// bounded by options.durability.dedup_window, persisted through the WAL.
  std::map<std::pair<std::uint64_t, std::uint64_t>, SiteId> dedup_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> dedup_order_;
  std::uint64_t recoveries_ = 0;
  std::uint64_t replay_frames_ = 0;
  std::uint64_t replay_records_ = 0;
  std::uint64_t replay_dedup_ = 0;
  std::uint64_t replay_truncations_ = 0;
  std::uint64_t checkpoint_fallbacks_ = 0;
  std::uint64_t replay_mismatches_ = 0;
  std::uint64_t dedup_hits_ = 0;
  std::uint64_t duplicate_dispatches_ = 0;
  sim::Duration last_recovery_cost_;
  /// Audit state for the I11/I12 invariants. Observer-only ground truth:
  /// intentionally NOT cleared by crash() (it survives the way an external
  /// checker's notebook would), never serialized, never read by any
  /// decision path.
  std::vector<std::tuple<DpId, std::uint64_t, sim::Time>> pre_crash_committed_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> dispatch_audit_;
  /// I13 audit log of own accepted records (options.overlay_audit only).
  std::vector<std::pair<std::uint64_t, double>> own_record_log_;

  /// Saturation detector state: last emitted signal and the completed
  /// count / sojourn sum at the previous check (for windowed averages).
  sim::Time last_signal_;
  std::uint64_t window_base_count_ = 0;
  double window_base_sum_s_ = 0.0;

  std::unique_ptr<sim::PeriodicTimer> exchange_timer_;
  std::unique_ptr<sim::PeriodicTimer> saturation_timer_;
  std::unique_ptr<sim::PeriodicTimer> checkpoint_timer_;
};

/// Overlay topologies connecting decision points (the paper uses a full
/// mesh; ring and star are provided for the ablation bench).
enum class Overlay : std::uint8_t { kMesh = 0, kRing, kStar };

/// Compute the neighbor lists for `n` decision points under `overlay`.
std::vector<std::vector<std::size_t>> overlay_neighbors(std::size_t n, Overlay overlay);

/// Wire a set of decision points together under the given overlay.
void connect(std::vector<DecisionPoint*> dps, Overlay overlay);

/// Wire a set of decision points under a dissemination strategy: every
/// point receives the full roster (full-mesh neighbor wiring) and its
/// strategy derives the actual per-round push set from it. With
/// `Kind::kMesh` this is exactly `connect(dps, Overlay::kMesh)`.
void connect(std::vector<DecisionPoint*> dps, const overlay::Options& options);

}  // namespace digruber::digruber
