#pragma once

#include <cstdint>
#include <vector>

#include "digruber/durable/disk.hpp"
#include "digruber/economy/economy.hpp"
#include "digruber/gruber/view.hpp"
#include "digruber/sim/time.hpp"

namespace digruber::digruber {

/// Durable-state configuration for one decision point. Off by default:
/// with enabled=false no disk exists, no WAL records are written, and
/// every run is byte-identical to the seed.
struct DurabilityOptions {
  bool enabled = false;
  /// Checkpoint cadence; each checkpoint truncates the WAL.
  sim::Duration checkpoint_interval = sim::Duration::minutes(10);
  /// Bounded exactly-once dedup window (request ids remembered).
  std::size_t dedup_window = 1024;
  /// Seed for the device's fault randomness (torn-tail length, bit-rot
  /// position); the harness derives it from (scenario seed, dp index).
  std::uint64_t disk_seed = 0;
  durable::DiskOptions disk{};
};

/// WAL frame types (the type byte inside a durable::wal frame).
enum class WalRecordType : std::uint8_t {
  kDispatch = 1,     ///< one applied dispatch record (own or learned)
  kEpochSettle = 2,  ///< economy epoch boundary observed (replay cross-check)
  kIncarnation = 3,  ///< membership incarnation bump at restart
};

/// Payload of a kDispatch frame. `applied_at` is the *local* apply time —
/// replay re-drives CreditBank::charge with it so the restored ledgers land
/// charges in the same epochs the live bank did. The request id trailer
/// rides only on records born from a stamped ReportSelection, and rebuilds
/// the exactly-once dedup window on replay.
struct WalDispatch {
  gruber::DispatchRecord record{};
  sim::Time applied_at{};

  bool has_request_id = false;  // not serialized: presence = trailer bytes
  std::uint64_t request_client = 0;
  std::uint64_t request_seq = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & record & applied_at;
    if constexpr (Archive::kIsWriter) {
      if (has_request_id) ar & request_client & request_seq;
    } else {
      if (ar.remaining() > 0) {
        ar & request_client & request_seq;
        has_request_id = true;
      }
    }
  }
};

/// Payload of a kEpochSettle frame: the bank's settlement counters at the
/// moment a charge observed an epoch boundary. Pure integrity cross-check —
/// replay recomputes settlement from charges and verifies it matches.
struct WalEpochSettle {
  std::uint64_t epochs_settled = 0;
  double expired_pool = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & epochs_settled & expired_pool;
  }
};

/// Payload of a kIncarnation frame, appended (and fsynced) on every durable
/// restart so the next recovery resumes from a strictly higher incarnation.
struct WalIncarnation {
  std::uint32_t incarnation = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & incarnation;
  }
};

/// One remembered (client, seq) -> decision entry of the dedup window.
struct DedupEntry {
  std::uint64_t client = 0;
  std::uint64_t seq = 0;
  SiteId site{};  ///< the original placement, returned verbatim on retry

  template <class Archive>
  void serialize(Archive& ar) {
    ar & client & seq & site;
  }
};

/// Checkpoint payload (wrapped in durable::make_checkpoint_image). Captures
/// everything the WAL would otherwise have to retain: the active dispatch
/// window, the dedup window (oldest first), the bank image, and the
/// incarnation floor. Writing a checkpoint truncates the log.
struct DpCheckpoint {
  std::uint32_t incarnation = 0;
  sim::Time taken_at{};
  std::vector<gruber::DispatchRecord> active;
  std::vector<DedupEntry> dedup;
  bool has_bank = false;
  economy::BankImage bank{};

  template <class Archive>
  void serialize(Archive& ar) {
    ar & incarnation & taken_at & active & dedup & has_bank;
    if (has_bank) ar & bank;
  }
};

}  // namespace digruber::digruber
