#pragma once

#include <functional>
#include <map>

#include "digruber/digruber/protocol.hpp"
#include "digruber/net/rpc.hpp"

namespace digruber::digruber {

/// The third-party monitoring service of Section 5: decision points send
/// it saturation signals; it decides when the scheduling infrastructure
/// should be reconfigured (a new decision point added, or clients
/// rebalanced) and delegates the mechanics to a provisioning hook supplied
/// by the deployment (the experiment harness or a real control plane).
class InfrastructureMonitor {
 public:
  using ProvisionHook = std::function<void(const SaturationSignal&)>;

  struct Options {
    /// Distinct saturation signals required before acting.
    int signals_to_act = 2;
    /// Minimum spacing between provisioning actions.
    sim::Duration action_cooldown = sim::Duration::minutes(5);
  };

  InfrastructureMonitor(sim::Simulation& sim, net::Transport& transport,
                        ProvisionHook hook, Options options);
  InfrastructureMonitor(sim::Simulation& sim, net::Transport& transport,
                        ProvisionHook hook)
      : InfrastructureMonitor(sim, transport, std::move(hook), Options{}) {}

  [[nodiscard]] NodeId node() const { return server_.node(); }
  [[nodiscard]] std::uint64_t signals_received() const { return signals_; }
  [[nodiscard]] std::uint64_t actions_taken() const { return actions_; }

 private:
  net::Served handle_saturation(std::span<const std::uint8_t> body, NodeId from);

  sim::Simulation& sim_;
  net::RpcServer server_;
  ProvisionHook hook_;
  Options options_;

  std::uint64_t signals_ = 0;
  std::uint64_t actions_ = 0;
  int signals_since_action_ = 0;
  sim::Time last_action_;
};

}  // namespace digruber::digruber
