#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "digruber/common/ids.hpp"
#include "digruber/sim/time.hpp"

namespace digruber::digruber {

/// Lifecycle of a decision point as seen by a peer's failure detector.
/// `kSuspect` is an intermediate verdict: the peer missed heartbeats but a
/// single late frame refutes the suspicion. `kDead` and `kLeft` are
/// terminal for an incarnation — only a frame carrying a *higher*
/// incarnation (a restart or rejoin) resurrects the member.
enum class MemberState : std::uint8_t { kAlive = 0, kSuspect, kDead, kLeft };

const char* member_state_name(MemberState state);

/// One decision point's entry in the gossiped membership view.
struct MemberInfo {
  DpId dp;
  std::uint64_t node = 0;  // RPC server address (query + exchange target)
  MemberState state = MemberState::kAlive;
  /// Restart generation: a crashed-and-restarted (or re-joined) member
  /// bumps this so stale dead/suspect claims about the previous life
  /// cannot suppress the new one.
  std::uint32_t incarnation = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & dp & node & state & incarnation;
  }
};

/// The membership trailer gossiped on state exchanges and attached to
/// query replies when the asking client's epoch is stale.
struct MembershipUpdate {
  std::uint64_t epoch = 0;
  std::vector<MemberInfo> members;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & epoch & members;
  }
};

/// Dynamic-membership knobs. Disabled by default: the decision-point mesh
/// is then the frozen, statically-wired set and every message stays
/// byte-identical to the pre-membership wire format.
struct MembershipOptions {
  bool enabled = false;
  /// Interval-with-suspicion failure detector thresholds, in heartbeat
  /// intervals. Heartbeats are implicit — any frame from a peer counts —
  /// and ride the existing state-exchange rounds, so a healthy mesh adds
  /// zero extra frames and zero extra timers. `suspect_after` intervals of
  /// silence mark a peer suspect; `dead_after` mark it dead. The defaults
  /// tolerate two consecutive lost exchange frames and declare death
  /// within two suspicion intervals (2 * suspect_after), the bound the
  /// churn soak asserts.
  double suspect_after = 2.5;
  double dead_after = 4.0;
  /// Join bootstrap: per-seed snapshot-transfer deadline and the backoff
  /// before retrying the next seed after a failed transfer.
  sim::Duration join_snapshot_timeout = sim::Duration::seconds(10);
  sim::Duration join_retry_backoff = sim::Duration::seconds(5);
};

/// One state transition observed by a local membership table (for trace
/// instants and the churn soak's time-to-detect audit).
struct MembershipTransition {
  DpId peer;
  MemberState to = MemberState::kAlive;
  std::uint32_t incarnation = 0;
  sim::Time at;
};

struct MembershipTableCounters {
  std::uint64_t suspicions = 0;       // alive -> suspect verdicts
  std::uint64_t deaths = 0;           // -> dead (detector or gossip)
  std::uint64_t refutations = 0;      // suspect/dead -> alive resurrections
  std::uint64_t joins_observed = 0;   // previously-unknown members learned
  std::uint64_t leaves_observed = 0;  // graceful departures learned
};

/// Interval-with-suspicion failure detector plus the membership view one
/// decision point holds of its mesh. Pure state machine: it owns no timers
/// and sends no frames — the decision point feeds it direct heartbeat
/// evidence (`heard_from`), gossiped views (`absorb`), and periodic sweep
/// ticks, and reads back the live peer set and an epoch that bumps on
/// every view change (the client-staleness trigger).
///
/// Merge rules (SWIM-style): a higher incarnation always wins; within one
/// incarnation, severity wins (alive < suspect < dead < left), so a
/// graceful leave is never downgraded to a crash verdict. Claims about
/// *this* table's own entry are refuted by bumping the self incarnation
/// past the claim.
class MembershipTable {
 public:
  MembershipTable(DpId self, std::uint64_t self_node, MembershipOptions options);

  /// Install the initial (deployment-time) member set. Kept as durable
  /// seed configuration: `reset_to_seeds` restores it after a crash, when
  /// everything learned since is volatile state that died with the process.
  void seed(const std::vector<MemberInfo>& members, sim::Time now);
  void reset_to_seeds(sim::Time now, std::uint32_t self_incarnation);
  /// Promote the current view to the durable seed list (a joiner calls
  /// this once bootstrapped: a later crash restarts against the learned
  /// mesh, not the original join seeds). Entry states are untouched.
  void adopt_current_as_seeds() { seeds_ = members(); }

  /// Direct evidence: a frame from `peer` arrived. Refutes suspicion at
  /// the same-or-higher incarnation; resurrects dead/left only with a
  /// strictly higher one (late frames from a previous life must not).
  /// Returns the transition if the view changed.
  std::optional<MembershipTransition> heard_from(DpId peer, std::uint64_t node,
                                                 std::uint32_t incarnation,
                                                 sim::Time now);

  /// Merge a gossiped view; returns every transition it caused.
  std::vector<MembershipTransition> absorb(const MembershipUpdate& update,
                                           sim::Time now);

  /// Explicit departure announcement.
  std::optional<MembershipTransition> mark_left(DpId peer,
                                                std::uint32_t incarnation,
                                                sim::Time now);

  struct SweepResult {
    std::vector<MembershipTransition> transitions;
  };
  /// Failure-detector tick: one pass over the table applying the
  /// suspect/dead thresholds against each peer's last-heard time.
  /// `watch` (sorted by DpId) restricts the timers to the peers direct
  /// frames are expected from — under a sparse overlay silence from a
  /// non-adjacent peer is the topology working, not a failure; verdicts
  /// about unwatched peers arrive only via gossip (`absorb`) from their
  /// own watchers. nullptr (the mesh default) watches everyone.
  SweepResult sweep(sim::Time now, sim::Duration heartbeat_interval,
                    const std::vector<DpId>* watch = nullptr);

  /// Reset the silence clocks of `peers` to `now` at the latest. Called
  /// when an overlay repair changes the watch set: a peer that just
  /// became a neighbor has legitimately never pushed here, so its timer
  /// must start from the re-wiring, not from deployment time.
  void start_watch_grace(const std::vector<DpId>& peers, sim::Time now);

  void set_self_incarnation(std::uint32_t incarnation);
  /// Flip the self entry (leave announcements gossip this as kLeft).
  void set_self_state(MemberState state);

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const MembershipOptions& options() const { return options_; }
  [[nodiscard]] const MembershipTableCounters& counters() const { return counters_; }
  /// Every transition this table ever made, in order (churn-soak audit).
  [[nodiscard]] const std::vector<MembershipTransition>& transitions() const {
    return transitions_;
  }

  [[nodiscard]] std::optional<MemberState> state_of(DpId peer) const;
  [[nodiscard]] MemberInfo self() const { return self_; }
  /// Full view including self, sorted by DpId (deterministic wire bytes).
  [[nodiscard]] std::vector<MemberInfo> members() const;
  [[nodiscard]] MembershipUpdate update() const;
  /// Exchange/catch-up targets: alive and suspect peers (a suspect still
  /// receives frames — its reply refutes the suspicion), excluding self
  /// and terminal members. DpId order, deterministic.
  [[nodiscard]] std::vector<NodeId> live_peer_nodes() const;
  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }

 private:
  struct Entry {
    MemberInfo info;
    sim::Time last_heard;
    sim::Time since;  // when the current state was entered
  };

  static int severity(MemberState state);
  void log_transition(DpId peer, MemberState to, std::uint32_t incarnation,
                      sim::Time at);
  /// Merge one gossiped entry; returns the transition if the view changed.
  std::optional<MembershipTransition> merge_one(const MemberInfo& info,
                                                sim::Time now);

  MemberInfo self_;
  MembershipOptions options_;
  std::map<DpId, Entry> peers_;
  std::vector<MemberInfo> seeds_;
  std::uint64_t epoch_ = 1;
  MembershipTableCounters counters_;
  std::vector<MembershipTransition> transitions_;
};

}  // namespace digruber::digruber
