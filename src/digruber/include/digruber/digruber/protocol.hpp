#pragma once

#include <cstdint>
#include <vector>

#include "digruber/digruber/membership.hpp"
#include "digruber/grid/job.hpp"
#include "digruber/gruber/view.hpp"
#include "digruber/net/wire/stats.hpp"

namespace digruber::digruber {

/// RPC method ids for the DI-GRUBER wire protocol.
enum Method : std::uint16_t {
  /// Client -> decision point: fetch USLA-filtered site loads for a job.
  kGetSiteLoads = 1,
  /// Client -> decision point: report the site the client-side selector
  /// chose (the second round trip of a brokering query).
  kReportSelection = 2,
  /// Decision point -> decision point: periodic state exchange (one-way).
  kExchange = 3,
  /// The trivial WS operation used by the Figure-1 baseline.
  kCreateInstance = 4,
  /// Decision point -> infrastructure monitor: saturation signal (one-way).
  kSaturation = 5,
  /// Restarted decision point -> neighbor: anti-entropy catch-up. The
  /// neighbor replies with every dispatch record still active in its view
  /// so the restarted point's dedup state and utilization re-converge.
  kCatchUp = 6,
  /// Joining decision point -> seed peer: request a bootstrap snapshot
  /// (base site states + recent-dispatch window + load hints + membership
  /// view). Only sent by membership-enabled deployments.
  kJoinSnapshot = 7,
  /// Departing decision point -> peers: graceful leave announcement
  /// (one-way), so the mesh drops it without waiting for suspicion.
  kLeave = 8,
  /// Decision point -> decision point: targeted delta anti-entropy. After
  /// a digest mismatch, pull only the diverged VO ranges (and base state
  /// if its hash differed) instead of a full kCatchUp snapshot.
  kDeltaPull = 9,
};

/// Traffic class of each protocol method, for the wire layer's per-category
/// bytes-on-wire and encode-count telemetry (the wire layer itself knows
/// nothing about DI-GRUBER method ids).
constexpr net::wire::MsgCategory method_category(std::uint16_t method) {
  switch (method) {
    case kGetSiteLoads:
    case kReportSelection:
    case kCreateInstance:
      return net::wire::MsgCategory::kQuery;
    case kExchange:
      return net::wire::MsgCategory::kStateExchange;
    case kSaturation:
    case kCatchUp:
    case kJoinSnapshot:
    case kLeave:
    case kDeltaPull:
      return net::wire::MsgCategory::kControl;
    default:
      return net::wire::MsgCategory::kOther;
  }
}

/// Install `method_category` as the wire layer's categorizer. Idempotent;
/// called from every protocol actor's constructor so any run that touches
/// DI-GRUBER traffic gets classified counters.
inline void install_wire_categorizer() {
  net::wire::set_method_categorizer(&method_category);
}

struct GetSiteLoadsRequest {
  JobId job;
  VoId vo;
  GroupId group;
  UserId user;
  std::int32_t cpus = 1;
  /// Optional trailing field (membership-aware clients only): the client's
  /// current membership epoch. A decision point whose view is newer
  /// attaches a MembershipUpdate to the reply. Absent -> legacy bytes.
  bool has_epoch = false;
  std::uint64_t membership_epoch = 0;
  /// Second optional trailing field (market placement): the job's economic
  /// bid — a spend ceiling and a completion deadline. Positional stacking
  /// rule: attaching the bid forces the epoch trailer (epoch 0 is a
  /// harmless no-op on decision points). Absent -> legacy bytes.
  bool has_bid = false;
  double budget = 0.0;
  double deadline_s = 0.0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & job & vo & group & user & cpus;
    if constexpr (Archive::kIsWriter) {
      if (has_epoch) ar & membership_epoch;
      if (has_bid) ar & budget & deadline_s;
    } else {
      if (ar.remaining() > 0) {
        ar & membership_epoch;
        has_epoch = true;
      }
      if (ar.remaining() > 0) {
        ar & budget & deadline_s;
        has_bid = true;
      }
    }
  }
};

/// Per-decision-point load hint piggybacked on existing traffic (state
/// exchange and query replies) so peers and clients can do load-aware DP
/// selection without extra probe RPCs. Always a trailing optional field:
/// senders that do not advertise load emit byte-identical legacy messages.
struct DpLoadHint {
  std::uint64_t node = 0;       // RPC address of the advertising DP
  std::int32_t queue_depth = 0;
  double utilization = 0.0;     // busy workers / pool size, EWMA-free sample
  double est_wait_s = 0.0;      // predicted admission-queue sojourn

  template <class Archive>
  void serialize(Archive& ar) {
    ar & node & queue_depth & utilization & est_wait_s;
  }
};

/// Typed degraded-mode hint (partition tolerance): the serving DP's own
/// assessment of how stale its view is. `level` 1 = some site state is
/// stale and believed-free capacity is being discounted; 2 = quorum lost
/// (a majority of peers unreachable past the staleness threshold) and the
/// DP is refusing query admission with kNackDegraded. Clients use the hint
/// to reroute without treating the DP as dead.
struct DegradedHint {
  std::uint8_t level = 0;
  std::uint32_t stale_sites = 0;
  std::uint32_t stale_peers = 0;
  std::int64_t staleness_us = 0;  // worst observed view staleness

  template <class Archive>
  void serialize(Archive& ar) {
    ar & level & stale_sites & stale_peers & staleness_us;
  }
};

struct GetSiteLoadsReply {
  std::vector<gruber::SiteLoad> candidates;
  sim::Time as_of;
  /// Optional trailing field: the serving DP's own hint plus what it has
  /// heard from peers, for power-of-two-choices failover on the client.
  std::vector<DpLoadHint> dp_loads;
  /// Second optional trailing field: the DP's membership view, attached
  /// only when the requesting client reported a stale epoch. Trailing
  /// fields stack positionally, so a sender attaching the membership
  /// trailer MUST also emit `dp_loads` (membership-enabled DPs always
  /// include at least their own hint).
  bool has_membership = false;
  MembershipUpdate membership;
  /// Third optional trailing field (partition tolerance): the DP's state
  /// digest, so any observer can detect divergence between decision
  /// points from query traffic alone. Attaching it forces the two earlier
  /// trailers (an empty MembershipUpdate is a harmless no-op on apply).
  bool has_digest = false;
  gruber::ViewDigest digest;
  /// Fourth optional trailing field (partition tolerance): degraded-mode
  /// admission hint. Same stacking rule: attaching it forces the digest.
  bool has_degraded = false;
  DegradedHint degraded;
  /// Fifth optional trailing field (economy): per-DP price quotes aligned
  /// index-wise with `dp_loads`, so market-placement clients can minimize
  /// cost over the same hint set p2c uses. Attaching it forces every
  /// earlier trailer (empty digest / level-0 degraded hints are harmless
  /// no-ops on receivers).
  std::vector<double> dp_prices;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & candidates & as_of;
    if constexpr (Archive::kIsWriter) {
      if (!dp_loads.empty()) ar & dp_loads;
      if (has_membership) ar & membership;
      if (has_digest) ar & digest;
      if (has_degraded) ar & degraded;
      if (!dp_prices.empty()) ar & dp_prices;
    } else {
      if (ar.remaining() > 0) ar & dp_loads;
      if (ar.remaining() > 0) {
        ar & membership;
        has_membership = true;
      }
      if (ar.remaining() > 0) {
        ar & digest;
        has_digest = true;
      }
      if (ar.remaining() > 0) {
        ar & degraded;
        has_degraded = true;
      }
      if (ar.remaining() > 0) ar & dp_prices;
    }
  }
};

struct ReportSelectionRequest {
  JobId job;
  SiteId site;
  VoId vo;
  GroupId group;
  UserId user;
  std::int32_t cpus = 1;
  sim::Duration est_runtime;
  /// Optional trailing field (market placement): the bid the client
  /// placed this job under, echoed so the serving DP can account priced
  /// selections. Absent -> legacy bytes.
  bool has_bid = false;
  double budget = 0.0;
  double deadline_s = 0.0;
  /// Optional trailing field (exactly-once dispatch): a durable client
  /// request id, stable across retries of the same placement, letting the
  /// serving DP collapse a retry to the original decision. Stacks after
  /// the bid trailer, so stamping a request id forces the (possibly
  /// all-zero, harmless) bid bytes to keep positional decoding
  /// unambiguous. Absent -> legacy bytes.
  bool has_request_id = false;
  std::uint64_t request_client = 0;
  std::uint64_t request_seq = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & job & site & vo & group & user & cpus & est_runtime;
    if constexpr (Archive::kIsWriter) {
      if (has_bid || has_request_id) ar & budget & deadline_s;
      if (has_request_id) ar & request_client & request_seq;
    } else {
      if (ar.remaining() > 0) {
        ar & budget & deadline_s;
        has_bid = true;
      }
      if (ar.remaining() > 0) {
        ar & request_client & request_seq;
        has_request_id = true;
      }
    }
  }
};

struct Ack {
  bool ok = true;
  /// Optional trailing field (exactly-once dispatch): present when the
  /// dedup window collapsed a retried report — carries the placement the
  /// original attempt recorded, so the retry returns the original
  /// decision instead of a re-allocation. Absent -> legacy bytes.
  bool has_original = false;
  SiteId original_site{};

  template <class Archive>
  void serialize(Archive& ar) {
    ar & ok;
    if constexpr (Archive::kIsWriter) {
      if (has_original) ar & original_site;
    } else {
      if (ar.remaining() > 0) {
        ar & original_site;
        has_original = true;
      }
    }
  }
};

struct ExchangeMessage {
  DpId from;
  std::uint64_t exchange_round = 0;
  std::vector<gruber::DispatchRecord> dispatches;
  /// Dissemination strategy 1 additionally carries fresh site snapshots.
  std::vector<grid::SiteSnapshot> snapshots;
  /// Optional trailing field: sender's container-load hint (set when the
  /// DP advertises load; absent keeps the legacy byte layout).
  bool has_load = false;
  DpLoadHint load;
  /// Second optional trailing field: the sender's membership view,
  /// gossiped so join/leave/death verdicts flood the mesh on the frames
  /// it already sends. Positional stacking rule: a sender attaching the
  /// membership trailer MUST also set `has_load` (membership-enabled DPs
  /// always advertise their own hint).
  bool has_membership = false;
  MembershipUpdate membership;
  /// Third optional trailing field (partition tolerance): the sender's
  /// per-VO state digest, piggybacked so peers detect divergence on the
  /// first frame that crosses a healed partition. Positional stacking
  /// rule again: attaching the digest forces `load` and `membership`
  /// (empty ones are harmless no-ops on the receiver).
  bool has_digest = false;
  gruber::ViewDigest digest;
  /// Fourth optional trailing field (economy): the sender's current price
  /// quote, flooded so every DP can relay the full price picture to its
  /// clients. Positional stacking rule: attaching the price forces the
  /// three earlier trailers. An economy-only sender emits an *empty*
  /// digest — receivers must treat an empty digest as "no digest", not as
  /// divergence (see `ViewDigest` equality).
  bool has_price = false;
  double price = 0.0;
  /// Fifth optional trailing field (overlay): per-record relay depths for
  /// `dispatches` (`hop_depths[i]` = relay hops record i has already
  /// traveled; empty means all zero) plus the batch max in `hops` for
  /// telemetry. Stamped by sparse overlays (tree, gossip, super-peer) so
  /// receivers can bound further relaying of each record by the
  /// strategy's TTL — per record, because one deep record must not burn
  /// the relay budget of a fresh one riding the same frame. Positional
  /// stacking rule: attaching hops forces all four earlier trailers
  /// (empty/neutral payloads are no-ops on the receiver). The mesh
  /// strategy never attaches it, keeping the default wire layout
  /// byte-identical to the pre-overlay format.
  bool has_hops = false;
  std::uint32_t hops = 0;
  std::vector<std::uint32_t> hop_depths;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & from & exchange_round & dispatches & snapshots;
    if constexpr (Archive::kIsWriter) {
      if (has_load) ar & load;
      if (has_membership) ar & membership;
      if (has_digest) ar & digest;
      if (has_price) ar & price;
      if (has_hops) ar & hops & hop_depths;
    } else {
      if (ar.remaining() > 0) {
        ar & load;
        has_load = true;
      }
      if (ar.remaining() > 0) {
        ar & membership;
        has_membership = true;
      }
      if (ar.remaining() > 0) {
        ar & digest;
        has_digest = true;
      }
      if (ar.remaining() > 0) {
        ar & price;
        has_price = true;
      }
      if (ar.remaining() > 0) {
        ar & hops & hop_depths;
        has_hops = true;
      }
    }
  }
};

struct CreateInstanceRequest {
  std::uint64_t nonce = 0;
  std::string payload;  // pad to model realistic SOAP body sizes

  template <class Archive>
  void serialize(Archive& ar) {
    ar & nonce & payload;
  }
};

struct CreateInstanceReply {
  std::uint64_t nonce = 0;
  std::uint64_t instance = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & nonce & instance;
  }
};

struct CatchUpRequest {
  DpId from;
  /// Restart generation of the requester (diagnostic; lets a neighbor log
  /// repeated crash loops).
  std::uint32_t incarnation = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & from & incarnation;
  }
};

struct CatchUpReply {
  DpId from;
  std::vector<gruber::DispatchRecord> records;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & from & records;
  }
};

/// Joining DP -> seed peer: ask for the bootstrap snapshot. The joiner
/// identifies itself so the seed can admit it into the membership view
/// (and start exchanging with it) as a side effect of serving the
/// snapshot.
struct JoinSnapshotRequest {
  DpId from;
  std::uint64_t node = 0;  // joiner's RPC server address
  std::uint32_t incarnation = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & from & node & incarnation;
  }
};

/// The bootstrap snapshot: enough for the joiner to serve queries without
/// a full-history replay. `bases` are the seed's base site states (the
/// USLA-filtered capacity ground truth), `records` its recent-dispatch
/// window (every record still active, i.e. not yet aged out), `hints` the
/// load picture, and `membership` the current view + epoch. The
/// post-snapshot delta rides the existing kCatchUp anti-entropy path.
struct JoinSnapshotReply {
  DpId from;
  std::uint64_t exchange_round = 0;  // seed's flooding round (diagnostic)
  MembershipUpdate membership;
  std::vector<grid::SiteSnapshot> bases;
  std::vector<gruber::DispatchRecord> records;
  std::vector<DpLoadHint> hints;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & from & exchange_round & membership & bases & records & hints;
  }
};

/// Departing DP -> peers (one-way): graceful leave. Peers mark the member
/// kLeft immediately instead of waiting out the suspicion thresholds.
struct LeaveAnnouncement {
  DpId from;
  std::uint64_t node = 0;
  std::uint32_t incarnation = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & from & node & incarnation;
  }
};

/// Digest-mismatch follow-up: pull exactly the diverged state. `vos` is
/// the ascending list of VOs whose digests disagreed; `want_bases` is set
/// when the base-state hash differed too. Contrast with kCatchUp, which
/// transfers every active record regardless of what actually diverged.
struct DeltaPullRequest {
  DpId from;
  /// Exchange round whose digest exposed the divergence (diagnostic).
  std::uint64_t digest_round = 0;
  std::vector<VoId> vos;
  bool want_bases = false;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & from & digest_round & vos & want_bases;
  }
};

struct DeltaPullReply {
  DpId from;
  /// Active records in the requested VOs only.
  std::vector<gruber::DispatchRecord> records;
  /// Base snapshots, present only when the request set `want_bases`.
  std::vector<grid::SiteSnapshot> bases;
  /// The replier's digest at serve time, letting the puller verify
  /// convergence without waiting for the next exchange round.
  gruber::ViewDigest digest;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & from & records & bases & digest;
  }
};

struct SaturationSignal {
  DpId from;
  double avg_response_s = 0.0;
  double observed_qps = 0.0;
  std::int32_t queue_depth = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & from & avg_response_s & observed_qps & queue_depth;
  }
};

}  // namespace digruber::digruber
