#include "digruber/digruber/infrastructure_monitor.hpp"

#include <utility>

#include "digruber/common/log.hpp"

namespace digruber::digruber {
namespace {

/// The monitor itself is a light service: signals are rare and tiny, so a
/// fast container keeps it from ever being the bottleneck.
net::ContainerProfile monitor_profile() {
  net::ContainerProfile p;
  p.name = "monitor";
  p.workers = 4;
  p.auth_cost = sim::Duration::millis(20);
  p.base_overhead = sim::Duration::millis(5);
  p.parse_cost_per_kb = sim::Duration::millis(2);
  p.serialize_cost_per_kb = sim::Duration::millis(2);
  return p;
}

}  // namespace

InfrastructureMonitor::InfrastructureMonitor(sim::Simulation& sim,
                                             net::Transport& transport,
                                             ProvisionHook hook, Options options)
    : sim_(sim),
      server_(sim, transport, monitor_profile()),
      hook_(std::move(hook)),
      options_(options) {
  server_.register_method(kSaturation,
                          [this](std::span<const std::uint8_t> body, NodeId from) {
                            return handle_saturation(body, from);
                          });
}

net::Served InfrastructureMonitor::handle_saturation(
    std::span<const std::uint8_t> body, NodeId /*from*/) {
  SaturationSignal signal;
  if (!net::wire::decode(body, signal)) return {};
  ++signals_;
  ++signals_since_action_;
  log::debug("infra-monitor", "saturation from dp ", signal.from.value(),
             " avg response ", signal.avg_response_s, "s");

  const bool cooled =
      last_action_ == sim::Time::zero() ||
      sim_.now() - last_action_ >= options_.action_cooldown;
  if (signals_since_action_ >= options_.signals_to_act && cooled && hook_) {
    ++actions_;
    signals_since_action_ = 0;
    last_action_ = sim_.now();
    hook_(signal);
  }
  return {};
}

}  // namespace digruber::digruber
