#include "digruber/digruber/membership.hpp"

#include <algorithm>

namespace digruber::digruber {

const char* member_state_name(MemberState state) {
  switch (state) {
    case MemberState::kAlive:
      return "alive";
    case MemberState::kSuspect:
      return "suspect";
    case MemberState::kDead:
      return "dead";
    case MemberState::kLeft:
      return "left";
  }
  return "?";
}

MembershipTable::MembershipTable(DpId self, std::uint64_t self_node,
                                 MembershipOptions options)
    : options_(std::move(options)) {
  self_.dp = self;
  self_.node = self_node;
  self_.state = MemberState::kAlive;
}

int MembershipTable::severity(MemberState state) {
  switch (state) {
    case MemberState::kAlive:
      return 0;
    case MemberState::kSuspect:
      return 1;
    case MemberState::kDead:
      return 2;
    // Highest: a graceful leave carries strictly more information than a
    // crash verdict about the same incarnation and must not be downgraded.
    case MemberState::kLeft:
      return 3;
  }
  return 0;
}

void MembershipTable::log_transition(DpId peer, MemberState to,
                                     std::uint32_t incarnation, sim::Time at) {
  transitions_.push_back(MembershipTransition{peer, to, incarnation, at});
}

void MembershipTable::seed(const std::vector<MemberInfo>& members,
                           sim::Time now) {
  seeds_ = members;
  for (const auto& info : members) {
    if (info.dp == self_.dp) {
      self_.incarnation = std::max(self_.incarnation, info.incarnation);
      continue;
    }
    Entry entry;
    entry.info = info;
    entry.info.state = MemberState::kAlive;
    entry.last_heard = now;
    entry.since = now;
    peers_[info.dp] = entry;
  }
  ++epoch_;
}

void MembershipTable::reset_to_seeds(sim::Time now,
                                     std::uint32_t self_incarnation) {
  // Crash recovery: everything learned at runtime was volatile state that
  // died with the process; only the deployment-time seed list survives.
  // Seeds restart as alive — the detector re-suspects any that are not.
  peers_.clear();
  self_.incarnation = self_incarnation;
  self_.state = MemberState::kAlive;
  for (const auto& info : seeds_) {
    if (info.dp == self_.dp) continue;
    Entry entry;
    entry.info = info;
    entry.info.state = MemberState::kAlive;
    entry.last_heard = now;
    entry.since = now;
    peers_[info.dp] = entry;
  }
  ++epoch_;
}

std::optional<MembershipTransition> MembershipTable::heard_from(
    DpId peer, std::uint64_t node, std::uint32_t incarnation, sim::Time now) {
  if (peer == self_.dp) return std::nullopt;
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    Entry entry;
    entry.info = MemberInfo{peer, node, MemberState::kAlive, incarnation};
    entry.last_heard = now;
    entry.since = now;
    peers_[peer] = entry;
    ++counters_.joins_observed;
    ++epoch_;
    log_transition(peer, MemberState::kAlive, incarnation, now);
    return transitions_.back();
  }
  Entry& entry = it->second;
  if (incarnation < entry.info.incarnation) return std::nullopt;  // stale life
  if (entry.info.state == MemberState::kDead ||
      entry.info.state == MemberState::kLeft) {
    // Terminal for that incarnation: an in-flight frame from the previous
    // life must not resurrect the entry. A strictly newer incarnation is a
    // restart and does.
    if (incarnation == entry.info.incarnation) return std::nullopt;
    entry.info = MemberInfo{peer, node, MemberState::kAlive, incarnation};
    entry.last_heard = now;
    entry.since = now;
    ++counters_.refutations;
    ++epoch_;
    log_transition(peer, MemberState::kAlive, incarnation, now);
    return transitions_.back();
  }
  entry.info.incarnation = incarnation;
  entry.info.node = node;
  entry.last_heard = now;
  if (entry.info.state == MemberState::kSuspect) {
    entry.info.state = MemberState::kAlive;
    entry.since = now;
    ++counters_.refutations;
    ++epoch_;
    log_transition(peer, MemberState::kAlive, incarnation, now);
    return transitions_.back();
  }
  return std::nullopt;
}

std::optional<MembershipTransition> MembershipTable::merge_one(
    const MemberInfo& info, sim::Time now) {
  if (info.dp == self_.dp) {
    // A peer claims something about us. Refute non-alive claims by
    // outliving the claimed incarnation; the bumped self entry gossips
    // back out and overrides the rumour everywhere.
    if (info.state != MemberState::kAlive &&
        info.state != MemberState::kLeft &&
        info.incarnation >= self_.incarnation &&
        self_.state == MemberState::kAlive) {
      self_.incarnation = info.incarnation + 1;
      ++counters_.refutations;
      ++epoch_;
    }
    return std::nullopt;
  }
  auto it = peers_.find(info.dp);
  if (it == peers_.end()) {
    Entry entry;
    entry.info = info;
    entry.last_heard = now;
    entry.since = now;
    peers_[info.dp] = entry;
    switch (info.state) {
      case MemberState::kAlive:
      case MemberState::kSuspect:
        ++counters_.joins_observed;
        break;
      case MemberState::kDead:
        ++counters_.deaths;
        break;
      case MemberState::kLeft:
        ++counters_.leaves_observed;
        break;
    }
    ++epoch_;
    log_transition(info.dp, info.state, info.incarnation, now);
    return transitions_.back();
  }
  Entry& entry = it->second;
  const bool newer_life = info.incarnation > entry.info.incarnation;
  const bool same_life_worse =
      info.incarnation == entry.info.incarnation &&
      severity(info.state) > severity(entry.info.state);
  if (!newer_life && !same_life_worse) return std::nullopt;
  const MemberState old_state = entry.info.state;
  entry.info = info;
  entry.since = now;
  if (info.state == MemberState::kAlive) entry.last_heard = now;
  if (old_state == info.state && newer_life) return std::nullopt;
  switch (info.state) {
    case MemberState::kAlive:
      ++counters_.refutations;
      break;
    case MemberState::kSuspect:
      ++counters_.suspicions;
      break;
    case MemberState::kDead:
      ++counters_.deaths;
      break;
    case MemberState::kLeft:
      ++counters_.leaves_observed;
      break;
  }
  ++epoch_;
  log_transition(info.dp, info.state, info.incarnation, now);
  return transitions_.back();
}

std::vector<MembershipTransition> MembershipTable::absorb(
    const MembershipUpdate& update, sim::Time now) {
  std::vector<MembershipTransition> changed;
  for (const auto& info : update.members) {
    if (auto t = merge_one(info, now)) changed.push_back(*t);
  }
  // Epochs are per-table but max-merged, so the mesh converges on (and a
  // client can compare against) a single monotone high-water mark.
  epoch_ = std::max(epoch_, update.epoch);
  return changed;
}

std::optional<MembershipTransition> MembershipTable::mark_left(
    DpId peer, std::uint32_t incarnation, sim::Time now) {
  MemberInfo info;
  info.dp = peer;
  info.state = MemberState::kLeft;
  info.incarnation = incarnation;
  auto it = peers_.find(peer);
  info.node = it != peers_.end() ? it->second.info.node : 0;
  if (it != peers_.end() && incarnation < it->second.info.incarnation) {
    return std::nullopt;
  }
  return merge_one(info, now);
}

MembershipTable::SweepResult MembershipTable::sweep(
    sim::Time now, sim::Duration heartbeat_interval,
    const std::vector<DpId>* watch) {
  SweepResult result;
  const double interval_s = heartbeat_interval.to_seconds();
  for (auto& [dp, entry] : peers_) {
    if (entry.info.state != MemberState::kAlive &&
        entry.info.state != MemberState::kSuspect) {
      continue;
    }
    if (watch && !std::binary_search(watch->begin(), watch->end(), dp)) {
      continue;
    }
    const double silent_s = (now - entry.last_heard).to_seconds();
    if (entry.info.state == MemberState::kAlive &&
        silent_s >= options_.suspect_after * interval_s) {
      entry.info.state = MemberState::kSuspect;
      entry.since = now;
      ++counters_.suspicions;
      ++epoch_;
      log_transition(dp, MemberState::kSuspect, entry.info.incarnation, now);
      result.transitions.push_back(transitions_.back());
    }
    if (entry.info.state == MemberState::kSuspect &&
        silent_s >= options_.dead_after * interval_s) {
      entry.info.state = MemberState::kDead;
      entry.since = now;
      ++counters_.deaths;
      ++epoch_;
      log_transition(dp, MemberState::kDead, entry.info.incarnation, now);
      result.transitions.push_back(transitions_.back());
    }
  }
  return result;
}

void MembershipTable::start_watch_grace(const std::vector<DpId>& peers,
                                        sim::Time now) {
  for (const DpId dp : peers) {
    auto it = peers_.find(dp);
    if (it == peers_.end()) continue;
    it->second.last_heard = std::max(it->second.last_heard, now);
  }
}

void MembershipTable::set_self_incarnation(std::uint32_t incarnation) {
  if (incarnation == self_.incarnation) return;
  self_.incarnation = incarnation;
  ++epoch_;
}

void MembershipTable::set_self_state(MemberState state) {
  if (state == self_.state) return;
  self_.state = state;
  ++epoch_;
}

std::optional<MemberState> MembershipTable::state_of(DpId peer) const {
  if (peer == self_.dp) return self_.state;
  auto it = peers_.find(peer);
  if (it == peers_.end()) return std::nullopt;
  return it->second.info.state;
}

std::vector<MemberInfo> MembershipTable::members() const {
  std::vector<MemberInfo> out;
  out.reserve(peers_.size() + 1);
  bool self_emitted = false;
  for (const auto& [dp, entry] : peers_) {
    if (!self_emitted && self_.dp < dp) {
      out.push_back(self_);
      self_emitted = true;
    }
    out.push_back(entry.info);
  }
  if (!self_emitted) out.push_back(self_);
  return out;
}

MembershipUpdate MembershipTable::update() const {
  MembershipUpdate u;
  u.epoch = epoch_;
  u.members = members();
  return u;
}

std::vector<NodeId> MembershipTable::live_peer_nodes() const {
  std::vector<NodeId> nodes;
  for (const auto& [dp, entry] : peers_) {
    if (entry.info.state == MemberState::kAlive ||
        entry.info.state == MemberState::kSuspect) {
      nodes.push_back(NodeId(entry.info.node));
    }
  }
  return nodes;
}

}  // namespace digruber::digruber
