#include "digruber/diperf/diperf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace digruber::diperf {

void Collector::client_started(ClientId client, sim::Time when) {
  client_spans_[client] = {when, sim::Time::max()};
}

void Collector::client_stopped(ClientId client, sim::Time when) {
  const auto it = client_spans_.find(client);
  if (it != client_spans_.end()) it->second.second = when;
}

void Collector::record(RequestRecord record) {
  if (!record.ok) ++failures_;
  records_.push_back(record);
}

std::vector<Collector::Bucket> Collector::series(double bucket_s,
                                                 double end_s) const {
  assert(bucket_s > 0);
  const auto n = std::size_t(std::ceil(end_s / bucket_s));
  std::vector<Bucket> buckets(n);
  for (std::size_t b = 0; b < n; ++b) buckets[b].t_s = double(b) * bucket_s;

  // Load: concurrent active clients sampled at bucket midpoints.
  for (std::size_t b = 0; b < n; ++b) {
    const double mid = (double(b) + 0.5) * bucket_s;
    double active = 0;
    for (const auto& [client, span] : client_spans_) {
      if (span.first.to_seconds() <= mid && mid < span.second.to_seconds()) ++active;
    }
    buckets[b].load = active;
  }

  // Completions land in the bucket where the response arrived.
  std::vector<double> response_sums(n, 0.0);
  for (const RequestRecord& r : records_) {
    const double done_at = r.start.to_seconds() + r.response_s;
    if (done_at < 0 || done_at >= end_s) continue;
    const auto b = std::size_t(done_at / bucket_s);
    buckets[b].completions += 1;
    response_sums[b] += r.response_s;
  }
  for (std::size_t b = 0; b < n; ++b) {
    if (buckets[b].completions > 0) {
      buckets[b].response_avg_s = response_sums[b] / double(buckets[b].completions);
    }
    buckets[b].throughput_qps = double(buckets[b].completions) / bucket_s;
  }
  return buckets;
}

Summary Collector::response_summary() const {
  SampleSet set;
  set.reserve(records_.size());
  for (const RequestRecord& r : records_) set.add(r.response_s);
  return summarize(set);
}

double Collector::peak_throughput(double bucket_s, double end_s) const {
  double peak = 0.0;
  for (const Bucket& b : series(bucket_s, end_s)) {
    peak = std::max(peak, b.throughput_qps);
  }
  return peak;
}

double Collector::plateau_throughput(double bucket_s, double end_s) const {
  const std::vector<Bucket> buckets = series(bucket_s, end_s);
  double max_load = 0.0;
  for (const Bucket& b : buckets) max_load = std::max(max_load, b.load);
  double sum = 0.0;
  std::size_t count = 0;
  for (const Bucket& b : buckets) {
    if (b.load >= 0.5 * max_load && b.completions > 0) {
      sum += b.throughput_qps;
      ++count;
    }
  }
  return count ? sum / double(count) : 0.0;
}

Tester::Tester(sim::Simulation& sim, ClientId id, Operation op,
               sim::Duration think, Collector& collector)
    : sim_(sim), id_(id), op_(std::move(op)), think_(think), collector_(collector) {}

void Tester::start() {
  if (running_) return;
  running_ = true;
  ++generation_;
  collector_.client_started(id_, sim_.now());
  issue();
}

void Tester::stop() {
  if (!running_) return;
  running_ = false;
  ++generation_;  // in-flight completion will not re-issue
  collector_.client_stopped(id_, sim_.now());
}

void Tester::issue() {
  if (!running_) return;
  ++issued_;
  const sim::Time t0 = sim_.now();
  const std::uint64_t generation = generation_;
  op_([this, t0, generation](bool ok) {
    // Record even if the tester was stopped mid-flight (completions after
    // the window are filtered by the series end).
    RequestRecord record;
    record.client = id_;
    record.start = t0;
    record.response_s = (sim_.now() - t0).to_seconds();
    record.ok = ok;
    collector_.record(record);
    if (generation != generation_ || !running_) return;
    sim_.schedule_after(think_, [this, generation] {
      if (generation == generation_ && running_) issue();
    });
  });
}

Controller::Controller(sim::Simulation& sim, Collector& collector)
    : sim_(sim), collector_(collector) {}

void Controller::add_tester(std::unique_ptr<Tester> tester) {
  testers_.push_back(std::move(tester));
}

void Controller::schedule(sim::Duration first_start, sim::Duration spacing,
                          sim::Time end) {
  for (std::size_t i = 0; i < testers_.size(); ++i) {
    Tester* tester = testers_[i].get();
    sim_.schedule_after(first_start + spacing * double(i),
                        [tester] { tester->start(); });
    sim_.schedule_at(end, [tester] { tester->stop(); });
  }
}

double PerfModel::saturation_load(double response_limit_s) const {
  if (response_vs_load.slope <= 0) return std::numeric_limits<double>::infinity();
  return (response_limit_s - response_vs_load.intercept) / response_vs_load.slope;
}

PerfModel fit_model(const Collector& collector, double bucket_s, double end_s) {
  PerfModel model;
  model.peak_qps = collector.peak_throughput(bucket_s, end_s);
  model.plateau_qps = collector.plateau_throughput(bucket_s, end_s);
  std::vector<double> load, response;
  for (const Collector::Bucket& b : collector.series(bucket_s, end_s)) {
    if (b.completions == 0) continue;
    load.push_back(b.load);
    response.push_back(b.response_avg_s);
  }
  model.response_vs_load = fit_linear(load, response);
  return model;
}

}  // namespace digruber::diperf
