#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "digruber/common/ids.hpp"
#include "digruber/common/stats.hpp"
#include "digruber/sim/simulation.hpp"

namespace digruber::diperf {

/// One completed client operation, as reported to the collector.
struct RequestRecord {
  ClientId client;
  sim::Time start;
  double response_s = 0.0;
  bool ok = true;
};

/// DiPerF's controller/collector: aggregates per-client metric streams
/// into the load / response-time / throughput time series plotted in
/// every figure of the paper.
class Collector {
 public:
  void client_started(ClientId client, sim::Time when);
  void client_stopped(ClientId client, sim::Time when);
  void record(RequestRecord record);

  struct Bucket {
    double t_s = 0.0;          // bucket start
    double load = 0.0;         // concurrent active clients
    double response_avg_s = 0.0;
    double throughput_qps = 0.0;
    std::uint64_t completions = 0;
  };

  /// Time series over [0, end_s) in `bucket_s` buckets.
  [[nodiscard]] std::vector<Bucket> series(double bucket_s, double end_s) const;

  /// Distribution of all response times (the summary row under each figure).
  [[nodiscard]] Summary response_summary() const;
  /// Peak bucket throughput.
  [[nodiscard]] double peak_throughput(double bucket_s, double end_s) const;
  /// Sustained throughput: mean over the top half of the load ramp.
  [[nodiscard]] double plateau_throughput(double bucket_s, double end_s) const;

  [[nodiscard]] const std::vector<RequestRecord>& records() const { return records_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }

 private:
  std::vector<RequestRecord> records_;
  std::map<ClientId, std::pair<sim::Time, sim::Time>> client_spans_;
  std::uint64_t failures_ = 0;
};

/// A DiPerF tester: one simulated client machine running a closed loop —
/// issue the operation, await completion (the operation owns its timeout
/// semantics), think, repeat.
class Tester {
 public:
  /// The operation calls `done(ok, response_seconds)` exactly once.
  using Operation = std::function<void(std::function<void(bool ok)> done)>;

  Tester(sim::Simulation& sim, ClientId id, Operation op, sim::Duration think,
         Collector& collector);

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] std::uint64_t issued() const { return issued_; }

 private:
  void issue();

  sim::Simulation& sim_;
  ClientId id_;
  Operation op_;
  sim::Duration think_;
  Collector& collector_;
  bool running_ = false;
  std::uint64_t issued_ = 0;
  std::uint64_t generation_ = 0;  // invalidates in-flight ops after stop()
};

/// DiPerF controller: starts testers on a slow ramp (the "varied slowly
/// the participation of clients" protocol) and stops them at the end of
/// the measurement window.
class Controller {
 public:
  Controller(sim::Simulation& sim, Collector& collector);

  void add_tester(std::unique_ptr<Tester> tester);

  /// Schedule the run: tester i starts at `first_start + i * spacing`; all
  /// testers stop at `end`.
  void schedule(sim::Duration first_start, sim::Duration spacing, sim::Time end);

  [[nodiscard]] std::size_t tester_count() const { return testers_.size(); }

 private:
  sim::Simulation& sim_;
  Collector& collector_;
  std::vector<std::unique_ptr<Tester>> testers_;
};

/// Performance model fitted from a run (used for saturation bounds by the
/// decision points and GRUB-SIM): service capacity and the response-vs-
/// load relation.
struct PerfModel {
  double peak_qps = 0.0;
  double plateau_qps = 0.0;
  LinearFit response_vs_load;

  /// Load (concurrent clients) beyond which mean response exceeds
  /// `response_limit_s` under the linear model.
  [[nodiscard]] double saturation_load(double response_limit_s) const;
};

PerfModel fit_model(const Collector& collector, double bucket_s, double end_s);

}  // namespace digruber::diperf
