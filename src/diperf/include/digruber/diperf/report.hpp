#pragma once

#include <iosfwd>
#include <string>

#include "digruber/diperf/diperf.hpp"

namespace digruber::diperf {

/// Render a figure the way the paper does: the load / response /
/// throughput series (downsampled) followed by the response-time and
/// throughput summary rows.
void render_figure(std::ostream& os, const std::string& title,
                   const Collector& collector, double end_s,
                   double bucket_s = 60.0, std::size_t max_rows = 20);

}  // namespace digruber::diperf
