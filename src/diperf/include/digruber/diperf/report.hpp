#pragma once

#include <iosfwd>
#include <string>

#include "digruber/diperf/diperf.hpp"
#include "digruber/metrics/metrics.hpp"

namespace digruber::diperf {

/// Render a figure the way the paper does: the load / response /
/// throughput series (downsampled) followed by the response-time and
/// throughput summary rows.
void render_figure(std::ostream& os, const std::string& title,
                   const Collector& collector, double end_s,
                   double bucket_s = 60.0, std::size_t max_rows = 20);

/// Render the fault-tolerance counter block the resilience bench appends
/// below its figure.
void render_resilience(std::ostream& os, const metrics::ResilienceCounters& counters);

/// Render the overload-control counter block (container shedding + client
/// adaptive-retry accounting). Queue-full drops appear here as typed
/// rejections, distinguishable from network loss in the resilience block.
void render_overload(std::ostream& os, const metrics::OverloadCounters& counters);

/// Render the dynamic-membership counter block (failure-detector verdicts,
/// join/leave protocol traffic, client-side quarantine accounting).
void render_membership(std::ostream& os, const metrics::MembershipCounters& counters);

/// Render the economic-brokering counter block (credit-bank settlement,
/// karma admission verdicts, market-placement routing). Credit amounts
/// are CPU-seconds.
void render_economy(std::ostream& os, const metrics::EconomyCounters& counters);

/// Render the dissemination-overlay counter block (per-round fan-out,
/// observed relay depth, TTL-suppressed relays, churn-driven rebuilds).
/// `strategy` is overlay::kind_name() of the active strategy.
void render_overlay(std::ostream& os, const char* strategy,
                    const metrics::OverlayCounters& counters);

/// Render the per-category bytes-on-wire / encode-count block. With the
/// zero-copy message path, `encodes` counts serializations (one per
/// exchange round, not one per peer); bytes are the frames those encodes
/// produced.
void render_wire(std::ostream& os, const metrics::WireCounters& counters);

/// Snapshot the process-wide wire telemetry into report-ready counters.
[[nodiscard]] metrics::WireCounters snapshot_wire_counters();

/// Render the response-time percentile block (p50/p95/p99 from the
/// HDR-style histogram in MetricValues) for the handled / not-handled /
/// all slices. Kept out of render_figure so the paper-figure benches stay
/// byte-identical with tracing and telemetry disabled.
void render_latency_percentiles(std::ostream& os,
                                const metrics::MetricValues& handled,
                                const metrics::MetricValues& not_handled,
                                const metrics::MetricValues& all);

}  // namespace digruber::diperf
