#pragma once

#include <iosfwd>
#include <string>

#include "digruber/diperf/diperf.hpp"
#include "digruber/metrics/metrics.hpp"

namespace digruber::diperf {

/// Render a figure the way the paper does: the load / response /
/// throughput series (downsampled) followed by the response-time and
/// throughput summary rows.
void render_figure(std::ostream& os, const std::string& title,
                   const Collector& collector, double end_s,
                   double bucket_s = 60.0, std::size_t max_rows = 20);

/// Render the fault-tolerance counter block the resilience bench appends
/// below its figure.
void render_resilience(std::ostream& os, const metrics::ResilienceCounters& counters);

}  // namespace digruber::diperf
