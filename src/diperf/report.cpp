#include "digruber/diperf/report.hpp"

#include <algorithm>
#include <ostream>

#include "digruber/common/table.hpp"
#include "digruber/net/wire/stats.hpp"

namespace digruber::diperf {

void render_figure(std::ostream& os, const std::string& title,
                   const Collector& collector, double end_s, double bucket_s,
                   std::size_t max_rows) {
  os << "== " << title << " ==\n";

  const std::vector<Collector::Bucket> buckets = collector.series(bucket_s, end_s);
  Table series({"time (s)", "load (clients)", "response (s)", "throughput (q/s)"});
  const std::size_t stride = std::max<std::size_t>(1, buckets.size() / max_rows);
  for (std::size_t b = 0; b < buckets.size(); b += stride) {
    series.add_row({Table::num(buckets[b].t_s, 0), Table::num(buckets[b].load, 0),
                    Table::num(buckets[b].response_avg_s, 2),
                    Table::num(buckets[b].throughput_qps, 2)});
  }
  series.render(os);

  const Summary response = collector.response_summary();
  Table summary({"", "Minimum", "Median", "Average", "Maximum", "Std Dev"});
  summary.add_row({"Response Time (seconds)", Table::num(response.min, 2),
                   Table::num(response.median, 2), Table::num(response.average, 2),
                   Table::num(response.max, 2), Table::num(response.stddev, 2)});
  SampleSet tp;
  for (const Collector::Bucket& b : buckets) {
    if (b.completions > 0) tp.add(b.throughput_qps);
  }
  const Summary throughput = summarize(tp);
  summary.add_row({"Throughput (queries/second)", Table::num(throughput.min, 2),
                   Table::num(throughput.median, 2), Table::num(throughput.average, 2),
                   Table::num(throughput.max, 2), Table::num(throughput.stddev, 2)});
  summary.render(os);

  os << "peak throughput: " << Table::num(collector.peak_throughput(bucket_s, end_s), 2)
     << " q/s, plateau: " << Table::num(collector.plateau_throughput(bucket_s, end_s), 2)
     << " q/s, completions: " << collector.records().size()
     << ", failures: " << collector.failures() << "\n\n";
}

void render_latency_percentiles(std::ostream& os,
                                const metrics::MetricValues& handled,
                                const metrics::MetricValues& not_handled,
                                const metrics::MetricValues& all) {
  os << "== response-time percentiles ==\n";
  Table table({"", "# of Req", "Mean (s)", "p50 (s)", "p95 (s)", "p99 (s)"});
  auto row = [&](const char* label, const metrics::MetricValues& v) {
    if (v.requests == 0) {
      table.add_row({label, "0", "-", "-", "-", "-"});
      return;
    }
    table.add_row({label, std::to_string(v.requests), Table::num(v.response_s, 2),
                   Table::num(v.response_p50_s, 2), Table::num(v.response_p95_s, 2),
                   Table::num(v.response_p99_s, 2)});
  };
  row("Handled by GRUBER", handled);
  row("NOT handled (fallback)", not_handled);
  row("All requests", all);
  table.render(os);
  os << "\n";
}

void render_resilience(std::ostream& os,
                       const metrics::ResilienceCounters& counters) {
  os << "== resilience counters ==\n";
  Table table({"counter", "value"});
  table.add_row({"client failovers", Table::num(double(counters.failovers), 0)});
  table.add_row({"breaker trips", Table::num(double(counters.breaker_trips), 0)});
  table.add_row(
      {"all-DPs-down fallbacks", Table::num(double(counters.all_dps_down_fallbacks), 0)});
  table.add_row({"DP restarts", Table::num(double(counters.dp_restarts), 0)});
  table.add_row(
      {"re-sync records applied", Table::num(double(counters.resync_records), 0)});
  table.add_row(
      {"catch-ups served", Table::num(double(counters.catchups_served), 0)});
  table.add_row(
      {"round-gap re-syncs", Table::num(double(counters.gap_resyncs), 0)});
  table.add_row({"drops: loss", Table::num(double(counters.drops_loss), 0)});
  table.add_row(
      {"drops: partition", Table::num(double(counters.drops_partition), 0)});
  table.add_row({"drops: unknown destination",
                 Table::num(double(counters.drops_unknown_destination), 0)});
  table.add_row({"drops: total", Table::num(double(counters.drops_total()), 0)});
  table.render(os);
  os << "\n";
}

void render_overload(std::ostream& os, const metrics::OverloadCounters& counters) {
  os << "== overload counters ==\n";
  Table table({"counter", "value"});
  table.add_row({"requests submitted", Table::num(double(counters.submitted), 0)});
  table.add_row(
      {"shed: queue full", Table::num(double(counters.shed_queue_full), 0)});
  table.add_row(
      {"shed: deadline doomed", Table::num(double(counters.shed_deadline), 0)});
  table.add_row({"shed: total", Table::num(double(counters.shed_total()), 0)});
  table.add_row({"LIFO pickups", Table::num(double(counters.lifo_pickups), 0)});
  table.add_row({"aborted by crash", Table::num(double(counters.aborted), 0)});
  table.add_row(
      {"overload NACKs received", Table::num(double(counters.overload_nacks), 0)});
  table.add_row(
      {"retry_after honored", Table::num(double(counters.retry_after_honored), 0)});
  table.add_row({"retries denied (budget)",
                 Table::num(double(counters.retries_budget_denied), 0)});
  table.add_row(
      {"p2c routing decisions", Table::num(double(counters.p2c_decisions), 0)});
  table.render(os);
  os << "\n";
}

void render_membership(std::ostream& os,
                       const metrics::MembershipCounters& counters) {
  os << "== membership counters ==\n";
  Table table({"counter", "value"});
  table.add_row({"suspicions", Table::num(double(counters.suspicions), 0)});
  table.add_row(
      {"deaths declared", Table::num(double(counters.deaths_declared), 0)});
  table.add_row({"refutations", Table::num(double(counters.refutations), 0)});
  table.add_row(
      {"joins observed", Table::num(double(counters.joins_observed), 0)});
  table.add_row(
      {"leaves observed", Table::num(double(counters.leaves_observed), 0)});
  table.add_row(
      {"joins started", Table::num(double(counters.joins_started), 0)});
  table.add_row(
      {"joins completed", Table::num(double(counters.joins_completed), 0)});
  table.add_row({"join snapshot retries",
                 Table::num(double(counters.join_snapshot_retries), 0)});
  table.add_row({"join snapshot records",
                 Table::num(double(counters.join_snapshot_records), 0)});
  table.add_row(
      {"snapshots served", Table::num(double(counters.snapshots_served), 0)});
  table.add_row(
      {"drain NACKs sent", Table::num(double(counters.drain_nacks), 0)});
  table.add_row({"client updates applied",
                 Table::num(double(counters.client_updates_applied), 0)});
  table.add_row(
      {"client DPs added", Table::num(double(counters.client_dps_added), 0)});
  table.add_row({"client DPs quarantined",
                 Table::num(double(counters.client_dps_quarantined), 0)});
  table.add_row({"client drain redirects",
                 Table::num(double(counters.client_drain_redirects), 0)});
  table.render(os);
  os << "\n";
}

void render_economy(std::ostream& os, const metrics::EconomyCounters& counters) {
  os << "== economy counters ==\n";
  Table table({"counter", "value"});
  table.add_row(
      {"epochs settled", Table::num(double(counters.epochs_settled), 0)});
  table.add_row(
      {"credits endowed (cpu-s)", Table::num(counters.credits_initial, 0)});
  table.add_row(
      {"credits earned (cpu-s)", Table::num(counters.credits_earned, 0)});
  table.add_row(
      {"credits spent (cpu-s)", Table::num(counters.credits_spent, 0)});
  table.add_row({"credits expired: pool",
                 Table::num(counters.credits_expired_pool, 0)});
  table.add_row(
      {"credits expired: cap", Table::num(counters.credits_expired_cap, 0)});
  table.add_row(
      {"credit denials", Table::num(double(counters.credit_denials), 0)});
  table.add_row(
      {"grace admissions", Table::num(double(counters.grace_admissions), 0)});
  table.add_row(
      {"priced replies", Table::num(double(counters.priced_replies), 0)});
  table.add_row(
      {"priced selections", Table::num(double(counters.priced_selections), 0)});
  table.add_row(
      {"priced dispatches", Table::num(double(counters.priced_dispatches), 0)});
  table.add_row(
      {"budget rejections", Table::num(double(counters.budget_rejections), 0)});
  table.add_row(
      {"market fallbacks", Table::num(double(counters.market_fallbacks), 0)});
  table.render(os);
  os << "\n";
}

void render_overlay(std::ostream& os, const char* strategy,
                    const metrics::OverlayCounters& counters) {
  os << "== overlay counters (" << strategy << ") ==\n";
  Table table({"counter", "value"});
  table.add_row(
      {"exchanges sent", Table::num(double(counters.exchanges_sent), 0)});
  table.add_row({"exchange rounds", Table::num(double(counters.rounds), 0)});
  table.add_row({"mean fan-out", Table::num(counters.mean_fanout(), 2)});
  table.add_row(
      {"max relay depth", Table::num(double(counters.max_hops), 0)});
  table.add_row({"relays suppressed (TTL)",
                 Table::num(double(counters.relays_suppressed), 0)});
  table.add_row(
      {"strategy rebuilds", Table::num(double(counters.rebuilds), 0)});
  table.add_row(
      {"grave probes", Table::num(double(counters.grave_probes), 0)});
  table.add_row({"bytes sent", Table::num(double(counters.bytes_sent), 0)});
  table.add_row(
      {"bytes / round", Table::num(counters.bytes_per_round(), 0)});
  table.render(os);
  os << "\n";
}

void render_wire(std::ostream& os, const metrics::WireCounters& counters) {
  os << "== wire traffic by category ==\n";
  Table table({"category", "encodes", "bytes"});
  const auto row = [&](const char* name, std::uint64_t encodes,
                       std::uint64_t bytes) {
    table.add_row({name, Table::num(double(encodes), 0),
                   Table::num(double(bytes), 0)});
  };
  row("queries", counters.query_encodes, counters.query_bytes);
  row("state exchange", counters.exchange_encodes, counters.exchange_bytes);
  row("control", counters.control_encodes, counters.control_bytes);
  row("other", counters.other_encodes, counters.other_bytes);
  row("total", counters.total_encodes(), counters.total_bytes());
  table.render(os);
  os << "\n";
}

metrics::WireCounters snapshot_wire_counters() {
  const net::wire::WireStats& stats = net::wire::wire_stats();
  using net::wire::MsgCategory;
  metrics::WireCounters counters;
  counters.query_encodes = stats.encodes(MsgCategory::kQuery);
  counters.query_bytes = stats.bytes(MsgCategory::kQuery);
  counters.exchange_encodes = stats.encodes(MsgCategory::kStateExchange);
  counters.exchange_bytes = stats.bytes(MsgCategory::kStateExchange);
  counters.control_encodes = stats.encodes(MsgCategory::kControl);
  counters.control_bytes = stats.bytes(MsgCategory::kControl);
  counters.other_encodes = stats.encodes(MsgCategory::kOther);
  counters.other_bytes = stats.bytes(MsgCategory::kOther);
  return counters;
}

}  // namespace digruber::diperf
