#include "digruber/durable/disk.hpp"

#include <algorithm>

namespace digruber::durable {

namespace {

sim::Duration transfer_cost(std::size_t bytes, double mb_per_s) {
  if (mb_per_s <= 0) return sim::Duration::zero();
  const double us = double(bytes) / (mb_per_s * 1e6) * 1e6;
  return sim::Duration::micros(std::int64_t(us));
}

}  // namespace

SimDisk::SimDisk(DiskOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {}

sim::Duration SimDisk::scaled(sim::Duration d) const {
  return stall_factor_ == 1.0 ? d : d * stall_factor_;
}

sim::Duration SimDisk::append(std::span<const std::uint8_t> bytes) {
  log_.insert(log_.end(), bytes.begin(), bytes.end());
  last_append_size_ = bytes.size();
  ++counters_.appends;
  counters_.bytes_appended += bytes.size();
  return scaled(transfer_cost(bytes.size(), options_.write_mb_per_s));
}

sim::Duration SimDisk::fsync() {
  ++counters_.fsyncs;
  return scaled(options_.fsync_latency);
}

sim::Duration SimDisk::write_checkpoint(std::vector<std::uint8_t> image) {
  const std::size_t bytes = image.size();
  checkpoint_ = std::move(image);
  ++counters_.checkpoints_written;
  counters_.checkpoint_bytes += bytes;
  return scaled(transfer_cost(bytes, options_.write_mb_per_s) + options_.fsync_latency);
}

void SimDisk::truncate_log() {
  log_.clear();
  last_append_size_ = 0;
  ++counters_.log_truncations;
}

sim::Duration SimDisk::read_all_cost() const {
  return scaled(transfer_cost(log_.size() + checkpoint_.size(), options_.read_mb_per_s));
}

void SimDisk::tear_tail() {
  if (log_.empty()) return;
  // Lose a random non-empty suffix of the most recent append (or of the
  // whole log if the append size is unknown) — exactly what power loss
  // mid-write leaves behind.
  const std::size_t window = last_append_size_ > 0
                                 ? std::min(last_append_size_, log_.size())
                                 : log_.size();
  const std::size_t lost = std::size_t(rng_.uniform_index(window)) + 1;
  log_.resize(log_.size() - lost);
  last_append_size_ = 0;
  ++counters_.torn_tails;
}

void SimDisk::corrupt_bit() {
  // Prefer the log (it is the frequently-rewritten region); fall back to the
  // checkpoint slot so the verb still bites on a freshly-truncated device.
  std::vector<std::uint8_t>* target = !log_.empty() ? &log_
                                      : !checkpoint_.empty() ? &checkpoint_
                                                             : nullptr;
  if (!target) return;
  const std::size_t byte = std::size_t(rng_.uniform_index(target->size()));
  const unsigned bit = unsigned(rng_.uniform_index(8));
  (*target)[byte] ^= std::uint8_t(1u << bit);
  ++counters_.bit_flips;
}

void SimDisk::set_stall(double factor) {
  stall_factor_ = factor >= 1.0 ? factor : 1.0;
}

}  // namespace digruber::durable
