#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "digruber/common/rng.hpp"
#include "digruber/sim/time.hpp"

namespace digruber::durable {

/// Latency model for a simulated local storage device. Latencies are
/// *accounted*, not blocking: every mutating call returns the sim-time cost
/// it would have taken, and the caller folds that into handler cost (or a
/// scheduled resume) so durability shows up in simulated time without the
/// event loop ever waiting on host I/O.
struct DiskOptions {
  /// Sequential append throughput for WAL writes.
  double write_mb_per_s = 200.0;
  /// Cost of one fsync barrier (amortized over the frames since the last).
  sim::Duration fsync_latency = sim::Duration::micros(500);
  /// Sequential read throughput for recovery replay.
  double read_mb_per_s = 800.0;
};

/// Byte counters for one device; all zero until the first durable write.
struct DiskCounters {
  std::uint64_t appends = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t log_truncations = 0;
  std::uint64_t torn_tails = 0;
  std::uint64_t bit_flips = 0;
};

/// A simulated storage device: an append-only log region plus an atomic
/// checkpoint slot (write-temp-then-rename semantics — a checkpoint write
/// either fully replaces the old image or leaves it untouched). The device
/// outlives crashes by construction: DecisionPoint::crash() wipes volatile
/// broker state but never touches its SimDisk, which is exactly the
/// asymmetry durable recovery exploits.
///
/// FaultPlan verbs map onto the three fault hooks:
///   - tear_tail(): chop a random number of bytes off the last append
///     (models power loss mid-write; the WAL scanner truncates the torn
///     frame on replay).
///   - corrupt_bit(): flip one random bit in previously-written bytes
///     (models media bit-rot; CRC framing detects it on replay).
///   - set_stall(k): multiply write/fsync/read latency by k until restored
///     (models a degraded device).
class SimDisk {
 public:
  SimDisk(DiskOptions options, std::uint64_t seed);

  /// Append bytes to the log. Returns the accounted write latency
  /// (throughput-proportional); durability is only guaranteed after the
  /// next fsync().
  sim::Duration append(std::span<const std::uint8_t> bytes);

  /// Barrier: everything appended so far is durable. Returns the accounted
  /// latency.
  sim::Duration fsync();

  /// Atomically replace the checkpoint slot (includes its own barrier).
  sim::Duration write_checkpoint(std::vector<std::uint8_t> image);

  /// Drop the log (called after a successful checkpoint).
  void truncate_log();

  /// Accounted cost of reading the full device state back during recovery.
  [[nodiscard]] sim::Duration read_all_cost() const;

  [[nodiscard]] const std::vector<std::uint8_t>& log() const { return log_; }
  [[nodiscard]] const std::vector<std::uint8_t>& checkpoint() const { return checkpoint_; }
  [[nodiscard]] bool empty() const { return log_.empty() && checkpoint_.empty(); }
  [[nodiscard]] const DiskCounters& counters() const { return counters_; }
  [[nodiscard]] double stall_factor() const { return stall_factor_; }

  // --- Fault hooks (FaultPlan-driven) ---
  void tear_tail();
  void corrupt_bit();
  void set_stall(double factor);

 private:
  [[nodiscard]] sim::Duration scaled(sim::Duration d) const;

  DiskOptions options_;
  Rng rng_;
  std::vector<std::uint8_t> log_;
  std::vector<std::uint8_t> checkpoint_;
  std::size_t last_append_size_ = 0;
  double stall_factor_ = 1.0;
  DiskCounters counters_;
};

}  // namespace digruber::durable
