#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "digruber/durable/disk.hpp"

namespace digruber::durable {

/// CRC-32C-framed write-ahead log over a SimDisk log region.
///
/// Frame layout (little-endian, matching the wire archive):
///   [u32 length][u32 crc32c(type || payload)][u8 type][payload...]
/// where length = 1 + payload size. The scanner stops at the first short or
/// corrupt frame — a torn tail truncates cleanly to the last good frame, and
/// a bit-rotted frame cuts replay there (anti-entropy refills the rest).

/// Bytes of framing overhead per record (length + crc words).
inline constexpr std::size_t kWalFrameHeader = 8;

/// Append one frame. Returns the accounted write latency; the record is
/// durable only after the caller's next disk.fsync() barrier.
sim::Duration wal_append(SimDisk& disk, std::uint8_t type,
                         std::span<const std::uint8_t> payload);

struct WalScan {
  std::uint64_t frames = 0;      ///< intact frames delivered to the callback
  std::size_t valid_bytes = 0;   ///< log prefix covered by intact frames
  bool truncated = false;        ///< hit a short/corrupt frame before the end
};

/// Scan a log image, invoking `apply(type, payload)` per intact frame in
/// append order. Never throws and never reads past `log`; hostile lengths
/// and flipped bits terminate the scan (truncated = true).
WalScan wal_scan(std::span<const std::uint8_t> log,
                 const std::function<void(std::uint8_t, std::span<const std::uint8_t>)>& apply);

/// Checkpoint image layout: [u32 magic][u32 length][u32 crc32c(payload)][payload].
/// A corrupt or short image reads as "no checkpoint" — recovery falls back to
/// WAL-only replay plus anti-entropy rather than trusting damaged state.
std::vector<std::uint8_t> make_checkpoint_image(std::span<const std::uint8_t> payload);

/// Returns the payload view into `image`, or nullopt if the magic, length,
/// or checksum do not hold.
std::optional<std::span<const std::uint8_t>> read_checkpoint_image(
    std::span<const std::uint8_t> image);

}  // namespace digruber::durable
