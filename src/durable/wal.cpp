#include "digruber/durable/wal.hpp"

#include <cstring>

#include "digruber/net/wire/crc32c.hpp"

namespace digruber::durable {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x44504331;  // "DPC1"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(std::uint8_t(v));
  out.push_back(std::uint8_t(v >> 8));
  out.push_back(std::uint8_t(v >> 16));
  out.push_back(std::uint8_t(v >> 24));
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t at) {
  return std::uint32_t(bytes[at]) | std::uint32_t(bytes[at + 1]) << 8 |
         std::uint32_t(bytes[at + 2]) << 16 | std::uint32_t(bytes[at + 3]) << 24;
}

std::uint32_t frame_crc(std::uint8_t type, std::span<const std::uint8_t> payload) {
  const std::uint32_t seed = net::wire::crc32c({&type, 1});
  return net::wire::crc32c(payload, seed);
}

}  // namespace

sim::Duration wal_append(SimDisk& disk, std::uint8_t type,
                         std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kWalFrameHeader + 1 + payload.size());
  put_u32(frame, std::uint32_t(1 + payload.size()));
  put_u32(frame, frame_crc(type, payload));
  frame.push_back(type);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return disk.append(frame);
}

WalScan wal_scan(std::span<const std::uint8_t> log,
                 const std::function<void(std::uint8_t, std::span<const std::uint8_t>)>& apply) {
  WalScan scan;
  std::size_t at = 0;
  while (at + kWalFrameHeader <= log.size()) {
    const std::uint32_t length = get_u32(log, at);
    const std::uint32_t crc = get_u32(log, at + 4);
    // Hostile/torn length guard: a frame must hold at least its type byte
    // and must fit inside the remaining image.
    if (length < 1 || std::size_t(length) > log.size() - at - kWalFrameHeader) {
      scan.truncated = true;
      return scan;
    }
    const std::uint8_t type = log[at + kWalFrameHeader];
    const std::span<const std::uint8_t> payload =
        log.subspan(at + kWalFrameHeader + 1, length - 1);
    if (frame_crc(type, payload) != crc) {
      scan.truncated = true;
      return scan;
    }
    apply(type, payload);
    ++scan.frames;
    at += kWalFrameHeader + length;
    scan.valid_bytes = at;
  }
  scan.truncated = scan.truncated || at != log.size();
  return scan;
}

std::vector<std::uint8_t> make_checkpoint_image(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> image;
  image.reserve(12 + payload.size());
  put_u32(image, kCheckpointMagic);
  put_u32(image, std::uint32_t(payload.size()));
  put_u32(image, net::wire::crc32c(payload));
  image.insert(image.end(), payload.begin(), payload.end());
  return image;
}

std::optional<std::span<const std::uint8_t>> read_checkpoint_image(
    std::span<const std::uint8_t> image) {
  if (image.size() < 12) return std::nullopt;
  if (get_u32(image, 0) != kCheckpointMagic) return std::nullopt;
  const std::uint32_t length = get_u32(image, 4);
  if (std::size_t(length) != image.size() - 12) return std::nullopt;
  const std::span<const std::uint8_t> payload = image.subspan(12, length);
  if (net::wire::crc32c(payload) != get_u32(image, 8)) return std::nullopt;
  return payload;
}

}  // namespace digruber::durable
