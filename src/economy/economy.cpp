#include "digruber/economy/economy.hpp"

#include <algorithm>
#include <cmath>

namespace digruber::economy {

double quote_price(const EconomyOptions& options, double utilization,
                   double est_wait_s) {
  const double u = std::clamp(utilization, 0.0, 1.0);
  const double w = std::max(0.0, est_wait_s);
  return options.price_base + options.price_utilization * u +
         options.price_wait * w;
}

CreditBank::CreditBank(const EconomyOptions& options,
                       std::vector<std::pair<VoId, double>> shares)
    : options_(options) {
  double total = 0;
  for (const auto& [vo, fraction] : shares) total += std::max(0.0, fraction);
  const double scale = total > 0 ? 1.0 / total : 0.0;
  const double epoch_cpu_seconds =
      options_.capacity_cpus * options_.epoch.to_seconds();
  for (const auto& [vo, fraction] : shares) {
    Ledger& ledger = ledgers_[vo];
    ledger.fair_share = std::max(0.0, fraction) * scale * epoch_cpu_seconds;
    ledger.balance = options_.initial_credit_epochs * ledger.fair_share;
    initial_total_ += ledger.balance;
  }
}

double CreditBank::allowance(const Ledger& ledger) const {
  return ledger.fair_share + std::max(0.0, ledger.balance);
}

void CreditBank::charge(VoId vo, double cpu_seconds, sim::Time now) {
  roll_to(now);
  auto it = ledgers_.find(vo);
  if (it == ledgers_.end()) return;
  it->second.used_epoch += std::max(0.0, cpu_seconds);
}

bool CreditBank::wins_arbitration(VoId vo) const {
  // Contenders are the VOs over their allowance this epoch; `vo` wins
  // when it precedes every other contender in severity-then-credit order.
  for (const auto& [other, ledger] : ledgers_) {
    if (other == vo) continue;
    if (ledger.used_epoch <= allowance(ledger)) continue;
    if (!precedes(vo, other)) return false;
  }
  return true;
}

Admit CreditBank::admit(VoId vo, sim::Time now, double free_fraction) {
  roll_to(now);
  auto it = ledgers_.find(vo);
  if (it == ledgers_.end()) return Admit::kWithinShare;
  Ledger& ledger = it->second;
  if (ledger.used_epoch <= allowance(ledger)) return Admit::kWithinShare;
  // Over allowance the VO's credit is spent for this epoch: admission is
  // denied — over-use is always paid for, which is what makes honest
  // demand reporting the dominant strategy. The one valve is bounded work
  // conservation: while the grid still has idle capacity, the arbitration
  // winner (best severity-then-credit standing among the over-allowance
  // contenders) may burst on, but never past the credit-cap ceiling —
  // the same bound the balance clamp enforces at settlement.
  const double ceiling = options_.credit_cap_epochs * ledger.fair_share;
  if (ledger.used_epoch < ceiling &&
      free_fraction >= options_.scarce_free_fraction && wins_arbitration(vo)) {
    ++ledger.grace_admissions;
    return Admit::kGrace;
  }
  ++ledger.denials;
  return Admit::kDenied;
}

bool CreditBank::precedes(VoId a, VoId b) const {
  auto severity = [&](VoId vo) {
    auto it = ledgers_.find(vo);
    if (it == ledgers_.end()) return 0.0;
    const Ledger& ledger = it->second;
    return ledger.fair_share > 0 ? ledger.used_epoch / ledger.fair_share
                                 : ledger.used_epoch;
  };
  const double sa = severity(a);
  const double sb = severity(b);
  if (sa != sb) return sa < sb;
  const double ba = balance(a);
  const double bb = balance(b);
  if (ba != bb) return ba > bb;
  return a < b;
}

std::vector<VoId> CreditBank::arbitrate(
    const std::vector<std::pair<VoId, double>>& demands,
    double capacity_cpu_seconds, sim::Time now) {
  roll_to(now);
  std::vector<std::pair<VoId, double>> order = demands;
  std::stable_sort(order.begin(), order.end(),
                   [&](const auto& x, const auto& y) {
                     return precedes(x.first, y.first);
                   });
  std::vector<VoId> admitted;
  double remaining = capacity_cpu_seconds;
  for (const auto& [vo, demand] : order) {
    if (demand > remaining) continue;
    remaining -= demand;
    admitted.push_back(vo);
  }
  return admitted;
}

void CreditBank::roll_to(sim::Time now) {
  if (options_.epoch.us() <= 0) return;
  const std::int64_t epoch_index = now.us() / options_.epoch.us();
  while (current_epoch_ < epoch_index) {
    settle_one_epoch();
    ++current_epoch_;
    ++epochs_settled_;
  }
}

void CreditBank::settle_one_epoch() {
  // Zero-sum transfer: over-share VOs spend what their balance covers of
  // the overage; the pool flows to under-share VOs pro rata to deficit.
  double pool = 0;
  double deficit_total = 0;
  for (auto& [vo, ledger] : ledgers_) {
    const double overage = ledger.used_epoch - ledger.fair_share;
    if (overage > 0) {
      const double spend = std::min(overage, std::max(0.0, ledger.balance));
      ledger.balance -= spend;
      ledger.spent += spend;
      pool += spend;
    } else {
      deficit_total += -overage;
    }
  }
  if (deficit_total > 0 && pool > 0) {
    for (auto& [vo, ledger] : ledgers_) {
      const double deficit = ledger.fair_share - ledger.used_epoch;
      if (deficit <= 0) continue;
      const double earn = pool * (deficit / deficit_total);
      ledger.balance += earn;
      ledger.earned += earn;
    }
  } else {
    expired_pool_ += pool;
  }
  for (auto& [vo, ledger] : ledgers_) {
    const double cap = options_.credit_cap_epochs * ledger.fair_share;
    if (ledger.balance > cap) {
      ledger.expired_cap += ledger.balance - cap;
      ledger.balance = cap;
    }
    ledger.used_epoch = 0;
  }
}

void CreditBank::reset(sim::Time now) {
  initial_total_ = 0;
  expired_pool_ = 0;
  epochs_settled_ = 0;
  current_epoch_ =
      options_.epoch.us() > 0 ? now.us() / options_.epoch.us() : 0;
  for (auto& [vo, ledger] : ledgers_) {
    ledger.balance = options_.initial_credit_epochs * ledger.fair_share;
    ledger.used_epoch = 0;
    ledger.earned = ledger.spent = ledger.expired_cap = 0;
    ledger.denials = ledger.grace_admissions = 0;
    initial_total_ += ledger.balance;
  }
}

BankStats CreditBank::stats() const {
  BankStats stats;
  stats.epochs_settled = epochs_settled_;
  stats.initial_total = initial_total_;
  stats.expired_pool = expired_pool_;
  stats.ledgers.reserve(ledgers_.size());
  for (const auto& [vo, ledger] : ledgers_) {
    LedgerSnapshot snap;
    snap.vo = vo;
    snap.fair_share = ledger.fair_share;
    snap.balance = ledger.balance;
    snap.used_epoch = ledger.used_epoch;
    snap.earned = ledger.earned;
    snap.spent = ledger.spent;
    snap.expired_cap = ledger.expired_cap;
    snap.denials = ledger.denials;
    snap.grace_admissions = ledger.grace_admissions;
    stats.earned += ledger.earned;
    stats.spent += ledger.spent;
    stats.expired_cap += ledger.expired_cap;
    stats.denials += ledger.denials;
    stats.grace_admissions += ledger.grace_admissions;
    stats.ledgers.push_back(snap);
  }
  return stats;
}

BankImage CreditBank::image() const {
  BankImage image;
  image.current_epoch = current_epoch_;
  image.epochs_settled = epochs_settled_;
  image.initial_total = initial_total_;
  image.expired_pool = expired_pool_;
  image.ledgers.reserve(ledgers_.size());
  for (const auto& [vo, ledger] : ledgers_) {
    image.ledgers.push_back({vo, ledger.fair_share, ledger.balance,
                             ledger.used_epoch, ledger.earned, ledger.spent,
                             ledger.expired_cap, ledger.denials,
                             ledger.grace_admissions});
  }
  return image;
}

void CreditBank::restore(const BankImage& image) {
  current_epoch_ = image.current_epoch;
  epochs_settled_ = image.epochs_settled;
  initial_total_ = image.initial_total;
  expired_pool_ = image.expired_pool;
  ledgers_.clear();
  for (const BankLedgerImage& entry : image.ledgers) {
    Ledger& ledger = ledgers_[entry.vo];
    ledger.fair_share = entry.fair_share;
    ledger.balance = entry.balance;
    ledger.used_epoch = entry.used_epoch;
    ledger.earned = entry.earned;
    ledger.spent = entry.spent;
    ledger.expired_cap = entry.expired_cap;
    ledger.denials = entry.denials;
    ledger.grace_admissions = entry.grace_admissions;
  }
}

double CreditBank::balance(VoId vo) const {
  auto it = ledgers_.find(vo);
  return it == ledgers_.end() ? 0.0 : it->second.balance;
}

std::vector<std::pair<VoId, double>> shares_from_tree(
    const usla::AllocationTree& tree, std::size_t n_vos) {
  std::vector<std::pair<VoId, double>> shares;
  shares.reserve(n_vos);
  double claimed = 0;
  std::size_t unruled = 0;
  for (std::size_t i = 0; i < n_vos; ++i) {
    const VoId vo{i};
    const auto share = tree.vo_share(vo);
    const double fraction = share ? share->fraction() : -1.0;
    if (fraction >= 0) {
      claimed += fraction;
    } else {
      ++unruled;
    }
    shares.emplace_back(vo, fraction);
  }
  const double leftover = std::max(0.0, 1.0 - claimed);
  const double equal = unruled > 0
                           ? (leftover > 0 ? leftover / double(unruled)
                                           : 1.0 / double(n_vos))
                           : 0.0;
  for (auto& [vo, fraction] : shares) {
    if (fraction < 0) fraction = equal;
  }
  return shares;
}

}  // namespace digruber::economy
