#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "digruber/common/ids.hpp"
#include "digruber/sim/time.hpp"
#include "digruber/usla/tree.hpp"

namespace digruber::economy {

/// How a decision point turns USLA shares into admission decisions.
///  - kProportional: the seed behavior — shares cap instantaneous usage
///    only (UslaEvaluator headroom), nothing meters usage over time.
///  - kKarma: a credit economy layered on the same shares — each epoch a
///    VO's fair share is priced in CPU-seconds; under-share VOs earn
///    credits from over-share VOs, and an over-share VO keeps brokering
///    only while its credits (plus idle capacity) cover the overage.
enum class Allocator : std::uint8_t { kProportional = 0, kKarma };

/// Which decision point a client routes a query to.
///  - kP2c: load-based power-of-two-choices over DpLoadHints (seed).
///  - kMarket: minimize quoted cost subject to the job's deadline, with
///    p2c fallback when no economic fields ride along.
enum class Placement : std::uint8_t { kP2c = 0, kMarket };

struct EconomyOptions {
  /// Master switch for the economy machinery at a decision point: price
  /// quoting and (when the allocator is kKarma) credit accounting. Off
  /// keeps every frame byte-identical to the seed.
  bool enabled = false;
  Allocator allocator = Allocator::kProportional;

  /// Settlement epoch: fair shares are metered per epoch and credits
  /// settle at epoch boundaries.
  sim::Duration epoch = sim::Duration::minutes(2);
  /// Balance ceiling in units of one epoch's fair share; credits above
  /// the cap expire at settlement (bounds long-idle hoarding).
  double credit_cap_epochs = 4.0;
  /// Initial endowment in epochs of fair share (liquidity so the first
  /// epoch is not a hard cliff).
  double initial_credit_epochs = 1.0;
  /// Below this grid free fraction the grid counts as scarce: over-
  /// allowance VOs are denied outright except the arbitration winner,
  /// who may still be admitted while any capacity remains idle.
  double scarce_free_fraction = 0.25;
  /// Grid CPU capacity backing the fair shares (injected by the
  /// harness; 0 disables the bank even when the allocator is kKarma).
  double capacity_cpus = 0.0;

  /// Congestion-derived price quote: base + utilization * u + wait * w_s.
  double price_base = 1.0;
  double price_utilization = 4.0;
  double price_wait = 0.05;
};

/// Price a decision point quotes for placements through it, derived from
/// its own congestion signals (the same ones DpLoadHint carries).
[[nodiscard]] double quote_price(const EconomyOptions& options,
                                 double utilization, double est_wait_s);

/// Outcome of the karma admission gate for one brokering query.
enum class Admit : std::uint8_t {
  kWithinShare = 0,  // within fair share + credits: always admitted
  kGrace,            // over allowance, but won arbitration on an idle grid
  kDenied,           // over allowance under scarcity: not brokered
};

/// Point-in-time view of one VO's ledger (deterministic across runs with
/// the same seed and arrival trace).
struct LedgerSnapshot {
  VoId vo;
  double fair_share = 0;   // CPU-seconds per epoch
  double balance = 0;      // credits (CPU-seconds) carried across epochs
  double used_epoch = 0;   // CPU-seconds charged so far this epoch
  double earned = 0;       // lifetime credits earned at settlements
  double spent = 0;        // lifetime credits spent at settlements
  double expired_cap = 0;  // lifetime credits expired at the balance cap
  std::uint64_t denials = 0;
  std::uint64_t grace_admissions = 0;
};

/// Bank-wide totals plus per-VO ledgers, for reports and the chaos-soak
/// conservation invariant: spent == earned + expired_pool, and
/// sum(balance) == initial_total + earned - spent - expired_cap.
struct BankStats {
  std::uint64_t epochs_settled = 0;
  double initial_total = 0;  // sum of initial endowments
  double earned = 0;
  double spent = 0;
  double expired_pool = 0;  // spent credits no under-share VO could absorb
  double expired_cap = 0;   // credits expired at the balance cap
  std::uint64_t denials = 0;
  std::uint64_t grace_admissions = 0;
  std::vector<LedgerSnapshot> ledgers;  // ascending VO id
};

/// Serializable image of one VO ledger inside a BankImage.
struct BankLedgerImage {
  VoId vo{};
  double fair_share = 0;
  double balance = 0;
  double used_epoch = 0;
  double earned = 0;
  double spent = 0;
  double expired_cap = 0;
  std::uint64_t denials = 0;
  std::uint64_t grace_admissions = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & vo & fair_share & balance & used_epoch & earned & spent & expired_cap &
        denials & grace_admissions;
  }
};

/// Full-state image of a CreditBank, written into durable checkpoints.
/// Restoring an image makes the bank identical to the instant it was
/// taken; replayed charges then advance it exactly as the live bank did
/// (settlement is a pure function of charge order and times).
struct BankImage {
  std::int64_t current_epoch = 0;
  std::uint64_t epochs_settled = 0;
  double initial_total = 0;
  double expired_pool = 0;
  std::vector<BankLedgerImage> ledgers;  // ascending VO id

  template <class Archive>
  void serialize(Archive& ar) {
    ar & current_epoch & epochs_settled & initial_total & expired_pool & ledgers;
  }
};

/// Per-VO credit ledger with epoch settlement. All state advances
/// deterministically from (charge, admit) call order, so replicas fed the
/// same dispatch stream converge and repeated runs produce identical
/// ledgers.
///
/// Settlement is a zero-sum transfer: over-share VOs spend
/// min(overage, balance) into a pool that is redistributed to under-share
/// VOs proportionally to their deficits; whatever no deficit absorbs
/// expires (expired_pool). Balances are then clamped to
/// credit_cap_epochs * fair_share (overflow recorded as expired_cap).
class CreditBank {
 public:
  /// `shares`: (vo, fraction of grid capacity), ascending VO id; fractions
  /// are normalized if they do not sum to 1.
  CreditBank(const EconomyOptions& options,
             std::vector<std::pair<VoId, double>> shares);

  /// Meter `cpu_seconds` of brokered usage against `vo` (settles any
  /// elapsed epochs first).
  void charge(VoId vo, double cpu_seconds, sim::Time now);

  /// Karma admission gate for one query. `free_fraction` is the grid's
  /// current believed-free fraction (the scarcity signal). Unknown VOs
  /// are not gated.
  [[nodiscard]] Admit admit(VoId vo, sim::Time now, double free_fraction);

  /// Deterministic severity-then-credit order: a precedes b when a has
  /// the lower used/fair severity this epoch, breaking ties by higher
  /// balance, then lower VO id. The arbitration order when demand
  /// exceeds capacity.
  [[nodiscard]] bool precedes(VoId a, VoId b) const;

  /// Batch arbitration: admit contenders in severity-then-credit order
  /// while their demands (CPU-seconds) fit in `capacity_cpu_seconds`.
  /// Returns the admitted VOs in arbitration order.
  [[nodiscard]] std::vector<VoId> arbitrate(
      const std::vector<std::pair<VoId, double>>& demands,
      double capacity_cpu_seconds, sim::Time now);

  /// Settle every epoch boundary passed since the last call.
  void roll_to(sim::Time now);

  /// Forget volatile state after a crash: balances return to the initial
  /// endowment and lifetime counters reset (the conservation invariant
  /// holds over the new lifetime).
  void reset(sim::Time now);

  [[nodiscard]] BankStats stats() const;
  [[nodiscard]] double balance(VoId vo) const;
  [[nodiscard]] std::uint64_t epochs_settled() const { return epochs_settled_; }

  /// Durable-state support: capture the full bank state for a checkpoint,
  /// and restore it verbatim during recovery replay.
  [[nodiscard]] BankImage image() const;
  void restore(const BankImage& image);

 private:
  struct Ledger {
    double fair_share = 0;  // CPU-seconds per epoch
    double balance = 0;
    double used_epoch = 0;
    double earned = 0;
    double spent = 0;
    double expired_cap = 0;
    std::uint64_t denials = 0;
    std::uint64_t grace_admissions = 0;
  };

  void settle_one_epoch();
  [[nodiscard]] double allowance(const Ledger& ledger) const;
  [[nodiscard]] bool wins_arbitration(VoId vo) const;

  EconomyOptions options_;
  std::map<VoId, Ledger> ledgers_;  // ordered: deterministic settlement
  std::int64_t current_epoch_ = 0;
  std::uint64_t epochs_settled_ = 0;
  double initial_total_ = 0;
  double expired_pool_ = 0;
};

/// Extract per-VO grid-capacity fractions from the USLA tree for VOs
/// 0..n_vos-1: the grid-wide vo_share rule when present, else an equal
/// split of what the ruled VOs leave unclaimed.
[[nodiscard]] std::vector<std::pair<VoId, double>> shares_from_tree(
    const usla::AllocationTree& tree, std::size_t n_vos);

}  // namespace digruber::economy
