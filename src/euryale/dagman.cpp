#include "digruber/euryale/dagman.hpp"

#include <cassert>
#include <stdexcept>

namespace digruber::euryale {

void DagMan::add_node(const std::string& name, grid::Job job) {
  if (nodes_.count(name)) throw std::invalid_argument("duplicate dag node: " + name);
  Node node;
  node.job = std::move(job);
  nodes_.emplace(name, std::move(node));
}

void DagMan::add_edge(const std::string& parent, const std::string& child) {
  const auto p = nodes_.find(parent);
  const auto c = nodes_.find(child);
  if (p == nodes_.end() || c == nodes_.end()) {
    throw std::invalid_argument("dag edge references unknown node");
  }
  p->second.children.push_back(child);
  c->second.waiting_on += 1;
}

void DagMan::run(std::function<void(int, int, int)> done) {
  done_ = std::move(done);
  release_ready();
  finish_if_done();
}

void DagMan::release_ready() {
  for (auto& [name, node] : nodes_) {
    if (node.started || node.waiting_on > 0) continue;
    node.started = true;
    ++in_flight_;
    const std::string key = name;
    planner_.run(node.job, [this, key](const PlannerOutcome& outcome) {
      Node& finished = nodes_.at(key);
      --in_flight_;
      if (outcome.succeeded) {
        finished.succeeded = true;
        ++succeeded_;
        for (const std::string& child : finished.children) {
          Node& c = nodes_.at(child);
          assert(c.waiting_on > 0);
          c.waiting_on -= 1;
        }
        release_ready();
      } else {
        finished.failed = true;
        ++failed_;
      }
      finish_if_done();
    });
  }
}

void DagMan::finish_if_done() {
  if (in_flight_ > 0 || !done_) return;
  // No progress possible when nothing is in flight and nothing is ready.
  for (const auto& [name, node] : nodes_) {
    if (!node.started && node.waiting_on == 0) return;  // will be released
  }
  int blocked = 0;
  for (const auto& [name, node] : nodes_) {
    if (!node.started) ++blocked;
  }
  auto done = std::move(done_);
  done_ = nullptr;
  done(succeeded_, failed_, blocked);
}

}  // namespace digruber::euryale
