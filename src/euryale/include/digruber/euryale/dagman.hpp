#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "digruber/euryale/planner.hpp"

namespace digruber::euryale {

/// Minimal DagMan: runs a DAG of jobs through the Euryale planner,
/// releasing each node when all of its parents have succeeded. A failed
/// (abandoned) node blocks its descendants, as in Condor DAGMan.
class DagMan {
 public:
  explicit DagMan(EuryalePlanner& planner) : planner_(planner) {}

  void add_node(const std::string& name, grid::Job job);
  /// `child` will not start until `parent` succeeds.
  void add_edge(const std::string& parent, const std::string& child);

  /// Execute the DAG; `done(succeeded, failed, blocked)` fires once when no
  /// more progress is possible.
  void run(std::function<void(int succeeded, int failed, int blocked)> done);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    grid::Job job;
    std::vector<std::string> children;
    int waiting_on = 0;  // unsatisfied parents
    bool started = false;
    bool succeeded = false;
    bool failed = false;
  };

  void release_ready();
  void finish_if_done();

  EuryalePlanner& planner_;
  std::map<std::string, Node> nodes_;
  std::function<void(int, int, int)> done_;
  int in_flight_ = 0;
  int succeeded_ = 0;
  int failed_ = 0;
};

}  // namespace digruber::euryale
