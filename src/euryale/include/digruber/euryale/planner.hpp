#pragma once

#include <functional>
#include <memory>

#include "digruber/digruber/client.hpp"
#include "digruber/euryale/replica.hpp"
#include "digruber/usla/tree.hpp"
#include "digruber/grid/topology.hpp"

namespace digruber::euryale {

struct PlannerOptions {
  /// Fault tolerance: re-plan a failed job at most this many times.
  int max_replans = 3;
  /// Stage-in/out link speed from the submission host's collection area.
  double transfer_bandwidth_bps = 10e6;
  sim::Duration transfer_setup = sim::Duration::millis(200);
  /// When set, network USLA shares (kNetwork terms) scale each VO's share
  /// of the staging bandwidth.
  const usla::UslaEvaluator* network_policy = nullptr;
};

/// Result handed to the caller when a job leaves the planner.
struct PlannerOutcome {
  grid::Job job;                      // final state and timestamps
  digruber::QueryOutcome last_query;  // from the final (re)plan
  bool succeeded = false;
};

/// The Euryale concrete planner: late-binding job execution over the grid.
/// The DagMan-driven prescript asks the external site selector (DI-GRUBER)
/// for a site immediately before the run, rewrites the submit file,
/// stages input files, and registers replicas; the postscript stages
/// output back, registers produced files, updates popularity, and checks
/// for success. Failures trigger re-planning (paper Section 3.4).
class EuryalePlanner {
 public:
  using Done = std::function<void(const PlannerOutcome&)>;

  EuryalePlanner(sim::Simulation& sim, grid::Grid& grid,
                 digruber::DiGruberClient& selector, ReplicaRegistry& registry,
                 PlannerOptions options);
  EuryalePlanner(sim::Simulation& sim, grid::Grid& grid,
                 digruber::DiGruberClient& selector, ReplicaRegistry& registry)
      : EuryalePlanner(sim, grid, selector, registry, PlannerOptions{}) {}

  /// Run one job through prescript -> submit -> postscript.
  void run(grid::Job job, Done done);

  [[nodiscard]] std::uint64_t jobs_submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t jobs_succeeded() const { return succeeded_; }
  [[nodiscard]] std::uint64_t jobs_abandoned() const { return abandoned_; }
  [[nodiscard]] std::uint64_t replans() const { return replans_; }
  [[nodiscard]] std::uint64_t bytes_staged() const { return bytes_staged_; }

 private:
  void prescript(grid::Job job, Done done);
  void submit(grid::Job job, digruber::QueryOutcome query, Done done);
  void postscript(grid::Job job, digruber::QueryOutcome query, Done done);
  void replan(grid::Job job, Done done);
  [[nodiscard]] sim::Duration transfer_time(std::uint64_t bytes, VoId vo) const;

  sim::Simulation& sim_;
  grid::Grid& grid_;
  digruber::DiGruberClient& selector_;
  ReplicaRegistry& registry_;
  PlannerOptions options_;

  std::uint64_t submitted_ = 0;
  std::uint64_t succeeded_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t replans_ = 0;
  std::uint64_t bytes_staged_ = 0;
};

}  // namespace digruber::euryale
