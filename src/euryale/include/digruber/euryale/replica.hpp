#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "digruber/common/ids.hpp"

namespace digruber::euryale {

/// Replica registry: file name -> locations, plus the file-popularity
/// counters the Euryale postscript maintains (paper Section 3.4).
class ReplicaRegistry {
 public:
  void register_replica(const std::string& file, SiteId site);
  [[nodiscard]] const std::vector<SiteId>& locations(const std::string& file) const;
  [[nodiscard]] bool exists(const std::string& file) const;

  /// Record an access (stage-in) of `file`; returns the new popularity.
  std::uint64_t touch(const std::string& file);
  [[nodiscard]] std::uint64_t popularity(const std::string& file) const;

  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

  /// Files ranked by descending popularity (ties by name).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> hottest(
      std::size_t limit) const;

 private:
  struct Entry {
    std::vector<SiteId> locations;
    std::uint64_t popularity = 0;
  };
  std::map<std::string, Entry> files_;
};

}  // namespace digruber::euryale
