#include "digruber/euryale/planner.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace digruber::euryale {
namespace {

std::string input_name(const grid::Job& job) {
  return "job-" + std::to_string(job.id.value()) + ".in";
}

std::string output_name(const grid::Job& job) {
  return "job-" + std::to_string(job.id.value()) + ".out";
}

}  // namespace

EuryalePlanner::EuryalePlanner(sim::Simulation& sim, grid::Grid& grid,
                               digruber::DiGruberClient& selector,
                               ReplicaRegistry& registry, PlannerOptions options)
    : sim_(sim), grid_(grid), selector_(selector), registry_(registry),
      options_(options) {}

sim::Duration EuryalePlanner::transfer_time(std::uint64_t bytes, VoId vo) const {
  if (bytes == 0) return sim::Duration::zero();
  double bandwidth = options_.transfer_bandwidth_bps;
  if (options_.network_policy) {
    bandwidth *= std::max(0.01, options_.network_policy->network_cap_fraction(vo));
  }
  return options_.transfer_setup +
         sim::Duration::seconds(double(bytes) * 8.0 / bandwidth);
}

void EuryalePlanner::run(grid::Job job, Done done) {
  if (job.created == sim::Time::zero()) job.created = sim_.now();
  prescript(std::move(job), std::move(done));
}

void EuryalePlanner::prescript(grid::Job job, Done done) {
  // Late binding: the site is chosen immediately before the run.
  selector_.schedule(std::move(job), [this, done = std::move(done)](
                                         grid::Job job,
                                         digruber::QueryOutcome query) mutable {
    job.site = query.site;
    job.handled_by_gruber = query.handled_by_gruber;

    // Rewrite the submit file (bookkeeping in the real tool), then stage
    // inputs to the chosen site and register the transferred replica.
    const sim::Duration staging = transfer_time(job.input_bytes, job.vo);
    bytes_staged_ += job.input_bytes;
    sim_.schedule_after(staging, [this, job = std::move(job), query,
                                  done = std::move(done)]() mutable {
      if (job.input_bytes > 0) {
        registry_.register_replica(input_name(job), job.site);
        registry_.touch(input_name(job));
      }
      submit(std::move(job), query, std::move(done));
    });
  });
}

void EuryalePlanner::submit(grid::Job job, digruber::QueryOutcome query, Done done) {
  if (grid_.site(job.site).is_down()) {
    // The selected site is unreachable (the broker's view is stale).
    // Euryale's re-planning heuristic avoids it: late-bind to the best
    // site that is actually up, burning one re-plan attempt.
    const grid::Site* alternative = nullptr;
    for (const auto& candidate : grid_.sites()) {
      if (candidate->is_down()) continue;
      if (!alternative || candidate->free_cpus() > alternative->free_cpus()) {
        alternative = candidate.get();
      }
    }
    if (alternative && job.replans < options_.max_replans) {
      ++replans_;
      job.replans += 1;
      job.site = alternative->id();
    } else {
      replan(std::move(job), std::move(done));
      return;
    }
  }
  grid::Site& site = grid_.site(job.site);
  ++submitted_;
  site.submit(std::move(job), [this, query, done = std::move(done)](
                                  const grid::Job& finished) {
    // Completion callback from the site scheduler (Condor-G/GRAM path).
    if (finished.state == grid::JobState::kCompleted) {
      postscript(finished, query, done);
    } else {
      replan(finished, done);
    }
  });
}

void EuryalePlanner::postscript(grid::Job job, digruber::QueryOutcome query,
                                Done done) {
  // Stage output files back to the collection area, register them, update
  // popularity, and confirm success.
  const sim::Duration staging = transfer_time(job.output_bytes, job.vo);
  bytes_staged_ += job.output_bytes;
  sim_.schedule_after(staging, [this, job = std::move(job), query,
                                done = std::move(done)]() mutable {
    if (job.output_bytes > 0) {
      registry_.register_replica(output_name(job), job.site);
      registry_.touch(output_name(job));
    }
    ++succeeded_;
    PlannerOutcome outcome;
    outcome.job = std::move(job);
    outcome.last_query = query;
    outcome.succeeded = true;
    done(outcome);
  });
}

void EuryalePlanner::replan(grid::Job job, Done done) {
  if (job.replans >= options_.max_replans) {
    ++abandoned_;
    PlannerOutcome outcome;
    outcome.job = std::move(job);
    outcome.succeeded = false;
    done(outcome);
    return;
  }
  ++replans_;
  job.replans += 1;
  job.state = grid::JobState::kAtSubmissionHost;
  prescript(std::move(job), std::move(done));
}

}  // namespace digruber::euryale
