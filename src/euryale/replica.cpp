#include "digruber/euryale/replica.hpp"

#include <algorithm>

namespace digruber::euryale {

void ReplicaRegistry::register_replica(const std::string& file, SiteId site) {
  Entry& entry = files_[file];
  if (std::find(entry.locations.begin(), entry.locations.end(), site) ==
      entry.locations.end()) {
    entry.locations.push_back(site);
  }
}

const std::vector<SiteId>& ReplicaRegistry::locations(const std::string& file) const {
  static const std::vector<SiteId> kEmpty;
  const auto it = files_.find(file);
  return it == files_.end() ? kEmpty : it->second.locations;
}

bool ReplicaRegistry::exists(const std::string& file) const {
  return files_.count(file) > 0;
}

std::uint64_t ReplicaRegistry::touch(const std::string& file) {
  return ++files_[file].popularity;
}

std::uint64_t ReplicaRegistry::popularity(const std::string& file) const {
  const auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.popularity;
}

std::vector<std::pair<std::string, std::uint64_t>> ReplicaRegistry::hottest(
    std::size_t limit) const {
  std::vector<std::pair<std::string, std::uint64_t>> all;
  all.reserve(files_.size());
  for (const auto& [name, entry] : files_) all.emplace_back(name, entry.popularity);
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > limit) all.resize(limit);
  return all;
}

}  // namespace digruber::euryale
