#include "digruber/experiments/config.hpp"

#include <set>
#include <string>

namespace digruber::experiments {
namespace {

Result<net::ContainerProfile> parse_profile(const std::string& name) {
  if (name == "gt3") return net::ContainerProfile::gt3();
  if (name == "gt4") return net::ContainerProfile::gt4();
  if (name == "gt4-c" || name == "gt4c") return net::ContainerProfile::gt4_c();
  return Result<net::ContainerProfile>::failure("unknown profile: " + name);
}

Result<digruber::Dissemination> parse_dissemination(const std::string& name) {
  if (name == "usage") return digruber::Dissemination::kUsageOnly;
  if (name == "usla") return digruber::Dissemination::kUslaAndUsage;
  if (name == "none") return digruber::Dissemination::kNone;
  return Result<digruber::Dissemination>::failure("unknown dissemination: " + name);
}

Result<digruber::Overlay> parse_overlay(const std::string& name) {
  if (name == "mesh") return digruber::Overlay::kMesh;
  if (name == "ring") return digruber::Overlay::kRing;
  if (name == "star") return digruber::Overlay::kStar;
  return Result<digruber::Overlay>::failure("unknown overlay: " + name);
}

// Dissemination strategies live in src/overlay/.  `mesh` is the default
// full flood (byte-identical to the legacy path); ring/star are the old
// static wirings; tree/gossip/superpeer select a sparse strategy and
// route through overlay::Strategy.
Result<overlay::Kind> parse_overlay_kind(const std::string& name) {
  if (name == "tree") return overlay::Kind::kTree;
  if (name == "gossip") return overlay::Kind::kGossip;
  if (name == "superpeer") return overlay::Kind::kSuperPeer;
  return Result<overlay::Kind>::failure("unknown overlay: " + name);
}

Result<economy::Allocator> parse_allocator(const std::string& name) {
  if (name == "proportional") return economy::Allocator::kProportional;
  if (name == "karma") return economy::Allocator::kKarma;
  return Result<economy::Allocator>::failure("unknown allocator: " + name);
}

Result<bool> parse_placement(const std::string& name) {
  if (name == "p2c") return false;
  if (name == "market") return true;
  return Result<bool>::failure("unknown placement: " + name);
}

const std::set<std::string>& known_keys() {
  static const std::set<std::string> keys{
      "name",          "seed",
      "dps",           "profile",
      "exchange_minutes", "dissemination",
      "overlay",       "grid_scale",
      "overlay_degree", "overlay_fanout",
      "overlay_superpeers",
      "background_util", "clients",
      "timeout_s",     "think_s",
      "ramp_s",        "selector",
      "duration_minutes", "vos",
      "groups_per_vo", "runtime_mean_s",
      "runtime_cv",    "cpus_min",
      "cpus_max",      "input_mb",
      "output_mb",     "vo_skew",
      "wan_min_ms",    "wan_max_ms",
      "wan_bandwidth_mbps", "wan_loss",
      "envelope_factor", "uslas",
      "dynamic_provisioning", "max_dynamic_dps",
      "saturation_response_s", "fault_plan",
      "failover",      "failover_backups",
      "attempt_timeout_s", "overload",
      "membership",    "suspect_after",
      "dead_after",    "join_timeout_s",
      "join_backoff_s", "partition_tolerance",
      "staleness_s",   "stale_discount",
      "delta_pull_gap_s", "checksums",
      "allocator",     "placement",
      "economy_epoch_s", "credit_cap_epochs",
      "initial_credit_epochs", "scarce_free_fraction",
      "price_base",    "price_utilization",
      "price_wait",    "economy_capacity_cpus",
      "strategic_vo",
      "strategic_factor", "budget_mean",
      "deadline_slack",  "durability",
      "checkpoint_minutes", "dedup_window",
      "disk_write_mb_s", "disk_fsync_us",
      "request_ids"};
  return keys;
}

}  // namespace

Result<ScenarioConfig> scenario_from_config(const Config& config) {
  using Fail = Result<ScenarioConfig>;
  for (const auto& [key, value] : config.entries()) {
    if (!known_keys().count(key)) return Fail::failure("unknown config key: " + key);
  }

  ScenarioConfig out;
  try {
    out.name = config.get_string("name", out.name);
    out.seed = std::uint64_t(config.get_int("seed", long(out.seed)));

    out.n_dps = int(config.get_int("dps", out.n_dps));
    const auto profile = parse_profile(config.get_string("profile", "gt3"));
    if (!profile.ok()) return Fail::failure(profile.error());
    out.profile = profile.value();
    out.exchange_interval =
        sim::Duration::minutes(config.get_double("exchange_minutes", 3.0));
    const auto dissemination =
        parse_dissemination(config.get_string("dissemination", "usage"));
    if (!dissemination.ok()) return Fail::failure(dissemination.error());
    out.dissemination = dissemination.value();
    const std::string overlay_name = config.get_string("overlay", "mesh");
    const auto overlay = parse_overlay(overlay_name);
    if (overlay.ok()) {
      out.overlay = overlay.value();
    } else {
      const auto kind = parse_overlay_kind(overlay_name);
      if (!kind.ok()) return Fail::failure(kind.error());
      out.overlay = digruber::Overlay::kMesh;
      out.overlay_options.kind = kind.value();
    }
    out.overlay_options.tree_degree =
        std::uint32_t(config.get_int("overlay_degree",
                                     long(out.overlay_options.tree_degree)));
    out.overlay_options.gossip_fanout =
        std::uint32_t(config.get_int("overlay_fanout",
                                     long(out.overlay_options.gossip_fanout)));
    out.overlay_options.superpeers =
        std::uint32_t(config.get_int("overlay_superpeers",
                                     long(out.overlay_options.superpeers)));

    out.grid_scale = int(config.get_int("grid_scale", out.grid_scale));
    out.background_util = config.get_double("background_util", out.background_util);

    out.n_clients = int(config.get_int("clients", out.n_clients));
    out.client_timeout = sim::Duration::seconds(config.get_double("timeout_s", 60.0));
    out.think = sim::Duration::seconds(
        config.get_double("think_s", out.think.to_seconds()));
    out.ramp_span = sim::Duration::seconds(config.get_double("ramp_s", 0.0));
    out.selector = config.get_string("selector", out.selector);

    out.duration = sim::Duration::minutes(config.get_double("duration_minutes", 60.0));

    out.workload.n_vos = int(config.get_int("vos", out.workload.n_vos));
    out.workload.groups_per_vo =
        int(config.get_int("groups_per_vo", out.workload.groups_per_vo));
    out.workload.runtime_mean_s =
        config.get_double("runtime_mean_s", out.workload.runtime_mean_s);
    out.workload.runtime_cv = config.get_double("runtime_cv", out.workload.runtime_cv);
    out.workload.cpus_min = int(config.get_int("cpus_min", out.workload.cpus_min));
    out.workload.cpus_max = int(config.get_int("cpus_max", out.workload.cpus_max));
    out.workload.input_bytes_mean =
        std::uint64_t(config.get_double("input_mb", 0.0) * 1e6);
    out.workload.output_bytes_mean =
        std::uint64_t(config.get_double("output_mb", 0.0) * 1e6);
    out.workload.vo_skew = config.get_double("vo_skew", out.workload.vo_skew);

    out.wan.min_latency_ms = config.get_double("wan_min_ms", out.wan.min_latency_ms);
    out.wan.max_latency_ms = config.get_double("wan_max_ms", out.wan.max_latency_ms);
    out.wan.bandwidth_bps =
        config.get_double("wan_bandwidth_mbps", out.wan.bandwidth_bps / 1e6) * 1e6;
    out.wan.loss_rate = config.get_double("wan_loss", out.wan.loss_rate);
    out.wan.envelope_factor =
        config.get_double("envelope_factor", out.wan.envelope_factor);

    out.install_uslas = config.get_bool("uslas", out.install_uslas);
    out.dynamic_provisioning =
        config.get_bool("dynamic_provisioning", out.dynamic_provisioning);
    out.max_dynamic_dps = int(config.get_int("max_dynamic_dps", out.max_dynamic_dps));
    out.saturation_response_s =
        config.get_double("saturation_response_s", out.saturation_response_s);

    // Fault injection / failover: events ';'-separated on one line, e.g.
    //   fault_plan = at=120 crash dp=0; at=300 restart dp=0
    const std::string plan_text = config.get_string("fault_plan", "");
    if (!plan_text.empty()) {
      auto plan = sim::FaultPlan::parse(plan_text);
      if (!plan.ok()) return Fail::failure(plan.error());
      out.fault_plan = plan.value();
    }
    out.enable_failover = config.get_bool("failover", out.enable_failover);
    out.failover_backups =
        int(config.get_int("failover_backups", out.failover_backups));
    out.attempt_timeout = sim::Duration::seconds(
        config.get_double("attempt_timeout_s", out.attempt_timeout.to_seconds()));
    out.overload_control = config.get_bool("overload", out.overload_control);

    // Dynamic membership: detector thresholds are multiples of the
    // exchange interval; join knobs are wall-clock seconds.
    out.membership = config.get_bool("membership", out.membership);
    out.membership_options.suspect_after =
        config.get_double("suspect_after", out.membership_options.suspect_after);
    out.membership_options.dead_after =
        config.get_double("dead_after", out.membership_options.dead_after);
    out.membership_options.join_snapshot_timeout = sim::Duration::seconds(
        config.get_double("join_timeout_s",
                          out.membership_options.join_snapshot_timeout.to_seconds()));
    out.membership_options.join_retry_backoff = sim::Duration::seconds(
        config.get_double("join_backoff_s",
                          out.membership_options.join_retry_backoff.to_seconds()));

    // Partition tolerance: staleness/throttle knobs are wall-clock
    // seconds; checksums switch every endpoint to v3 (CRC-32C) frames.
    out.partition_tolerance =
        config.get_bool("partition_tolerance", out.partition_tolerance);
    out.partition_options.staleness_threshold = sim::Duration::seconds(
        config.get_double("staleness_s",
                          out.partition_options.staleness_threshold.to_seconds()));
    out.partition_options.stale_discount = config.get_double(
        "stale_discount", out.partition_options.stale_discount);
    out.partition_options.delta_pull_min_gap = sim::Duration::seconds(
        config.get_double("delta_pull_gap_s",
                          out.partition_options.delta_pull_min_gap.to_seconds()));
    out.frame_checksums = config.get_bool("checksums", out.frame_checksums);

    // Economic brokering: `allocator = karma` turns on the credit banks,
    // `placement = market` the client-side bid/price path; either one
    // enables the price/bid wire trailers.
    const auto allocator =
        parse_allocator(config.get_string("allocator", "proportional"));
    if (!allocator.ok()) return Fail::failure(allocator.error());
    out.economy_options.allocator = allocator.value();
    const auto placement = parse_placement(config.get_string("placement", "p2c"));
    if (!placement.ok()) return Fail::failure(placement.error());
    out.market_placement = placement.value();
    out.economy_options.epoch = sim::Duration::seconds(config.get_double(
        "economy_epoch_s", out.economy_options.epoch.to_seconds()));
    out.economy_options.credit_cap_epochs = config.get_double(
        "credit_cap_epochs", out.economy_options.credit_cap_epochs);
    out.economy_options.initial_credit_epochs = config.get_double(
        "initial_credit_epochs", out.economy_options.initial_credit_epochs);
    out.economy_options.scarce_free_fraction = config.get_double(
        "scarce_free_fraction", out.economy_options.scarce_free_fraction);
    out.economy_options.price_base =
        config.get_double("price_base", out.economy_options.price_base);
    out.economy_options.price_utilization = config.get_double(
        "price_utilization", out.economy_options.price_utilization);
    out.economy_options.price_wait =
        config.get_double("price_wait", out.economy_options.price_wait);
    // Brokered capacity the banks ration, in CPUs (0 = the whole grid).
    // Entitlements only bind when demand can exceed a VO's share of this.
    out.economy_options.capacity_cpus = config.get_double(
        "economy_capacity_cpus", out.economy_options.capacity_cpus);
    out.workload.strategic_vo =
        int(config.get_int("strategic_vo", out.workload.strategic_vo));
    out.workload.strategic_factor =
        config.get_double("strategic_factor", out.workload.strategic_factor);
    out.workload.budget_mean =
        config.get_double("budget_mean", out.workload.budget_mean);
    out.workload.deadline_slack =
        config.get_double("deadline_slack", out.workload.deadline_slack);

    // Durable decision points: WAL + checkpoint recovery; `request_ids`
    // additionally stamps selection reports for exactly-once dispatch.
    out.durability = config.get_bool("durability", out.durability);
    out.durability_options.checkpoint_interval = sim::Duration::minutes(
        config.get_double("checkpoint_minutes",
                          out.durability_options.checkpoint_interval.to_seconds() / 60.0));
    out.durability_options.dedup_window = std::size_t(
        config.get_int("dedup_window", long(out.durability_options.dedup_window)));
    out.durability_options.disk.write_mb_per_s = config.get_double(
        "disk_write_mb_s", out.durability_options.disk.write_mb_per_s);
    out.durability_options.disk.fsync_latency = sim::Duration::micros(std::int64_t(
        config.get_double("disk_fsync_us",
                          double(out.durability_options.disk.fsync_latency.us()))));
    out.request_ids = config.get_bool("request_ids", out.request_ids);
  } catch (const std::exception& e) {
    return Fail::failure(e.what());
  }

  if (out.n_dps < 1) return Fail::failure("dps must be >= 1");
  if (out.n_clients < 1) return Fail::failure("clients must be >= 1");
  if (out.grid_scale < 1) return Fail::failure("grid_scale must be >= 1");
  if (out.workload.cpus_min < 1 || out.workload.cpus_max < out.workload.cpus_min) {
    return Fail::failure("bad cpus_min/cpus_max");
  }
  if (out.wan.loss_rate < 0 || out.wan.loss_rate >= 1) {
    return Fail::failure("wan_loss must be in [0, 1)");
  }
  if (out.failover_backups < 0) return Fail::failure("failover_backups must be >= 0");
  if (out.overlay_options.tree_degree < 1) {
    return Fail::failure("overlay_degree must be >= 1");
  }
  if (out.overlay_options.gossip_fanout < 1) {
    return Fail::failure("overlay_fanout must be >= 1");
  }
  if (out.economy_options.epoch <= sim::Duration::zero()) {
    return Fail::failure("economy_epoch_s must be > 0");
  }
  if (out.economy_options.credit_cap_epochs < 0 ||
      out.economy_options.initial_credit_epochs < 0) {
    return Fail::failure("credit epochs must be >= 0");
  }
  if (out.economy_options.scarce_free_fraction < 0 ||
      out.economy_options.scarce_free_fraction > 1) {
    return Fail::failure("scarce_free_fraction must be in [0, 1]");
  }
  if (out.workload.strategic_vo >= out.workload.n_vos) {
    return Fail::failure("strategic_vo must be < vos");
  }
  if (out.partition_options.stale_discount < 0 ||
      out.partition_options.stale_discount > 1) {
    return Fail::failure("stale_discount must be in [0, 1]");
  }
  if (out.durability) {
    if (out.durability_options.checkpoint_interval <= sim::Duration::zero()) {
      return Fail::failure("checkpoint_minutes must be > 0");
    }
    if (out.durability_options.dedup_window < 1) {
      return Fail::failure("dedup_window must be >= 1");
    }
    if (out.durability_options.disk.write_mb_per_s <= 0) {
      return Fail::failure("disk_write_mb_s must be > 0");
    }
  }
  if (!out.fault_plan.empty() &&
      out.fault_plan.max_dp_index() >= std::size_t(out.n_dps)) {
    return Fail::failure("fault_plan names a dp index >= dps");
  }
  if (!out.membership) {
    for (const sim::FaultEvent& event : out.fault_plan.events()) {
      if (event.kind == sim::FaultKind::kDpJoin ||
          event.kind == sim::FaultKind::kDpLeave) {
        return Fail::failure("fault_plan uses join/leave but membership is off");
      }
    }
  }
  return out;
}

}  // namespace digruber::experiments
