#pragma once

#include "digruber/common/config.hpp"
#include "digruber/common/result.hpp"
#include "digruber/experiments/scenario.hpp"

namespace digruber::experiments {

/// Build a ScenarioConfig from flat `key = value` configuration (file or
/// command-line overrides), so deployments can be described without
/// recompiling. Unknown keys are an error — silent typos in experiment
/// configs are how wrong graphs get published.
///
/// Recognized keys (defaults in parentheses):
///   name, seed (7)
///   dps (3), profile [gt3|gt4|gt4-c] (gt3), exchange_minutes (3),
///   dissemination [usage|usla|none] (usage),
///   overlay [mesh|ring|star|tree|gossip|superpeer] (mesh),
///   overlay_degree (3), overlay_fanout (3), overlay_superpeers (0 = sqrt(n))
///   grid_scale (10), background_util (0.45)
///   clients (120), timeout_s (60), think_s (9), ramp_s (0 = half the run),
///   selector (top-k)
///   duration_minutes (60)
///   vos (10), groups_per_vo (10), runtime_mean_s (600), runtime_cv (0.5),
///   cpus_min (1), cpus_max (1), input_mb (0), output_mb (0), vo_skew (0)
///   wan_min_ms (5), wan_max_ms (160), wan_bandwidth_mbps (10),
///   wan_loss (0), envelope_factor (4)
///   uslas (true), dynamic_provisioning (false), max_dynamic_dps (10),
///   saturation_response_s (30)
Result<ScenarioConfig> scenario_from_config(const Config& config);

}  // namespace digruber::experiments
