#pragma once

#include <string>
#include <vector>

#include "digruber/digruber/decision_point.hpp"
#include "digruber/diperf/diperf.hpp"
#include "digruber/metrics/metrics.hpp"
#include "digruber/net/wan.hpp"
#include "digruber/sim/fault_plan.hpp"
#include "digruber/trace/trace.hpp"
#include "digruber/workload/generator.hpp"
#include "digruber/workload/trace.hpp"

namespace digruber::experiments {

/// Full description of one PlanetLab-style DI-GRUBER experiment: the
/// emulated grid, the decision-point deployment, the DiPerF client fleet,
/// and the workload overlay. Every figure/table bench is a point (or
/// sweep) in this space.
struct ScenarioConfig {
  std::string name = "scenario";
  std::uint64_t seed = 7;

  // Decision-point deployment.
  int n_dps = 3;
  net::ContainerProfile profile = net::ContainerProfile::gt3();
  sim::Duration exchange_interval = sim::Duration::minutes(3);
  digruber::Dissemination dissemination = digruber::Dissemination::kUsageOnly;
  digruber::Overlay overlay = digruber::Overlay::kMesh;
  /// Dissemination overlay strategy (mesh | tree | gossip | superpeer)
  /// with its knobs. The default mesh leaves every run byte-identical;
  /// a sparse strategy keeps the full-mesh `overlay` wiring above (the
  /// roster every strategy derives structure from) and narrows the
  /// per-round push set inside each decision point. A zero seed derives
  /// the gossip stream from `seed` arithmetically — no rng draws, so
  /// same-seed runs replay bit-identically.
  overlay::Options overlay_options{};
  /// Observer-only I13 audit (chaos --overlay): harvest per-point applied
  /// record keys and own-record acceptance logs into DpStats.
  bool overlay_audit = false;

  // Emulated grid (OSG x grid_scale).
  int grid_scale = 10;
  /// Mean fraction of each site's CPUs held by site-local (non-grid) work,
  /// drawn per site from uniform(0.5x, 1.5x) of this value. Grid sites are
  /// never empty in practice; this also gives site queues something to do.
  double background_util = 0.45;

  // Client fleet (DiPerF testers / submission hosts).
  int n_clients = 120;
  sim::Duration client_timeout = sim::Duration::seconds(60);
  /// Closed-loop think time between a query outcome and the next job.
  sim::Duration think = sim::Duration::seconds(9);
  /// Testers start staggered over this span (DiPerF's slow ramp); zero
  /// spreads them over the first half of the run.
  sim::Duration ramp_span = sim::Duration::zero();
  std::string selector = "top-k";

  // Measurement window.
  sim::Duration duration = sim::Duration::hours(1);

  // Workload overlay.
  workload::WorkloadSpec workload;

  // Network.
  net::WanParams wan;

  // USLAs: grid->VO and VO->group fair-share targets are auto-generated
  // (equal shares) unless disabled.
  bool install_uslas = true;

  // Section 5 enhancement: saturation-triggered provisioning.
  bool dynamic_provisioning = false;
  int max_dynamic_dps = 10;
  /// Windowed mean response above which a decision point signals
  /// saturation to the infrastructure monitor.
  double saturation_response_s = 30.0;

  // Fault injection (resilience bench). Indices in the plan name decision
  // points by deployment order; an empty plan changes nothing — the run is
  // byte-identical to a build without the fault subsystem.
  sim::FaultPlan fault_plan;
  /// Give each client a failover list (its primary plus `failover_backups`
  /// subsequent decision points) with per-attempt deadlines inside the
  /// 60 s budget. Implied by a non-empty fault plan.
  bool enable_failover = false;
  int failover_backups = 2;
  sim::Duration attempt_timeout = sim::Duration::seconds(10);

  /// Overload control (off by default: default runs stay byte-identical).
  /// Enables deadline-aware admission, typed overload NACKs, and
  /// LIFO-under-overload at every decision-point container; load-hint
  /// piggybacking on exchanges and query replies; and the client fleet's
  /// adaptive retry (token budget, retry_after honoring, power-of-two-
  /// choices failover).
  bool overload_control = false;
  net::OverloadPolicy overload_policy{};

  /// Dynamic membership (off by default: default runs stay byte-identical).
  /// Enables the heartbeat failure detector piggybacked on exchanges, the
  /// join/leave fault verbs (snapshot bootstrap / graceful drain), and
  /// membership-aware client routing (joiners become targets, dead points
  /// are quarantined). Implies client failover.
  bool membership = false;
  digruber::MembershipOptions membership_options{};

  /// Partition tolerance (off by default: default runs stay byte-identical).
  /// Enables the per-VO state digest piggybacked on exchanges and query
  /// replies, targeted delta anti-entropy on digest mismatch, and
  /// staleness-guarded admission (capacity discounting + typed degraded
  /// NACKs when a quorum of peers is stale).
  bool partition_tolerance = false;
  digruber::PartitionToleranceOptions partition_options{};

  /// Economic brokering (off by default: default runs stay byte-identical).
  /// `economy_options.allocator == kKarma` enables the per-decision-point
  /// credit bank (epoch settlement + severity-then-credit admission);
  /// `market_placement` enables client-side budget/deadline bids and
  /// cost-minimizing selection over the price quotes piggybacked on query
  /// replies. Either one turns on the price/bid wire trailers; grid
  /// capacity for the banks is filled in from the emulated grid.
  economy::EconomyOptions economy_options{};
  bool market_placement = false;

  /// Durable decision points (off by default: default runs stay
  /// byte-identical). Every decision point gets a simulated disk with a
  /// CRC-framed write-ahead log and periodic checkpoints; a restart
  /// replays checkpoint+WAL locally and runs anti-entropy only for the
  /// gap. The disktorn/diskrot/diskstall fault verbs act on these disks.
  bool durability = false;
  digruber::DurabilityOptions durability_options{};
  /// Exactly-once dispatch (off by default; implies nothing unless
  /// durability is also on at the serving point): clients stamp selection
  /// reports with durable (client, seq) request ids and retry failed
  /// reports to the same decision point, whose persisted dedup window
  /// collapses them to one dispatch.
  bool request_ids = false;

  /// CRC-32C frame checksums (off by default: legacy v2/v1 frames). When
  /// on, every decision point and client emits v3 frames with a checksum
  /// trailer; corrupted frames are dropped at parse with a typed counter
  /// instead of feeding garbage to handlers.
  bool frame_checksums = false;

  /// Event tracing (optional, off by default). When set, the tracer is
  /// installed as the thread-current tracer for the whole run and bound to
  /// the scenario's simulation clock; phase boundaries, fault injections,
  /// queries, rpc serves, and packet hops are recorded into it. Tracing
  /// never perturbs the simulation: no events are scheduled and no
  /// randomness is drawn, so traced and untraced runs produce identical
  /// results.
  trace::Tracer* tracer = nullptr;
};

struct DpStats {
  std::uint64_t queries = 0;
  std::uint64_t selections = 0;
  std::uint64_t exchanges_sent = 0;
  std::uint64_t exchanges_received = 0;
  std::uint64_t records_applied = 0;
  std::uint64_t records_duplicate = 0;
  std::uint64_t saturation_signals = 0;
  std::uint64_t refused = 0;
  std::uint64_t restarts = 0;
  std::uint64_t resync_records = 0;
  std::uint64_t catchups_served = 0;
  std::uint64_t catchup_records_received = 0;
  double container_utilization = 0.0;
  double mean_sojourn_s = 0.0;
  /// Container admission accounting (chaos-harness conservation input:
  /// submitted == completed + refused + shed_deadline + aborted + residue).
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t lifo_pickups = 0;
  std::uint64_t aborted = 0;
  std::uint64_t queue_residue = 0;  // still queued/busy at harvest

  // Dynamic membership (defaults with membership off).
  bool serving = true;
  bool left = false;
  std::uint64_t suspicions = 0;
  std::uint64_t deaths_declared = 0;
  std::uint64_t refutations = 0;
  std::uint64_t snapshots_served = 0;
  std::uint64_t drain_nacks = 0;
  /// Join lifecycle (-1 for points that never joined at runtime).
  double join_started_s = -1.0;
  double serving_since_s = -1.0;
  /// Every membership transition this point's table observed, in order
  /// (the churn soak and the bench derive time-to-detect from these).
  std::vector<digruber::MembershipTransition> membership_transitions;

  // Partition tolerance (defaults with partition_tolerance off).
  std::uint64_t digest_mismatches = 0;
  std::uint64_t delta_pulls_sent = 0;
  std::uint64_t delta_pulls_served = 0;
  std::uint64_t delta_records_applied = 0;
  std::uint64_t delta_conflicts = 0;
  std::uint64_t double_commits = 0;
  std::uint64_t delta_converged = 0;
  std::uint64_t degraded_refusals = 0;
  std::uint64_t degraded_replies = 0;

  // Economic brokering (defaults with the economy off). `economy` carries
  // this point's credit-bank ledgers; the chaos harness checks per-bank
  // conservation against it.
  economy::BankStats economy{};
  std::uint64_t priced_replies = 0;
  std::uint64_t priced_selections = 0;

  // Durability (defaults with durability off).
  std::uint64_t recoveries = 0;
  std::uint64_t replay_frames = 0;
  std::uint64_t replay_records = 0;
  std::uint64_t replay_dedup_entries = 0;
  std::uint64_t replay_truncations = 0;
  std::uint64_t checkpoint_fallbacks = 0;
  std::uint64_t replay_mismatches = 0;   // I11: committed-but-lost records
  std::uint64_t dedup_hits = 0;
  std::uint64_t duplicate_dispatches = 0;  // I12: one request id, 2+ commits
  double last_recovery_s = 0.0;
  /// Device counters (copied from the point's SimDisk at harvest).
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t log_truncations = 0;
  std::uint64_t disk_torn_tails = 0;
  std::uint64_t disk_bit_flips = 0;

  // Dissemination overlay (under the default mesh only rounds/fanout move).
  std::uint64_t overlay_rounds = 0;
  std::uint64_t overlay_fanout_total = 0;
  std::uint64_t overlay_max_hops = 0;
  std::uint64_t overlay_relays_suppressed = 0;
  std::uint64_t overlay_rebuilds = 0;
  /// Alive at harvest (crashed-and-not-restarted points report false).
  bool running = true;
  /// I13 audit payloads (filled only when config.overlay_audit): every
  /// (origin, seq) this point applied, and its own accepted records as
  /// (seq, accepted-at-seconds).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> applied_keys;
  std::vector<std::pair<std::uint64_t, double>> own_records;
};

/// Client-fleet totals (chaos-harness conservation input: every scheduled
/// query resolves exactly once, so queries == handled + fallbacks).
struct ClientTotals {
  std::uint64_t queries = 0;
  std::uint64_t handled = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t starvations = 0;
  /// Exactly-once dispatch (zero unless request_ids is on).
  std::uint64_t report_retries = 0;
  std::uint64_t dedup_replies = 0;
};

struct ScenarioResult {
  ScenarioConfig config;

  // DiPerF outputs (figure material).
  diperf::Collector collector;
  diperf::PerfModel model;

  // Job accounting (table material).
  metrics::MetricValues handled;
  metrics::MetricValues not_handled;
  metrics::MetricValues all;

  std::vector<DpStats> dps;
  workload::TraceLog trace;

  /// Per-request samples with issue timestamps (the resilience bench
  /// buckets these into an availability/accuracy timeline).
  std::vector<metrics::RequestSample> samples;

  /// Fault-tolerance counters (all zero for fault-free configurations).
  metrics::ResilienceCounters resilience;

  /// Overload-control counters (all zero with overload_control off and no
  /// queue-full refusals).
  metrics::OverloadCounters overload;

  /// Dynamic-membership counters (all zero with membership off).
  metrics::MembershipCounters membership;

  /// Partition-tolerance counters (all zero with partition_tolerance off
  /// and no corruption/checksum activity).
  metrics::PartitionCounters partition;

  /// Economic-brokering counters (all zero with the economy off).
  metrics::EconomyCounters economy;

  /// Durability counters (all zero with durability off).
  metrics::DurabilityCounters durability;

  /// Dissemination-overlay counters (mesh fanout under the default).
  metrics::OverlayCounters overlay;

  /// Client-fleet conservation totals.
  ClientTotals clients;

  /// Sites whose free-CPU accounting is negative at harvest — any nonzero
  /// value means allocation bookkeeping leaked (USLA over-allocation).
  std::size_t sites_overcommitted = 0;

  /// Brokered placements that pushed a VO past its USLA cap at the
  /// selected site, judged against ground truth at dispatch time. A
  /// single fresh view never admits past the cap; breaches appear when
  /// divergent views (a split) each admitted within their own believed
  /// headroom and the union breached the entitlement. The worst single
  /// excess is in CPUs.
  std::uint64_t entitlement_breaches = 0;
  std::int32_t entitlement_worst_excess = 0;

  /// Ground-truth USLA audit taken at window end (before the drain):
  /// (site, VO) pairs running past their entitlement cap right then, and
  /// the worst excess in CPUs. Zero on every honest single-view run;
  /// reported by every scenario summary.
  std::uint64_t overcommits_final = 0;
  std::int32_t overcommit_worst_excess = 0;

  // Grid-level facts.
  std::size_t sites = 0;
  std::int64_t total_cpus = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_started = 0;
  double grid_cpu_seconds = 0.0;

  /// Fairness of delivered CPU time across VOs and across groups (the
  /// paper's Section 4.1 question), over the brokered workload.
  metrics::FairnessReport vo_fairness;
  metrics::FairnessReport group_fairness;

  /// Fairness of *brokered granted* CPU time across VOs: cpu x runtime for
  /// jobs a decision point placed (fallback placements excluded). This is
  /// what the karma allocator governs — denied queries divert to the
  /// client's random fallback (out-of-band submission), so delivered grid
  /// CPU stays demand-shaped while brokered grants track entitlements.
  metrics::FairnessReport brokered_vo_fairness;

  int final_dps = 0;  // > n_dps when dynamic provisioning fired
  std::uint64_t sim_events = 0;
};

/// Run one scenario end to end on the discrete-event substrate.
ScenarioResult run_scenario(const ScenarioConfig& config);

/// The default equal-share USLA set for a catalog: grid gives each VO a
/// target of 100/n_vos %, each VO gives each group 100/groups %.
std::vector<usla::Agreement> default_agreements(const grid::VoCatalog& catalog);

/// Estimated single-query service cost (seconds of worker time) for a
/// brokering query under `profile` on a grid with `n_sites` sites — feeds
/// the GRUB-SIM capacity model.
double query_service_seconds(const net::ContainerProfile& profile,
                             std::size_t n_sites,
                             sim::Duration eval_cost_per_site);

/// Per-decision-point capacity in queries/second under `profile`.
double dp_capacity_qps(const net::ContainerProfile& profile, std::size_t n_sites,
                       sim::Duration eval_cost_per_site);

}  // namespace digruber::experiments
