#include "digruber/experiments/scenario.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "digruber/common/log.hpp"
#include "digruber/digruber/client.hpp"
#include "digruber/digruber/infrastructure_monitor.hpp"
#include "digruber/net/sim_transport.hpp"

namespace digruber::experiments {

std::vector<usla::Agreement> default_agreements(const grid::VoCatalog& catalog) {
  std::vector<usla::Agreement> agreements;
  usla::Agreement agreement;
  agreement.name = "equal-shares";
  agreement.context_provider = "grid";
  agreement.context_consumer = "all-vos";

  const double vo_pct = 100.0 / double(catalog.vo_count());
  for (std::size_t v = 0; v < catalog.vo_count(); ++v) {
    const VoId vo(v);
    usla::ServiceTerm term;
    term.name = catalog.vo_name(vo) + "-share";
    term.provider = usla::EntityRef{usla::EntityRef::Kind::kGrid, ""};
    term.consumer = usla::EntityRef{usla::EntityRef::Kind::kVo, catalog.vo_name(vo)};
    term.share = usla::ShareSpec{vo_pct, usla::BoundKind::kTarget};
    agreement.terms.push_back(std::move(term));

    const auto& groups = catalog.groups_of(vo);
    const double group_pct = 100.0 / double(groups.size());
    for (const GroupId group : groups) {
      usla::ServiceTerm gterm;
      gterm.name = catalog.group_name(group) + "-share";
      gterm.provider = usla::EntityRef{usla::EntityRef::Kind::kVo, catalog.vo_name(vo)};
      gterm.consumer =
          usla::EntityRef{usla::EntityRef::Kind::kGroup, catalog.group_name(group)};
      gterm.share = usla::ShareSpec{group_pct, usla::BoundKind::kTarget};
      agreement.terms.push_back(std::move(gterm));
    }
  }
  agreement.goals.push_back(usla::Goal{"accuracy", ">", 0.9});
  agreements.push_back(std::move(agreement));
  return agreements;
}

double query_service_seconds(const net::ContainerProfile& profile,
                             std::size_t n_sites, sim::Duration eval_cost_per_site) {
  // Byte sizes mirror the real protocol structs (see digruber/protocol.hpp):
  // a small request, a reply of ~20 bytes per candidate site, and the
  // short selection-report exchange.
  const std::size_t loads_request = 128;
  const std::size_t loads_reply = 32 + n_sites * 20;
  const std::size_t report_request = 160;
  const std::size_t report_reply = 16;

  net::ContainerProfile p = profile;  // service_time is pure; reuse directly
  sim::Simulation scratch;
  net::ServiceContainer container(scratch, p);
  const sim::Duration loads = container.service_time(
      loads_request, loads_reply, eval_cost_per_site * double(n_sites));
  const sim::Duration report =
      container.service_time(report_request, report_reply, sim::Duration::millis(5));
  return (loads + report).to_seconds();
}

double dp_capacity_qps(const net::ContainerProfile& profile, std::size_t n_sites,
                       sim::Duration eval_cost_per_site) {
  const double per_query = query_service_seconds(profile, n_sites, eval_cost_per_site);
  return per_query > 0 ? double(profile.workers) / per_query : 0.0;
}

namespace {

/// Book-keeping shared by the tester operation closures.
struct Shared {
  sim::Simulation* sim = nullptr;
  grid::Grid* grid = nullptr;
  const usla::UslaEvaluator* evaluator = nullptr;
  workload::TraceLog trace;
  std::vector<std::shared_ptr<metrics::RequestSample>> samples;
  std::unordered_map<NodeId, std::uint32_t> dp_index;
  double window_s = 0.0;
  std::uint64_t jobs_started = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t entitlement_breaches = 0;
  std::int32_t entitlement_worst_excess = 0;
  /// Brokered granted CPU-seconds per VO (cpus x runtime at dispatch, jobs
  /// a decision point placed only) — the allocation the karma gate governs.
  std::vector<double> brokered_granted;
};

/// Oracle scheduling accuracy, computed from true grid state at dispatch:
/// the job's VO-headroom at the selected site relative to the best
/// admissible headroom anywhere (primary metric), plus the literal
/// "share of total free resources" reading of the paper's definition.
struct OracleAccuracy {
  double relative_to_best = 1.0;
  double total_share = 0.0;
};

OracleAccuracy oracle_accuracy(const grid::Grid& grid,
                               const usla::UslaEvaluator& evaluator, VoId vo,
                               SiteId selected, std::int32_t believed_free) {
  std::int32_t best_room = 0;
  std::int64_t total_free = 0;
  std::int32_t selected_room = 0;
  std::int32_t selected_free = 0;
  for (const auto& site : grid.sites()) {
    const std::int32_t free = site->is_down() ? 0 : site->free_cpus();
    total_free += free;
    const double cap = evaluator.cap_fraction(vo, site->id());
    const auto allowed = std::int32_t(cap * double(site->total_cpus()));
    const std::int32_t room =
        std::min(free, std::max(0, allowed - site->running_for_vo(vo)));
    if (room > best_room) best_room = room;
    if (site->id() == selected) {
      selected_room = room;
      selected_free = free;
    }
  }
  OracleAccuracy out;
  if (believed_free >= 0) {
    // Knowledge accuracy: how much of the free capacity the decision point
    // believed in actually exists. Fresh state -> 1.0; staleness (unseen
    // peer dispatches) inflates the belief and drags this down.
    out.relative_to_best = believed_free == 0
                               ? 1.0
                               : std::min(1.0, double(selected_free) /
                                                   double(believed_free));
  } else {
    // Blind (fallback) pick: rate it against the best admissible room.
    out.relative_to_best =
        best_room > 0 ? double(selected_room) / double(best_room) : 1.0;
  }
  out.total_share = total_free > 0 ? double(selected_free) / double(total_free) : 0.0;
  return out;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config) {
  if (config.n_dps < 1) throw std::invalid_argument("scenario needs >= 1 decision point");
  if (config.n_clients < 1) throw std::invalid_argument("scenario needs >= 1 client");
  // Each join event grows the deployment by one, so a plan may name
  // indices up to n_dps + join_count - 1 (events that fire before "their"
  // joiner exists are skipped at fire time).
  if (!config.fault_plan.empty() &&
      config.fault_plan.max_dp_index() >=
          std::size_t(config.n_dps) + config.fault_plan.join_count()) {
    throw std::invalid_argument("fault plan names dp " +
                                std::to_string(config.fault_plan.max_dp_index()) +
                                " but the deployment has only " +
                                std::to_string(config.n_dps));
  }
  for (const sim::FaultEvent& e : config.fault_plan.events()) {
    if ((e.kind == sim::FaultKind::kDpJoin || e.kind == sim::FaultKind::kDpLeave) &&
        !config.membership) {
      throw std::invalid_argument(
          "fault plan uses join/leave but membership is disabled");
    }
  }
  // Market placement routes jobs across decision points by quoted price,
  // so it needs the multi-target attempt path (the legacy single-shot
  // client binds to exactly one point and never chooses).
  const bool failover = config.enable_failover || config.membership ||
                        config.market_placement || !config.fault_plan.empty();

  sim::Simulation sim(config.seed);
  net::SimTransport transport(sim, net::WanModel(config.wan, config.seed ^ 0xA11CEULL));

  // Install the caller's tracer (if any) for the duration of this run and
  // stamp events with this scenario's simulation clock. The session object
  // restores any previously-current tracer on scope exit.
  std::optional<trace::TraceSession> trace_session;
  if (config.tracer) {
    config.tracer->bind_clock(&sim);
    trace_session.emplace(*config.tracer);
    config.tracer->instant(trace::Category::kScenario, 0, "scenario.start", {},
                           std::int64_t(config.n_dps),
                           std::int64_t(config.n_clients));
  }

  // --- Emulated grid (OSG x scale) and VO catalog. ------------------------
  Rng topo_rng = sim.rng().fork();
  const grid::TopologySpec spec = grid::TopologySpec::osg_scaled(config.grid_scale, topo_rng);
  grid::Grid grid(sim, spec);
  if (config.background_util > 0) {
    for (const auto& site : grid.sites()) {
      const double lo = std::max(0.0, config.background_util * 0.5);
      const double hi = std::min(0.95, config.background_util * 1.5);
      const double frac = topo_rng.uniform(lo, hi);
      site->reserve_local(std::int32_t(frac * double(site->total_cpus())));
    }
  }
  const grid::VoCatalog catalog = grid::VoCatalog::uniform(
      config.workload.n_vos, config.workload.groups_per_vo);

  // --- USLAs. --------------------------------------------------------------
  std::vector<usla::Agreement> agreements;
  if (config.install_uslas) agreements = default_agreements(catalog);
  Result<usla::AllocationTree> tree = usla::AllocationTree::build(agreements, catalog);
  if (!tree.ok()) throw std::runtime_error("usla build failed: " + tree.error());

  // --- Decision points. ----------------------------------------------------
  const usla::UslaEvaluator oracle_evaluator(tree.value(), catalog);

  Shared shared;
  shared.sim = &sim;
  shared.grid = &grid;
  shared.evaluator = &oracle_evaluator;
  shared.window_s = config.duration.to_seconds();
  shared.brokered_granted.assign(catalog.vo_count(), 0.0);

  std::vector<std::unique_ptr<digruber::DecisionPoint>> dps;
  std::vector<std::unique_ptr<digruber::DiGruberClient>> clients;

  digruber::DecisionPointOptions dp_options;
  dp_options.profile = config.profile;
  dp_options.exchange_interval = config.exchange_interval;
  dp_options.dissemination = config.dissemination;
  dp_options.saturation_response_s = config.saturation_response_s;
  if (config.overload_control) {
    dp_options.profile.overload = config.overload_policy;
    dp_options.profile.overload.enabled = true;
    dp_options.advertise_load = true;
  }
  if (config.membership) {
    dp_options.membership = config.membership_options;
    dp_options.membership.enabled = true;
  }
  if (config.partition_tolerance) {
    dp_options.partition = config.partition_options;
    dp_options.partition.enabled = true;
  }
  if (config.frame_checksums) dp_options.frame_checksums = true;
  if (config.durability) {
    dp_options.durability = config.durability_options;
    dp_options.durability.enabled = true;
  }
  dp_options.overlay = config.overlay_options;
  if (dp_options.overlay.seed == 0) {
    // Derived arithmetically from the scenario seed (no rng draws), so
    // default runs stay bit-identical and gossip replays with the seed.
    dp_options.overlay.seed = config.seed ^ 0x07E121A7ULL;
  }
  dp_options.overlay_audit = config.overlay_audit;
  const bool economy_on =
      config.economy_options.enabled ||
      config.economy_options.allocator == economy::Allocator::kKarma ||
      config.market_placement;
  if (economy_on) {
    dp_options.economy = config.economy_options;
    dp_options.economy.enabled = true;
    if (dp_options.economy.capacity_cpus <= 0) {
      dp_options.economy.capacity_cpus = double(grid.total_cpus());
    }
  }

  std::unique_ptr<digruber::InfrastructureMonitor> monitor;
  auto reconnect_all = [&] {
    std::vector<digruber::DecisionPoint*> raw;
    raw.reserve(dps.size());
    for (auto& dp : dps) raw.push_back(dp.get());
    if (config.overlay_options.kind != overlay::Kind::kMesh) {
      // Sparse strategies need the full roster (id + node per peer) so
      // every point derives the same tree / super-peer structure.
      digruber::connect(std::move(raw), dp_options.overlay);
    } else {
      digruber::connect(std::move(raw), config.overlay);
    }
  };
  auto add_dp = [&] {
    if (dp_options.durability.enabled) {
      // Per-DP disk seed: fault injection (bit rot) must hit independent
      // offsets on each decision point's device.
      dp_options.durability.disk_seed =
          config.seed ^ (0xD15CULL << 32) ^ std::uint64_t(dps.size());
    }
    auto dp = std::make_unique<digruber::DecisionPoint>(
        sim, transport, DpId(dps.size()), catalog, tree.value(), dp_options);
    dp->bootstrap(grid.snapshot_all());
    shared.dp_index.emplace(dp->node(), std::uint32_t(dps.size()));
    dps.push_back(std::move(dp));
  };
  // Runtime join: the new decision point gets NO grid bootstrap and no
  // static wiring — it fetches a state snapshot from a live seed, refuses
  // queries until the snapshot lands, then announces itself; the mesh
  // (and the client fleet) learn it through membership gossip.
  auto join_dp = [&] {
    std::vector<NodeId> seeds;
    for (const auto& dp : dps) {
      if (dp->running() && dp->serving()) seeds.push_back(dp->node());
    }
    if (dp_options.durability.enabled) {
      dp_options.durability.disk_seed =
          config.seed ^ (0xD15CULL << 32) ^ std::uint64_t(dps.size());
    }
    auto joiner = std::make_unique<digruber::DecisionPoint>(
        sim, transport, DpId(dps.size()), catalog, tree.value(), dp_options);
    shared.dp_index.emplace(joiner->node(), std::uint32_t(dps.size()));
    joiner->join(std::move(seeds));
    dps.push_back(std::move(joiner));
  };

  if (config.dynamic_provisioning) {
    monitor = std::make_unique<digruber::InfrastructureMonitor>(
        sim, transport, [&](const digruber::SaturationSignal& signal) {
          if (int(dps.size()) >= config.max_dynamic_dps) return;
          log::info("scenario", "provisioning decision point ", dps.size(),
                    " after saturation of dp ", signal.from.value());
          if (config.membership) {
            // Provision via the runtime-join path: clients learn the new
            // point from membership updates instead of a forced rebind
            // (rebinding onto a still-bootstrapping DP would only draw
            // drain NACKs).
            join_dp();
            return;
          }
          add_dp();
          reconnect_all();
          for (std::size_t i = 0; i < clients.size(); ++i) {
            clients[i]->rebind(dps[i % dps.size()]->node());
          }
        });
    dp_options.infrastructure_monitor = monitor->node();
  }

  for (int d = 0; d < config.n_dps; ++d) add_dp();
  reconnect_all();
  if (config.membership) {
    // Deployment-time member set: every initial decision point knows every
    // other as alive at incarnation 0.
    std::vector<digruber::MemberInfo> members;
    members.reserve(dps.size());
    for (const auto& dp : dps) {
      digruber::MemberInfo info;
      info.dp = dp->id();
      info.node = dp->node().value();
      members.push_back(info);
    }
    for (auto& dp : dps) dp->seed_membership(members);
  }

  // --- Client fleet. -------------------------------------------------------
  std::vector<SiteId> all_sites;
  all_sites.reserve(grid.site_count());
  for (std::size_t s = 0; s < grid.site_count(); ++s) all_sites.push_back(SiteId(s));

  auto ids = std::make_shared<workload::JobIdAllocator>();
  std::vector<workload::JobFactory> factories;
  factories.reserve(std::size_t(config.n_clients));

  diperf::Collector collector;
  diperf::Controller controller(sim, collector);

  digruber::ClientOptions client_options;
  client_options.timeout = config.client_timeout;
  if (failover) client_options.attempt_timeout = config.attempt_timeout;
  if (config.overload_control) client_options.overload_aware = true;
  if (config.membership) client_options.membership_aware = true;
  if (config.frame_checksums) client_options.frame_checksums = true;
  if (config.market_placement) client_options.market_placement = true;
  if (config.request_ids) client_options.request_ids = true;

  for (int c = 0; c < config.n_clients; ++c) {
    Rng client_rng = sim.rng().fork();
    // Static random binding of each submission host to one decision point.
    const std::size_t dp = client_rng.uniform_index(dps.size());
    // With failover, the next `failover_backups` points (deployment order,
    // wrapping) back the primary. Fault-free configs keep the one-DP
    // binding and the legacy single-shot client path.
    std::vector<NodeId> targets{dps[dp]->node()};
    if (failover) {
      const std::size_t backups =
          std::min(std::size_t(std::max(0, config.failover_backups)), dps.size() - 1);
      for (std::size_t b = 1; b <= backups; ++b) {
        targets.push_back(dps[(dp + b) % dps.size()]->node());
      }
    }
    clients.push_back(std::make_unique<digruber::DiGruberClient>(
        sim, transport, ClientId(std::uint64_t(c)), std::move(targets), all_sites,
        gruber::make_selector(config.selector, client_rng.fork()),
        client_rng.fork(), client_options));
    factories.emplace_back(config.workload, catalog, ids, client_rng.fork());
  }

  for (int c = 0; c < config.n_clients; ++c) {
    digruber::DiGruberClient* client = clients[std::size_t(c)].get();
    workload::JobFactory* factory = &factories[std::size_t(c)];
    auto op = [&shared, &sim, &grid, client, factory](std::function<void(bool)> done) {
      grid::Job job = factory->next(sim.now());
      const sim::Time t0 = sim.now();
      client->schedule(
          std::move(job), [&shared, &grid, client, t0, done = std::move(done)](
                              grid::Job job, digruber::QueryOutcome outcome) {
            // Trace entry for GRUB-SIM.
            workload::QueryTrace trace;
            trace.client = client->id();
            // Attribute the query to the decision point that actually
            // answered (differs from the primary after a failover).
            const auto dp_it = shared.dp_index.find(outcome.served_by.valid()
                                                        ? outcome.served_by
                                                        : client->decision_point());
            trace.dp_index = dp_it != shared.dp_index.end() ? dp_it->second : 0;
            trace.issued = t0;
            trace.response_s = outcome.response.to_seconds();
            trace.handled = outcome.handled_by_gruber;
            shared.trace.add(trace);

            // Metric sample; accuracy is sampled by the oracle *before*
            // this job occupies the site.
            auto sample = std::make_shared<metrics::RequestSample>();
            sample->issued_s = t0.to_seconds();
            sample->handled = outcome.handled_by_gruber;
            sample->response_s = outcome.response.to_seconds();
            grid::Site& selected = grid.site(outcome.site);
            const OracleAccuracy oracle = oracle_accuracy(
                grid, *shared.evaluator, job.vo, outcome.site, outcome.believed_free);
            sample->dispatched = true;
            sample->accuracy = oracle.relative_to_best;
            sample->accuracy_total_share = oracle.total_share;
            shared.samples.push_back(sample);

            // Ground-truth entitlement audit, sampled before this job
            // occupies the site: a brokered placement that pushes the VO
            // past its USLA cap means the admitting view could not see
            // capacity already committed elsewhere (the split-brain
            // over-commit signature — see usla::VoOverCommit).
            if (outcome.handled_by_gruber) {
              if (std::size_t(job.vo.value()) < shared.brokered_granted.size()) {
                shared.brokered_granted[std::size_t(job.vo.value())] +=
                    double(job.cpus) * job.runtime.to_seconds();
              }
              const std::int32_t cap = shared.evaluator->vo_cap_cpus(
                  outcome.site, job.vo, selected.total_cpus());
              const std::int32_t after =
                  selected.running_for_vo(job.vo) + job.cpus;
              if (after > cap) {
                ++shared.entitlement_breaches;
                shared.entitlement_worst_excess =
                    std::max(shared.entitlement_worst_excess, after - cap);
              }
            }

            job.handled_by_gruber = outcome.handled_by_gruber;
            job.accuracy = sample->accuracy;
            const double window_s = shared.window_s;
            Shared* sh = &shared;
            selected.submit(std::move(job), [sample, window_s, sh](const grid::Job& fin) {
              if (fin.state == grid::JobState::kCompleted) {
                sample->started = true;
                sample->qtime_s = fin.queue_time().to_seconds();
                sample->cpu_seconds_in_window = metrics::cpu_seconds_in_window(
                    fin.started.to_seconds(), fin.completed.to_seconds(), fin.cpus,
                    window_s);
                ++sh->jobs_completed;
                ++sh->jobs_started;
              }
            });
            done(outcome.handled_by_gruber);
          });
    };
    controller.add_tester(std::make_unique<diperf::Tester>(
        sim, ClientId(std::uint64_t(c)), std::move(op), config.think, collector));
  }

  // --- Fault plan. ---------------------------------------------------------
  // Indices in the plan name decision points by deployment order; the
  // applier resolves them to live objects and (both of) their transport
  // addresses at fire time, so restarts and provisioning stay consistent.
  if (!config.fault_plan.empty()) {
    log::info("scenario", "fault plan armed:\n", config.fault_plan.describe());
    config.fault_plan.arm(sim, [&](const sim::FaultEvent& event) {
      auto nodes_of = [&dps](std::size_t i) {
        return std::array<NodeId, 2>{dps[i]->node(), dps[i]->peer_node()};
      };
      auto each_link = [&](std::size_t a, std::size_t b, auto&& fn) {
        for (const NodeId na : nodes_of(a)) {
          for (const NodeId nb : nodes_of(b)) fn(na, nb);
        }
      };
      auto peers_of = [&dps](const sim::FaultEvent& e) {
        std::vector<std::size_t> peers;
        if (e.all_peers) {
          for (std::size_t i = 0; i < dps.size(); ++i) {
            if (i != e.dp) peers.push_back(i);
          }
        } else {
          peers.push_back(e.peer);
        }
        return peers;
      };
      if (auto* t = trace::current()) {
        static const char* const kFaultNames[] = {
            "fault.crash",        "fault.restart",      "fault.partition",
            "fault.heal",         "fault.link_degrade", "fault.link_restore",
            "fault.join",         "fault.leave",        "fault.oneway",
            "fault.oneway_heal",  "fault.corrupt",      "fault.disk_torn",
            "fault.disk_rot",     "fault.disk_stall",   "fault.disk_restore"};
        t->instant(trace::Category::kScenario, 0,
                   kFaultNames[std::size_t(event.kind)], {},
                   std::int64_t(event.dp));
      }
      // A plan may name a joiner's index; any dp-targeted event that fires
      // before that joiner exists is a no-op.
      const bool dp_exists = event.dp < dps.size();
      switch (event.kind) {
        case sim::FaultKind::kDpCrash:
          if (dp_exists) dps[event.dp]->crash();
          break;
        case sim::FaultKind::kDpRestart:
          if (dp_exists) dps[event.dp]->restart(grid.snapshot_all());
          break;
        case sim::FaultKind::kPartition:
          // Each partition event describes the complete island layout.
          // Unlisted decision points stay on island 0; so do clients,
          // unless the event asks for a client split — round-robin across
          // the islands, so both sides keep taking queries against
          // divergent views (genuine split-brain pressure).
          transport.heal_partition();
          for (std::size_t k = 0; k < event.islands.size(); ++k) {
            for (const std::size_t i : event.islands[k]) {
              if (i >= dps.size()) continue;
              for (const NodeId n : nodes_of(i)) {
                transport.set_island(n, std::uint32_t(k));
              }
            }
          }
          if (event.split_clients && !event.islands.empty()) {
            for (std::size_t c = 0; c < clients.size(); ++c) {
              transport.set_island(clients[c]->node(),
                                   std::uint32_t(c % event.islands.size()));
            }
          }
          break;
        case sim::FaultKind::kHeal:
          transport.heal_partition();
          break;
        case sim::FaultKind::kLinkDegrade: {
          if (!dp_exists) break;
          net::LinkOverride degraded;
          degraded.latency_factor = event.latency_factor;
          degraded.extra_loss = event.extra_loss;
          for (const std::size_t p : peers_of(event)) {
            if (p >= dps.size()) continue;
            each_link(event.dp, p, [&](NodeId a, NodeId b) {
              transport.wan().set_link_override(a, b, degraded);
            });
          }
          break;
        }
        case sim::FaultKind::kLinkRestore:
          if (!dp_exists) break;
          for (const std::size_t p : peers_of(event)) {
            if (p >= dps.size()) continue;
            each_link(event.dp, p, [&](NodeId a, NodeId b) {
              transport.wan().clear_link_override(a, b);
            });
          }
          break;
        case sim::FaultKind::kDpJoin:
          join_dp();
          break;
        case sim::FaultKind::kDpLeave:
          if (dp_exists) dps[event.dp]->leave();
          break;
        case sim::FaultKind::kOneWayPartition:
          // Asymmetric cut: event.dp's frames toward the peer(s) vanish,
          // but the reverse direction keeps flowing — the pathological
          // case for flooding, since the cut point keeps *hearing* rounds
          // while its own records silently stop propagating.
          if (!dp_exists) break;
          for (const std::size_t p : peers_of(event)) {
            if (p >= dps.size()) continue;
            each_link(event.dp, p, [&](NodeId a, NodeId b) {
              transport.block_direction(a, b);
            });
          }
          break;
        case sim::FaultKind::kOneWayHeal:
          if (!dp_exists) break;
          for (const std::size_t p : peers_of(event)) {
            if (p >= dps.size()) continue;
            each_link(event.dp, p, [&](NodeId a, NodeId b) {
              transport.unblock_direction(a, b);
            });
          }
          break;
        case sim::FaultKind::kCorrupt:
          transport.set_corruption(event.corrupt_rate);
          break;
        case sim::FaultKind::kDiskTorn:
          if (dp_exists) dps[event.dp]->inject_disk_tear();
          break;
        case sim::FaultKind::kDiskBitRot:
          if (dp_exists) dps[event.dp]->inject_disk_rot();
          break;
        case sim::FaultKind::kDiskStall:
          if (dp_exists) dps[event.dp]->set_disk_stall(event.latency_factor);
          break;
        case sim::FaultKind::kDiskRestore:
          if (dp_exists) dps[event.dp]->set_disk_stall(1.0);
          break;
      }
    });
  }

  // --- Ramp schedule and run. ----------------------------------------------
  const sim::Duration span = config.ramp_span > sim::Duration::zero()
                                 ? config.ramp_span
                                 : config.duration * 0.5;
  const sim::Duration spacing = span * (1.0 / double(config.n_clients));
  controller.schedule(sim::Duration::seconds(1), spacing,
                      sim::Time::zero() + config.duration);
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kScenario, 0, "ramp.begin", {},
               spacing.us(), span.us());
  }

  sim.run_until(sim::Time::zero() + config.duration);
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kScenario, 0, "scenario.window_end", {},
               std::int64_t(sim.events_processed()));
  }
  // Ground-truth USLA audit at window end, before the drain empties the
  // sites (post-drain everything is trivially within cap). Every scenario
  // reports this, not just the partition bench.
  std::uint64_t overcommits_final = 0;
  std::int32_t overcommit_worst = 0;
  for (const usla::VoOverCommit& oc :
       oracle_evaluator.over_commit_audit(grid.snapshot_all())) {
    ++overcommits_final;
    overcommit_worst = std::max(overcommit_worst, oc.excess());
  }
  for (auto& dp : dps) dp->stop();
  sim.run();  // drain in-flight queries and running jobs
  if (auto* t = trace::current()) {
    t->instant(trace::Category::kScenario, 0, "scenario.end", {},
               std::int64_t(sim.events_processed()),
               std::int64_t(dps.size()));
  }

  // --- Harvest. --------------------------------------------------------------
  ScenarioResult result;
  result.config = config;
  result.sites = grid.site_count();
  result.total_cpus = grid.total_cpus();
  result.jobs_completed = shared.jobs_completed;
  result.jobs_started = shared.jobs_started;
  result.entitlement_breaches = shared.entitlement_breaches;
  result.entitlement_worst_excess = shared.entitlement_worst_excess;
  result.overcommits_final = overcommits_final;
  result.overcommit_worst_excess = overcommit_worst;
  result.grid_cpu_seconds = grid.cpu_seconds_consumed();
  result.final_dps = int(dps.size());
  result.sim_events = sim.events_processed();

  metrics::MetricsAccumulator accumulator(shared.window_s, grid.total_cpus());
  for (const auto& sample : shared.samples) accumulator.add(*sample);
  result.handled = accumulator.compute(metrics::Slice::kHandled);
  result.not_handled = accumulator.compute(metrics::Slice::kNotHandled);
  result.all = accumulator.compute(metrics::Slice::kAll);

  for (const auto& dp : dps) {
    DpStats stats;
    stats.queries = dp->queries_served();
    stats.selections = dp->selections_recorded();
    stats.exchanges_sent = dp->exchanges_sent();
    stats.exchanges_received = dp->exchanges_received();
    stats.records_applied = dp->records_applied();
    stats.records_duplicate = dp->records_duplicate();
    stats.saturation_signals = dp->saturation_signals();
    stats.refused = dp->server().container().refused();
    stats.restarts = dp->restarts();
    stats.resync_records = dp->resync_records_applied();
    stats.catchups_served = dp->catchups_served();
    stats.catchup_records_received = dp->catchup_records_received();
    stats.container_utilization =
        dp->server().container().utilization(sim::Time::zero() + config.duration);
    stats.mean_sojourn_s = dp->response_stats().mean();
    const net::ServiceContainer& container = dp->server().container();
    stats.submitted = container.submitted();
    stats.completed = container.completed();
    stats.shed_deadline = container.shed_deadline();
    stats.lifo_pickups = container.lifo_pickups();
    stats.aborted = container.aborted();
    stats.queue_residue =
        container.queue_depth() + std::size_t(container.busy_workers());
    if (const digruber::MembershipTable* table = dp->membership()) {
      stats.serving = dp->serving();
      stats.left = dp->left();
      stats.suspicions = table->counters().suspicions;
      stats.deaths_declared = table->counters().deaths;
      stats.refutations = table->counters().refutations;
      stats.snapshots_served = dp->snapshots_served();
      stats.drain_nacks = dp->drain_nacks_sent();
      if (dp->join_started_at().to_seconds() > 0.0) {
        stats.join_started_s = dp->join_started_at().to_seconds();
      }
      if (dp->serving_since().to_seconds() > 0.0) {
        stats.serving_since_s = dp->serving_since().to_seconds();
      }
      stats.membership_transitions = table->transitions();
    }
    stats.digest_mismatches = dp->digest_mismatches();
    stats.delta_pulls_sent = dp->delta_pulls_sent();
    stats.delta_pulls_served = dp->delta_pulls_served();
    stats.delta_records_applied = dp->delta_records_applied();
    stats.delta_conflicts = dp->delta_conflicts();
    stats.double_commits = dp->double_commits();
    stats.delta_converged = dp->delta_converged();
    stats.degraded_refusals = dp->degraded_refusals();
    stats.degraded_replies = dp->degraded_replies();
    if (const economy::CreditBank* bank = dp->bank()) {
      stats.economy = bank->stats();
    }
    stats.priced_replies = dp->priced_replies();
    stats.priced_selections = dp->priced_selections();
    if (const durable::SimDisk* disk = dp->disk()) {
      stats.recoveries = dp->recoveries();
      stats.replay_frames = dp->replay_frames();
      stats.replay_records = dp->replay_records();
      stats.replay_dedup_entries = dp->replay_dedup_entries();
      stats.replay_truncations = dp->replay_truncations();
      stats.checkpoint_fallbacks = dp->checkpoint_fallbacks();
      stats.replay_mismatches = dp->replay_mismatches();
      stats.dedup_hits = dp->dedup_hits();
      stats.duplicate_dispatches = dp->duplicate_dispatches();
      stats.last_recovery_s = dp->last_recovery_cost().to_seconds();
      const durable::DiskCounters& dc = disk->counters();
      stats.wal_appends = dc.appends;
      stats.wal_bytes = dc.bytes_appended;
      stats.fsyncs = dc.fsyncs;
      stats.checkpoints_written = dc.checkpoints_written;
      stats.log_truncations = dc.log_truncations;
      stats.disk_torn_tails = dc.torn_tails;
      stats.disk_bit_flips = dc.bit_flips;
    }
    stats.overlay_rounds = dp->overlay_rounds();
    stats.overlay_fanout_total = dp->overlay_fanout_total();
    stats.overlay_max_hops = dp->overlay_max_hops();
    stats.overlay_relays_suppressed = dp->overlay_relays_suppressed();
    stats.overlay_rebuilds = dp->overlay_rebuilds();
    stats.running = dp->running();
    if (config.overlay_audit) {
      stats.applied_keys = dp->applied_keys();
      stats.own_records = dp->own_record_log();
    }
    result.overlay.exchanges_sent += dp->exchanges_sent();
    result.overlay.rounds += dp->overlay_rounds();
    result.overlay.fanout_total += dp->overlay_fanout_total();
    result.overlay.max_hops =
        std::max(result.overlay.max_hops, dp->overlay_max_hops());
    result.overlay.relays_suppressed += dp->overlay_relays_suppressed();
    result.overlay.rebuilds += dp->overlay_rebuilds();
    result.overlay.grave_probes += dp->overlay_grave_probes();
    result.overlay.bytes_sent += dp->overlay_bytes_sent();
    result.dps.push_back(stats);
  }

  {
    // Fairness: delivered CPU time per VO / per group across all sites.
    // Every VO and group submits statistically identical load with equal
    // entitlements, so raw delivered time is directly comparable.
    std::map<VoId, double> per_vo;
    std::map<GroupId, double> per_group;
    for (const auto& site : grid.sites()) {
      for (const auto& [vo, seconds] : site->cpu_seconds_per_vo()) {
        per_vo[vo] += seconds;
      }
      for (const auto& [group, seconds] : site->cpu_seconds_per_group()) {
        per_group[group] += seconds;
      }
    }
    std::vector<double> vo_values, group_values;
    for (std::size_t v = 0; v < catalog.vo_count(); ++v) {
      vo_values.push_back(per_vo.count(VoId(v)) ? per_vo[VoId(v)] : 0.0);
    }
    for (std::size_t g = 0; g < catalog.group_count(); ++g) {
      group_values.push_back(per_group.count(GroupId(g)) ? per_group[GroupId(g)] : 0.0);
    }
    result.vo_fairness = metrics::fairness(vo_values);
    result.group_fairness = metrics::fairness(group_values);
    result.brokered_vo_fairness = metrics::fairness(shared.brokered_granted);
  }

  if (economy_on) {
    metrics::EconomyCounters& eco = result.economy;
    for (const auto& dp : dps) {
      if (const economy::CreditBank* bank = dp->bank()) {
        const economy::BankStats stats = bank->stats();
        eco.epochs_settled += stats.epochs_settled;
        eco.credits_initial += stats.initial_total;
        eco.credits_earned += stats.earned;
        eco.credits_spent += stats.spent;
        eco.credits_expired_pool += stats.expired_pool;
        eco.credits_expired_cap += stats.expired_cap;
      }
      eco.credit_denials += dp->credit_denials();
      eco.grace_admissions += dp->grace_admissions();
      eco.priced_replies += dp->priced_replies();
      eco.priced_selections += dp->priced_selections();
    }
    for (const auto& client : clients) {
      eco.priced_dispatches += client->priced_dispatches();
      eco.budget_rejections += client->budget_rejections();
      eco.market_fallbacks += client->market_fallbacks();
    }
  }

  {
    metrics::ResilienceCounters& res = result.resilience;
    for (const auto& client : clients) {
      res.failovers += client->failovers();
      res.breaker_trips += client->breaker_trips();
      res.all_dps_down_fallbacks += client->all_dps_down_fallbacks();
    }
    for (const auto& dp : dps) {
      res.dp_restarts += dp->restarts();
      res.resync_records += dp->resync_records_applied();
      res.catchups_served += dp->catchups_served();
      res.gap_resyncs += dp->gap_resyncs();
    }
    res.drops_loss = transport.packets_dropped(net::DropCause::kLoss);
    res.drops_partition = transport.packets_dropped(net::DropCause::kPartition);
    res.drops_unknown_destination =
        transport.packets_dropped(net::DropCause::kUnknownDestination);
  }

  {
    metrics::OverloadCounters& ov = result.overload;
    for (const auto& dp : dps) {
      const net::ServiceContainer& container = dp->server().container();
      ov.submitted += container.submitted();
      ov.shed_queue_full += container.refused();
      ov.shed_deadline += container.shed_deadline();
      ov.lifo_pickups += container.lifo_pickups();
      ov.aborted += container.aborted();
    }
    for (const auto& client : clients) {
      ov.overload_nacks += client->overload_nacks();
      ov.retry_after_honored += client->retry_after_honored();
      ov.retries_budget_denied += client->retries_budget_denied();
      ov.p2c_decisions += client->p2c_decisions();
      result.clients.queries += client->queries();
      result.clients.handled += client->handled();
      result.clients.fallbacks += client->fallbacks();
      result.clients.starvations += client->starvations();
      result.clients.report_retries += client->report_retries();
      result.clients.dedup_replies += client->dedup_replies();
    }
    for (const auto& site : grid.sites()) {
      if (site->free_cpus() < 0) ++result.sites_overcommitted;
    }
  }

  if (config.durability) {
    metrics::DurabilityCounters& dur = result.durability;
    for (const auto& dp : dps) {
      if (const durable::SimDisk* disk = dp->disk()) {
        const durable::DiskCounters& dc = disk->counters();
        dur.wal_appends += dc.appends;
        dur.wal_bytes += dc.bytes_appended;
        dur.fsyncs += dc.fsyncs;
        dur.checkpoints_written += dc.checkpoints_written;
        dur.log_truncations += dc.log_truncations;
        dur.torn_tails += dc.torn_tails;
        dur.bit_flips += dc.bit_flips;
      }
      dur.recoveries += dp->recoveries();
      dur.replay_frames += dp->replay_frames();
      dur.replay_records += dp->replay_records();
      dur.replay_dedup_entries += dp->replay_dedup_entries();
      dur.replay_truncations += dp->replay_truncations();
      dur.checkpoint_fallbacks += dp->checkpoint_fallbacks();
      dur.replay_mismatches += dp->replay_mismatches();
      dur.dedup_hits += dp->dedup_hits();
      dur.duplicate_dispatches += dp->duplicate_dispatches();
    }
    for (const auto& client : clients) {
      dur.client_report_retries += client->report_retries();
      dur.client_dedup_replies += client->dedup_replies();
    }
  }

  if (config.membership) {
    metrics::MembershipCounters& mem = result.membership;
    for (const auto& dp : dps) {
      if (const digruber::MembershipTable* table = dp->membership()) {
        mem.suspicions += table->counters().suspicions;
        mem.deaths_declared += table->counters().deaths;
        mem.refutations += table->counters().refutations;
        mem.joins_observed += table->counters().joins_observed;
        mem.leaves_observed += table->counters().leaves_observed;
      }
      if (dp->join_started_at().to_seconds() > 0.0) {
        ++mem.joins_started;
        if (dp->serving_since().to_seconds() > 0.0) ++mem.joins_completed;
      }
      mem.join_snapshot_retries += dp->join_retries();
      mem.join_snapshot_records += dp->join_snapshot_records();
      mem.snapshots_served += dp->snapshots_served();
      mem.drain_nacks += dp->drain_nacks_sent();
    }
    for (const auto& client : clients) {
      mem.client_updates_applied += client->membership_updates_applied();
      mem.client_dps_added += client->dps_added();
      mem.client_dps_quarantined += client->dps_quarantined();
      mem.client_drain_redirects += client->drain_redirects();
    }
  }

  {
    metrics::PartitionCounters& pt = result.partition;
    for (const DpStats& stats : result.dps) {
      pt.digest_mismatches += stats.digest_mismatches;
      pt.delta_pulls_sent += stats.delta_pulls_sent;
      pt.delta_pulls_served += stats.delta_pulls_served;
      pt.delta_records_applied += stats.delta_records_applied;
      pt.delta_conflicts += stats.delta_conflicts;
      pt.double_commits += stats.double_commits;
      pt.delta_converged += stats.delta_converged;
      pt.degraded_refusals += stats.degraded_refusals;
      pt.degraded_replies += stats.degraded_replies;
    }
    for (const auto& client : clients) {
      pt.client_degraded_redirects += client->degraded_redirects();
      pt.client_degraded_hints += client->degraded_hints_seen();
    }
    for (const auto& dp : dps) {
      pt.frames_bad_checksum +=
          dp->server().requests_bad(net::BadFrameCause::kChecksum);
    }
    pt.packets_corrupted = transport.packets_corrupted();
  }

  result.samples.reserve(shared.samples.size());
  for (const auto& sample : shared.samples) result.samples.push_back(*sample);

  result.model = diperf::fit_model(collector, 60.0, shared.window_s);
  result.collector = std::move(collector);
  result.trace = std::move(shared.trace);
  return result;
}

}  // namespace digruber::experiments
