#pragma once

#include <cstdint>

#include "digruber/common/ids.hpp"
#include "digruber/sim/time.hpp"

namespace digruber::grid {

/// The four-state job lifecycle from the paper's workload model:
/// 1) submitted by a user to a submission host, 2) submitted by the host to
/// a site but queued/held, 3) running at a site, 4) completed.
enum class JobState : std::uint8_t {
  kAtSubmissionHost = 0,
  kQueuedAtSite,
  kRunning,
  kCompleted,
  kFailed,
};

struct Job {
  JobId id;
  VoId vo;
  GroupId group;
  UserId user;
  int cpus = 1;
  sim::Duration runtime = sim::Duration::seconds(600);
  /// Data staged in before execution and out after (Euryale pre/postscript).
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  /// Economic fields (market placement): spend ceiling and completion
  /// deadline in seconds from submission; 0 = no economic constraint.
  /// Host-local — they reach the broker via the optional bid wire trailer,
  /// not the job serialization, so job archives keep their byte layout.
  double budget = 0.0;
  double deadline_s = 0.0;

  JobState state = JobState::kAtSubmissionHost;
  SiteId site;  // selected by the broker (or the random fallback)

  sim::Time created;     // entered the submission host
  sim::Time dispatched;  // sent to the site (state 2 begins)
  sim::Time started;     // began executing (state 3 begins)
  sim::Time completed;   // finished (state 4)

  /// True when the site came from a DI-GRUBER decision point (as opposed
  /// to the client's random-site timeout fallback).
  bool handled_by_gruber = false;
  /// Scheduling accuracy SA_i sampled at dispatch (see metrics module).
  double accuracy = 0.0;
  /// Number of times Euryale re-planned this job after a failure.
  int replans = 0;

  /// Queue time: dispatch -> start, the paper's QT_i.
  [[nodiscard]] sim::Duration queue_time() const { return started - dispatched; }

  template <class Archive>
  void serialize(Archive& ar) {
    ar & id & vo & group & user & cpus & runtime & input_bytes & output_bytes &
        state & site & created & dispatched & started & completed &
        handled_by_gruber & accuracy & replans;
  }
};

}  // namespace digruber::grid
