#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "digruber/grid/job.hpp"
#include "digruber/sim/simulation.hpp"

namespace digruber::grid {

/// Point-in-time view of one site, as published to brokers by the site
/// monitor. This is the unit of state the decision points cache and
/// exchange.
struct SiteSnapshot {
  SiteId site;
  std::int32_t total_cpus = 0;
  std::int32_t free_cpus = 0;
  std::int32_t queued_jobs = 0;
  std::map<VoId, std::int32_t> running_per_vo;
  /// Permanent-storage state (USLAs cover storage as well as CPU).
  std::uint64_t total_storage_bytes = 0;
  std::uint64_t free_storage_bytes = 0;
  std::map<VoId, std::uint64_t> storage_per_vo;
  sim::Time as_of;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & site & total_cpus & free_cpus & queued_jobs & running_per_vo &
        total_storage_bytes & free_storage_bytes & storage_per_vo & as_of;
  }
};

struct ClusterSpec {
  std::int32_t cpus = 0;
  double speed = 1.0;  // relative CPU speed; scales job runtimes
};

/// Default storage provisioning when a site spec does not say otherwise.
inline constexpr std::uint64_t kDefaultStoragePerCpu = 10ull << 30;  // 10 GiB

/// A grid site: one or more clusters fronted by a FIFO batch scheduler.
/// (The paper's experiments assume decision points have total control and
/// exclude site policy enforcement points, so the local scheduler is plain
/// FIFO; per-VO accounting is still tracked for USLA evaluation.)
class Site {
 public:
  using JobCallback = std::function<void(const Job&)>;

  Site(sim::Simulation& sim, SiteId id, std::string name,
       std::vector<ClusterSpec> clusters, std::uint64_t storage_bytes = 0);

  [[nodiscard]] SiteId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::int32_t total_cpus() const { return total_cpus_; }
  [[nodiscard]] std::int32_t free_cpus() const { return total_cpus_ - busy_cpus_; }
  [[nodiscard]] std::int32_t queued_jobs() const { return std::int32_t(queue_.size()); }
  [[nodiscard]] double speed() const { return speed_; }
  [[nodiscard]] std::uint64_t total_storage() const { return total_storage_; }
  [[nodiscard]] std::uint64_t free_storage() const {
    return total_storage_ - used_storage_;
  }
  [[nodiscard]] std::uint64_t storage_for_vo(VoId vo) const {
    const auto it = storage_per_vo_.find(vo);
    return it == storage_per_vo_.end() ? 0 : it->second;
  }

  /// Submit a job (Condor-G/GRAM path). Returns false while the site is
  /// down — Euryale treats that as a failure and re-plans. `on_done` fires
  /// when the job completes (or fails mid-run).
  bool submit(Job job, JobCallback on_done);

  [[nodiscard]] SiteSnapshot snapshot() const;

  /// CPUs currently held by running jobs of `vo` at this site.
  [[nodiscard]] std::int32_t running_for_vo(VoId vo) const {
    const auto it = running_per_vo_.find(vo);
    return it == running_per_vo_.end() ? 0 : it->second;
  }

  /// Aggregate CPU-seconds consumed by completed jobs (for Util).
  [[nodiscard]] double cpu_seconds_consumed() const { return cpu_seconds_; }
  /// Delivered CPU-seconds broken down by consumer (for fairness analysis).
  [[nodiscard]] const std::map<VoId, double>& cpu_seconds_per_vo() const {
    return cpu_seconds_per_vo_;
  }
  [[nodiscard]] const std::map<GroupId, double>& cpu_seconds_per_group() const {
    return cpu_seconds_per_group_;
  }
  [[nodiscard]] std::uint64_t jobs_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t jobs_failed() const { return failed_; }

  /// Permanently reserve `cpus` for site-local (non-grid) work. Models the
  /// background load OSG sites carry outside the brokered workload; the
  /// CPUs are subtracted from free capacity in all snapshots.
  void reserve_local(std::int32_t cpus);
  [[nodiscard]] std::int32_t local_reserved() const { return local_reserved_; }

  /// Failure injection: the site refuses submissions and kills running
  /// jobs for `period`; queued jobs fail too.
  void take_down(sim::Duration period);
  [[nodiscard]] bool is_down() const;

 private:
  struct Running {
    Job job;
    JobCallback on_done;
    sim::EventId completion_event;
  };

  void try_start_queued();
  void start(Job job, JobCallback on_done);
  void finish(std::uint64_t run_key);
  [[nodiscard]] static std::uint64_t storage_need(const Job& job) {
    return job.input_bytes + job.output_bytes;
  }
  void reserve_storage(const Job& job);
  void release_storage(const Job& job);

  sim::Simulation& sim_;
  SiteId id_;
  std::string name_;
  std::vector<ClusterSpec> clusters_;
  std::int32_t total_cpus_ = 0;
  std::int32_t busy_cpus_ = 0;
  double speed_ = 1.0;

  std::deque<std::pair<Job, JobCallback>> queue_;
  std::unordered_map<std::uint64_t, Running> running_;
  std::uint64_t next_run_key_ = 1;
  std::map<VoId, std::int32_t> running_per_vo_;

  std::map<VoId, double> cpu_seconds_per_vo_;
  std::map<GroupId, double> cpu_seconds_per_group_;

  std::uint64_t total_storage_ = 0;
  std::uint64_t used_storage_ = 0;
  std::map<VoId, std::uint64_t> storage_per_vo_;

  std::int32_t local_reserved_ = 0;
  double cpu_seconds_ = 0.0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  sim::Time down_until_;
};

}  // namespace digruber::grid
