#pragma once

#include <memory>
#include <string>
#include <vector>

#include "digruber/common/rng.hpp"
#include "digruber/grid/site.hpp"

namespace digruber::grid {

struct SiteSpec {
  std::string name;
  std::vector<ClusterSpec> clusters;
};

/// Declarative description of a grid; the generator produces OSG-like
/// heavy-tailed site-size distributions.
struct TopologySpec {
  std::vector<SiteSpec> sites;

  [[nodiscard]] std::int64_t total_cpus() const;

  /// Grid3/OSG circa 2005: ~30 sites, ~3,000 CPUs, a few large centers and
  /// a long tail of small clusters.
  static TopologySpec osg2005();

  /// The paper's emulated environment: OSG scaled by `factor` (default 10:
  /// ~300 sites, ~30,000 CPUs). Sizes are re-drawn from the same
  /// distribution, not copy-pasted, so the scaled grid stays heterogeneous.
  static TopologySpec osg_scaled(int factor, Rng& rng);

  /// Generic generator: `n_sites` sites totalling roughly `target_cpus`,
  /// sizes Pareto-distributed with the given shape.
  static TopologySpec generate(int n_sites, std::int64_t target_cpus, Rng& rng,
                               double pareto_shape = 1.2);
};

/// Owns the Site instances for one simulation run.
class Grid {
 public:
  Grid(sim::Simulation& sim, const TopologySpec& spec);

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] Site& site(SiteId id);
  [[nodiscard]] const Site& site(SiteId id) const;
  [[nodiscard]] Site& site_at(std::size_t index) { return *sites_[index]; }
  [[nodiscard]] const std::vector<std::unique_ptr<Site>>& sites() const { return sites_; }

  [[nodiscard]] std::int64_t total_cpus() const { return total_cpus_; }
  [[nodiscard]] std::int64_t total_free_cpus() const;
  /// The site with the most free CPUs right now (the accuracy oracle).
  [[nodiscard]] const Site& best_site() const;

  [[nodiscard]] std::vector<SiteSnapshot> snapshot_all() const;

  /// Total CPU-seconds consumed by completed jobs across all sites.
  [[nodiscard]] double cpu_seconds_consumed() const;

 private:
  std::vector<std::unique_ptr<Site>> sites_;
  std::int64_t total_cpus_ = 0;
};

/// Registry of virtual organizations, their groups, and users.
class VoCatalog {
 public:
  VoId add_vo(std::string name);
  GroupId add_group(VoId vo, std::string name);
  UserId add_user(GroupId group, std::string name);

  [[nodiscard]] std::size_t vo_count() const { return vos_.size(); }
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
  [[nodiscard]] std::size_t user_count() const { return users_.size(); }

  [[nodiscard]] const std::string& vo_name(VoId id) const;
  [[nodiscard]] const std::string& group_name(GroupId id) const;
  [[nodiscard]] VoId group_vo(GroupId id) const;
  [[nodiscard]] GroupId user_group(UserId id) const;
  [[nodiscard]] const std::vector<GroupId>& groups_of(VoId vo) const;

  /// Convenience builder: `n_vos` VOs with `groups_per_vo` groups each and
  /// one user per group (the paper's composite-workload shape).
  static VoCatalog uniform(int n_vos, int groups_per_vo);

 private:
  struct VoEntry {
    std::string name;
    std::vector<GroupId> groups;
  };
  struct GroupEntry {
    std::string name;
    VoId vo;
  };
  struct UserEntry {
    std::string name;
    GroupId group;
  };
  std::vector<VoEntry> vos_;
  std::vector<GroupEntry> groups_;
  std::vector<UserEntry> users_;
};

}  // namespace digruber::grid
