#include "digruber/grid/site.hpp"

#include <cassert>
#include <utility>
#include <vector>

namespace digruber::grid {

Site::Site(sim::Simulation& sim, SiteId id, std::string name,
           std::vector<ClusterSpec> clusters, std::uint64_t storage_bytes)
    : sim_(sim), id_(id), name_(std::move(name)), clusters_(std::move(clusters)) {
  assert(!clusters_.empty());
  double weighted_speed = 0.0;
  for (const auto& c : clusters_) {
    assert(c.cpus > 0 && c.speed > 0);
    total_cpus_ += c.cpus;
    weighted_speed += double(c.cpus) * c.speed;
  }
  speed_ = weighted_speed / double(total_cpus_);
  total_storage_ = storage_bytes != 0
                       ? storage_bytes
                       : std::uint64_t(total_cpus_) * kDefaultStoragePerCpu;
}

void Site::reserve_storage(const Job& job) {
  const std::uint64_t need = storage_need(job);
  if (need == 0) return;
  used_storage_ += need;
  storage_per_vo_[job.vo] += need;
}

void Site::release_storage(const Job& job) {
  const std::uint64_t need = storage_need(job);
  if (need == 0) return;
  assert(used_storage_ >= need);
  used_storage_ -= need;
  auto it = storage_per_vo_.find(job.vo);
  if (it != storage_per_vo_.end()) {
    it->second -= std::min(it->second, need);
    if (it->second == 0) storage_per_vo_.erase(it);
  }
}

void Site::reserve_local(std::int32_t cpus) {
  cpus = std::min(cpus, total_cpus_ - busy_cpus_);
  if (cpus <= 0) return;
  local_reserved_ += cpus;
  busy_cpus_ += cpus;
}

bool Site::is_down() const { return sim_.now() < down_until_; }

bool Site::submit(Job job, JobCallback on_done) {
  if (is_down()) return false;
  assert(job.cpus > 0);
  job.dispatched = sim_.now();
  if (job.cpus > total_cpus_ || storage_need(job) > total_storage_) {
    // Can never run here; fail immediately so the planner re-plans.
    job.state = JobState::kFailed;
    job.completed = sim_.now();
    ++failed_;
    on_done(job);
    return true;
  }
  if (free_cpus() >= job.cpus && storage_need(job) <= free_storage() &&
      queue_.empty()) {
    start(std::move(job), std::move(on_done));
  } else {
    job.state = JobState::kQueuedAtSite;
    queue_.emplace_back(std::move(job), std::move(on_done));
  }
  return true;
}

void Site::start(Job job, JobCallback on_done) {
  busy_cpus_ += job.cpus;
  running_per_vo_[job.vo] += job.cpus;
  reserve_storage(job);
  job.state = JobState::kRunning;
  job.started = sim_.now();
  const sim::Duration wall = job.runtime * (1.0 / speed_);
  const std::uint64_t key = next_run_key_++;
  const sim::EventId ev = sim_.schedule_after(wall, [this, key] { finish(key); });
  running_.emplace(key, Running{std::move(job), std::move(on_done), ev});
}

void Site::finish(std::uint64_t run_key) {
  const auto it = running_.find(run_key);
  if (it == running_.end()) return;
  Running r = std::move(it->second);
  running_.erase(it);

  busy_cpus_ -= r.job.cpus;
  auto vo_it = running_per_vo_.find(r.job.vo);
  if (vo_it != running_per_vo_.end() && (vo_it->second -= r.job.cpus) <= 0) {
    running_per_vo_.erase(vo_it);
  }

  release_storage(r.job);
  r.job.state = JobState::kCompleted;
  r.job.completed = sim_.now();
  const double delivered =
      (r.job.completed - r.job.started).to_seconds() * double(r.job.cpus);
  cpu_seconds_ += delivered;
  cpu_seconds_per_vo_[r.job.vo] += delivered;
  cpu_seconds_per_group_[r.job.group] += delivered;
  ++completed_;
  r.on_done(r.job);

  try_start_queued();
}

void Site::try_start_queued() {
  while (!queue_.empty() && free_cpus() >= queue_.front().first.cpus &&
         free_storage() >= storage_need(queue_.front().first)) {
    auto [job, on_done] = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(job), std::move(on_done));
  }
}

SiteSnapshot Site::snapshot() const {
  SiteSnapshot s;
  s.site = id_;
  s.total_cpus = total_cpus_;
  s.free_cpus = is_down() ? 0 : free_cpus();
  s.queued_jobs = queued_jobs();
  s.running_per_vo = running_per_vo_;
  s.total_storage_bytes = total_storage_;
  s.free_storage_bytes = is_down() ? 0 : free_storage();
  s.storage_per_vo = storage_per_vo_;
  s.as_of = sim_.now();
  return s;
}

void Site::take_down(sim::Duration period) {
  down_until_ = sim_.now() + period;

  // Kill running jobs.
  std::vector<std::uint64_t> keys;
  keys.reserve(running_.size());
  for (const auto& [key, r] : running_) keys.push_back(key);
  for (const std::uint64_t key : keys) {
    auto it = running_.find(key);
    Running r = std::move(it->second);
    running_.erase(it);
    sim_.cancel(r.completion_event);
    busy_cpus_ -= r.job.cpus;
    release_storage(r.job);
    r.job.state = JobState::kFailed;
    r.job.completed = sim_.now();
    ++failed_;
    r.on_done(r.job);
  }
  running_per_vo_.clear();

  // Fail queued jobs.
  std::deque<std::pair<Job, JobCallback>> queued;
  queued.swap(queue_);
  for (auto& [job, on_done] : queued) {
    job.state = JobState::kFailed;
    job.completed = sim_.now();
    ++failed_;
    on_done(job);
  }
}

}  // namespace digruber::grid
