#include "digruber/grid/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace digruber::grid {

std::int64_t TopologySpec::total_cpus() const {
  std::int64_t total = 0;
  for (const auto& s : sites)
    for (const auto& c : s.clusters) total += c.cpus;
  return total;
}

TopologySpec TopologySpec::osg2005() {
  // Grid3/OSG in 2005: ~30 sites, ~3,000 CPUs (paper Section 3.6). A few
  // flagship centers plus a long tail; speeds around 1.0 with mild spread.
  TopologySpec spec;
  const std::int32_t sizes[] = {620, 420, 320, 250, 210, 170, 140, 120, 100, 90,
                                80,  70,  60,  55,  50,  45,  40,  36, 32,  28,
                                26,  24,  22,  20,  18,  16,  14,  12, 11,  10};
  int i = 0;
  for (const std::int32_t cpus : sizes) {
    SiteSpec site;
    site.name = "osg-site-" + std::to_string(i++);
    // Larger centers are split into a couple of clusters of unequal speed.
    if (cpus >= 200) {
      site.clusters = {{cpus * 2 / 3, 1.1}, {cpus - cpus * 2 / 3, 0.9}};
    } else {
      site.clusters = {{cpus, 1.0}};
    }
    spec.sites.push_back(std::move(site));
  }
  return spec;
}

TopologySpec TopologySpec::generate(int n_sites, std::int64_t target_cpus,
                                    Rng& rng, double pareto_shape) {
  if (n_sites <= 0 || target_cpus < n_sites) {
    throw std::invalid_argument("TopologySpec::generate: bad parameters");
  }
  // Draw Pareto weights, then scale to the CPU budget with a floor of 4
  // CPUs per site so no site is degenerate.
  std::vector<double> weights(static_cast<std::size_t>(n_sites), 0.0);
  double total_weight = 0.0;
  for (auto& w : weights) {
    w = rng.pareto(1.0, pareto_shape);
    w = std::min(w, 400.0);  // clip the tail: no site dwarfs the grid
    total_weight += w;
  }
  TopologySpec spec;
  std::int64_t allocated = 0;
  for (int i = 0; i < n_sites; ++i) {
    const auto share = double(target_cpus) * weights[std::size_t(i)] / total_weight;
    const std::int32_t cpus = std::max<std::int32_t>(4, std::int32_t(std::lround(share)));
    allocated += cpus;
    SiteSpec site;
    site.name = "site-" + std::to_string(i);
    const double speed = rng.uniform(0.8, 1.3);
    if (cpus >= 256) {
      site.clusters = {{cpus / 2, speed * 1.05}, {cpus - cpus / 2, speed * 0.95}};
    } else {
      site.clusters = {{cpus, speed}};
    }
    spec.sites.push_back(std::move(site));
  }
  (void)allocated;  // within a few % of target by construction
  return spec;
}

TopologySpec TopologySpec::osg_scaled(int factor, Rng& rng) {
  assert(factor >= 1);
  const TopologySpec base = osg2005();
  return generate(int(base.sites.size()) * factor, base.total_cpus() * factor, rng);
}

Grid::Grid(sim::Simulation& sim, const TopologySpec& spec) {
  sites_.reserve(spec.sites.size());
  for (std::size_t i = 0; i < spec.sites.size(); ++i) {
    sites_.push_back(std::make_unique<Site>(sim, SiteId(i), spec.sites[i].name,
                                            spec.sites[i].clusters));
    total_cpus_ += sites_.back()->total_cpus();
  }
}

Site& Grid::site(SiteId id) {
  assert(id.value() < sites_.size());
  return *sites_[id.value()];
}

const Site& Grid::site(SiteId id) const {
  assert(id.value() < sites_.size());
  return *sites_[id.value()];
}

std::int64_t Grid::total_free_cpus() const {
  std::int64_t total = 0;
  for (const auto& s : sites_) total += s->is_down() ? 0 : s->free_cpus();
  return total;
}

const Site& Grid::best_site() const {
  assert(!sites_.empty());
  const Site* best = sites_.front().get();
  for (const auto& s : sites_) {
    if (s->free_cpus() > best->free_cpus()) best = s.get();
  }
  return *best;
}

std::vector<SiteSnapshot> Grid::snapshot_all() const {
  std::vector<SiteSnapshot> out;
  out.reserve(sites_.size());
  for (const auto& s : sites_) out.push_back(s->snapshot());
  return out;
}

double Grid::cpu_seconds_consumed() const {
  double total = 0.0;
  for (const auto& s : sites_) total += s->cpu_seconds_consumed();
  return total;
}

VoId VoCatalog::add_vo(std::string name) {
  vos_.push_back(VoEntry{std::move(name), {}});
  return VoId(vos_.size() - 1);
}

GroupId VoCatalog::add_group(VoId vo, std::string name) {
  assert(vo.value() < vos_.size());
  const GroupId id(groups_.size());
  groups_.push_back(GroupEntry{std::move(name), vo});
  vos_[vo.value()].groups.push_back(id);
  return id;
}

UserId VoCatalog::add_user(GroupId group, std::string name) {
  assert(group.value() < groups_.size());
  users_.push_back(UserEntry{std::move(name), group});
  return UserId(users_.size() - 1);
}

const std::string& VoCatalog::vo_name(VoId id) const {
  assert(id.value() < vos_.size());
  return vos_[id.value()].name;
}

const std::string& VoCatalog::group_name(GroupId id) const {
  assert(id.value() < groups_.size());
  return groups_[id.value()].name;
}

VoId VoCatalog::group_vo(GroupId id) const {
  assert(id.value() < groups_.size());
  return groups_[id.value()].vo;
}

GroupId VoCatalog::user_group(UserId id) const {
  assert(id.value() < users_.size());
  return users_[id.value()].group;
}

const std::vector<GroupId>& VoCatalog::groups_of(VoId vo) const {
  assert(vo.value() < vos_.size());
  return vos_[vo.value()].groups;
}

VoCatalog VoCatalog::uniform(int n_vos, int groups_per_vo) {
  VoCatalog catalog;
  for (int v = 0; v < n_vos; ++v) {
    const VoId vo = catalog.add_vo("vo" + std::to_string(v));
    for (int g = 0; g < groups_per_vo; ++g) {
      const GroupId group =
          catalog.add_group(vo, "vo" + std::to_string(v) + ".g" + std::to_string(g));
      catalog.add_user(group, catalog.group_name(group) + ".user");
    }
  }
  return catalog;
}

}  // namespace digruber::grid
