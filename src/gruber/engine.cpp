#include "digruber/gruber/engine.hpp"

#include <algorithm>

namespace digruber::gruber {

GruberEngine::GruberEngine(const grid::VoCatalog& catalog,
                           const usla::AllocationTree& tree,
                           usla::EvaluatorOptions options)
    : catalog_(catalog), evaluator_(tree, catalog, options) {}

std::vector<SiteLoad> GruberEngine::candidates(const grid::Job& job,
                                               sim::Time now) const {
  std::vector<SiteLoad> out;
  const std::vector<SiteLoad> loads = view_.loads(now);
  out.reserve(loads.size());
  for (const SiteLoad& load : loads) {
    const grid::SiteSnapshot estimate = view_.estimated_snapshot(load.site, now);
    const std::int32_t group_running = view_.active_for_group(load.site, job.group, now);
    const std::int32_t user_running = view_.active_for_user(load.site, job.user, now);
    const std::int32_t headroom = evaluator_.chain_headroom(
        estimate, job.vo, job.group, job.user, group_running, user_running);
    if (headroom < job.cpus) continue;
    const std::uint64_t storage_need = job.input_bytes + job.output_bytes;
    if (storage_need > 0 &&
        evaluator_.storage_headroom(estimate, job.vo) < storage_need) {
      continue;
    }
    SiteLoad clipped = load;
    clipped.free_estimate = std::min(load.free_estimate, headroom);
    out.push_back(clipped);
  }
  return out;
}

}  // namespace digruber::gruber
