#pragma once

#include <memory>
#include <vector>

#include "digruber/grid/job.hpp"
#include "digruber/gruber/view.hpp"
#include "digruber/usla/tree.hpp"

namespace digruber::gruber {

/// The GRUBER engine: maintains a generic view of resource utilization in
/// the grid and applies USLAs to produce per-job candidate site lists
/// (paper Section 3.2). Transport-agnostic — the decision-point service
/// and the in-process examples both drive it directly.
class GruberEngine {
 public:
  GruberEngine(const grid::VoCatalog& catalog, const usla::AllocationTree& tree,
               usla::EvaluatorOptions options = {});

  [[nodiscard]] GridView& view() { return view_; }
  [[nodiscard]] const GridView& view() const { return view_; }
  [[nodiscard]] const usla::UslaEvaluator& evaluator() const { return evaluator_; }

  /// Candidate sites for a job: every site whose USLA chain headroom fits
  /// the job's CPUs, with free estimates clipped to that headroom. Sites
  /// with zero headroom are excluded.
  [[nodiscard]] std::vector<SiteLoad> candidates(const grid::Job& job,
                                                 sim::Time now) const;

  /// All site loads, unfiltered (used when USLA filtering is disabled or
  /// for monitoring).
  [[nodiscard]] std::vector<SiteLoad> all_loads(sim::Time now) const {
    return view_.loads(now);
  }

  /// Record a dispatch decision in the utilization view.
  void record(const DispatchRecord& record) { view_.record_dispatch(record); }

 private:
  const grid::VoCatalog& catalog_;
  usla::UslaEvaluator evaluator_;
  GridView view_;
};

}  // namespace digruber::gruber
