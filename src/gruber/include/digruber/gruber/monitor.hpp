#pragma once

#include <memory>

#include "digruber/grid/topology.hpp"
#include "digruber/gruber/engine.hpp"
#include "digruber/sim/simulation.hpp"

namespace digruber::gruber {

/// The GRUBER site monitor: a data provider feeding fresh site snapshots
/// into an engine's view. Optional (the paper swaps in MonALISA-style
/// monitors); the DI-GRUBER experiments run it only at bootstrap because
/// dissemination strategy 2 relies on dispatch tracking, not polling.
class SiteMonitor {
 public:
  SiteMonitor(sim::Simulation& sim, const grid::Grid& grid, GruberEngine& engine,
              sim::Duration poll_period = sim::Duration::zero());

  /// Push a full set of snapshots right now.
  void refresh();

  void stop();
  [[nodiscard]] std::uint64_t refreshes() const { return refreshes_; }

 private:
  const grid::Grid& grid_;
  GruberEngine& engine_;
  std::uint64_t refreshes_ = 0;
  std::unique_ptr<sim::PeriodicTimer> timer_;
};

}  // namespace digruber::gruber
