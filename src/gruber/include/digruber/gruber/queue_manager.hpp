#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "digruber/gruber/engine.hpp"
#include "digruber/gruber/selectors.hpp"
#include "digruber/sim/simulation.hpp"

namespace digruber::gruber {

/// The GRUBER queue manager (paper Section 3.2): lives on a submission
/// host, monitors VO policies, and decides how many jobs to start and
/// when, consulting the engine for site recommendations. The DI-GRUBER
/// experiments bypass it (GRUBER acts as a pure site recommender); the
/// examples use it to show full VO-level USLA enforcement.
class QueueManager {
 public:
  struct Options {
    /// Dispatch pacing: at most `burst` starts every `interval`.
    int burst = 5;
    sim::Duration interval = sim::Duration::seconds(10);
    /// Upper bound on jobs in flight chosen by the VO planner.
    int max_in_flight = 1000;
  };

  /// `dispatch` performs the actual submission and must eventually invoke
  /// the completion callback it is given.
  using Dispatch = std::function<void(grid::Job job, SiteId site,
                                      std::function<void(const grid::Job&)> done)>;

  QueueManager(sim::Simulation& sim, GruberEngine& engine,
               std::unique_ptr<SiteSelector> selector, Dispatch dispatch,
               Options options);
  QueueManager(sim::Simulation& sim, GruberEngine& engine,
               std::unique_ptr<SiteSelector> selector, Dispatch dispatch)
      : QueueManager(sim, engine, std::move(selector), std::move(dispatch),
                     Options{}) {}

  /// Enqueue a job submitted by a user of this host's VO.
  void enqueue(grid::Job job);

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] int in_flight() const { return in_flight_; }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t starved() const { return starved_; }

  void stop() { timer_.stop(); }

 private:
  void pump();

  sim::Simulation& sim_;
  GruberEngine& engine_;
  std::unique_ptr<SiteSelector> selector_;
  Dispatch dispatch_;
  Options options_;

  std::deque<grid::Job> pending_;
  int in_flight_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t starved_ = 0;  // pump passes with work but no admissible site
  sim::PeriodicTimer timer_;
};

}  // namespace digruber::gruber
