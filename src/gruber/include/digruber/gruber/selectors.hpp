#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "digruber/common/rng.hpp"
#include "digruber/grid/job.hpp"
#include "digruber/gruber/view.hpp"

namespace digruber::gruber {

/// Site selectors answer "which is the best site at which I can run this
/// job?" over a candidate list. In DI-GRUBER this logic executes on the
/// *client* (the tester/submission host) after fetching loads from its
/// decision point.
class SiteSelector {
 public:
  virtual ~SiteSelector() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// nullopt when no candidate can host the job.
  virtual std::optional<SiteId> select(std::span<const SiteLoad> candidates,
                                       const grid::Job& job) = 0;
};

/// Cycles through candidate sites regardless of load.
class RoundRobinSelector final : public SiteSelector {
 public:
  [[nodiscard]] const char* name() const override { return "round-robin"; }
  std::optional<SiteId> select(std::span<const SiteLoad> candidates,
                               const grid::Job& job) override;

 private:
  std::uint64_t cursor_ = 0;
};

/// Picks the site with the most free CPUs ("least used").
class LeastUsedSelector final : public SiteSelector {
 public:
  [[nodiscard]] const char* name() const override { return "least-used"; }
  std::optional<SiteId> select(std::span<const SiteLoad> candidates,
                               const grid::Job& job) override;
};

/// Picks the admissible site not selected for the longest time.
class LeastRecentlyUsedSelector final : public SiteSelector {
 public:
  [[nodiscard]] const char* name() const override { return "least-recently-used"; }
  std::optional<SiteId> select(std::span<const SiteLoad> candidates,
                               const grid::Job& job) override;

 private:
  std::uint64_t tick_ = 0;
  std::map<SiteId, std::uint64_t> last_used_;
};

/// Uniform random among admissible candidates — also the timeout-fallback
/// policy (then applied over *all* sites, ignoring USLAs).
class RandomSelector final : public SiteSelector {
 public:
  explicit RandomSelector(Rng rng) : rng_(rng) {}
  [[nodiscard]] const char* name() const override { return "random"; }
  std::optional<SiteId> select(std::span<const SiteLoad> candidates,
                               const grid::Job& job) override;

 private:
  Rng rng_;
};

/// Least-used with randomized tie-breaking: picks uniformly among the k
/// least-used admissible sites. Spreads simultaneous clients across the
/// top sites instead of thundering-herding the single emptiest one.
class TopKSelector final : public SiteSelector {
 public:
  TopKSelector(int k, Rng rng) : k_(k), rng_(rng) {}
  [[nodiscard]] const char* name() const override { return "top-k"; }
  std::optional<SiteId> select(std::span<const SiteLoad> candidates,
                               const grid::Job& job) override;

 private:
  int k_;
  Rng rng_;
};

/// Least-used weighted by relative (free/total) availability, so small
/// sites are not starved by absolute-free ranking.
class WeightedSelector final : public SiteSelector {
 public:
  [[nodiscard]] const char* name() const override { return "weighted"; }
  std::optional<SiteId> select(std::span<const SiteLoad> candidates,
                               const grid::Job& job) override;
};

std::unique_ptr<SiteSelector> make_selector(const std::string& name, Rng rng);

}  // namespace digruber::gruber
