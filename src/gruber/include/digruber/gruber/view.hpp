#pragma once

#include <deque>
#include <map>
#include <vector>

#include "digruber/common/ids.hpp"
#include "digruber/grid/site.hpp"

namespace digruber::gruber {

/// Compact per-site load record exchanged on the wire (decision point ->
/// client replies and decision point <-> decision point state exchange).
struct SiteLoad {
  SiteId site;
  std::int32_t total_cpus = 0;
  /// Free CPUs usable by the requesting consumer (clipped to USLA headroom
  /// in candidate lists; equals raw_free in plain load reports).
  std::int32_t free_estimate = 0;
  /// Unclipped free-CPU estimate — the decision point's raw belief about
  /// the site, used for scheduling-accuracy auditing.
  std::int32_t raw_free = 0;
  std::int32_t queued = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & site & total_cpus & free_estimate & raw_free & queued;
  }
};

/// One scheduling decision, as tracked locally and disseminated between
/// decision points (dissemination strategy 2: utilization only, no USLAs).
struct DispatchRecord {
  DpId origin;            // decision point that made the decision
  std::uint64_t seq = 0;  // per-origin sequence number (dedup for flooding)
  SiteId site;
  VoId vo;
  GroupId group;
  UserId user;
  std::int32_t cpus = 1;
  sim::Time when;
  sim::Duration est_runtime;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & origin & seq & site & vo & group & user & cpus & when & est_runtime;
  }
};

/// A decision point's model of the grid. Per the paper's experimental
/// setup, the view starts from complete *static* knowledge of resources
/// (bootstrap snapshots) and is kept current by monitoring scheduling
/// decisions — its own dispatches plus those learned through periodic
/// exchange — not by live site polling.
class GridView {
 public:
  /// Install base snapshots (static knowledge / fresh monitor data).
  void bootstrap(const std::vector<grid::SiteSnapshot>& snapshots);
  void apply_snapshot(const grid::SiteSnapshot& snapshot);

  /// Track a scheduling decision. Records age out after their estimated
  /// runtime, emulating completion without completion notices.
  void record_dispatch(const DispatchRecord& record);

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }

  /// Estimated free CPUs at `site` at time `now`.
  [[nodiscard]] std::int32_t estimated_free(SiteId site, sim::Time now) const;

  /// Estimated snapshot combining the base snapshot with active dispatch
  /// records (used for USLA evaluation).
  [[nodiscard]] grid::SiteSnapshot estimated_snapshot(SiteId site, sim::Time now) const;

  /// Active (not yet aged-out) CPUs dispatched at `site` for group/user.
  [[nodiscard]] std::int32_t active_for_group(SiteId site, GroupId group,
                                              sim::Time now) const;
  [[nodiscard]] std::int32_t active_for_user(SiteId site, UserId user,
                                             sim::Time now) const;

  /// Per-site load vector (the GetSiteLoads reply body).
  [[nodiscard]] std::vector<SiteLoad> loads(sim::Time now) const;

  /// Every dispatch record that has not yet aged out, across all sites —
  /// the payload a peer hands a restarted decision point during the
  /// anti-entropy catch-up exchange. Deterministic order (site, then age).
  [[nodiscard]] std::vector<DispatchRecord> active_records(sim::Time now) const;

  /// The base snapshots as held (static knowledge plus any applied monitor
  /// or strategy-1 snapshots), *without* folding in active records — paired
  /// with `active_records`, this is a lossless copy of the view, which is
  /// what a joining decision point bootstraps from. Deterministic site
  /// order.
  [[nodiscard]] std::vector<grid::SiteSnapshot> base_snapshots() const;

  /// Forget everything (crash semantics: the view is volatile state).
  void clear();

  [[nodiscard]] std::uint64_t dispatches_recorded() const { return recorded_; }

 private:
  struct SiteState {
    grid::SiteSnapshot base;
    std::deque<DispatchRecord> active;  // pruned lazily by est completion
  };

  void prune(SiteState& state, sim::Time now) const;
  [[nodiscard]] const SiteState* find(SiteId site) const;

  mutable std::map<SiteId, SiteState> sites_;
  std::uint64_t recorded_ = 0;
};

}  // namespace digruber::gruber
