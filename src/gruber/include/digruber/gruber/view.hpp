#pragma once

#include <deque>
#include <map>
#include <vector>

#include "digruber/common/ids.hpp"
#include "digruber/grid/site.hpp"

namespace digruber::gruber {

/// Compact per-site load record exchanged on the wire (decision point ->
/// client replies and decision point <-> decision point state exchange).
struct SiteLoad {
  SiteId site;
  std::int32_t total_cpus = 0;
  /// Free CPUs usable by the requesting consumer (clipped to USLA headroom
  /// in candidate lists; equals raw_free in plain load reports).
  std::int32_t free_estimate = 0;
  /// Unclipped free-CPU estimate — the decision point's raw belief about
  /// the site, used for scheduling-accuracy auditing.
  std::int32_t raw_free = 0;
  std::int32_t queued = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & site & total_cpus & free_estimate & raw_free & queued;
  }
};

/// One scheduling decision, as tracked locally and disseminated between
/// decision points (dissemination strategy 2: utilization only, no USLAs).
struct DispatchRecord {
  DpId origin;            // decision point that made the decision
  std::uint64_t seq = 0;  // per-origin sequence number (dedup for flooding)
  SiteId site;
  VoId vo;
  GroupId group;
  UserId user;
  std::int32_t cpus = 1;
  sim::Time when;
  sim::Duration est_runtime;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & origin & seq & site & vo & group & user & cpus & when & est_runtime;
  }

  friend bool operator==(const DispatchRecord&, const DispatchRecord&) = default;
};

/// Per-VO summary of the active dispatch records a view holds: an
/// order-independent hash (XOR of per-record mixes) plus totals, so two
/// peers can localize divergence to exactly the VOs whose allocation state
/// differs — the targeting input for delta anti-entropy.
struct VoDigest {
  VoId vo;
  std::uint64_t hash = 0;
  std::uint32_t records = 0;
  std::int32_t cpus = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & vo & hash & records & cpus;
  }

  friend bool operator==(const VoDigest&, const VoDigest&) = default;
};

/// Per-origin epoch-vector entry: the highest dispatch sequence this view
/// has absorbed from `origin`. Sequence numbers are incarnation-shifted
/// (high 32 bits = restart epoch), so the vector also captures restarts.
struct OriginEpoch {
  DpId origin;
  std::uint64_t max_seq = 0;
  std::uint32_t records = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & origin & max_seq & records;
  }

  friend bool operator==(const OriginEpoch&, const OriginEpoch&) = default;
};

/// Compact whole-view digest piggybacked on exchange messages and site-load
/// replies (partition tolerance). A digest summarizes the *settled* window
/// of a view — records old enough (`when <= as_of`) that normal exchange
/// propagation has delivered them everywhere, and long-lived enough
/// (`when + est_runtime > horizon`) that they cannot expire between the
/// sender computing the digest and the receiver comparing against it.
/// Both bounds ride in the digest so the receiver evaluates the *same*
/// window; within it, digest equality means the views agree on base state
/// and on every VO's active allocations, and inequality means a partition
/// (not propagation lag or expiry skew) diverged them.
struct ViewDigest {
  sim::Time as_of;                   // settled cutoff: records `when <= as_of`
  sim::Time horizon;                 // expiry guard: `when + est > horizon`
  std::uint64_t base_hash = 0;       // over base snapshots
  std::vector<VoDigest> vos;         // ascending vo id
  std::vector<OriginEpoch> epochs;   // ascending origin id

  template <class Archive>
  void serialize(Archive& ar) {
    ar & as_of & horizon & base_hash & vos & epochs;
  }

  /// Window bounds are comparison parameters, not state: two digests match
  /// iff they summarize the same contents over their (shared) window.
  friend bool operator==(const ViewDigest& a, const ViewDigest& b) {
    return a.base_hash == b.base_hash && a.vos == b.vos && a.epochs == b.epochs;
  }
};

/// VOs whose allocation state differs between the two digests (union of
/// mismatched and one-sided entries), ascending — the pull set for delta
/// anti-entropy.
[[nodiscard]] std::vector<VoId> diverged_vos(const ViewDigest& a,
                                             const ViewDigest& b);

/// A decision point's model of the grid. Per the paper's experimental
/// setup, the view starts from complete *static* knowledge of resources
/// (bootstrap snapshots) and is kept current by monitoring scheduling
/// decisions — its own dispatches plus those learned through periodic
/// exchange — not by live site polling.
class GridView {
 public:
  /// Install base snapshots (static knowledge / fresh monitor data).
  void bootstrap(const std::vector<grid::SiteSnapshot>& snapshots);
  void apply_snapshot(const grid::SiteSnapshot& snapshot);

  /// Track a scheduling decision. Records age out after their estimated
  /// runtime, emulating completion without completion notices.
  void record_dispatch(const DispatchRecord& record);

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }

  /// Estimated free CPUs at `site` at time `now`.
  [[nodiscard]] std::int32_t estimated_free(SiteId site, sim::Time now) const;

  /// Estimated snapshot combining the base snapshot with active dispatch
  /// records (used for USLA evaluation).
  [[nodiscard]] grid::SiteSnapshot estimated_snapshot(SiteId site, sim::Time now) const;

  /// Active (not yet aged-out) CPUs dispatched at `site` for group/user.
  [[nodiscard]] std::int32_t active_for_group(SiteId site, GroupId group,
                                              sim::Time now) const;
  [[nodiscard]] std::int32_t active_for_user(SiteId site, UserId user,
                                             sim::Time now) const;

  /// Per-site load vector (the GetSiteLoads reply body).
  [[nodiscard]] std::vector<SiteLoad> loads(sim::Time now) const;

  /// Every dispatch record that has not yet aged out, across all sites —
  /// the payload a peer hands a restarted decision point during the
  /// anti-entropy catch-up exchange. Deterministic order (site, then age).
  [[nodiscard]] std::vector<DispatchRecord> active_records(sim::Time now) const;

  /// The base snapshots as held (static knowledge plus any applied monitor
  /// or strategy-1 snapshots), *without* folding in active records — paired
  /// with `active_records`, this is a lossless copy of the view, which is
  /// what a joining decision point bootstraps from. Deterministic site
  /// order.
  [[nodiscard]] std::vector<grid::SiteSnapshot> base_snapshots() const;

  /// Forget everything (crash semantics: the view is volatile state).
  void clear();

  [[nodiscard]] std::uint64_t dispatches_recorded() const { return recorded_; }

  /// Compact digest of the settled window `(when <= as_of, expiry >
  /// horizon)` — see ViewDigest. Order-independent: two views holding the
  /// same records inside the window digest identically regardless of
  /// arrival order, physical prune history, or the comparer's clock.
  [[nodiscard]] ViewDigest digest(sim::Time as_of, sim::Time horizon) const;

  /// Active records belonging to any VO in `vos` (ascending input),
  /// deterministic (site, then age) order — a delta anti-entropy reply.
  [[nodiscard]] std::vector<DispatchRecord> records_for_vos(
      const std::vector<VoId>& vos, sim::Time now) const;

  /// Outcome of merging one remote record during anti-entropy.
  struct MergeResult {
    bool applied = false;        // the record now lives in this view
    bool conflict = false;       // an (origin, seq) twin disagreed on content
    bool double_commit = false;  // same logical work seen from another origin
  };

  /// Idempotent, deterministic record merge: drops exact duplicates,
  /// resolves (origin, seq) conflicts by severity (more CPUs held) then
  /// epoch (higher incarnation-shifted seq semantics: later `when` wins the
  /// tie), and flags double-commits — the same (vo, group, user, when) work
  /// admitted by two different origins across a split. Both sides of a
  /// healed partition converge to the same record set whatever the merge
  /// order.
  MergeResult merge_record(const DispatchRecord& record, sim::Time now);

  /// Sites whose base snapshot has gone stale: refreshed at least once
  /// (as_of > 0 — static strategy-2 knowledge never stales) but not within
  /// `threshold` of `now`. Feeds the degraded-mode admission hint.
  [[nodiscard]] std::size_t stale_site_count(sim::Time now,
                                             sim::Duration threshold) const;

 private:
  struct SiteState {
    grid::SiteSnapshot base;
    std::deque<DispatchRecord> active;  // pruned lazily by est completion
  };

  void prune(SiteState& state, sim::Time now) const;
  [[nodiscard]] const SiteState* find(SiteId site) const;

  mutable std::map<SiteId, SiteState> sites_;
  std::uint64_t recorded_ = 0;
};

}  // namespace digruber::gruber
