#include "digruber/gruber/monitor.hpp"

namespace digruber::gruber {

SiteMonitor::SiteMonitor(sim::Simulation& sim, const grid::Grid& grid,
                         GruberEngine& engine, sim::Duration poll_period)
    : grid_(grid), engine_(engine) {
  refresh();
  if (poll_period > sim::Duration::zero()) {
    timer_ = std::make_unique<sim::PeriodicTimer>(sim, poll_period,
                                                  [this] { refresh(); }, poll_period);
  }
}

void SiteMonitor::refresh() {
  for (const grid::SiteSnapshot& snapshot : grid_.snapshot_all()) {
    engine_.view().apply_snapshot(snapshot);
  }
  ++refreshes_;
}

void SiteMonitor::stop() {
  if (timer_) timer_->stop();
}

}  // namespace digruber::gruber
