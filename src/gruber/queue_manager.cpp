#include "digruber/gruber/queue_manager.hpp"

#include <utility>

namespace digruber::gruber {

QueueManager::QueueManager(sim::Simulation& sim, GruberEngine& engine,
                           std::unique_ptr<SiteSelector> selector,
                           Dispatch dispatch, Options options)
    : sim_(sim),
      engine_(engine),
      selector_(std::move(selector)),
      dispatch_(std::move(dispatch)),
      options_(options),
      // First pump after one interval: enqueue/pump never race at t=0.
      timer_(sim, options.interval, [this] { pump(); }, options.interval) {}

void QueueManager::enqueue(grid::Job job) {
  job.created = sim_.now();
  pending_.push_back(std::move(job));
}

void QueueManager::pump() {
  int started = 0;
  bool blocked = false;
  while (started < options_.burst && !pending_.empty() &&
         in_flight_ < options_.max_in_flight) {
    grid::Job job = pending_.front();
    const std::vector<SiteLoad> candidates = engine_.candidates(job, sim_.now());
    const std::optional<SiteId> site = selector_->select(candidates, job);
    if (!site) {
      // VO-level USLA enforcement: nothing admissible right now; hold the
      // queue rather than over-dispatching.
      blocked = true;
      break;
    }
    pending_.pop_front();
    DispatchRecord record;
    record.site = *site;
    record.vo = job.vo;
    record.group = job.group;
    record.user = job.user;
    record.cpus = job.cpus;
    record.when = sim_.now();
    record.est_runtime = job.runtime;
    engine_.record(record);

    ++in_flight_;
    ++dispatched_;
    ++started;
    dispatch_(std::move(job), *site, [this](const grid::Job&) {
      --in_flight_;
      ++completed_;
    });
  }
  if (blocked && !pending_.empty()) ++starved_;
}

}  // namespace digruber::gruber
