#include "digruber/gruber/selectors.hpp"

#include <algorithm>
#include <stdexcept>

namespace digruber::gruber {
namespace {

bool fits(const SiteLoad& load, const grid::Job& job) {
  return load.free_estimate >= job.cpus;
}

}  // namespace

std::optional<SiteId> RoundRobinSelector::select(std::span<const SiteLoad> candidates,
                                                 const grid::Job& job) {
  if (candidates.empty()) return std::nullopt;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const SiteLoad& c = candidates[(cursor_ + i) % candidates.size()];
    if (fits(c, job)) {
      cursor_ = (cursor_ + i + 1) % candidates.size();
      return c.site;
    }
  }
  return std::nullopt;
}

std::optional<SiteId> LeastUsedSelector::select(std::span<const SiteLoad> candidates,
                                                const grid::Job& job) {
  const SiteLoad* best = nullptr;
  for (const SiteLoad& c : candidates) {
    if (!fits(c, job)) continue;
    if (!best || c.free_estimate > best->free_estimate) best = &c;
  }
  if (!best) return std::nullopt;
  return best->site;
}

std::optional<SiteId> LeastRecentlyUsedSelector::select(
    std::span<const SiteLoad> candidates, const grid::Job& job) {
  const SiteLoad* best = nullptr;
  std::uint64_t best_used = ~std::uint64_t{0};
  for (const SiteLoad& c : candidates) {
    if (!fits(c, job)) continue;
    std::uint64_t used = 0;
    const auto it = last_used_.find(c.site);
    if (it != last_used_.end()) used = it->second;
    if (!best || used < best_used) {
      best = &c;
      best_used = used;
    }
  }
  if (!best) return std::nullopt;
  last_used_[best->site] = ++tick_;
  return best->site;
}

std::optional<SiteId> RandomSelector::select(std::span<const SiteLoad> candidates,
                                             const grid::Job& job) {
  std::vector<const SiteLoad*> admissible;
  admissible.reserve(candidates.size());
  for (const SiteLoad& c : candidates) {
    if (fits(c, job)) admissible.push_back(&c);
  }
  if (admissible.empty()) return std::nullopt;
  return admissible[rng_.uniform_index(admissible.size())]->site;
}

std::optional<SiteId> TopKSelector::select(std::span<const SiteLoad> candidates,
                                           const grid::Job& job) {
  std::vector<const SiteLoad*> admissible;
  admissible.reserve(candidates.size());
  for (const SiteLoad& c : candidates) {
    if (fits(c, job)) admissible.push_back(&c);
  }
  if (admissible.empty()) return std::nullopt;
  const std::size_t k = std::min<std::size_t>(std::size_t(std::max(1, k_)),
                                              admissible.size());
  std::partial_sort(admissible.begin(), admissible.begin() + std::ptrdiff_t(k),
                    admissible.end(), [](const SiteLoad* a, const SiteLoad* b) {
                      if (a->free_estimate != b->free_estimate) {
                        return a->free_estimate > b->free_estimate;
                      }
                      return a->site < b->site;
                    });
  return admissible[rng_.uniform_index(k)]->site;
}

std::optional<SiteId> WeightedSelector::select(std::span<const SiteLoad> candidates,
                                               const grid::Job& job) {
  const SiteLoad* best = nullptr;
  double best_score = -1.0;
  for (const SiteLoad& c : candidates) {
    if (!fits(c, job) || c.total_cpus <= 0) continue;
    const double score =
        double(c.free_estimate) * (double(c.free_estimate) / double(c.total_cpus));
    if (score > best_score) {
      best = &c;
      best_score = score;
    }
  }
  if (!best) return std::nullopt;
  return best->site;
}

std::unique_ptr<SiteSelector> make_selector(const std::string& name, Rng rng) {
  if (name == "round-robin") return std::make_unique<RoundRobinSelector>();
  if (name == "least-used") return std::make_unique<LeastUsedSelector>();
  if (name == "least-recently-used") return std::make_unique<LeastRecentlyUsedSelector>();
  if (name == "random") return std::make_unique<RandomSelector>(rng);
  if (name == "top-k") return std::make_unique<TopKSelector>(4, rng);
  if (name == "weighted") return std::make_unique<WeightedSelector>();
  throw std::invalid_argument("unknown selector: " + name);
}

}  // namespace digruber::gruber
