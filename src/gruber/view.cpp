#include "digruber/gruber/view.hpp"

#include <algorithm>

namespace digruber::gruber {

void GridView::bootstrap(const std::vector<grid::SiteSnapshot>& snapshots) {
  for (const auto& snapshot : snapshots) apply_snapshot(snapshot);
}

void GridView::apply_snapshot(const grid::SiteSnapshot& snapshot) {
  SiteState& state = sites_[snapshot.site];
  if (snapshot.as_of < state.base.as_of) return;  // stale: ignore
  state.base = snapshot;
  // Dispatches made before the snapshot are already reflected in it.
  std::erase_if(state.active, [&](const DispatchRecord& r) {
    return r.when <= snapshot.as_of;
  });
}

void GridView::record_dispatch(const DispatchRecord& record) {
  SiteState& state = sites_[record.site];
  state.active.push_back(record);
  ++recorded_;
}

void GridView::prune(SiteState& state, sim::Time now) const {
  std::erase_if(state.active, [&](const DispatchRecord& r) {
    return r.when + r.est_runtime <= now;
  });
}

const GridView::SiteState* GridView::find(SiteId site) const {
  const auto it = sites_.find(site);
  return it == sites_.end() ? nullptr : &it->second;
}

std::int32_t GridView::estimated_free(SiteId site, sim::Time now) const {
  const SiteState* state = find(site);
  if (!state) return 0;
  prune(const_cast<SiteState&>(*state), now);
  std::int32_t pending = 0;
  for (const auto& r : state->active) pending += r.cpus;
  return std::max(0, state->base.free_cpus - pending);
}

grid::SiteSnapshot GridView::estimated_snapshot(SiteId site, sim::Time now) const {
  const SiteState* state = find(site);
  if (!state) return {};
  prune(const_cast<SiteState&>(*state), now);
  grid::SiteSnapshot estimate = state->base;
  for (const auto& r : state->active) {
    estimate.free_cpus = std::max(0, estimate.free_cpus - r.cpus);
    estimate.running_per_vo[r.vo] += r.cpus;
  }
  estimate.as_of = now;
  return estimate;
}

std::int32_t GridView::active_for_group(SiteId site, GroupId group,
                                        sim::Time now) const {
  const SiteState* state = find(site);
  if (!state) return 0;
  prune(const_cast<SiteState&>(*state), now);
  std::int32_t cpus = 0;
  for (const auto& r : state->active) {
    if (r.group == group) cpus += r.cpus;
  }
  return cpus;
}

std::int32_t GridView::active_for_user(SiteId site, UserId user, sim::Time now) const {
  const SiteState* state = find(site);
  if (!state) return 0;
  prune(const_cast<SiteState&>(*state), now);
  std::int32_t cpus = 0;
  for (const auto& r : state->active) {
    if (r.user == user) cpus += r.cpus;
  }
  return cpus;
}

std::vector<DispatchRecord> GridView::active_records(sim::Time now) const {
  std::vector<DispatchRecord> out;
  for (auto& [site, state] : sites_) {
    prune(state, now);
    out.insert(out.end(), state.active.begin(), state.active.end());
  }
  return out;
}

std::vector<grid::SiteSnapshot> GridView::base_snapshots() const {
  std::vector<grid::SiteSnapshot> out;
  out.reserve(sites_.size());
  for (const auto& [site, state] : sites_) out.push_back(state.base);
  return out;
}

void GridView::clear() {
  sites_.clear();
  recorded_ = 0;
}

std::vector<SiteLoad> GridView::loads(sim::Time now) const {
  std::vector<SiteLoad> out;
  out.reserve(sites_.size());
  for (auto& [site, state] : sites_) {
    prune(state, now);
    std::int32_t pending = 0;
    for (const auto& r : state.active) pending += r.cpus;
    SiteLoad load;
    load.site = site;
    load.total_cpus = state.base.total_cpus;
    load.free_estimate = std::max(0, state.base.free_cpus - pending);
    load.raw_free = load.free_estimate;
    load.queued = state.base.queued_jobs;
    out.push_back(load);
  }
  return out;
}

}  // namespace digruber::gruber
