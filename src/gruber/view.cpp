#include "digruber/gruber/view.hpp"

#include <algorithm>
#include <map>

namespace digruber::gruber {

namespace {

/// splitmix64 finalizer: the digest mix. Stable across platforms — digests
/// travel on the wire, so the hash must not depend on implementation
/// details the way std::hash does.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t record_hash(const DispatchRecord& r) {
  std::uint64_t h = mix64(r.origin.value());
  h = mix64(h ^ r.seq);
  h = mix64(h ^ r.site.value());
  h = mix64(h ^ r.vo.value());
  h = mix64(h ^ r.group.value());
  h = mix64(h ^ r.user.value());
  h = mix64(h ^ std::uint64_t(std::uint32_t(r.cpus)));
  h = mix64(h ^ std::uint64_t(r.when.us()));
  h = mix64(h ^ std::uint64_t(r.est_runtime.us()));
  return h;
}

std::uint64_t snapshot_hash(const grid::SiteSnapshot& s) {
  std::uint64_t h = mix64(s.site.value());
  h = mix64(h ^ std::uint64_t(std::uint32_t(s.total_cpus)));
  h = mix64(h ^ std::uint64_t(std::uint32_t(s.free_cpus)));
  h = mix64(h ^ std::uint64_t(std::uint32_t(s.queued_jobs)));
  h = mix64(h ^ std::uint64_t(s.as_of.us()));
  for (const auto& [vo, cpus] : s.running_per_vo) {
    h = mix64(h ^ vo.value());
    h = mix64(h ^ std::uint64_t(std::uint32_t(cpus)));
  }
  return h;
}

}  // namespace

std::vector<VoId> diverged_vos(const ViewDigest& a, const ViewDigest& b) {
  std::vector<VoId> out;
  auto ia = a.vos.begin();
  auto ib = b.vos.begin();
  while (ia != a.vos.end() || ib != b.vos.end()) {
    if (ib == b.vos.end() || (ia != a.vos.end() && ia->vo < ib->vo)) {
      out.push_back(ia->vo);
      ++ia;
    } else if (ia == a.vos.end() || ib->vo < ia->vo) {
      out.push_back(ib->vo);
      ++ib;
    } else {
      if (!(*ia == *ib)) out.push_back(ia->vo);
      ++ia;
      ++ib;
    }
  }
  return out;
}

void GridView::bootstrap(const std::vector<grid::SiteSnapshot>& snapshots) {
  for (const auto& snapshot : snapshots) apply_snapshot(snapshot);
}

void GridView::apply_snapshot(const grid::SiteSnapshot& snapshot) {
  SiteState& state = sites_[snapshot.site];
  if (snapshot.as_of < state.base.as_of) return;  // stale: ignore
  state.base = snapshot;
  // Dispatches made before the snapshot are already reflected in it.
  std::erase_if(state.active, [&](const DispatchRecord& r) {
    return r.when <= snapshot.as_of;
  });
}

void GridView::record_dispatch(const DispatchRecord& record) {
  SiteState& state = sites_[record.site];
  state.active.push_back(record);
  ++recorded_;
}

void GridView::prune(SiteState& state, sim::Time now) const {
  std::erase_if(state.active, [&](const DispatchRecord& r) {
    return r.when + r.est_runtime <= now;
  });
}

const GridView::SiteState* GridView::find(SiteId site) const {
  const auto it = sites_.find(site);
  return it == sites_.end() ? nullptr : &it->second;
}

std::int32_t GridView::estimated_free(SiteId site, sim::Time now) const {
  const SiteState* state = find(site);
  if (!state) return 0;
  prune(const_cast<SiteState&>(*state), now);
  std::int32_t pending = 0;
  for (const auto& r : state->active) pending += r.cpus;
  return std::max(0, state->base.free_cpus - pending);
}

grid::SiteSnapshot GridView::estimated_snapshot(SiteId site, sim::Time now) const {
  const SiteState* state = find(site);
  if (!state) return {};
  prune(const_cast<SiteState&>(*state), now);
  grid::SiteSnapshot estimate = state->base;
  for (const auto& r : state->active) {
    estimate.free_cpus = std::max(0, estimate.free_cpus - r.cpus);
    estimate.running_per_vo[r.vo] += r.cpus;
  }
  estimate.as_of = now;
  return estimate;
}

std::int32_t GridView::active_for_group(SiteId site, GroupId group,
                                        sim::Time now) const {
  const SiteState* state = find(site);
  if (!state) return 0;
  prune(const_cast<SiteState&>(*state), now);
  std::int32_t cpus = 0;
  for (const auto& r : state->active) {
    if (r.group == group) cpus += r.cpus;
  }
  return cpus;
}

std::int32_t GridView::active_for_user(SiteId site, UserId user, sim::Time now) const {
  const SiteState* state = find(site);
  if (!state) return 0;
  prune(const_cast<SiteState&>(*state), now);
  std::int32_t cpus = 0;
  for (const auto& r : state->active) {
    if (r.user == user) cpus += r.cpus;
  }
  return cpus;
}

std::vector<DispatchRecord> GridView::active_records(sim::Time now) const {
  std::vector<DispatchRecord> out;
  for (auto& [site, state] : sites_) {
    prune(state, now);
    out.insert(out.end(), state.active.begin(), state.active.end());
  }
  return out;
}

std::vector<grid::SiteSnapshot> GridView::base_snapshots() const {
  std::vector<grid::SiteSnapshot> out;
  out.reserve(sites_.size());
  for (const auto& [site, state] : sites_) out.push_back(state.base);
  return out;
}

void GridView::clear() {
  sites_.clear();
  recorded_ = 0;
}

ViewDigest GridView::digest(sim::Time as_of, sim::Time horizon) const {
  ViewDigest out;
  out.as_of = as_of;
  out.horizon = horizon;
  std::map<VoId, VoDigest> vos;
  std::map<DpId, OriginEpoch> epochs;
  for (const auto& [site, state] : sites_) {
    out.base_hash ^= snapshot_hash(state.base);
    for (const DispatchRecord& r : state.active) {
      // Outside the settled window: too fresh to have propagated over
      // normal exchanges, or expiring too soon to survive the compare
      // round trip. Either would make healthy peers digest differently.
      if (r.when > as_of || r.when + r.est_runtime <= horizon) continue;
      VoDigest& vd = vos[r.vo];
      vd.vo = r.vo;
      vd.hash ^= record_hash(r);
      ++vd.records;
      vd.cpus += r.cpus;
      OriginEpoch& oe = epochs[r.origin];
      oe.origin = r.origin;
      oe.max_seq = std::max(oe.max_seq, r.seq);
      ++oe.records;
    }
  }
  out.vos.reserve(vos.size());
  for (auto& [vo, vd] : vos) out.vos.push_back(vd);
  out.epochs.reserve(epochs.size());
  for (auto& [origin, oe] : epochs) out.epochs.push_back(oe);
  return out;
}

std::vector<DispatchRecord> GridView::records_for_vos(
    const std::vector<VoId>& vos, sim::Time now) const {
  std::vector<DispatchRecord> out;
  for (auto& [site, state] : sites_) {
    prune(state, now);
    for (const DispatchRecord& r : state.active) {
      if (std::binary_search(vos.begin(), vos.end(), r.vo)) out.push_back(r);
    }
  }
  return out;
}

GridView::MergeResult GridView::merge_record(const DispatchRecord& record,
                                             sim::Time now) {
  MergeResult out;
  for (auto& [site, state] : sites_) {
    prune(state, now);
    for (auto it = state.active.begin(); it != state.active.end(); ++it) {
      if (it->origin == record.origin && it->seq == record.seq) {
        if (*it == record) {
          return out;  // exact duplicate: nothing to do
        }
        // Conflicting twins: severity first (the allocation holding more
        // CPUs survives, so reconciliation never under-counts committed
        // capacity), then epoch (later `when`); keep the incumbent on a
        // full tie so both merge orders converge to the same record.
        out.conflict = true;
        const bool incoming_wins =
            record.cpus != it->cpus ? record.cpus > it->cpus
                                    : record.when > it->when;
        if (!incoming_wins) return out;
        state.active.erase(it);
        record_dispatch(record);
        out.applied = true;
        return out;
      }
      if (it->origin != record.origin && it->vo == record.vo &&
          it->group == record.group && it->user == record.user &&
          it->when == record.when) {
        // The same logical work admitted independently by two origins —
        // the split-brain double-commit signature. Keep both records (both
        // really consumed capacity) but surface it for accounting.
        out.double_commit = true;
      }
    }
  }
  record_dispatch(record);
  out.applied = true;
  return out;
}

std::size_t GridView::stale_site_count(sim::Time now,
                                       sim::Duration threshold) const {
  std::size_t stale = 0;
  for (const auto& [site, state] : sites_) {
    if (state.base.as_of > sim::Time::zero() &&
        now - state.base.as_of > threshold) {
      ++stale;
    }
  }
  return stale;
}

std::vector<SiteLoad> GridView::loads(sim::Time now) const {
  std::vector<SiteLoad> out;
  out.reserve(sites_.size());
  for (auto& [site, state] : sites_) {
    prune(state, now);
    std::int32_t pending = 0;
    for (const auto& r : state.active) pending += r.cpus;
    SiteLoad load;
    load.site = site;
    load.total_cpus = state.base.total_cpus;
    load.free_estimate = std::max(0, state.base.free_cpus - pending);
    load.raw_free = load.free_estimate;
    load.queued = state.base.queued_jobs;
    out.push_back(load);
  }
  return out;
}

}  // namespace digruber::gruber
