#include "digruber/grubsim/grubsim.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <set>

namespace digruber::grubsim {

namespace {

/// Fraction of a decision point's service time spent handling exchange
/// traffic at deployment size `n`. Every message occupies both its sender
/// and its receiver, so the per-point handling rate is
/// 2 * messages_per_round(n) / n per exchange interval. Clamped so even a
/// pathological overlay leaves 1% of capacity for queries.
double overlay_overhead_fraction(const GrubSimConfig& config, std::size_t n) {
  if (config.exchange_cost_queries <= 0.0 || n < 2 ||
      config.exchange_interval_s <= 0.0 || config.dp_capacity_qps <= 0.0) {
    return 0.0;
  }
  const double msgs_per_s = 2.0 * overlay::messages_per_round(n, config.overlay) /
                            double(n) / config.exchange_interval_s;
  const double fraction =
      msgs_per_s * config.exchange_cost_queries / config.dp_capacity_qps;
  return std::min(fraction, 0.99);
}

/// Per-point query capacity net of dissemination overhead. With the
/// default cost of 0 this is exactly dp_capacity_qps, keeping legacy
/// replays bit-identical.
double effective_qps(const GrubSimConfig& config, std::size_t n) {
  return config.dp_capacity_qps * (1.0 - overlay_overhead_fraction(config, n));
}

/// Closed-loop replay: the trace contributes the client population and the
/// experiment duration; the loop itself is re-simulated against the fluid
/// capacity model so throttled demand is reconstructed.
GrubSimResult run_closed_loop(const workload::TraceLog& trace,
                              const GrubSimConfig& config) {
  GrubSimResult result;
  result.initial_dps = config.initial_dps;
  if (trace.entries().empty()) return result;

  std::set<std::uint64_t> clients;
  double duration = 0.0;
  for (const workload::QueryTrace& q : trace.entries()) {
    clients.insert(q.client.value());
    duration = std::max(duration, q.issued.to_seconds());
  }

  struct Dp {
    double backlog = 0.0;
    double ready_at = 0.0;
    double drained_to = 0.0;
  };
  std::vector<Dp> dps(std::size_t(config.initial_dps));

  // Min-heap of client next-issue times.
  std::priority_queue<double, std::vector<double>, std::greater<>> issues;
  const double ramp = duration * 0.5 / double(clients.size());
  for (std::size_t c = 0; c < clients.size(); ++c) {
    issues.push(double(c) * ramp);
  }

  double overload_since = -1.0;
  double response_sum = 0.0;
  while (!issues.empty()) {
    const double t = issues.top();
    issues.pop();
    if (t > duration) continue;

    const double qps = effective_qps(config, dps.size());
    Dp* target = nullptr;
    for (Dp& dp : dps) {
      if (t < dp.ready_at) continue;
      dp.backlog = std::max(
          0.0, dp.backlog - (t - std::max(dp.drained_to, dp.ready_at)) * qps);
      dp.drained_to = t;
      if (!target || dp.backlog < target->backlog) target = &dp;
    }
    if (!target) target = &dps.front();
    target->backlog += 1.0;

    const double response =
        std::max(config.min_response_s, target->backlog / qps);
    response_sum += response;
    result.max_response_s = std::max(result.max_response_s, response);
    ++result.queries_replayed;
    issues.push(t + response + config.think_s);

    if (response > config.response_threshold_s) {
      ++result.overload_events;
      if (overload_since < 0) overload_since = t;
      if (t - overload_since >= config.overload_sustain_s) {
        Dp fresh;
        fresh.ready_at = t + config.provision_delay_s;
        fresh.drained_to = fresh.ready_at;
        dps.push_back(fresh);
        ++result.added_dps;
        result.provision_times_s.push_back(t);
        overload_since = -1.0;
      }
    } else {
      overload_since = -1.0;
    }
  }
  result.avg_response_s =
      result.queries_replayed ? response_sum / double(result.queries_replayed) : 0.0;
  result.overlay_overhead_fraction = overlay_overhead_fraction(config, dps.size());
  return result;
}

}  // namespace

GrubSimResult run_grubsim(const workload::TraceLog& trace, GrubSimConfig config) {
  assert(config.initial_dps >= 1);
  assert(config.dp_capacity_qps > 0);

  if (config.mode == ReplayMode::kClosedLoop) {
    return run_closed_loop(trace, config);
  }

  GrubSimResult result;
  result.initial_dps = config.initial_dps;

  // Fluid model: each decision point is a queue drained at capacity_qps.
  // Arrivals are routed to the shortest backlog (clients re-balanced on
  // reconfiguration, per the Section 5 enhancement).
  struct Dp {
    double backlog = 0.0;   // outstanding requests
    double ready_at = 0.0;  // provisioning delay for late-added DPs
  };
  std::vector<Dp> dps(std::size_t(config.initial_dps));

  // Arrivals must be replayed in time order.
  std::vector<workload::QueryTrace> arrivals = trace.entries();
  std::sort(arrivals.begin(), arrivals.end(),
            [](const workload::QueryTrace& a, const workload::QueryTrace& b) {
              return a.issued < b.issued;
            });

  double last_t = 0.0;
  double overload_since = -1.0;
  double response_sum = 0.0;

  for (const workload::QueryTrace& query : arrivals) {
    const double t = query.issued.to_seconds();
    const double dt = std::max(0.0, t - last_t);
    last_t = t;

    // Drain every ready decision point.
    const double qps = effective_qps(config, dps.size());
    for (Dp& dp : dps) {
      if (t <= dp.ready_at) continue;
      const double active = std::min(dt, t - dp.ready_at);
      dp.backlog = std::max(0.0, dp.backlog - active * qps);
    }

    // Route to the shortest ready queue.
    Dp* target = nullptr;
    for (Dp& dp : dps) {
      if (t < dp.ready_at) continue;
      if (!target || dp.backlog < target->backlog) target = &dp;
    }
    if (!target) target = &dps.front();
    target->backlog += 1.0;

    const double response = target->backlog / qps;
    response_sum += response;
    result.max_response_s = std::max(result.max_response_s, response);
    ++result.queries_replayed;

    if (response > config.response_threshold_s) {
      ++result.overload_events;
      if (overload_since < 0) overload_since = t;
      if (t - overload_since >= config.overload_sustain_s) {
        // Sustained saturation: the third-party observer adds a decision
        // point and the load is re-balanced.
        Dp fresh;
        fresh.ready_at = t + config.provision_delay_s;
        dps.push_back(fresh);
        ++result.added_dps;
        result.provision_times_s.push_back(t);
        overload_since = -1.0;
      }
    } else {
      overload_since = -1.0;
    }
  }

  result.avg_response_s =
      result.queries_replayed ? response_sum / double(result.queries_replayed) : 0.0;
  result.overlay_overhead_fraction = overlay_overhead_fraction(config, dps.size());
  return result;
}

}  // namespace digruber::grubsim
