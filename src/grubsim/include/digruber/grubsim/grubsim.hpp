#pragma once

#include <cstdint>
#include <vector>

#include "digruber/overlay/overlay.hpp"
#include "digruber/workload/trace.hpp"

namespace digruber::grubsim {

// GRUB-SIM (paper Section 5): a trace-driven simulator that replays the
// brokering-query log from a live run, watches the Response metric
// against a per-decision-point capacity model (fitted by DiPerF), flags
// overload events, and provisions simulated decision points on the fly --
// answering "how many decision points does this load actually need?".

/// How the trace drives the replay.
enum class ReplayMode : std::uint8_t {
  /// Feed the recorded query issue times directly (open-loop). Faithful
  /// when the source run was unsaturated; understates demand otherwise,
  /// because closed-loop clients were throttled by the very saturation
  /// GRUB-SIM is trying to measure.
  kOpenTrace = 0,
  /// Reconstruct the client population from the trace and re-run it as a
  /// closed loop against the capacity model: each client issues, waits the
  /// estimated response, thinks, repeats. This is what "how many decision
  /// points does this load need" actually asks.
  kClosedLoop,
};

struct GrubSimConfig {
  ReplayMode mode = ReplayMode::kOpenTrace;
  /// Closed-loop client think time between queries.
  double think_s = 9.0;
  /// Floor on a healthy query's response (WAN + service).
  double min_response_s = 1.5;

  int initial_dps = 1;
  /// Sustained per-decision-point service capacity (queries/second), from
  /// the DiPerF performance model of the container profile under test.
  double dp_capacity_qps = 2.0;
  /// Response considered adequate; estimates above it are overloads.
  double response_threshold_s = 15.0;
  /// Overload must persist this long before a decision point is added.
  double overload_sustain_s = 120.0;
  /// A newly provisioned decision point takes this long to come up.
  double provision_delay_s = 60.0;

  // Overlay-aware mode: charge dissemination traffic against the capacity
  // model. Each exchange message a decision point sends or receives costs
  // `exchange_cost_queries` query-equivalents of service time; the
  // per-point overhead rate is messages_per_round(n, overlay) / n divided
  // by the exchange interval. Off by default (cost 0) so legacy replays
  // are bit-identical. As deployments grow, mesh overhead scales O(n) per
  // point while tree/super-peer stay O(1) -- so the answer to "how many
  // decision points does this load need" now depends on the overlay.
  overlay::Options overlay{};
  double exchange_interval_s = 180.0;
  double exchange_cost_queries = 0.0;
};

struct GrubSimResult {
  int initial_dps = 0;
  int added_dps = 0;
  [[nodiscard]] int total_dps() const { return initial_dps + added_dps; }

  std::uint64_t overload_events = 0;
  std::vector<double> provision_times_s;
  /// Mean of the replayed response estimates (seconds).
  double avg_response_s = 0.0;
  double max_response_s = 0.0;
  std::uint64_t queries_replayed = 0;
  /// Fraction of per-point capacity spent on dissemination at the final
  /// deployment size (0 unless overlay-aware mode is on).
  double overlay_overhead_fraction = 0.0;
};

GrubSimResult run_grubsim(const workload::TraceLog& trace, GrubSimConfig config);

}  // namespace digruber::grubsim
