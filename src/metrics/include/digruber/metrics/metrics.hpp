#pragma once

#include <cstdint>
#include <vector>

#include "digruber/common/stats.hpp"
#include "digruber/grid/job.hpp"
#include "digruber/trace/histogram.hpp"

namespace digruber::metrics {

/// The paper's five evaluation metrics (Section 4.2):
///   Response  — mean broker response time over queries,
///   Throughput — completed queries per second,
///   QTime     — mean site-queue wait (dispatch -> start),
///   Util      — consumed CPU time / available CPU time,
///   Accuracy  — mean per-job scheduling accuracy SA_i.
///
/// Accuracy note: the text defines SA_i as "free resources at the selected
/// site / total free resources over the entire grid"; read literally that
/// is bounded by 1/#sites-ish yet the paper plots accuracies near 100%, so
/// (like the original figures) we report SA_i relative to the *best*
/// site: free(selected)/free(best) at dispatch. The literal total-share
/// variant is also computed and reported as `accuracy_total_share`.
struct MetricValues {
  double response_s = 0.0;
  /// Response-time distribution tail, from an HDR-style log-bucketed
  /// histogram over the slice (<1% relative error). Mean response hides
  /// the deadline-bound worst case; the paper's 60 s client timeout makes
  /// the tail the interesting part.
  double response_p50_s = 0.0;
  double response_p95_s = 0.0;
  double response_p99_s = 0.0;
  double throughput_qps = 0.0;
  double qtime_s = 0.0;
  double norm_qtime_s = 0.0;  // QTime / #requests (paper Table 1 column)
  double utilization = 0.0;
  double accuracy = 0.0;
  double accuracy_total_share = 0.0;
  std::uint64_t requests = 0;
  double request_share = 0.0;  // "% of Req" table column
};

/// One brokering request + job, accumulated by the harness.
struct RequestSample {
  /// When the query was issued, seconds from window start (lets the
  /// resilience bench bucket availability/accuracy over time).
  double issued_s = 0.0;
  bool handled = false;
  double response_s = 0.0;

  bool dispatched = false;  // some queries end without a runnable site
  double accuracy = 0.0;
  double accuracy_total_share = 0.0;

  bool started = false;
  double qtime_s = 0.0;

  // Execution overlap with the measurement window, in CPU-seconds.
  double cpu_seconds_in_window = 0.0;
};

/// Splits the population the way the paper's Tables 1-2 do.
enum class Slice : std::uint8_t { kHandled = 0, kNotHandled, kAll };

class MetricsAccumulator {
 public:
  MetricsAccumulator(double window_s, std::int64_t total_cpus);

  void add(const RequestSample& sample);

  [[nodiscard]] MetricValues compute(Slice slice) const;

  [[nodiscard]] std::uint64_t total_requests() const {
    return std::uint64_t(samples_.size());
  }

 private:
  double window_s_;
  std::int64_t total_cpus_;
  std::vector<RequestSample> samples_;
};

/// Jain's fairness index over allocations x_i (optionally normalized by
/// entitlements): (sum x)^2 / (n * sum x^2). 1.0 = perfectly fair,
/// 1/n = one consumer takes everything. Empty input yields 1.0.
double jain_index(const std::vector<double>& allocations);

/// Fairness of delivered CPU time across a set of consumers with equal
/// entitlements (the paper's Section 4.1 question: are CPU resources
/// allocated fairly across VOs, and across groups within a VO?).
struct FairnessReport {
  double jain = 1.0;
  double min_share = 0.0;  // smallest consumer's fraction of the total
  double max_share = 0.0;
  std::size_t consumers = 0;
};

FairnessReport fairness(const std::vector<double>& delivered);

/// Fault-tolerance counters aggregated across a scenario run (decision
/// points + client fleet + transport), surfaced through the DiPerF report
/// by the resilience bench.
struct ResilienceCounters {
  // Client fleet.
  std::uint64_t failovers = 0;          // retries on another decision point
  std::uint64_t breaker_trips = 0;      // circuit-breaker open transitions
  std::uint64_t all_dps_down_fallbacks = 0;

  // Decision points.
  std::uint64_t dp_restarts = 0;
  std::uint64_t resync_records = 0;     // records re-learned via catch-up
  std::uint64_t catchups_served = 0;
  std::uint64_t gap_resyncs = 0;        // catch-ups from flooding-round gaps

  // Transport (SimTransport drop accounting by cause).
  std::uint64_t drops_loss = 0;
  std::uint64_t drops_partition = 0;
  std::uint64_t drops_unknown_destination = 0;

  [[nodiscard]] std::uint64_t drops_total() const {
    return drops_loss + drops_partition + drops_unknown_destination;
  }
};

/// Overload-control counters aggregated across a scenario run (container
/// admission + client retry layer), surfaced through the DiPerF report by
/// the overload-shedding bench and the chaos harness.
struct OverloadCounters {
  // Containers (decision-point servers).
  std::uint64_t submitted = 0;        // requests reaching admission
  std::uint64_t shed_queue_full = 0;  // typed rejections: queue at limit
  std::uint64_t shed_deadline = 0;    // typed rejections: deadline doomed
  std::uint64_t lifo_pickups = 0;     // query pickups served newest-first
  std::uint64_t aborted = 0;          // queued/in-flight work lost to crashes

  // Client fleet (adaptive retry).
  std::uint64_t overload_nacks = 0;        // typed NACKs received
  std::uint64_t retry_after_honored = 0;   // delays stretched to the hint
  std::uint64_t retries_budget_denied = 0; // retries suppressed, bucket empty
  std::uint64_t p2c_decisions = 0;         // power-of-two-choices routings

  [[nodiscard]] std::uint64_t shed_total() const {
    return shed_queue_full + shed_deadline;
  }
};

/// Dynamic-membership counters aggregated across a scenario run (decision-
/// point failure detectors + join/leave protocol + client-side routing),
/// surfaced through the DiPerF report by the resilience bench and the
/// churn soak.
struct MembershipCounters {
  // Failure detectors (summed over every decision point's table).
  std::uint64_t suspicions = 0;       // alive -> suspect verdicts
  std::uint64_t deaths_declared = 0;  // -> dead (detector or gossip)
  std::uint64_t refutations = 0;      // suspect/dead -> alive resurrections
  std::uint64_t joins_observed = 0;   // new members learned
  std::uint64_t leaves_observed = 0;  // graceful departures learned

  // Join/leave protocol.
  std::uint64_t joins_started = 0;        // join() bootstraps initiated
  std::uint64_t joins_completed = 0;      // joiners that reached serving
  std::uint64_t join_snapshot_retries = 0;  // failed transfers, seed rotated
  std::uint64_t join_snapshot_records = 0;  // records bootstrapped (no replay)
  std::uint64_t snapshots_served = 0;     // bootstrap snapshots handed out
  std::uint64_t drain_nacks = 0;          // query refusals while not serving

  // Client fleet (membership-aware routing).
  std::uint64_t client_updates_applied = 0;  // epoch-gated updates folded in
  std::uint64_t client_dps_added = 0;        // joiners added as targets
  std::uint64_t client_dps_quarantined = 0;  // dead/left points quarantined
  std::uint64_t client_drain_redirects = 0;  // draining NACKs redirected
};

/// Partition-tolerance counters aggregated across a scenario run (digest
/// piggyback + delta anti-entropy at every decision point, staleness-
/// guarded admission, client rerouting, and the transport/wire corruption
/// accounting), surfaced by the partition-divergence bench and the
/// partition soak. All zero with partition tolerance off.
struct PartitionCounters {
  // Split-brain detection and delta anti-entropy (decision points).
  std::uint64_t digest_mismatches = 0;     // exchange digests that disagreed
  std::uint64_t delta_pulls_sent = 0;      // targeted pulls issued
  std::uint64_t delta_pulls_served = 0;    // targeted pulls answered
  std::uint64_t delta_records_applied = 0; // records learned via pulls
  std::uint64_t delta_conflicts = 0;       // (origin, seq) twins resolved
  std::uint64_t double_commits = 0;        // split-brain double admissions
  std::uint64_t delta_converged = 0;       // pulls that fully reconciled

  // Staleness-guarded admission.
  std::uint64_t degraded_refusals = 0;  // queries NACKed: quorum stale
  std::uint64_t degraded_replies = 0;   // replies carrying a degraded hint

  // Client fleet.
  std::uint64_t client_degraded_redirects = 0;  // degraded NACKs rerouted
  std::uint64_t client_degraded_hints = 0;      // degraded hints absorbed

  // Transport / wire (corruption injection + checksum verification).
  std::uint64_t packets_corrupted = 0;    // bit flips injected in flight
  std::uint64_t frames_bad_checksum = 0;  // frames dropped by CRC mismatch
};

/// Economic-brokering counters aggregated across a scenario run (credit
/// banks at every decision point + market-placement clients), surfaced
/// through the DiPerF report by the economy bench and the chaos harness.
/// All zero with the economy off. Credit amounts are CPU-seconds.
struct EconomyCounters {
  // Credit banks (karma allocator, summed over decision points).
  std::uint64_t epochs_settled = 0;
  double credits_initial = 0.0;       // endowments at bank creation/reset
  double credits_earned = 0.0;        // transferred to under-share VOs
  double credits_spent = 0.0;         // surrendered by over-share VOs
  double credits_expired_pool = 0.0;  // spent but unabsorbed (no deficit)
  double credits_expired_cap = 0.0;   // clipped by the balance cap
  std::uint64_t credit_denials = 0;     // queries refused: allowance spent
  std::uint64_t grace_admissions = 0;   // over-allowance admits, idle grid

  // Market placement (decision points).
  std::uint64_t priced_replies = 0;     // replies carrying price quotes
  std::uint64_t priced_selections = 0;  // selection reports carrying a bid

  // Client fleet (market placement).
  std::uint64_t priced_dispatches = 0;  // dispatches won by a price offer
  std::uint64_t budget_rejections = 0;  // cheapest offer still over budget
  std::uint64_t market_fallbacks = 0;   // no usable offer, fell back to p2c
};

/// Durability counters aggregated across a scenario run (simulated disks,
/// write-ahead logs, checkpoint/replay recovery, and the exactly-once
/// dispatch dedup window), surfaced by the recovery bench and the chaos
/// harness. All zero with durability off.
struct DurabilityCounters {
  // Device (summed over every decision point's SimDisk).
  std::uint64_t wal_appends = 0;          // frames written
  std::uint64_t wal_bytes = 0;            // framed bytes written
  std::uint64_t fsyncs = 0;               // durability barriers
  std::uint64_t checkpoints_written = 0;  // checkpoint images replaced
  std::uint64_t log_truncations = 0;      // WAL resets after a checkpoint
  std::uint64_t torn_tails = 0;           // injected torn-write faults
  std::uint64_t bit_flips = 0;            // injected bit-rot faults

  // Recovery (checkpoint restore + WAL replay at restart).
  std::uint64_t recoveries = 0;            // durable restarts replayed
  std::uint64_t replay_frames = 0;         // WAL frames scanned
  std::uint64_t replay_records = 0;        // dispatch records restored
  std::uint64_t replay_dedup_entries = 0;  // dedup entries restored
  std::uint64_t replay_truncations = 0;    // scans stopped at a torn tail
  std::uint64_t checkpoint_fallbacks = 0;  // corrupt images discarded
  std::uint64_t replay_mismatches = 0;     // I11 violations: committed-but-lost

  // Exactly-once dispatch.
  std::uint64_t dedup_hits = 0;             // retries answered from the window
  std::uint64_t duplicate_dispatches = 0;   // I12 violations: one id, 2+ commits
  std::uint64_t client_report_retries = 0;  // report re-sends attempted
  std::uint64_t client_dedup_replies = 0;   // acks carrying the original decision
};

/// Dissemination-overlay counters aggregated across a scenario run (the
/// per-round push sets each decision point's strategy selected, the relay
/// depth observed on hop trailers, TTL relay suppressions, and structure
/// repairs under churn), surfaced through the DiPerF report by the
/// overlay ablation benches and the chaos overlay soak. Under the default
/// full mesh only `exchanges_sent` / `rounds` / `fanout_total` move.
struct OverlayCounters {
  std::uint64_t exchanges_sent = 0;      // actual per-strategy sends
  std::uint64_t rounds = 0;              // exchange rounds that pushed
  std::uint64_t fanout_total = 0;        // sum of per-round push-set sizes
  std::uint64_t max_hops = 0;            // deepest relay depth observed
  std::uint64_t relays_suppressed = 0;   // fresh records stopped by the TTL
  std::uint64_t rebuilds = 0;            // tree/super-peer structure repairs
  std::uint64_t grave_probes = 0;        // frames copied to believed-dead peers
  std::uint64_t bytes_sent = 0;          // exchange body bytes put on the wire

  [[nodiscard]] double mean_fanout() const {
    return rounds > 0 ? double(fanout_total) / double(rounds) : 0.0;
  }
  /// Transmitted exchange bytes per round — counts every copy a strategy
  /// actually sends (the wire-stats encode counter sees a mesh broadcast
  /// as one encode), so sparse-vs-mesh cost comparisons are honest.
  [[nodiscard]] double bytes_per_round() const {
    return rounds > 0 ? double(bytes_sent) / double(rounds) : 0.0;
  }
};

/// Wire-traffic counters by message category (queries vs state exchange vs
/// control), snapshotted from net::wire::wire_stats() over a run and
/// surfaced through the DiPerF report. `encodes` counts serializations —
/// with single-encode fan-out this is per-message, not per-recipient — and
/// `bytes` is the total frame bytes produced by those encodes.
struct WireCounters {
  std::uint64_t query_encodes = 0;
  std::uint64_t query_bytes = 0;
  std::uint64_t exchange_encodes = 0;
  std::uint64_t exchange_bytes = 0;
  std::uint64_t control_encodes = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t other_encodes = 0;
  std::uint64_t other_bytes = 0;

  [[nodiscard]] std::uint64_t total_encodes() const {
    return query_encodes + exchange_encodes + control_encodes + other_encodes;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return query_bytes + exchange_bytes + control_bytes + other_bytes;
  }
};

/// CPU-seconds a job consumed inside the window [0, window_s], given the
/// job's start/completion times in seconds (completion may exceed the
/// window or be unset/-1 for still-running jobs).
double cpu_seconds_in_window(double started_s, double completed_s, int cpus,
                             double window_s);

}  // namespace digruber::metrics
