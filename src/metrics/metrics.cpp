#include "digruber/metrics/metrics.hpp"

#include <algorithm>

namespace digruber::metrics {

MetricsAccumulator::MetricsAccumulator(double window_s, std::int64_t total_cpus)
    : window_s_(window_s), total_cpus_(total_cpus) {}

void MetricsAccumulator::add(const RequestSample& sample) {
  samples_.push_back(sample);
}

MetricValues MetricsAccumulator::compute(Slice slice) const {
  MetricValues out;
  double response_sum = 0.0;
  trace::LogHistogram response_hist;
  double qtime_sum = 0.0;
  std::uint64_t started = 0;
  double accuracy_sum = 0.0;
  double share_sum = 0.0;
  std::uint64_t dispatched = 0;
  double cpu_seconds = 0.0;

  for (const RequestSample& s : samples_) {
    const bool in_slice = slice == Slice::kAll ||
                          (slice == Slice::kHandled && s.handled) ||
                          (slice == Slice::kNotHandled && !s.handled);
    if (!in_slice) continue;
    ++out.requests;
    response_sum += s.response_s;
    response_hist.record(std::int64_t(s.response_s * 1e6));  // µs resolution
    if (s.dispatched) {
      ++dispatched;
      accuracy_sum += s.accuracy;
      share_sum += s.accuracy_total_share;
    }
    if (s.started) {
      ++started;
      qtime_sum += s.qtime_s;
    }
    cpu_seconds += s.cpu_seconds_in_window;
  }

  if (out.requests == 0) return out;
  out.request_share = double(out.requests) / double(std::max<std::size_t>(1, samples_.size()));
  out.response_s = response_sum / double(out.requests);
  out.response_p50_s = double(response_hist.p50()) * 1e-6;
  out.response_p95_s = double(response_hist.p95()) * 1e-6;
  out.response_p99_s = double(response_hist.p99()) * 1e-6;
  out.throughput_qps = window_s_ > 0 ? double(out.requests) / window_s_ : 0.0;
  out.qtime_s = started ? qtime_sum / double(started) : 0.0;
  out.norm_qtime_s = out.qtime_s / double(out.requests);
  out.accuracy = dispatched ? accuracy_sum / double(dispatched) : 0.0;
  out.accuracy_total_share = dispatched ? share_sum / double(dispatched) : 0.0;
  out.utilization = (window_s_ > 0 && total_cpus_ > 0)
                        ? cpu_seconds / (window_s_ * double(total_cpus_))
                        : 0.0;
  return out;
}

double jain_index(const std::vector<double>& allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (double(allocations.size()) * sum_sq);
}

FairnessReport fairness(const std::vector<double>& delivered) {
  FairnessReport report;
  report.consumers = delivered.size();
  report.jain = jain_index(delivered);
  double total = 0.0;
  for (const double x : delivered) total += x;
  if (total > 0.0 && !delivered.empty()) {
    double lo = delivered[0], hi = delivered[0];
    for (const double x : delivered) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    report.min_share = lo / total;
    report.max_share = hi / total;
  }
  return report;
}

double cpu_seconds_in_window(double started_s, double completed_s, int cpus,
                             double window_s) {
  if (started_s < 0 || started_s >= window_s) return 0.0;
  const double end = completed_s < 0 ? window_s : std::min(completed_s, window_s);
  if (end <= started_s) return 0.0;
  return (end - started_s) * double(cpus);
}

}  // namespace digruber::metrics
