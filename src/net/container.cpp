#include "digruber/net/container.hpp"

#include <cassert>
#include <utility>

namespace digruber::net {

ContainerProfile ContainerProfile::gt3() {
  ContainerProfile p;
  p.name = "GT3.2";
  p.workers = 2;
  p.queue_limit = 4096;
  p.base_overhead = sim::Duration::millis(25);
  p.auth_cost = sim::Duration::millis(180);
  p.parse_cost_per_kb = sim::Duration::millis(18);
  p.serialize_cost_per_kb = sim::Duration::millis(18);
  p.speed = 1.0;
  return p;
}

ContainerProfile ContainerProfile::gt4() {
  // The GT 3.9.4 prerelease the paper used is functionality-equivalent to
  // GT4 but roughly half the speed of GT3.2 on the same hardware.
  ContainerProfile p = gt3();
  p.name = "GT4(3.9.4)";
  p.auth_cost = sim::Duration::millis(380);
  p.parse_cost_per_kb = sim::Duration::millis(36);
  p.serialize_cost_per_kb = sim::Duration::millis(36);
  return p;
}

ContainerProfile ContainerProfile::gt4_c() {
  ContainerProfile p = gt3();
  p.name = "GT4-C";
  p.base_overhead = sim::Duration::millis(8);
  p.auth_cost = sim::Duration::millis(45);
  p.parse_cost_per_kb = sim::Duration::millis(3);
  p.serialize_cost_per_kb = sim::Duration::millis(3);
  return p;
}

ServiceContainer::ServiceContainer(sim::Simulation& sim, ContainerProfile profile)
    : sim_(sim), profile_(std::move(profile)) {
  assert(profile_.workers > 0);
}

sim::Duration ServiceContainer::service_time(std::size_t request_bytes,
                                             std::size_t reply_bytes,
                                             sim::Duration handler_cost) const {
  const double req_kb = double(request_bytes) / 1024.0;
  const double rep_kb = double(reply_bytes) / 1024.0;
  const sim::Duration raw = profile_.base_overhead + profile_.auth_cost +
                            profile_.parse_cost_per_kb * req_kb +
                            profile_.serialize_cost_per_kb * rep_kb + handler_cost;
  return raw * (1.0 / profile_.speed);
}

bool ServiceContainer::submit(std::size_t request_bytes, Handler run, Completion done) {
  Request request{sim_.now(), request_bytes, std::move(run), std::move(done)};
  if (busy_ < profile_.workers) {
    start(std::move(request));
    return true;
  }
  if (queue_.size() >= profile_.queue_limit) {
    ++refused_;
    return false;
  }
  queue_.push_back(std::move(request));
  return true;
}

void ServiceContainer::start(Request request) {
  ++busy_;
  Served served = request.run();
  const sim::Duration service =
      service_time(request.bytes, served.reply.size(), served.handler_cost);
  busy_time_ = busy_time_ + service;
  const sim::Time arrived = request.arrived;
  sim_.schedule_after(
      service, [this, arrived, epoch = epoch_, done = std::move(request.done),
                reply = std::move(served.reply)]() mutable {
        if (epoch != epoch_) return;  // aborted by a crash: orphaned work
        ++completed_;
        sojourn_.add((sim_.now() - arrived).to_seconds());
        done(std::move(reply));
        finish();
      });
}

void ServiceContainer::abort_all() {
  aborted_ += queue_.size() + std::uint64_t(busy_);
  queue_.clear();
  busy_ = 0;
  ++epoch_;
}

void ServiceContainer::finish() {
  --busy_;
  if (!queue_.empty() && busy_ < profile_.workers) {
    Request next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
}

double ServiceContainer::utilization(sim::Time now) const {
  const double elapsed = now.to_seconds();
  if (elapsed <= 0) return 0.0;
  return busy_time_.to_seconds() / (elapsed * profile_.workers);
}

}  // namespace digruber::net
