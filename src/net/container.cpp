#include "digruber/net/container.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace digruber::net {

ContainerProfile ContainerProfile::gt3() {
  ContainerProfile p;
  p.name = "GT3.2";
  p.workers = 2;
  p.queue_limit = 4096;
  p.base_overhead = sim::Duration::millis(25);
  p.auth_cost = sim::Duration::millis(180);
  p.parse_cost_per_kb = sim::Duration::millis(18);
  p.serialize_cost_per_kb = sim::Duration::millis(18);
  p.speed = 1.0;
  return p;
}

ContainerProfile ContainerProfile::gt4() {
  // The GT 3.9.4 prerelease the paper used is functionality-equivalent to
  // GT4 but roughly half the speed of GT3.2 on the same hardware.
  ContainerProfile p = gt3();
  p.name = "GT4(3.9.4)";
  p.auth_cost = sim::Duration::millis(380);
  p.parse_cost_per_kb = sim::Duration::millis(36);
  p.serialize_cost_per_kb = sim::Duration::millis(36);
  return p;
}

ContainerProfile ContainerProfile::gt4_c() {
  ContainerProfile p = gt3();
  p.name = "GT4-C";
  p.base_overhead = sim::Duration::millis(8);
  p.auth_cost = sim::Duration::millis(45);
  p.parse_cost_per_kb = sim::Duration::millis(3);
  p.serialize_cost_per_kb = sim::Duration::millis(3);
  return p;
}

ServiceContainer::ServiceContainer(sim::Simulation& sim, ContainerProfile profile)
    : sim_(sim), profile_(std::move(profile)) {
  assert(profile_.workers > 0);
}

sim::Duration ServiceContainer::service_time(std::size_t request_bytes,
                                             std::size_t reply_bytes,
                                             sim::Duration handler_cost) const {
  const double req_kb = double(request_bytes) / 1024.0;
  const double rep_kb = double(reply_bytes) / 1024.0;
  const sim::Duration raw = profile_.base_overhead + profile_.auth_cost +
                            profile_.parse_cost_per_kb * req_kb +
                            profile_.serialize_cost_per_kb * rep_kb + handler_cost;
  return raw * (1.0 / profile_.speed);
}

sim::Duration ServiceContainer::est_sojourn() const {
  if (busy_ < profile_.workers) return sim::Duration::zero();
  const double ahead = double(queue_depth()) + 1.0;
  return sim::Duration::seconds(ewma_service_s_ * ahead /
                                double(profile_.workers));
}

sim::Duration ServiceContainer::retry_after_hint() const {
  const sim::Duration drain = sim::Duration::seconds(
      ewma_service_s_ * double(queue_depth() + 1) / double(profile_.workers));
  return std::clamp(drain, profile_.overload.min_retry_after,
                    profile_.overload.max_retry_after);
}

bool ServiceContainer::submit(std::size_t request_bytes, Handler run, Completion done) {
  return submit_ex(request_bytes, std::move(run), std::move(done),
                   Priority::kQuery)
      .accepted();
}

Admission ServiceContainer::submit_ex(std::size_t request_bytes, Handler run,
                                      Completion done, Priority priority,
                                      sim::Time deadline, Shed on_shed) {
  ++submitted_;
  Request request{sim_.now(), request_bytes, std::move(run), std::move(done),
                  deadline,   std::move(on_shed)};
  if (busy_ < profile_.workers) {
    start(std::move(request));
    return {};
  }
  if (!profile_.overload.enabled) {
    // Legacy model: one FIFO queue, silent refusal at the limit, priority
    // and deadline ignored.
    if (queue_.size() >= profile_.queue_limit) {
      ++refused_;
      return {AdmitResult::kQueueFull, sim::Duration::zero()};
    }
    queue_.push_back(std::move(request));
    return {};
  }

  // Overload control. Control traffic is always admitted: shedding the
  // state-exchange/anti-entropy plane behind query traffic would stop the
  // mesh from converging exactly when it is needed most.
  if (priority == Priority::kControl) {
    control_.push_back(std::move(request));
    return {};
  }
  if (queue_depth() >= profile_.queue_limit) {
    ++refused_;
    return {AdmitResult::kQueueFull, retry_after_hint()};
  }
  // Deadline-aware admission: a request whose predicted sojourn already
  // overruns its deadline is doomed — serving it would waste a worker on
  // work the client has given up on.
  if (deadline > sim::Time::zero() && sim_.now() + est_sojourn() > deadline) {
    ++shed_deadline_;
    return {AdmitResult::kDeadline, retry_after_hint()};
  }
  queue_.push_back(std::move(request));
  return {};
}

void ServiceContainer::start(Request request) {
  ++busy_;
  Served served = request.run();
  const sim::Duration service =
      service_time(request.bytes, served.reply.size(), served.handler_cost);
  busy_time_ = busy_time_ + service;
  const double alpha = profile_.overload.ewma_alpha;
  ewma_service_s_ = ewma_service_s_ > 0.0
                        ? alpha * service.to_seconds() +
                              (1.0 - alpha) * ewma_service_s_
                        : service.to_seconds();
  const sim::Time arrived = request.arrived;
  sim_.schedule_after(
      service, [this, arrived, epoch = epoch_, done = std::move(request.done),
                reply = std::move(served.reply)]() mutable {
        if (epoch != epoch_) return;  // aborted by a crash: orphaned work
        ++completed_;
        sojourn_.add((sim_.now() - arrived).to_seconds());
        done(std::move(reply));
        finish();
      });
}

void ServiceContainer::abort_all() {
  aborted_ += queue_.size() + control_.size() + std::uint64_t(busy_);
  queue_.clear();
  control_.clear();
  busy_ = 0;
  ++epoch_;
}

bool ServiceContainer::start_next_overload() {
  // Control first, FIFO: exchange and catch-up traffic keeps its ordering
  // guarantees and is never starved by the query backlog.
  if (!control_.empty()) {
    Request next = std::move(control_.front());
    control_.pop_front();
    start(std::move(next));
    return true;
  }
  const std::size_t lifo_threshold = std::size_t(
      profile_.overload.lifo_fraction * double(profile_.queue_limit));
  while (!queue_.empty()) {
    const bool lifo = queue_.size() >= std::max<std::size_t>(lifo_threshold, 1);
    Request next = lifo ? std::move(queue_.back()) : std::move(queue_.front());
    if (lifo) {
      queue_.pop_back();
    } else {
      queue_.pop_front();
    }
    // Pickup-time shed: the deadline passed while this request queued.
    // Under overload, FIFO would make the container a machine that serves
    // only expired work; LIFO + shedding keeps fresh requests inside their
    // deadline at the cost of the stale tail (which already timed out
    // client-side).
    if (next.deadline > sim::Time::zero() && sim_.now() > next.deadline) {
      ++shed_deadline_;
      if (next.on_shed) next.on_shed(retry_after_hint());
      continue;
    }
    if (lifo) ++lifo_pickups_;
    start(std::move(next));
    return true;
  }
  return false;
}

void ServiceContainer::finish() {
  --busy_;
  if (busy_ >= profile_.workers) return;
  if (profile_.overload.enabled) {
    start_next_overload();
    return;
  }
  if (!queue_.empty()) {
    Request next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
}

double ServiceContainer::utilization(sim::Time now) const {
  const double elapsed = now.to_seconds();
  if (elapsed <= 0) return 0.0;
  return busy_time_.to_seconds() / (elapsed * profile_.workers);
}

}  // namespace digruber::net
