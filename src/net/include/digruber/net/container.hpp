#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "digruber/common/stats.hpp"
#include "digruber/sim/simulation.hpp"

namespace digruber::net {

/// Queueing model of a Globus-Toolkit-style Web-service container: a small
/// worker pool behind an admission queue, with per-request CPU charges for
/// the security handshake and XML (de)serialization proportional to
/// message size. This is the smallest model that reproduces the paper's
/// Figure-1 behaviour (throughput plateau at workers/service-time, response
/// time ramping with queue depth) and the GT3-vs-GT4 ordering.
struct ContainerProfile {
  std::string name = "generic";
  int workers = 2;
  std::size_t queue_limit = 4096;
  sim::Duration base_overhead = sim::Duration::millis(20);
  sim::Duration auth_cost = sim::Duration::millis(100);
  sim::Duration parse_cost_per_kb = sim::Duration::millis(10);      // request
  sim::Duration serialize_cost_per_kb = sim::Duration::millis(10);  // reply
  double speed = 1.0;  // host speed multiplier (>1 is faster)

  /// GT3.2 Java WS container (the paper's faster implementation).
  static ContainerProfile gt3();
  /// GT4 (GT3.9.4 prerelease) container — functionally equivalent but
  /// slower, as reported in the paper's Section 4.5.
  static ContainerProfile gt4();
  /// The C-based WS core the paper's conclusions point to as future work
  /// ("DI-GRUBER performance can be improved further by porting it to a
  /// C-based Web services core, such as is supported in GT4"): the same
  /// container model with native-code security and XML handling.
  static ContainerProfile gt4_c();
};

/// Result of running a service handler: the encoded reply payload (empty
/// for one-way messages) plus the handler's own declared compute cost.
struct Served {
  std::vector<std::uint8_t> reply;
  sim::Duration handler_cost = sim::Duration::zero();
};

class ServiceContainer {
 public:
  using Handler = std::function<Served()>;
  using Completion = std::function<void(std::vector<std::uint8_t> reply)>;

  ServiceContainer(sim::Simulation& sim, ContainerProfile profile);

  /// Admit a request. Returns false when the accept queue is full (the
  /// request is refused and never runs). `run` executes when a worker
  /// picks the request up; `done` fires when its service time elapses.
  bool submit(std::size_t request_bytes, Handler run, Completion done);

  /// Crash semantics: drop every queued request and orphan in-flight work
  /// (its completion never fires and it is not counted as completed). The
  /// container keeps serving requests submitted afterwards.
  void abort_all();

  /// Service time charged for a request of the given sizes and handler cost.
  [[nodiscard]] sim::Duration service_time(std::size_t request_bytes,
                                           std::size_t reply_bytes,
                                           sim::Duration handler_cost) const;

  [[nodiscard]] const ContainerProfile& profile() const { return profile_; }
  [[nodiscard]] int busy_workers() const { return busy_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t refused() const { return refused_; }
  [[nodiscard]] std::uint64_t aborted() const { return aborted_; }
  /// Fraction of elapsed time the worker pool spent busy, up to `now`.
  [[nodiscard]] double utilization(sim::Time now) const;
  [[nodiscard]] const StreamingStats& sojourn_stats() const { return sojourn_; }

 private:
  struct Request {
    sim::Time arrived;
    std::size_t bytes;
    Handler run;
    Completion done;
  };

  void start(Request request);
  void finish();

  sim::Simulation& sim_;
  ContainerProfile profile_;
  int busy_ = 0;
  std::deque<Request> queue_;
  std::uint64_t completed_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t aborted_ = 0;
  /// Bumped by abort_all(); completion events from an older epoch are
  /// orphaned work from before a crash and must not touch state.
  std::uint64_t epoch_ = 0;
  sim::Duration busy_time_ = sim::Duration::zero();
  StreamingStats sojourn_;  // queue wait + service, seconds
};

}  // namespace digruber::net
