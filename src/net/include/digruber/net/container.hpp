#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "digruber/common/stats.hpp"
#include "digruber/net/wire/buffer.hpp"
#include "digruber/sim/simulation.hpp"

namespace digruber::net {

/// Request class for admission and drain ordering under overload. Control
/// traffic (state exchange, anti-entropy catch-up, saturation signals) keeps
/// the mesh converging and must never be shed behind query traffic.
enum class Priority : std::uint8_t { kControl = 0, kQuery = 1 };

/// Overload-control policy for a ServiceContainer. Disabled by default:
/// the container then behaves exactly like the legacy model (single FIFO
/// queue, silent refusal at queue_limit), so existing runs are
/// byte-identical. Enabled, the container becomes deadline-aware: requests
/// doomed to miss their deadline are shed at admission (and again at
/// pickup), queue-full drops become typed rejections with a retry_after
/// hint, and the query queue drains newest-first once it is deep enough
/// that FIFO order would serve only already-expired work.
struct OverloadPolicy {
  bool enabled = false;
  /// Query-queue depth, as a fraction of queue_limit, above which pickup
  /// flips to LIFO for the query class (control stays FIFO).
  double lifo_fraction = 0.5;
  /// EWMA smoothing for the per-request service-time estimate that feeds
  /// the queue-sojourn prediction.
  double ewma_alpha = 0.2;
  /// Bounds on the retry_after hint attached to typed rejections.
  sim::Duration min_retry_after = sim::Duration::millis(250);
  sim::Duration max_retry_after = sim::Duration::seconds(30);
};

/// Queueing model of a Globus-Toolkit-style Web-service container: a small
/// worker pool behind an admission queue, with per-request CPU charges for
/// the security handshake and XML (de)serialization proportional to
/// message size. This is the smallest model that reproduces the paper's
/// Figure-1 behaviour (throughput plateau at workers/service-time, response
/// time ramping with queue depth) and the GT3-vs-GT4 ordering.
struct ContainerProfile {
  std::string name = "generic";
  int workers = 2;
  std::size_t queue_limit = 4096;
  sim::Duration base_overhead = sim::Duration::millis(20);
  sim::Duration auth_cost = sim::Duration::millis(100);
  sim::Duration parse_cost_per_kb = sim::Duration::millis(10);      // request
  sim::Duration serialize_cost_per_kb = sim::Duration::millis(10);  // reply
  double speed = 1.0;  // host speed multiplier (>1 is faster)
  OverloadPolicy overload;

  /// GT3.2 Java WS container (the paper's faster implementation).
  static ContainerProfile gt3();
  /// GT4 (GT3.9.4 prerelease) container — functionally equivalent but
  /// slower, as reported in the paper's Section 4.5.
  static ContainerProfile gt4();
  /// The C-based WS core the paper's conclusions point to as future work
  /// ("DI-GRUBER performance can be improved further by porting it to a
  /// C-based Web services core, such as is supported in GT4"): the same
  /// container model with native-code security and XML handling.
  static ContainerProfile gt4_c();
};

/// Result of running a service handler: the encoded reply payload (empty
/// for one-way messages) plus the handler's own declared compute cost.
/// The reply is shared immutable storage, so parking it in the container's
/// drain queue and handing it to the completion costs refcounts, not copies.
struct Served {
  Buffer reply;
  sim::Duration handler_cost = sim::Duration::zero();
};

/// Why a request was not admitted (or was later shed from the queue).
enum class AdmitResult : std::uint8_t {
  kAccepted = 0,
  kQueueFull,  // accept queue at queue_limit
  kDeadline,   // estimated sojourn already exceeds the request's deadline
};

/// Typed admission outcome: rejected requests carry a retry_after hint
/// (estimated queue-drain time) so callers can back off intelligently
/// instead of hammering a saturated container.
struct Admission {
  AdmitResult result = AdmitResult::kAccepted;
  sim::Duration retry_after = sim::Duration::zero();
  [[nodiscard]] bool accepted() const { return result == AdmitResult::kAccepted; }
};

class ServiceContainer {
 public:
  using Handler = std::function<Served()>;
  using Completion = std::function<void(Buffer reply)>;
  /// Fires when a queued request is shed at pickup (its deadline passed
  /// while it waited); the completion never runs for a shed request.
  using Shed = std::function<void(sim::Duration retry_after)>;

  ServiceContainer(sim::Simulation& sim, ContainerProfile profile);

  /// Admit a request. Returns false when the accept queue is full (the
  /// request is refused and never runs). `run` executes when a worker
  /// picks the request up; `done` fires when its service time elapses.
  bool submit(std::size_t request_bytes, Handler run, Completion done);

  /// Deadline- and priority-aware admission (overload-control path). With
  /// the policy disabled this is exactly `submit` — priority, deadline,
  /// and the shed callback are ignored. A zero `deadline` means none.
  Admission submit_ex(std::size_t request_bytes, Handler run, Completion done,
                      Priority priority, sim::Time deadline = sim::Time::zero(),
                      Shed on_shed = nullptr);

  /// Crash semantics: drop every queued request and orphan in-flight work
  /// (its completion never fires and it is not counted as completed). The
  /// container keeps serving requests submitted afterwards.
  void abort_all();

  /// Service time charged for a request of the given sizes and handler cost.
  [[nodiscard]] sim::Duration service_time(std::size_t request_bytes,
                                           std::size_t reply_bytes,
                                           sim::Duration handler_cost) const;

  /// Predicted queue sojourn for a newly-arriving query-class request:
  /// zero while a worker is free, else the EWMA service estimate scaled by
  /// the work queued ahead of it.
  [[nodiscard]] sim::Duration est_sojourn() const;
  /// Suggested retry_after for a rejected request: the estimated time for
  /// the current backlog to drain, clamped to the policy bounds.
  [[nodiscard]] sim::Duration retry_after_hint() const;

  [[nodiscard]] const ContainerProfile& profile() const { return profile_; }
  [[nodiscard]] int busy_workers() const { return busy_; }
  [[nodiscard]] std::size_t queue_depth() const {
    return queue_.size() + control_.size();
  }
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t refused() const { return refused_; }
  [[nodiscard]] std::uint64_t aborted() const { return aborted_; }
  /// Requests shed because they could not (admission) or did not (pickup)
  /// make their deadline.
  [[nodiscard]] std::uint64_t shed_deadline() const { return shed_deadline_; }
  /// Query-class pickups served newest-first under overload.
  [[nodiscard]] std::uint64_t lifo_pickups() const { return lifo_pickups_; }
  /// Fraction of elapsed time the worker pool spent busy, up to `now`.
  [[nodiscard]] double utilization(sim::Time now) const;
  [[nodiscard]] const StreamingStats& sojourn_stats() const { return sojourn_; }

 private:
  struct Request {
    sim::Time arrived;
    std::size_t bytes;
    Handler run;
    Completion done;
    sim::Time deadline;  // zero = none
    Shed on_shed;
  };

  void start(Request request);
  void finish();
  /// Overload-mode pickup: control FIFO first, then query (LIFO when deep),
  /// shedding queued query requests whose deadline already passed.
  bool start_next_overload();

  sim::Simulation& sim_;
  ContainerProfile profile_;
  int busy_ = 0;
  std::deque<Request> queue_;    // query class (the only queue when disabled)
  std::deque<Request> control_;  // control class (overload mode only)
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t shed_deadline_ = 0;
  std::uint64_t lifo_pickups_ = 0;
  /// Bumped by abort_all(); completion events from an older epoch are
  /// orphaned work from before a crash and must not touch state.
  std::uint64_t epoch_ = 0;
  sim::Duration busy_time_ = sim::Duration::zero();
  double ewma_service_s_ = 0.0;
  StreamingStats sojourn_;  // queue wait + service, seconds
};

}  // namespace digruber::net
