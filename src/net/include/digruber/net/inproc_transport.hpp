#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "digruber/net/transport.hpp"

namespace digruber::net {

/// Real multi-threaded transport: every endpoint gets a mailbox drained by
/// its own delivery thread. Exercises the exact protocol/serialization
/// code under true concurrency (used by the integration tests); no latency
/// model — delivery is immediate but asynchronous.
class InProcTransport final : public Transport {
 public:
  InProcTransport() = default;
  ~InProcTransport() override;

  InProcTransport(const InProcTransport&) = delete;
  InProcTransport& operator=(const InProcTransport&) = delete;

  NodeId attach(Endpoint& endpoint) override;
  void detach(NodeId node) override;
  bool reattach(NodeId node, Endpoint& endpoint) override;
  void send(Packet packet) override;

  /// Packets sent to a node that was never attached (or already detached).
  /// Mirrors SimTransport::packets_dropped() so tests can assert nothing
  /// was silently lost.
  [[nodiscard]] std::uint64_t packets_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Blocks until every mailbox is empty and every delivery thread idle.
  void drain();

 private:
  struct Mailbox {
    explicit Mailbox(Endpoint& ep) : endpoint(ep) {}
    Endpoint& endpoint;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Packet> queue;
    bool closing = false;
    bool busy = false;
    std::thread worker;
  };

  static void run_mailbox(Mailbox& box);

  mutable std::mutex registry_mutex_;
  std::uint64_t next_node_ = 1;
  std::atomic<std::uint64_t> dropped_{0};
  std::unordered_map<NodeId, std::shared_ptr<Mailbox>> mailboxes_;
};

}  // namespace digruber::net
