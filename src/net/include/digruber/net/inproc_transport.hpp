#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "digruber/net/transport.hpp"

namespace digruber::net {

/// Real multi-threaded transport: every endpoint gets a mailbox drained by
/// its own delivery thread. Exercises the exact protocol/serialization
/// code under true concurrency (used by the integration tests); no latency
/// model — delivery is immediate but asynchronous.
class InProcTransport final : public Transport {
 public:
  InProcTransport() = default;
  ~InProcTransport() override;

  InProcTransport(const InProcTransport&) = delete;
  InProcTransport& operator=(const InProcTransport&) = delete;

  NodeId attach(Endpoint& endpoint) override;
  void detach(NodeId node) override;
  void send(Packet packet) override;

  /// Blocks until every mailbox is empty and every delivery thread idle.
  void drain();

 private:
  struct Mailbox {
    explicit Mailbox(Endpoint& ep) : endpoint(ep) {}
    Endpoint& endpoint;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Packet> queue;
    bool closing = false;
    bool busy = false;
    std::thread worker;
  };

  static void run_mailbox(Mailbox& box);

  mutable std::mutex registry_mutex_;
  std::uint64_t next_node_ = 1;
  std::unordered_map<NodeId, std::shared_ptr<Mailbox>> mailboxes_;
};

}  // namespace digruber::net
