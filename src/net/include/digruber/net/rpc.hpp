#pragma once

#include <array>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>

#include "digruber/common/result.hpp"
#include "digruber/net/container.hpp"
#include "digruber/net/transport.hpp"
#include "digruber/net/wire/frame.hpp"
#include "digruber/sim/simulation.hpp"

namespace digruber::net {

/// OverloadNack reason codes. kQueueFull / kDeadline come from the
/// container's admission control; kDraining is a membership-layer refusal
/// (the server exists but is joining or leaving and must not take query
/// work). kNackDegraded is a partition-tolerance refusal: the server is
/// healthy but its view of the mesh is too stale to admit query work
/// accurately — callers should reroute, NOT quarantine (the condition
/// clears as soon as connectivity heals).
inline constexpr std::uint8_t kNackQueueFull = 0;
inline constexpr std::uint8_t kNackDeadline = 1;
inline constexpr std::uint8_t kNackDraining = 2;
inline constexpr std::uint8_t kNackDegraded = 3;

/// In-process form of a typed overload rejection, carried through the
/// Result error channel as "overloaded:<retry_after_us>" (legacy reasons),
/// "overloaded:<retry_after_us>:drain" (kNackDraining), or
/// "overloaded:<retry_after_us>:degraded" (kNackDegraded). The wire form
/// is wire::OverloadNack; these helpers are the bridge.
[[nodiscard]] std::string make_overload_error(const wire::OverloadNack& nack);
/// True iff `error` is an overload rejection; extracts the retry hint.
bool parse_overload_error(const std::string& error, sim::Duration& retry_after);
/// As above, additionally extracting the reason code.
bool parse_overload_error(const std::string& error, sim::Duration& retry_after,
                          std::uint8_t& reason);

/// Why an incoming packet was rejected before reaching a handler. Split by
/// cause so a frame whose header claims more (or fewer) body bytes than the
/// packet carries is distinguishable from outright header corruption.
enum class BadFrameCause : std::uint8_t {
  kHeader = 0,       // truncated header or unsupported version
  kBodySize,         // header body_size disagrees with bytes present
  kKind,             // parseable, but not a request/one-way frame
  kUnknownMethod,    // no handler registered for the method id
  kChecksum,         // v3 frame whose CRC-32C trailer failed verification
  kCount,
};

/// RPC server: an Endpoint that routes request frames through a
/// ServiceContainer (modelling GT3/GT4 per-request costs) into registered
/// method handlers, and sends reply frames back.
class RpcServer : public Endpoint {
 public:
  /// A method receives the decoded-frame body and the caller's address and
  /// returns the encoded reply plus its compute cost.
  using Method = std::function<Served(std::span<const std::uint8_t> body, NodeId from)>;

  RpcServer(sim::Simulation& sim, Transport& transport, ContainerProfile profile);
  ~RpcServer() override;

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] ServiceContainer& container() { return container_; }
  [[nodiscard]] const ServiceContainer& container() const { return container_; }

  /// Crash semantics: detach from the network and abort queued and
  /// in-flight requests (their completions never fire). Idempotent.
  void shutdown();
  /// Come back at the same address after `shutdown`. Returns false if the
  /// address could not be re-acquired (or the server is already up).
  bool restart();
  [[nodiscard]] bool attached() const { return attached_; }

  /// `priority` classes requests for overload control: control-class
  /// methods (state exchange, catch-up) are never shed behind query
  /// traffic. Ignored while the container's overload policy is disabled.
  void register_method(std::uint16_t method, Method handler,
                       Priority priority = Priority::kQuery);

  /// Pre-admission refusal gate. When set, every request/one-way frame is
  /// offered to the gate before touching the container; returning true
  /// rejects it with the typed Overloaded NACK the gate filled in (the
  /// handler never runs and no container slot is consumed). This is how a
  /// draining or still-joining decision point refuses query traffic at
  /// the door while control frames keep flowing.
  using RefusalGate =
      std::function<bool(std::uint16_t method, wire::OverloadNack& nack)>;
  void set_refusal_gate(RefusalGate gate) { gate_ = std::move(gate); }
  [[nodiscard]] std::uint64_t requests_refused_by_gate() const {
    return gate_refused_;
  }

  /// Convenience: register a typed handler `Reply(const Request&, NodeId)`
  /// with a fixed-or-computed handler cost returned alongside the reply.
  template <class Request, class Reply>
  void register_typed(std::uint16_t method,
                      std::function<std::pair<Reply, sim::Duration>(const Request&, NodeId)> fn) {
    register_method(method, [fn = std::move(fn)](std::span<const std::uint8_t> body,
                                                 NodeId from) -> Served {
      Request request{};
      if (!wire::decode(body, request)) {
        return Served{};  // malformed: swallow; client will time out
      }
      auto [reply, cost] = fn(request, from);
      return Served{wire::encode_buffer(reply), cost};
    });
  }

  /// Emit CRC-32C (wire v3) trailers on every frame this server sends
  /// (replies, NACKs). Verification of incoming v3 frames is always on.
  void set_frame_checksums(bool enabled) { checksums_ = enabled; }

  [[nodiscard]] std::uint64_t requests_received() const { return received_; }
  [[nodiscard]] std::uint64_t requests_bad() const { return bad_; }
  /// Rejected-packet count for one cause (sums to `requests_bad`).
  [[nodiscard]] std::uint64_t requests_bad(BadFrameCause cause) const {
    return bad_by_cause_[std::size_t(cause)];
  }

  void on_packet(Packet packet) override;

 private:
  struct Registered {
    Method handler;
    Priority priority = Priority::kQuery;
  };

  void count_bad(BadFrameCause cause);

  sim::Simulation& sim_;
  Transport& transport_;
  NodeId node_;
  ServiceContainer container_;
  std::unordered_map<std::uint16_t, Registered> methods_;
  RefusalGate gate_;
  bool attached_ = true;
  bool checksums_ = false;
  std::uint64_t received_ = 0;
  std::uint64_t gate_refused_ = 0;
  std::uint64_t bad_ = 0;
  std::array<std::uint64_t, std::size_t(BadFrameCause::kCount)> bad_by_cause_{};
};

/// RPC client: issues requests with per-call timeouts; late or unknown
/// replies are discarded (the server may still have done the work — that
/// asymmetry is what produces the paper's "requests NOT handled by
/// GRUBER" population).
class RpcClient : public Endpoint {
 public:
  /// Raw replies are zero-copy slices of the reply frame's shared storage;
  /// holding one past `done` is safe and costs no copy.
  using RawResult = Result<Buffer>;

  RpcClient(sim::Simulation& sim, Transport& transport);
  /// Destruction fails every in-flight call with "client shutdown" — a
  /// `done` callback always fires exactly once, even across teardown.
  ~RpcClient() override;

  [[nodiscard]] NodeId node() const { return node_; }

  /// Crash semantics: detach and fail in-flight calls with "client
  /// shutdown". Idempotent.
  void shutdown();
  /// Re-acquire the same address after `shutdown`.
  bool restart();
  [[nodiscard]] bool attached() const { return attached_; }

  /// Per-call knobs beyond the timeout.
  struct CallOptions {
    /// Absolute sim-time deadline carried to the server for deadline-aware
    /// admission (zero = none). Attaching one upgrades the request frame to
    /// the v2 header; without it the wire format is unchanged.
    sim::Time deadline = sim::Time::zero();
  };

  /// Raw call; `done` fires exactly once with the reply body or an error
  /// ("timeout", "refused", "overloaded:<us>", or a server error string).
  void call_raw(NodeId server, std::uint16_t method,
                std::vector<std::uint8_t> body, sim::Duration timeout,
                std::function<void(RawResult)> done) {
    call_raw(server, method, std::move(body), timeout, CallOptions{},
             std::move(done));
  }
  void call_raw(NodeId server, std::uint16_t method,
                std::vector<std::uint8_t> body, sim::Duration timeout,
                CallOptions options, std::function<void(RawResult)> done);

  /// Typed call. The request is encoded directly into its frame: one sized
  /// allocation, no intermediate body vector.
  template <class Request, class Reply>
  void call(NodeId server, std::uint16_t method, const Request& request,
            sim::Duration timeout, std::function<void(Result<Reply>)> done) {
    call(server, method, request, timeout, CallOptions{}, std::move(done));
  }
  template <class Request, class Reply>
  void call(NodeId server, std::uint16_t method, const Request& request,
            sim::Duration timeout, CallOptions options,
            std::function<void(Result<Reply>)> done) {
    const std::uint64_t correlation = next_correlation_++;
    ++sent_;
    call_frame(server, correlation,
               wire::make_frame(method, wire::FrameKind::kRequest, correlation,
                                request, options.deadline.us(), checksums_),
               timeout, [done = std::move(done)](RawResult raw) {
                 if (!raw.ok()) {
                   done(Result<Reply>::failure(raw.error()));
                   return;
                 }
                 Reply reply{};
                 if (!wire::decode(raw.value(), reply)) {
                   done(Result<Reply>::failure("malformed reply"));
                   return;
                 }
                 done(std::move(reply));
               });
  }

  /// Emit CRC-32C (wire v3) trailers on every frame this client sends.
  void set_frame_checksums(bool enabled) { checksums_ = enabled; }

  /// One-way notification (no reply, no timeout).
  template <class Request>
  void notify(NodeId server, std::uint16_t method, const Request& request) {
    transport_.send(Packet{node_, server,
                           wire::make_frame(method, wire::FrameKind::kOneWay,
                                            next_correlation_++, request, 0,
                                            checksums_)});
  }

  /// One-way fan-out: the request is serialized exactly once and the same
  /// shared frame is handed to every destination (a refcount bump per peer,
  /// not a re-encode). This is the state-exchange broadcast primitive: one
  /// ExchangeMessage encode per round, regardless of mesh size.
  template <class Request>
  void notify_all(std::span<const NodeId> servers, std::uint16_t method,
                  const Request& request) {
    if (servers.empty()) return;
    const Buffer frame =
        wire::make_frame(method, wire::FrameKind::kOneWay, next_correlation_++,
                         request, 0, checksums_);
    for (const NodeId server : servers) {
      transport_.send(Packet{node_, server, frame});
    }
  }

  [[nodiscard]] std::uint64_t calls_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t calls_timed_out() const { return timed_out_; }
  /// Calls rejected by a server with a typed overload NACK.
  [[nodiscard]] std::uint64_t calls_overloaded() const { return overloaded_; }
  [[nodiscard]] std::size_t calls_in_flight() const { return pending_.size(); }
  /// Replies that arrived after their call's timeout (or for a correlation
  /// this client never issued) and were discarded.
  [[nodiscard]] std::uint64_t replies_discarded_late() const { return late_; }

  void on_packet(Packet packet) override;

 private:
  struct Pending {
    sim::EventId timeout_event;
    std::function<void(RawResult)> done;
  };

  /// Common tail of every request: register tracing/timeout bookkeeping for
  /// `correlation` and put the already-built frame on the wire.
  void call_frame(NodeId server, std::uint64_t correlation, Buffer frame,
                  sim::Duration timeout, std::function<void(RawResult)> done);

  /// Cancel timers and fail every pending call with `reason`, exactly once
  /// each. Safe against callbacks issuing new calls reentrantly.
  void fail_all_pending(const std::string& reason);

  sim::Simulation& sim_;
  Transport& transport_;
  NodeId node_;
  bool attached_ = true;
  bool checksums_ = false;
  std::uint64_t next_correlation_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t late_ = 0;
  std::uint64_t overloaded_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
};

}  // namespace digruber::net
