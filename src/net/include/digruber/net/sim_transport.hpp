#pragma once

#include <unordered_map>

#include "digruber/net/transport.hpp"
#include "digruber/net/wan.hpp"
#include "digruber/sim/simulation.hpp"

namespace digruber::net {

/// Transport running on the discrete-event kernel: each send schedules a
/// delivery event after the WAN model's one-way delay.
class SimTransport final : public Transport {
 public:
  SimTransport(sim::Simulation& sim, WanModel wan);

  NodeId attach(Endpoint& endpoint) override;
  void detach(NodeId node) override;
  void send(Packet packet) override;

  [[nodiscard]] WanModel& wan() { return wan_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

 private:
  sim::Simulation& sim_;
  WanModel wan_;
  std::uint64_t next_node_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_ = 0;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
};

}  // namespace digruber::net
