#pragma once

#include <array>
#include <unordered_map>

#include "digruber/net/transport.hpp"
#include "digruber/net/wan.hpp"
#include "digruber/sim/simulation.hpp"

namespace digruber::net {

/// Why the simulated network dropped a packet (fault-injection accounting).
enum class DropCause : std::uint8_t {
  kLoss = 0,            // WAN loss rate (global or per-link degradation)
  kPartition,           // src and dst on different reachability islands
  kUnknownDestination,  // dst never attached or detached (e.g. crashed host)
  kCount,
};

/// Transport running on the discrete-event kernel: each send schedules a
/// delivery event after the WAN model's one-way delay. Supports injected
/// network partitions (reachability islands) and per-link degradation via
/// the WAN model's link overrides.
class SimTransport final : public Transport {
 public:
  SimTransport(sim::Simulation& sim, WanModel wan);

  NodeId attach(Endpoint& endpoint) override;
  void detach(NodeId node) override;
  bool reattach(NodeId node, Endpoint& endpoint) override;
  void send(Packet packet) override;

  /// Partition control: every node starts on island 0; packets cross
  /// islands only after `heal_partition`. Assignments are sticky until
  /// healed or reassigned.
  void set_island(NodeId node, std::uint32_t island);
  void heal_partition();
  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const;

  [[nodiscard]] WanModel& wan() { return wan_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t packets_dropped(DropCause cause) const {
    return dropped_by_cause_[std::size_t(cause)];
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

 private:
  [[nodiscard]] std::uint32_t island_of(NodeId node) const;
  void count_drop(DropCause cause);

  sim::Simulation& sim_;
  WanModel wan_;
  std::uint64_t next_node_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::array<std::uint64_t, std::size_t(DropCause::kCount)> dropped_by_cause_{};
  std::uint64_t bytes_ = 0;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_map<NodeId, std::uint32_t> islands_;
};

}  // namespace digruber::net
