#pragma once

#include <array>
#include <set>
#include <unordered_map>
#include <utility>

#include "digruber/common/rng.hpp"
#include "digruber/net/transport.hpp"
#include "digruber/net/wan.hpp"
#include "digruber/sim/simulation.hpp"

namespace digruber::net {

/// Why the simulated network dropped a packet (fault-injection accounting).
enum class DropCause : std::uint8_t {
  kLoss = 0,            // WAN loss rate (global or per-link degradation)
  kPartition,           // src and dst on different reachability islands
  kUnknownDestination,  // dst never attached or detached (e.g. crashed host)
  kCount,
};

/// Transport running on the discrete-event kernel: each send schedules a
/// delivery event after the WAN model's one-way delay. Supports injected
/// network partitions (reachability islands) and per-link degradation via
/// the WAN model's link overrides.
class SimTransport final : public Transport {
 public:
  SimTransport(sim::Simulation& sim, WanModel wan);

  NodeId attach(Endpoint& endpoint) override;
  void detach(NodeId node) override;
  bool reattach(NodeId node, Endpoint& endpoint) override;
  void send(Packet packet) override;

  /// Partition control: every node starts on island 0; packets cross
  /// islands only after `heal_partition`. Assignments are sticky until
  /// healed or reassigned.
  void set_island(NodeId node, std::uint32_t island);
  void heal_partition();
  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const;

  /// Asymmetric partition control: drop packets flowing `from` -> `to`
  /// only (the reverse direction still works). Composes with island
  /// partitions; `heal_partition` clears directed blocks too, so one heal
  /// event restores full connectivity.
  void block_direction(NodeId from, NodeId to);
  void unblock_direction(NodeId from, NodeId to);
  [[nodiscard]] bool direction_blocked(NodeId from, NodeId to) const;

  /// In-flight corruption: with probability `rate` per sent packet, flip
  /// one random bit of the payload (on a private copy — frames are shared
  /// between fan-out destinations). Uses its own RNG stream so runs with
  /// rate 0 draw nothing and keep the exact pre-fault randomness sequence.
  void set_corruption(double rate);
  [[nodiscard]] std::uint64_t packets_corrupted() const { return corrupted_; }

  [[nodiscard]] WanModel& wan() { return wan_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t packets_dropped(DropCause cause) const {
    return dropped_by_cause_[std::size_t(cause)];
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

 private:
  [[nodiscard]] std::uint32_t island_of(NodeId node) const;
  void count_drop(DropCause cause);

  sim::Simulation& sim_;
  WanModel wan_;
  std::uint64_t next_node_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::array<std::uint64_t, std::size_t(DropCause::kCount)> dropped_by_cause_{};
  std::uint64_t bytes_ = 0;
  std::uint64_t corrupted_ = 0;
  double corruption_rate_ = 0.0;
  Rng corruption_rng_{0x5ca1ab1edeadbeefULL};
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_map<NodeId, std::uint32_t> islands_;
  /// Ordered set: deterministic no matter the insertion pattern.
  std::set<std::pair<std::uint64_t, std::uint64_t>> blocked_;
};

}  // namespace digruber::net
