#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>

#include "digruber/common/result.hpp"
#include "digruber/net/transport.hpp"
#include "digruber/net/wire/frame.hpp"

namespace digruber::net {

/// Thread-safe request/reply endpoints for InProcTransport. These carry the
/// exact same frames as the simulated RPC stack, so the integration tests
/// exercise identical serialization and dispatch code under real threads.
class SyncService : public Endpoint {
 public:
  using Method =
      std::function<Buffer(std::span<const std::uint8_t> body, NodeId from)>;

  explicit SyncService(Transport& transport);
  ~SyncService() override;

  [[nodiscard]] NodeId node() const { return node_; }
  void register_method(std::uint16_t method, Method handler);

  template <class Request, class Reply>
  void register_typed(std::uint16_t method,
                      std::function<Reply(const Request&, NodeId)> fn) {
    register_method(method, [fn = std::move(fn)](std::span<const std::uint8_t> body,
                                                 NodeId from) {
      Request request{};
      if (!wire::decode(body, request)) return Buffer{};
      return wire::encode_buffer(fn(request, from));
    });
  }

  void on_packet(Packet packet) override;

 private:
  Transport& transport_;
  NodeId node_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint16_t, Method> methods_;
};

class SyncClient : public Endpoint {
 public:
  /// Reply bodies are zero-copy slices of the reply frame, handed across
  /// the delivery thread via the Buffer's atomic refcount.
  using RawResult = Result<Buffer>;

  explicit SyncClient(Transport& transport);
  ~SyncClient() override;

  [[nodiscard]] NodeId node() const { return node_; }

  /// Blocking call with a wall-clock timeout.
  RawResult call_raw(NodeId server, std::uint16_t method,
                     std::vector<std::uint8_t> body,
                     std::chrono::milliseconds timeout);

  template <class Request, class Reply>
  Result<Reply> call(NodeId server, std::uint16_t method, const Request& request,
                     std::chrono::milliseconds timeout) {
    RawResult raw = call_raw(server, method, wire::encode(request), timeout);
    if (!raw.ok()) return Result<Reply>::failure(raw.error());
    Reply reply{};
    if (!wire::decode(raw.value(), reply)) {
      return Result<Reply>::failure("malformed reply");
    }
    return reply;
  }

  void on_packet(Packet packet) override;

 private:
  struct Waiter {
    Buffer reply;
    std::string error;
    bool done = false;
    bool failed = false;
  };

  Transport& transport_;
  NodeId node_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t next_correlation_ = 1;
  std::unordered_map<std::uint64_t, Waiter*> waiters_;
};

}  // namespace digruber::net
