#pragma once

#include <cstdint>

#include "digruber/common/ids.hpp"
#include "digruber/net/wire/buffer.hpp"

namespace digruber::net {

/// A datagram between two endpoints. `payload` is a complete wire frame in
/// shared immutable storage: transports copy the Buffer (a refcount bump),
/// never the bytes, so one encoded frame can sit in several delivery
/// queues at once. Receivers may keep slices of the payload past
/// `on_packet` returning — the storage lives as long as any slice does.
struct Packet {
  NodeId src;
  NodeId dst;
  Buffer payload;
};

/// Receives packets addressed to a registered node.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_packet(Packet packet) = 0;
};

/// Message-passing abstraction. Two implementations: SimTransport runs on
/// the discrete-event kernel with a WAN latency model; InProcTransport
/// delivers across real threads for concurrency integration tests.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Attach `endpoint` and return its address. The endpoint must outlive
  /// the transport (or be detached first).
  virtual NodeId attach(Endpoint& endpoint) = 0;
  virtual void detach(NodeId node) = 0;

  /// Re-register an endpoint at a previously assigned address — a host
  /// coming back after a crash keeps its network identity. Returns false
  /// if the address was never issued or is currently in use.
  virtual bool reattach(NodeId node, Endpoint& endpoint) = 0;

  /// Fire-and-forget send. Packets to unknown nodes are dropped (as on a
  /// real network); delivery order between distinct pairs is not
  /// guaranteed, per-pair order follows the latency model.
  virtual void send(Packet packet) = 0;
};

}  // namespace digruber::net
