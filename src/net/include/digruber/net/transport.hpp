#pragma once

#include <cstdint>
#include <vector>

#include "digruber/common/ids.hpp"

namespace digruber::net {

/// A datagram between two endpoints. `payload` is a complete wire frame.
struct Packet {
  NodeId src;
  NodeId dst;
  std::vector<std::uint8_t> payload;
};

/// Receives packets addressed to a registered node.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_packet(Packet packet) = 0;
};

/// Message-passing abstraction. Two implementations: SimTransport runs on
/// the discrete-event kernel with a WAN latency model; InProcTransport
/// delivers across real threads for concurrency integration tests.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Attach `endpoint` and return its address. The endpoint must outlive
  /// the transport (or be detached first).
  virtual NodeId attach(Endpoint& endpoint) = 0;
  virtual void detach(NodeId node) = 0;

  /// Re-register an endpoint at a previously assigned address — a host
  /// coming back after a crash keeps its network identity. Returns false
  /// if the address was never issued or is currently in use.
  virtual bool reattach(NodeId node, Endpoint& endpoint) = 0;

  /// Fire-and-forget send. Packets to unknown nodes are dropped (as on a
  /// real network); delivery order between distinct pairs is not
  /// guaranteed, per-pair order follows the latency model.
  virtual void send(Packet packet) = 0;
};

}  // namespace digruber::net
