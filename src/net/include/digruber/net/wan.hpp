#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "digruber/common/ids.hpp"
#include "digruber/common/rng.hpp"
#include "digruber/sim/time.hpp"

namespace digruber::net {

/// Wide-area latency/bandwidth model standing in for PlanetLab. Each node
/// gets a deterministic pseudo-geographic position; one-way base latency
/// grows with distance, per-message jitter is lognormal, and transmission
/// time is message-size over the (10 Mb/s-class) access link. The
/// `envelope_factor` inflates logical message bytes to SOAP-scale wire
/// bytes, preserving the serialization cost structure of GT3/GT4.
struct WanParams {
  double min_latency_ms = 5.0;    // same-metro floor
  double max_latency_ms = 160.0;  // antipodal ceiling
  double jitter_cv = 0.15;        // lognormal coefficient of variation
  double bandwidth_bps = 10e6;    // PlanetLab-era access links
  double loss_rate = 0.0;         // per-message drop probability
  double envelope_factor = 4.0;   // XML/SOAP inflation of payload bytes
};

/// Fault-injection override for one (undirected) node pair: propagation
/// latency scaled by `latency_factor`, per-message loss raised by
/// `extra_loss` on top of the global loss rate.
struct LinkOverride {
  double latency_factor = 1.0;
  double extra_loss = 0.0;
};

class WanModel {
 public:
  explicit WanModel(WanParams params = {}, std::uint64_t seed = 42);

  /// One-way delay for a message of `payload_bytes` logical bytes.
  sim::Duration delay(NodeId from, NodeId to, std::size_t payload_bytes);

  /// True if the message should be dropped (global loss rate only).
  bool drop();
  /// True if a message on this link should be dropped (global loss rate
  /// plus any per-link degradation).
  bool drop(NodeId from, NodeId to);

  /// Deterministic (jitter-free) base propagation delay between two nodes,
  /// including any per-link latency degradation in force.
  sim::Duration base_latency(NodeId from, NodeId to) const;

  /// Per-link degradation (symmetric). Setting an override replaces any
  /// previous one for the pair.
  void set_link_override(NodeId a, NodeId b, LinkOverride override_);
  void clear_link_override(NodeId a, NodeId b);
  void clear_link_overrides();
  [[nodiscard]] const LinkOverride* link_override(NodeId a, NodeId b) const;
  [[nodiscard]] std::size_t link_overrides() const { return overrides_.size(); }

  [[nodiscard]] const WanParams& params() const { return params_; }

 private:
  struct Position {
    double x, y;
  };
  using LinkKey = std::pair<std::uint64_t, std::uint64_t>;
  static LinkKey link_key(NodeId a, NodeId b);
  Position position_of(NodeId node) const;

  WanParams params_;
  mutable Rng rng_;
  /// Ordered map: iteration order (unused today) stays deterministic.
  std::map<LinkKey, LinkOverride> overrides_;
};

}  // namespace digruber::net
