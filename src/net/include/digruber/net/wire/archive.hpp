#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace digruber::net::wire {

/// Binary serialization archives with a symmetric `operator&` so message
/// structs declare their layout once:
///
///   struct Ping {
///     std::uint64_t nonce{};
///     template <class Archive> void serialize(Archive& ar) { ar & nonce; }
///   };
///
/// Encoding: little-endian fixed-width integers, IEEE-754 doubles, u32
/// length prefixes for strings/containers. The Reader never throws on
/// malformed input — it sets a fail flag and yields zero values, so
/// truncated or hostile packets are handled by checking `ok()`.

class Writer {
 public:
  static constexpr bool kIsWriter = true;

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  template <class T>
  Writer& operator&(const T& v) {
    write(v);
    return *this;
  }

 private:
  template <class T>
  void write_integral(T v) {
    using U = std::make_unsigned_t<T>;
    auto u = static_cast<U>(v);
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(u & 0xff));
      u = static_cast<U>(u >> 8);
    }
  }

  template <class T>
  void write(const T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      buf_.push_back(v ? 1 : 0);
    } else if constexpr (std::is_enum_v<T>) {
      write_integral(static_cast<std::underlying_type_t<T>>(v));
    } else if constexpr (std::is_integral_v<T>) {
      write_integral(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::uint64_t bits;
      const double d = static_cast<double>(v);
      std::memcpy(&bits, &d, sizeof bits);
      write_integral(bits);
    } else if constexpr (std::is_same_v<T, std::string>) {
      write_integral(static_cast<std::uint32_t>(v.size()));
      raw(v.data(), v.size());
    } else {
      serialize_dispatch(v);
    }
  }

  template <class T>
  void write(const std::vector<T>& v) {
    write_integral(static_cast<std::uint32_t>(v.size()));
    for (const auto& e : v) write(e);
  }

  template <class K, class V>
  void write(const std::map<K, V>& m) {
    write_integral(static_cast<std::uint32_t>(m.size()));
    for (const auto& [k, v] : m) {
      write(k);
      write(v);
    }
  }

  template <class T>
  void write(const std::optional<T>& o) {
    write(o.has_value());
    if (o) write(*o);
  }

  template <class A, class B>
  void write(const std::pair<A, B>& p) {
    write(p.first);
    write(p.second);
  }

  template <class T>
  void serialize_dispatch(const T& v) {
    // serialize() members are logically const for a Writer.
    const_cast<T&>(v).serialize(*this);
  }

  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  static constexpr bool kIsWriter = false;

  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  /// True when every byte was consumed and no underrun occurred.
  [[nodiscard]] bool complete() const { return ok_ && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  template <class T>
  Reader& operator&(T& v) {
    read(v);
    return *this;
  }

 private:
  bool take(void* out, std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      std::memset(out, 0, n);
      return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  template <class T>
  void read_integral(T& v) {
    using U = std::make_unsigned_t<T>;
    std::uint8_t raw[sizeof(U)];
    if (!take(raw, sizeof raw)) {
      v = T{};
      return;
    }
    U u = 0;
    for (std::size_t i = sizeof(U); i-- > 0;) u = static_cast<U>((u << 8) | raw[i]);
    v = static_cast<T>(u);
  }

  template <class T>
  void read(T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      std::uint8_t b = 0;
      take(&b, 1);
      v = b != 0;
    } else if constexpr (std::is_enum_v<T>) {
      std::underlying_type_t<T> u{};
      read_integral(u);
      v = static_cast<T>(u);
    } else if constexpr (std::is_integral_v<T>) {
      read_integral(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::uint64_t bits = 0;
      read_integral(bits);
      double d;
      std::memcpy(&d, &bits, sizeof d);
      v = static_cast<T>(d);
    } else if constexpr (std::is_same_v<T, std::string>) {
      std::uint32_t n = 0;
      read_integral(n);
      if (!ok_ || remaining() < n) {
        ok_ = false;
        v.clear();
        return;
      }
      v.assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
      pos_ += n;
    } else {
      v.serialize(*this);
    }
  }

  template <class T>
  void read(std::vector<T>& v) {
    std::uint32_t n = 0;
    read_integral(n);
    v.clear();
    // Guard against hostile lengths: each element consumes >= 1 byte.
    if (!ok_ || n > remaining()) {
      if (n != 0) ok_ = false;
      return;
    }
    v.reserve(n);
    for (std::uint32_t i = 0; i < n && ok_; ++i) {
      v.emplace_back();
      read(v.back());
    }
  }

  template <class K, class V>
  void read(std::map<K, V>& m) {
    std::uint32_t n = 0;
    read_integral(n);
    m.clear();
    if (!ok_ || n > remaining()) {
      if (n != 0) ok_ = false;
      return;
    }
    for (std::uint32_t i = 0; i < n && ok_; ++i) {
      K k{};
      V v{};
      read(k);
      read(v);
      m.emplace(std::move(k), std::move(v));
    }
  }

  template <class T>
  void read(std::optional<T>& o) {
    bool has = false;
    read(has);
    if (has) {
      o.emplace();
      read(*o);
    } else {
      o.reset();
    }
  }

  template <class A, class B>
  void read(std::pair<A, B>& p) {
    read(p.first);
    read(p.second);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Encode any serializable struct to bytes.
template <class T>
std::vector<std::uint8_t> encode(const T& msg) {
  Writer w;
  w & msg;
  return w.take();
}

/// Decode bytes into `out`; false if the buffer is malformed or has
/// trailing garbage.
template <class T>
bool decode(std::span<const std::uint8_t> bytes, T& out) {
  Reader r(bytes);
  r & out;
  return r.complete();
}

}  // namespace digruber::net::wire
