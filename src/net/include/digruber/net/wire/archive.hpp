#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "digruber/net/wire/buffer.hpp"

namespace digruber::net::wire {

/// Binary serialization archives with a symmetric `operator&` so message
/// structs declare their layout once:
///
///   struct Ping {
///     std::uint64_t nonce{};
///     template <class Archive> void serialize(Archive& ar) { ar & nonce; }
///   };
///
/// Encoding: little-endian fixed-width integers, IEEE-754 doubles, u32
/// length prefixes for strings/containers. The Reader never throws on
/// malformed input — it sets a fail flag and yields zero values, so
/// truncated or hostile packets are handled by checking `ok()`.
///
/// Three archives share the format:
///   Writer — appends bytes, bulk-encoding integers via memcpy on
///            little-endian hosts (byte-swap fallback elsewhere);
///   Sizer  — computes the exact encoded size without touching memory, so
///            encode() can reserve once and never reallocate;
///   Reader — decodes from a non-owning std::span view; it never copies
///            the input and never reads past it.

namespace detail {

template <class U>
constexpr U to_little_endian(U u) {
  static_assert(std::is_unsigned_v<U>);
  if constexpr (std::endian::native == std::endian::little) {
    return u;
  } else {
    U swapped = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      swapped = static_cast<U>((swapped << 8) | (u & 0xff));
      u = static_cast<U>(u >> 8);
    }
    return swapped;
  }
}

}  // namespace detail

class Writer {
 public:
  static constexpr bool kIsWriter = true;

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {buf_.data(), pos_};
  }
  [[nodiscard]] std::vector<std::uint8_t> take() {
    buf_.resize(pos_);
    pos_ = 0;
    return std::move(buf_);
  }
  /// Move the encoded bytes into shared, immutable storage (one allocation
  /// for the Buffer control block; the byte array itself is not copied).
  [[nodiscard]] net::Buffer take_buffer() { return net::Buffer(take()); }
  [[nodiscard]] std::size_t size() const { return pos_; }

  /// Reserve room for `n` more bytes. encode() sizes messages exactly with
  /// a Sizer pass, so every subsequent write is a branch-predicted bounds
  /// check plus an unchecked memcpy at the cursor — no per-field insert()
  /// bookkeeping and no reallocation on the hot path.
  void reserve(std::size_t n) { buf_.resize(pos_ + n); }

  void raw(const void* data, std::size_t n) {
    if (n == 0) return;  // empty spans may carry a null data pointer
    ensure(n);
    std::memcpy(buf_.data() + pos_, data, n);
    pos_ += n;
  }

  template <class T>
  Writer& operator&(const T& v) {
    write(v);
    return *this;
  }

 private:
  /// Grow the backing store when a write was not covered by reserve().
  /// Geometric so unsized use stays amortized-O(1).
  void ensure(std::size_t n) {
    if (pos_ + n > buf_.size()) {
      buf_.resize(std::max(buf_.size() * 2, pos_ + n));
    }
  }

  template <class T>
  void write_integral(T v) {
    using U = std::make_unsigned_t<T>;
    const U u = detail::to_little_endian(static_cast<U>(v));
    // Bulk encode: one memcpy at the cursor instead of sizeof(U)
    // push_backs.
    ensure(sizeof(U));
    std::memcpy(buf_.data() + pos_, &u, sizeof(U));
    pos_ += sizeof(U);
  }

  template <class T>
  void write(const T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      ensure(1);
      buf_[pos_++] = v ? 1 : 0;
    } else if constexpr (std::is_enum_v<T>) {
      write_integral(static_cast<std::underlying_type_t<T>>(v));
    } else if constexpr (std::is_integral_v<T>) {
      write_integral(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::uint64_t bits;
      const double d = static_cast<double>(v);
      std::memcpy(&bits, &d, sizeof bits);
      write_integral(bits);
    } else if constexpr (std::is_same_v<T, std::string>) {
      write_integral(static_cast<std::uint32_t>(v.size()));
      raw(v.data(), v.size());
    } else {
      serialize_dispatch(v);
    }
  }

  template <class T>
  void write(const std::vector<T>& v) {
    write_integral(static_cast<std::uint32_t>(v.size()));
    if constexpr (std::is_integral_v<T> && sizeof(T) == 1 &&
                  !std::is_same_v<T, bool>) {
      raw(v.data(), v.size());  // byte vectors encode as one block
    } else {
      for (const auto& e : v) write(e);
    }
  }

  template <class K, class V>
  void write(const std::map<K, V>& m) {
    write_integral(static_cast<std::uint32_t>(m.size()));
    for (const auto& [k, v] : m) {
      write(k);
      write(v);
    }
  }

  template <class T>
  void write(const std::optional<T>& o) {
    write(o.has_value());
    if (o) write(*o);
  }

  template <class A, class B>
  void write(const std::pair<A, B>& p) {
    write(p.first);
    write(p.second);
  }

  template <class T>
  void serialize_dispatch(const T& v) {
    // serialize() members are logically const for a Writer.
    const_cast<T&>(v).serialize(*this);
  }

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Computes the exact encoded size of a message without writing a byte.
/// Mirrors Writer's layout rules; `kIsWriter` is true so version-gated
/// serialize() branches take the writing path.
class Sizer {
 public:
  static constexpr bool kIsWriter = true;

  [[nodiscard]] std::size_t size() const { return size_; }

  void raw(const void* /*data*/, std::size_t n) { size_ += n; }

  template <class T>
  Sizer& operator&(const T& v) {
    measure(v);
    return *this;
  }

 private:
  template <class T>
  void measure(const T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      size_ += 1;
    } else if constexpr (std::is_enum_v<T>) {
      size_ += sizeof(std::underlying_type_t<T>);
    } else if constexpr (std::is_integral_v<T>) {
      size_ += sizeof(std::make_unsigned_t<T>);
    } else if constexpr (std::is_floating_point_v<T>) {
      size_ += sizeof(std::uint64_t);
    } else if constexpr (std::is_same_v<T, std::string>) {
      size_ += sizeof(std::uint32_t) + v.size();
    } else {
      const_cast<T&>(v).serialize(*this);
    }
  }

  template <class T>
  void measure(const std::vector<T>& v) {
    size_ += sizeof(std::uint32_t);
    if constexpr (std::is_integral_v<T> && sizeof(T) == 1 &&
                  !std::is_same_v<T, bool>) {
      size_ += v.size();
    } else {
      for (const auto& e : v) measure(e);
    }
  }

  template <class K, class V>
  void measure(const std::map<K, V>& m) {
    size_ += sizeof(std::uint32_t);
    for (const auto& [k, v] : m) {
      measure(k);
      measure(v);
    }
  }

  template <class T>
  void measure(const std::optional<T>& o) {
    size_ += 1;
    if (o) measure(*o);
  }

  template <class A, class B>
  void measure(const std::pair<A, B>& p) {
    measure(p.first);
    measure(p.second);
  }

  std::size_t size_ = 0;
};

/// Exact encoded size of any serializable value.
template <class T>
std::size_t encoded_size(const T& msg) {
  Sizer s;
  s & msg;
  return s.size();
}

class Reader {
 public:
  static constexpr bool kIsWriter = false;

  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  /// True when every byte was consumed and no underrun occurred.
  [[nodiscard]] bool complete() const { return ok_ && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  template <class T>
  Reader& operator&(T& v) {
    read(v);
    return *this;
  }

 private:
  bool take(void* out, std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      std::memset(out, 0, n);
      return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  template <class T>
  void read_integral(T& v) {
    using U = std::make_unsigned_t<T>;
    // Bulk decode: one bounds check + one memcpy, byte-swapped only on
    // big-endian hosts.
    U u = 0;
    if (!take(&u, sizeof(U))) {
      v = T{};
      return;
    }
    v = static_cast<T>(detail::to_little_endian(u));
  }

  template <class T>
  void read(T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      std::uint8_t b = 0;
      take(&b, 1);
      v = b != 0;
    } else if constexpr (std::is_enum_v<T>) {
      std::underlying_type_t<T> u{};
      read_integral(u);
      v = static_cast<T>(u);
    } else if constexpr (std::is_integral_v<T>) {
      read_integral(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::uint64_t bits = 0;
      read_integral(bits);
      double d;
      std::memcpy(&d, &bits, sizeof d);
      v = static_cast<T>(d);
    } else if constexpr (std::is_same_v<T, std::string>) {
      std::uint32_t n = 0;
      read_integral(n);
      if (!ok_ || remaining() < n) {
        ok_ = false;
        v.clear();
        return;
      }
      v.assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
      pos_ += n;
    } else {
      v.serialize(*this);
    }
  }

  template <class T>
  void read(std::vector<T>& v) {
    std::uint32_t n = 0;
    read_integral(n);
    v.clear();
    // Guard against hostile lengths: each element consumes >= 1 byte.
    if (!ok_ || n > remaining()) {
      if (n != 0) ok_ = false;
      return;
    }
    if constexpr (std::is_integral_v<T> && sizeof(T) == 1 &&
                  !std::is_same_v<T, bool>) {
      v.assign(reinterpret_cast<const T*>(data_.data() + pos_),
               reinterpret_cast<const T*>(data_.data() + pos_) + n);
      pos_ += n;
    } else {
      v.reserve(n);
      for (std::uint32_t i = 0; i < n && ok_; ++i) {
        v.emplace_back();
        read(v.back());
      }
    }
  }

  template <class K, class V>
  void read(std::map<K, V>& m) {
    std::uint32_t n = 0;
    read_integral(n);
    m.clear();
    if (!ok_ || n > remaining()) {
      if (n != 0) ok_ = false;
      return;
    }
    for (std::uint32_t i = 0; i < n && ok_; ++i) {
      K k{};
      V v{};
      read(k);
      read(v);
      m.emplace(std::move(k), std::move(v));
    }
  }

  template <class T>
  void read(std::optional<T>& o) {
    bool has = false;
    read(has);
    if (has) {
      o.emplace();
      read(*o);
    } else {
      o.reset();
    }
  }

  template <class A, class B>
  void read(std::pair<A, B>& p) {
    read(p.first);
    read(p.second);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Encode any serializable struct to bytes. A Sizer pass first computes
/// the exact length, so the output vector is allocated once.
template <class T>
std::vector<std::uint8_t> encode(const T& msg) {
  Writer w;
  w.reserve(encoded_size(msg));
  w & msg;
  return w.take();
}

/// Encode into shared, immutable storage (one allocation total).
template <class T>
net::Buffer encode_buffer(const T& msg) {
  Writer w;
  w.reserve(encoded_size(msg));
  w & msg;
  return w.take_buffer();
}

/// Decode bytes into `out`; false if the buffer is malformed or has
/// trailing garbage.
template <class T>
bool decode(std::span<const std::uint8_t> bytes, T& out) {
  Reader r(bytes);
  r & out;
  return r.complete();
}

}  // namespace digruber::net::wire
