#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

namespace digruber::net {

/// Ref-counted, immutable, contiguous byte buffer — the unit of ownership
/// on the message path. A `Buffer` is a view into shared storage: copying
/// or slicing one bumps a reference count instead of copying bytes, so a
/// frame encoded once can be handed to N transport queues, parked in a
/// container admission queue, and delivered on another thread without a
/// single payload copy. The storage is never mutated after construction,
/// which is what makes the sharing safe (see docs/protocol.md, "Buffer
/// ownership and lifetime").
///
/// Cross-thread rules: the reference count is atomic (std::shared_ptr
/// control block), so Buffers may be copied into and destroyed on other
/// threads freely — InProcTransport relies on this to keep payloads alive
/// past a detach of the receiving endpoint.
class Buffer {
 public:
  Buffer() = default;

  /// Adopt a byte vector (no copy of the bytes; one control-block + vector
  /// allocation, counted in `allocations()`). Implicit on purpose: it lets
  /// legacy `std::vector` producers feed the Buffer-typed message path.
  Buffer(std::vector<std::uint8_t> bytes);
  Buffer(std::initializer_list<std::uint8_t> bytes);

  /// Copy `bytes` into fresh shared storage.
  static Buffer copy(std::span<const std::uint8_t> bytes);

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> span() const {
    return {data_, size_};
  }
  operator std::span<const std::uint8_t>() const { return span(); }

  [[nodiscard]] std::vector<std::uint8_t> to_vector() const {
    return {data_, data_ + size_};
  }

  /// A sub-view sharing this buffer's storage (no copy). `offset + n` is
  /// clamped to the buffer's extent.
  [[nodiscard]] Buffer slice(std::size_t offset, std::size_t n) const;

  /// Number of Buffers (including this one) sharing the storage; 0 for an
  /// empty, storage-free buffer. For tests asserting share-vs-copy.
  [[nodiscard]] long owners() const {
    return storage_ ? storage_.use_count() : 0;
  }

  /// Byte-wise equality (contents, not identity).
  friend bool operator==(const Buffer& a, const Buffer& b) {
    if (a.size_ != b.size_) return false;
    return a.size_ == 0 || std::equal(a.data_, a.data_ + a.size_, b.data_);
  }

  /// Process-wide count of storage allocations since start. The zero-copy
  /// invariants are asserted as deltas of this counter: a fan-out to N
  /// peers must cost one allocation, not N.
  static std::uint64_t allocations();

 private:
  using Storage = std::shared_ptr<const std::vector<std::uint8_t>>;

  Buffer(Storage storage, const std::uint8_t* data, std::size_t size)
      : storage_(std::move(storage)), data_(data), size_(size) {}

  Storage storage_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace digruber::net
