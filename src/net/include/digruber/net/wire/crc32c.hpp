#pragma once

#include <cstdint>
#include <span>

namespace digruber::net::wire {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) over `data`,
/// continuing from `seed` (pass a previous return value to checksum a
/// message in pieces). Software table implementation — the simulator runs
/// single-threaded over small frames, so hardware CRC instructions are not
/// worth a platform gate here.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data,
                                   std::uint32_t seed = 0);

}  // namespace digruber::net::wire
