#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "digruber/net/wire/archive.hpp"

namespace digruber::net::wire {

/// On-the-wire frame header. Every packet payload starts with one; the
/// body that follows is the encoded message struct for (service, method).
struct FrameHeader {
  static constexpr std::uint16_t kCurrentVersion = 1;

  std::uint16_t version = kCurrentVersion;
  std::uint16_t method = 0;       // service-defined method id
  std::uint8_t kind = 0;          // FrameKind
  std::uint64_t correlation = 0;  // matches replies to requests
  std::uint32_t body_size = 0;    // bytes of body following the header

  template <class Archive>
  void serialize(Archive& ar) {
    ar & version & method & kind & correlation & body_size;
  }
};

enum class FrameKind : std::uint8_t {
  kRequest = 0,
  kReply = 1,
  kError = 2,   // body is an encoded error string
  kOneWay = 3,  // no reply expected
};

/// Serialized size of a FrameHeader (fixed layout).
std::size_t frame_header_size();

/// Build a complete frame: header + encoded body.
template <class Body>
std::vector<std::uint8_t> make_frame(std::uint16_t method, FrameKind kind,
                                     std::uint64_t correlation, const Body& body) {
  Writer w;
  std::vector<std::uint8_t> encoded_body = encode(body);
  FrameHeader header;
  header.method = method;
  header.kind = static_cast<std::uint8_t>(kind);
  header.correlation = correlation;
  header.body_size = static_cast<std::uint32_t>(encoded_body.size());
  w & header;
  w.raw(encoded_body.data(), encoded_body.size());
  return w.take();
}

/// Parse a frame header; on success returns the body span via `body`.
bool parse_frame(std::span<const std::uint8_t> frame, FrameHeader& header,
                 std::span<const std::uint8_t>& body);

}  // namespace digruber::net::wire
