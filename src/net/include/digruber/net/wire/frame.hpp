#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "digruber/net/wire/archive.hpp"
#include "digruber/net/wire/buffer.hpp"
#include "digruber/net/wire/stats.hpp"

namespace digruber::net::wire {

/// On-the-wire frame header. Every packet payload starts with one; the
/// body that follows is the encoded message struct for (service, method).
///
/// Version 2 appends a request deadline (absolute simulation time in
/// microseconds; 0 = none) used by deadline-aware admission at overloaded
/// containers. Version 1 frames carry no deadline field and stay
/// byte-identical to the pre-overload-control wire format; senders emit
/// v2 only when they actually attach a deadline.
///
/// Version 3 frames additionally carry a 4-byte CRC-32C of the body as a
/// trailer AFTER the body bytes (the header layout itself is unchanged, so
/// this header still self-describes: body_size counts body bytes only,
/// excluding the trailer). Senders emit v3 only when checksums are
/// explicitly enabled; receivers verify the trailer and drop mismatches
/// as FrameParse::kBadChecksum.
struct FrameHeader {
  static constexpr std::uint16_t kCurrentVersion = 1;
  static constexpr std::uint16_t kDeadlineVersion = 2;
  static constexpr std::uint16_t kChecksumVersion = 3;
  static constexpr std::uint16_t kMaxVersion = 3;
  /// Bytes of the v3 CRC-32C trailer following the body.
  static constexpr std::size_t kChecksumTrailerSize = 4;

  std::uint16_t version = kCurrentVersion;
  std::uint16_t method = 0;       // service-defined method id
  std::uint8_t kind = 0;          // FrameKind
  std::uint64_t correlation = 0;  // matches replies to requests
  std::uint32_t body_size = 0;    // bytes of body following the header
  std::int64_t deadline_us = 0;   // v2 only: absolute sim-time deadline

  template <class Archive>
  void serialize(Archive& ar) {
    ar & version & method & kind & correlation & body_size;
    if (version >= kDeadlineVersion) ar & deadline_us;
  }
};

enum class FrameKind : std::uint8_t {
  kRequest = 0,
  kReply = 1,
  kError = 2,       // body is an encoded error string
  kOneWay = 3,      // no reply expected
  kOverloaded = 4,  // body is an encoded OverloadNack
};

/// Typed overload rejection: the body of a kOverloaded frame. Sent instead
/// of silently dropping when an admission queue sheds a request, so the
/// caller can distinguish server overload from network loss and back off
/// by the server's own drain estimate.
struct OverloadNack {
  /// Queue-full (0) or deadline-doomed (1) — see net::AdmitResult.
  std::uint8_t reason = 0;
  /// Server's estimate of when retrying could succeed, relative, in us.
  std::int64_t retry_after_us = 0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & reason & retry_after_us;
  }
};

/// Serialized size of a FrameHeader (fixed layout).
std::size_t frame_header_size();

/// Append the v3 CRC-32C trailer for the last `body_size` bytes already in
/// `w` (the encoded body). Defined in wire_frame.cpp.
void append_checksum_trailer(Writer& w, std::size_t body_size);

/// Build a complete frame into a single shared buffer: the body is sized
/// with a Sizer pass and encoded directly behind the header — exactly one
/// allocation and zero intermediate copies. `deadline_us > 0` upgrades the
/// header to v2; otherwise the v1 layout is emitted byte-for-byte.
/// `checksum` upgrades to v3 and appends a CRC-32C trailer over the body.
template <class Body>
net::Buffer make_frame(std::uint16_t method, FrameKind kind,
                       std::uint64_t correlation, const Body& body,
                       std::int64_t deadline_us = 0, bool checksum = false) {
  FrameHeader header;
  header.method = method;
  header.kind = static_cast<std::uint8_t>(kind);
  header.correlation = correlation;
  header.body_size = static_cast<std::uint32_t>(encoded_size(body));
  if (deadline_us > 0) {
    header.version = FrameHeader::kDeadlineVersion;
    header.deadline_us = deadline_us;
  }
  if (checksum) header.version = FrameHeader::kChecksumVersion;
  Writer w;
  w.reserve(encoded_size(header) + header.body_size +
            (checksum ? FrameHeader::kChecksumTrailerSize : 0));
  w & header;
  w & body;
  if (checksum) append_checksum_trailer(w, header.body_size);
  net::Buffer frame = w.take_buffer();
  wire_stats().record_encode(categorize_method(method), frame.size());
  return frame;
}

/// Build a frame around an already-encoded body (the reply path: handlers
/// hand back encoded bytes, the server splices them behind a fresh header).
net::Buffer frame_from_body(std::uint16_t method, FrameKind kind,
                            std::uint64_t correlation,
                            std::span<const std::uint8_t> body,
                            std::int64_t deadline_us = 0,
                            bool checksum = false);

/// Outcome of frame parsing, split so endpoints can count a header whose
/// declared body_size disagrees with the bytes actually present —
/// distinctly from outright header corruption — instead of silently
/// decoding a short body.
enum class FrameParse : std::uint8_t {
  kOk = 0,
  kBadHeader,          // truncated header or unsupported version
  kBodySizeMismatch,   // header parsed, but body_size != remaining bytes
  kBadChecksum,        // v3 frame whose CRC-32C trailer fails verification
};

FrameParse parse_frame_ex(std::span<const std::uint8_t> frame,
                          FrameHeader& header,
                          std::span<const std::uint8_t>& body);

/// Parse a frame header; on success returns the body span via `body`.
bool parse_frame(std::span<const std::uint8_t> frame, FrameHeader& header,
                 std::span<const std::uint8_t>& body);

/// Buffer-native parse: `body` is a zero-copy slice sharing the frame's
/// storage, so it can outlive the Packet that carried it (admission
/// queues, cross-thread delivery).
FrameParse parse_frame_ex(const net::Buffer& frame, FrameHeader& header,
                          net::Buffer& body);
bool parse_frame(const net::Buffer& frame, FrameHeader& header,
                 net::Buffer& body);

}  // namespace digruber::net::wire
