#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace digruber::net::wire {

/// Traffic class of a wire frame, for the bytes-on-wire / encode-count
/// telemetry. The mapping from method ids to categories belongs to the
/// protocol layer (see digruber::method_category), installed via
/// set_method_categorizer; the wire layer only counts.
enum class MsgCategory : std::uint8_t {
  kQuery = 0,         // brokering queries and their replies
  kStateExchange,     // decision-point state-exchange broadcast
  kControl,           // anti-entropy catch-up, saturation signals
  kOther,
};
inline constexpr std::size_t kMsgCategoryCount = 4;

/// Process-wide frame-encode telemetry: how many times each traffic class
/// was serialized and how many bytes it put on the wire. The single-encode
/// fan-out invariant is asserted against `encodes(kStateExchange)`: one
/// serialization per exchange round, regardless of peer count. Counters
/// are relaxed atomics — safe under InProcTransport's real threads, free
/// of ordering effects on the simulated path.
class WireStats {
 public:
  void record_encode(MsgCategory category, std::size_t frame_bytes) {
    const auto i = static_cast<std::size_t>(category);
    encodes_[i].fetch_add(1, std::memory_order_relaxed);
    bytes_[i].fetch_add(frame_bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t encodes(MsgCategory category) const {
    return encodes_[static_cast<std::size_t>(category)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes(MsgCategory category) const {
    return bytes_[static_cast<std::size_t>(category)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_encodes() const {
    std::uint64_t sum = 0;
    for (const auto& c : encodes_) sum += c.load(std::memory_order_relaxed);
    return sum;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& c : bytes_) sum += c.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (auto& c : encodes_) c.store(0, std::memory_order_relaxed);
    for (auto& c : bytes_) c.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kMsgCategoryCount> encodes_{};
  std::array<std::atomic<std::uint64_t>, kMsgCategoryCount> bytes_{};
};

/// The process-wide instance frame builders record into.
WireStats& wire_stats();

/// Protocol hook: maps a method id to its traffic class. Unset (nullptr)
/// classifies everything as kOther.
using MethodCategorizer = MsgCategory (*)(std::uint16_t method);
void set_method_categorizer(MethodCategorizer fn);
[[nodiscard]] MsgCategory categorize_method(std::uint16_t method);

}  // namespace digruber::net::wire
