#include "digruber/net/inproc_transport.hpp"

#include <utility>
#include <vector>

namespace digruber::net {

InProcTransport::~InProcTransport() {
  std::vector<std::shared_ptr<Mailbox>> boxes;
  {
    const std::scoped_lock lock(registry_mutex_);
    for (auto& [node, box] : mailboxes_) boxes.push_back(box);
    mailboxes_.clear();
  }
  for (auto& box : boxes) {
    {
      const std::scoped_lock lock(box->mutex);
      box->closing = true;
    }
    box->cv.notify_all();
    if (box->worker.joinable()) box->worker.join();
  }
}

NodeId InProcTransport::attach(Endpoint& endpoint) {
  const std::scoped_lock lock(registry_mutex_);
  const NodeId node(next_node_++);
  auto box = std::make_shared<Mailbox>(endpoint);
  box->worker = std::thread([raw = box.get()] { run_mailbox(*raw); });
  mailboxes_.emplace(node, std::move(box));
  return node;
}

void InProcTransport::detach(NodeId node) {
  std::shared_ptr<Mailbox> box;
  {
    const std::scoped_lock lock(registry_mutex_);
    const auto it = mailboxes_.find(node);
    if (it == mailboxes_.end()) return;
    box = it->second;
    mailboxes_.erase(it);
  }
  {
    const std::scoped_lock lock(box->mutex);
    box->closing = true;
  }
  box->cv.notify_all();
  if (box->worker.joinable()) box->worker.join();
}

bool InProcTransport::reattach(NodeId node, Endpoint& endpoint) {
  const std::scoped_lock lock(registry_mutex_);
  if (!node.valid() || node.value() >= next_node_) return false;  // never issued
  if (mailboxes_.count(node)) return false;                       // in use
  auto box = std::make_shared<Mailbox>(endpoint);
  box->worker = std::thread([raw = box.get()] { run_mailbox(*raw); });
  mailboxes_.emplace(node, std::move(box));
  return true;
}

void InProcTransport::send(Packet packet) {
  std::shared_ptr<Mailbox> box;
  {
    const std::scoped_lock lock(registry_mutex_);
    const auto it = mailboxes_.find(packet.dst);
    if (it == mailboxes_.end()) {
      // Unknown destination: drop, but never silently — crashed-host tests
      // and leak hunts read this counter.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    box = it->second;
  }
  {
    const std::scoped_lock lock(box->mutex);
    if (box->closing) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    box->queue.push_back(std::move(packet));
  }
  box->cv.notify_one();
}

void InProcTransport::run_mailbox(Mailbox& box) {
  for (;;) {
    Packet packet;
    {
      std::unique_lock lock(box.mutex);
      box.cv.wait(lock, [&] { return box.closing || !box.queue.empty(); });
      if (box.queue.empty()) return;  // closing and drained
      packet = std::move(box.queue.front());
      box.queue.pop_front();
      box.busy = true;
    }
    box.endpoint.on_packet(std::move(packet));
    {
      const std::scoped_lock lock(box.mutex);
      box.busy = false;
    }
    box.cv.notify_all();
  }
}

void InProcTransport::drain() {
  // Quiescence: repeat until a full pass observes every mailbox empty and
  // idle (a delivery can enqueue onto another mailbox, hence the loop).
  for (;;) {
    bool all_idle = true;
    std::vector<std::shared_ptr<Mailbox>> boxes;
    {
      const std::scoped_lock lock(registry_mutex_);
      for (auto& [node, box] : mailboxes_) boxes.push_back(box);
    }
    for (auto& box : boxes) {
      std::unique_lock lock(box->mutex);
      if (!box->queue.empty() || box->busy) {
        all_idle = false;
        box->cv.wait(lock, [&] { return box->queue.empty() && !box->busy; });
      }
    }
    if (all_idle) return;
  }
}

}  // namespace digruber::net
