#include "digruber/net/rpc.hpp"

#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

#include "digruber/common/log.hpp"
#include "digruber/trace/trace.hpp"

namespace digruber::net {

namespace {
constexpr std::string_view kOverloadPrefix = "overloaded:";
constexpr std::string_view kDrainSuffix = ":drain";
constexpr std::string_view kDegradedSuffix = ":degraded";

bool has_suffix(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
}  // namespace

std::string make_overload_error(const wire::OverloadNack& nack) {
  std::string error =
      std::string(kOverloadPrefix) + std::to_string(nack.retry_after_us);
  // The retry_after number is parsed with strtoll, which stops at the
  // first non-digit — appending a reason tag is backward-compatible with
  // callers using the two-argument parse.
  if (nack.reason == kNackDraining) error += kDrainSuffix;
  if (nack.reason == kNackDegraded) error += kDegradedSuffix;
  return error;
}

bool parse_overload_error(const std::string& error, sim::Duration& retry_after) {
  std::uint8_t reason = 0;
  return parse_overload_error(error, retry_after, reason);
}

bool parse_overload_error(const std::string& error, sim::Duration& retry_after,
                          std::uint8_t& reason) {
  if (error.size() <= kOverloadPrefix.size() ||
      error.compare(0, kOverloadPrefix.size(), kOverloadPrefix) != 0) {
    return false;
  }
  const std::int64_t us = std::strtoll(error.c_str() + kOverloadPrefix.size(),
                                       nullptr, 10);
  retry_after = sim::Duration::micros(us < 0 ? 0 : us);
  if (has_suffix(error, kDrainSuffix)) {
    reason = kNackDraining;
  } else if (has_suffix(error, kDegradedSuffix)) {
    reason = kNackDegraded;
  } else {
    reason = kNackQueueFull;
  }
  return true;
}

RpcServer::RpcServer(sim::Simulation& sim, Transport& transport,
                     ContainerProfile profile)
    : sim_(sim),
      transport_(transport),
      node_(transport.attach(*this)),
      container_(sim, std::move(profile)) {}

RpcServer::~RpcServer() {
  if (attached_) transport_.detach(node_);
}

void RpcServer::shutdown() {
  if (!attached_) return;
  transport_.detach(node_);
  attached_ = false;
  container_.abort_all();
}

bool RpcServer::restart() {
  if (attached_) return false;
  if (!transport_.reattach(node_, *this)) return false;
  attached_ = true;
  return true;
}

void RpcServer::register_method(std::uint16_t method, Method handler,
                                Priority priority) {
  methods_[method] = Registered{std::move(handler), priority};
}

void RpcServer::count_bad(BadFrameCause cause) {
  ++bad_;
  ++bad_by_cause_[std::size_t(cause)];
}

void RpcServer::on_packet(Packet packet) {
  wire::FrameHeader header;
  Buffer body;  // zero-copy slice of the frame: safe to queue past the packet
  switch (wire::parse_frame_ex(packet.payload, header, body)) {
    case wire::FrameParse::kOk:
      break;
    case wire::FrameParse::kBadHeader:
      count_bad(BadFrameCause::kHeader);
      return;
    case wire::FrameParse::kBodySizeMismatch:
      // The header parsed but promised a different body than the packet
      // carries. Decoding the bytes anyway would hand handlers a silently
      // truncated (or padded) message; refuse before dispatch instead.
      count_bad(BadFrameCause::kBodySize);
      return;
    case wire::FrameParse::kBadChecksum:
      // A v3 frame arrived damaged in flight (injected bit flips, or a
      // hostile sender). Drop before dispatch; the caller times out and
      // retries on an undamaged path.
      count_bad(BadFrameCause::kChecksum);
      return;
  }
  const auto kind = static_cast<wire::FrameKind>(header.kind);
  if (kind != wire::FrameKind::kRequest && kind != wire::FrameKind::kOneWay) {
    count_bad(BadFrameCause::kKind);
    return;
  }
  const auto it = methods_.find(header.method);
  if (it == methods_.end()) {
    count_bad(BadFrameCause::kUnknownMethod);
    log::debug("rpc", "no handler for method ", header.method);
    return;
  }
  ++received_;

  const NodeId from = packet.src;
  const std::uint64_t correlation = header.correlation;
  const std::uint16_t method = header.method;
  const bool wants_reply = kind == wire::FrameKind::kRequest;

  if (gate_) {
    wire::OverloadNack nack;
    nack.reason = kNackDraining;
    if (gate_(method, nack)) {
      ++gate_refused_;
      if (auto* t = trace::current()) {
        t->instant(trace::Category::kRpc, node_.value(), "rpc.drain_nack",
                   t->take_rpc(from.value(), correlation),
                   std::int64_t(method), nack.retry_after_us);
      }
      if (wants_reply) {
        transport_.send(
            Packet{node_, from,
                   wire::make_frame(method, wire::FrameKind::kOverloaded,
                                    correlation, nack, 0, checksums_)});
      }
      return;
    }
  }

  // Serve span: request arrival -> reply sent, joining the caller's trace
  // via the propagation side channel (zero wire-format impact). Covers the
  // container's queue wait plus modelled service time — the sojourn.
  trace::SpanContext serve_ctx;
  if (auto* t = trace::current()) {
    const trace::SpanContext caller = t->take_rpc(from.value(), correlation);
    serve_ctx = t->begin(trace::Category::kRpc, node_.value(), "rpc.serve",
                         caller, std::int64_t(method),
                         std::int64_t(packet.payload.size()));
  }

  // Deadline-aware admission input: only v2 frames carry one.
  sim::Time deadline = sim::Time::zero();
  if (header.version >= wire::FrameHeader::kDeadlineVersion &&
      header.deadline_us > 0) {
    deadline = sim::Time::zero() + sim::Duration::micros(header.deadline_us);
  }

  auto send_nack = [this, from, correlation, method](std::uint8_t reason,
                                                     sim::Duration retry_after) {
    wire::OverloadNack nack;
    nack.reason = reason;
    nack.retry_after_us = retry_after.us();
    transport_.send(Packet{node_, from,
                           wire::make_frame(method, wire::FrameKind::kOverloaded,
                                            correlation, nack, 0, checksums_)});
  };

  const Admission admission = container_.submit_ex(
      packet.payload.size(),
      [this, body, from, serve_ctx, handler = &it->second.handler]() -> Served {
        // Ambient serve context while the handler runs, so handler-level
        // events (and anything the handler sends) correlate to this serve.
        trace::ContextGuard guard(serve_ctx);
        return (*handler)(body.span(), from);
      },
      [this, from, correlation, method, wants_reply,
       serve_ctx](Buffer reply) {
        trace::ContextGuard guard(serve_ctx);
        if (auto* t = trace::current()) {
          t->end(trace::Category::kRpc, node_.value(), "rpc.serve", serve_ctx,
                 std::int64_t(method), std::int64_t(reply.size()));
        }
        if (!wants_reply) return;
        transport_.send(Packet{
            node_, from,
            wire::frame_from_body(method, wire::FrameKind::kReply, correlation,
                                  reply.span(), 0, checksums_)});
      },
      it->second.priority, deadline,
      // Pickup-time shed: the deadline expired while the request queued.
      [this, from, correlation, method, wants_reply, send_nack,
       serve_ctx](sim::Duration retry_after) {
        trace::ContextGuard guard(serve_ctx);
        if (auto* t = trace::current()) {
          t->end(trace::Category::kRpc, node_.value(), "rpc.serve", serve_ctx,
                 std::int64_t(method), -1);
          t->instant(trace::Category::kRpc, node_.value(), "overload.shed",
                     serve_ctx, std::int64_t(method), retry_after.us());
        }
        if (wants_reply) send_nack(1, retry_after);
      });
  if (!admission.accepted() && wants_reply) {
    const bool overload = container_.profile().overload.enabled;
    if (auto* t = trace::current()) {
      t->end(trace::Category::kRpc, node_.value(), "rpc.serve", serve_ctx,
             std::int64_t(method), -1);
      t->instant(trace::Category::kRpc, node_.value(),
                 overload ? "overload.shed" : "rpc.refused", serve_ctx,
                 std::int64_t(method));
    }
    trace::ContextGuard guard(serve_ctx);
    if (overload) {
      // Typed rejection: distinguishable from network loss, and carries the
      // server's own drain estimate so the caller backs off usefully.
      send_nack(admission.result == AdmitResult::kDeadline ? 1 : 0,
                admission.retry_after);
    } else {
      // Connection refused: tell the caller immediately.
      const std::string reason = "refused";
      transport_.send(Packet{node_, from,
                             wire::make_frame(method, wire::FrameKind::kError,
                                              correlation, reason, 0,
                                              checksums_)});
    }
  }
}

RpcClient::RpcClient(sim::Simulation& sim, Transport& transport)
    : sim_(sim), transport_(transport), node_(transport.attach(*this)) {}

RpcClient::~RpcClient() {
  if (attached_) transport_.detach(node_);
  // In-flight calls must not leak: their `done` contract is exactly-once.
  fail_all_pending("client shutdown");
}

void RpcClient::shutdown() {
  if (!attached_) return;
  transport_.detach(node_);
  attached_ = false;
  fail_all_pending("client shutdown");
}

bool RpcClient::restart() {
  if (attached_) return false;
  if (!transport_.reattach(node_, *this)) return false;
  attached_ = true;
  return true;
}

void RpcClient::fail_all_pending(const std::string& reason) {
  // Swap out first: a done callback may issue fresh calls through this
  // client, which must land in a clean pending_ map.
  std::unordered_map<std::uint64_t, Pending> failing;
  failing.swap(pending_);
  for (auto& [correlation, pending] : failing) {
    sim_.cancel(pending.timeout_event);
    if (auto* t = trace::current()) t->drop_rpc(node_.value(), correlation);
    pending.done(RawResult::failure(reason));
  }
}

void RpcClient::call_raw(NodeId server, std::uint16_t method,
                         std::vector<std::uint8_t> body, sim::Duration timeout,
                         CallOptions options,
                         std::function<void(RawResult)> done) {
  const std::uint64_t correlation = next_correlation_++;
  ++sent_;
  call_frame(server, correlation,
             wire::frame_from_body(method, wire::FrameKind::kRequest,
                                   correlation, body, options.deadline.us()),
             timeout, std::move(done));
}

void RpcClient::call_frame(NodeId server, std::uint64_t correlation,
                           Buffer frame, sim::Duration timeout,
                           std::function<void(RawResult)> done) {
  // Register the ambient span under (node, correlation) so the server's
  // handler joins the caller's trace when the request arrives.
  if (auto* t = trace::current()) {
    const trace::SpanContext ctx = t->ambient();
    if (ctx.valid()) t->propagate_rpc(node_.value(), correlation, ctx);
  }

  const sim::EventId timeout_event = sim_.schedule_after(timeout, [this, correlation] {
    const auto it = pending_.find(correlation);
    if (it == pending_.end()) return;
    auto done = std::move(it->second.done);
    pending_.erase(it);
    ++timed_out_;
    if (auto* t = trace::current()) {
      // The request may still be in flight or queued server-side; forget
      // the propagated context if nobody took it.
      t->drop_rpc(node_.value(), correlation);
      t->instant(trace::Category::kRpc, node_.value(), "rpc.timeout",
                 t->ambient(), std::int64_t(correlation));
    }
    done(RawResult::failure("timeout"));
  });
  pending_.emplace(correlation, Pending{timeout_event, std::move(done)});
  transport_.send(Packet{node_, server, std::move(frame)});
}

void RpcClient::on_packet(Packet packet) {
  wire::FrameHeader header;
  Buffer body;  // shares the frame's storage: free to outlive the packet
  if (!wire::parse_frame(packet.payload, header, body)) return;

  const auto it = pending_.find(header.correlation);
  if (it == pending_.end()) {
    ++late_;  // late reply after timeout (or never ours): discard
    if (auto* t = trace::current()) {
      t->instant(trace::Category::kRpc, node_.value(), "rpc.late_reply", {},
                 std::int64_t(header.correlation));
    }
    return;
  }

  auto pending = std::move(it->second);
  pending_.erase(it);
  sim_.cancel(pending.timeout_event);

  switch (static_cast<wire::FrameKind>(header.kind)) {
    case wire::FrameKind::kReply:
      pending.done(std::move(body));
      break;
    case wire::FrameKind::kError: {
      std::string reason;
      if (!wire::decode(body, reason)) reason = "malformed error";
      pending.done(RawResult::failure(reason));
      break;
    }
    case wire::FrameKind::kOverloaded: {
      wire::OverloadNack nack;
      if (!wire::decode(body, nack)) {
        pending.done(RawResult::failure("malformed overload nack"));
        break;
      }
      ++overloaded_;
      pending.done(RawResult::failure(make_overload_error(nack)));
      break;
    }
    default:
      pending.done(RawResult::failure("unexpected frame kind"));
      break;
  }
}

}  // namespace digruber::net
