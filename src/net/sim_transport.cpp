#include "digruber/net/sim_transport.hpp"

#include <utility>

#include "digruber/common/log.hpp"

namespace digruber::net {

SimTransport::SimTransport(sim::Simulation& sim, WanModel wan)
    : sim_(sim), wan_(std::move(wan)) {}

NodeId SimTransport::attach(Endpoint& endpoint) {
  const NodeId node(next_node_++);
  endpoints_.emplace(node, &endpoint);
  return node;
}

void SimTransport::detach(NodeId node) { endpoints_.erase(node); }

void SimTransport::send(Packet packet) {
  ++sent_;
  bytes_ += packet.payload.size();
  if (wan_.drop()) {
    ++dropped_;
    return;
  }
  const sim::Duration delay = wan_.delay(packet.src, packet.dst, packet.payload.size());
  sim_.schedule_after(delay, [this, p = std::move(packet)]() mutable {
    const auto it = endpoints_.find(p.dst);
    if (it == endpoints_.end()) {
      log::debug("net", "packet to detached node ", p.dst.value(), " dropped");
      return;
    }
    it->second->on_packet(std::move(p));
  });
}

}  // namespace digruber::net
