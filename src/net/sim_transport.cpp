#include "digruber/net/sim_transport.hpp"

#include <utility>

#include "digruber/common/log.hpp"
#include "digruber/trace/trace.hpp"

namespace digruber::net {

SimTransport::SimTransport(sim::Simulation& sim, WanModel wan)
    : sim_(sim), wan_(std::move(wan)) {}

NodeId SimTransport::attach(Endpoint& endpoint) {
  const NodeId node(next_node_++);
  endpoints_.emplace(node, &endpoint);
  return node;
}

void SimTransport::detach(NodeId node) { endpoints_.erase(node); }

bool SimTransport::reattach(NodeId node, Endpoint& endpoint) {
  if (!node.valid() || node.value() >= next_node_) return false;  // never issued
  return endpoints_.emplace(node, &endpoint).second;
}

void SimTransport::set_island(NodeId node, std::uint32_t island) {
  islands_[node] = island;
}

void SimTransport::heal_partition() {
  islands_.clear();
  blocked_.clear();
}

void SimTransport::block_direction(NodeId from, NodeId to) {
  blocked_.emplace(from.value(), to.value());
}

void SimTransport::unblock_direction(NodeId from, NodeId to) {
  blocked_.erase({from.value(), to.value()});
}

bool SimTransport::direction_blocked(NodeId from, NodeId to) const {
  if (blocked_.empty()) return false;
  return blocked_.contains({from.value(), to.value()});
}

void SimTransport::set_corruption(double rate) { corruption_rate_ = rate; }

std::uint32_t SimTransport::island_of(NodeId node) const {
  const auto it = islands_.find(node);
  return it == islands_.end() ? 0 : it->second;
}

bool SimTransport::partitioned(NodeId a, NodeId b) const {
  if (islands_.empty()) return false;
  return island_of(a) != island_of(b);
}

void SimTransport::count_drop(DropCause cause) {
  ++dropped_;
  ++dropped_by_cause_[std::size_t(cause)];
}

void SimTransport::send(Packet packet) {
  ++sent_;
  bytes_ += packet.payload.size();
  // Tag packet events with whatever span is sending (an rpc attempt, a
  // serve reply, an exchange round) so the wire hop shows up inside the
  // right trace tree. ctx stays zeroed when tracing is off.
  trace::SpanContext ctx;
  if (auto* t = trace::current()) {
    ctx = t->ambient();
    t->instant(trace::Category::kNet, packet.src.value(), "net.send", ctx,
               std::int64_t(packet.dst.value()),
               std::int64_t(packet.payload.size()));
  }
  // Partition checks first: they draw no randomness, so runs without
  // partitions keep the exact pre-fault RNG sequence. A directed block is
  // the same failure class as an island split, just one-way.
  if (partitioned(packet.src, packet.dst) ||
      direction_blocked(packet.src, packet.dst)) {
    count_drop(DropCause::kPartition);
    if (auto* t = trace::current()) {
      t->instant(trace::Category::kNet, packet.src.value(), "net.drop", ctx,
                 std::int64_t(DropCause::kPartition),
                 std::int64_t(packet.dst.value()));
    }
    return;
  }
  if (wan_.drop(packet.src, packet.dst)) {
    count_drop(DropCause::kLoss);
    if (auto* t = trace::current()) {
      t->instant(trace::Category::kNet, packet.src.value(), "net.drop", ctx,
                 std::int64_t(DropCause::kLoss), std::int64_t(packet.dst.value()));
    }
    return;
  }
  // Bit-flip injection (fault plans only): corrupt a private copy — the
  // payload Buffer may be shared with other fan-out destinations. The gate
  // on rate keeps the dedicated RNG untouched when corruption is off.
  if (corruption_rate_ > 0.0 && !packet.payload.empty() &&
      corruption_rng_.bernoulli(corruption_rate_)) {
    std::vector<std::uint8_t> bytes(packet.payload.span().begin(),
                                    packet.payload.span().end());
    const std::uint64_t bit = corruption_rng_.uniform_index(bytes.size() * 8);
    bytes[bit / 8] ^= std::uint8_t(1u << (bit % 8));
    packet.payload = Buffer(std::move(bytes));
    ++corrupted_;
  }
  const sim::Duration delay = wan_.delay(packet.src, packet.dst, packet.payload.size());
  sim_.schedule_after(delay, [this, ctx, p = std::move(packet)]() mutable {
    const auto it = endpoints_.find(p.dst);
    if (it == endpoints_.end()) {
      // Destination crashed/detached while the packet was in flight.
      count_drop(DropCause::kUnknownDestination);
      if (auto* t = trace::current()) {
        t->instant(trace::Category::kNet, p.dst.value(), "net.drop", ctx,
                   std::int64_t(DropCause::kUnknownDestination),
                   std::int64_t(p.src.value()));
      }
      log::debug("net", "packet to detached node ", p.dst.value(), " dropped");
      return;
    }
    if (auto* t = trace::current()) {
      t->instant(trace::Category::kNet, p.dst.value(), "net.deliver", ctx,
                 std::int64_t(p.src.value()), std::int64_t(p.payload.size()));
    }
    it->second->on_packet(std::move(p));
  });
}

}  // namespace digruber::net
