#include "digruber/net/sync_rpc.hpp"

namespace digruber::net {

SyncService::SyncService(Transport& transport)
    : transport_(transport), node_(transport.attach(*this)) {}

SyncService::~SyncService() { transport_.detach(node_); }

void SyncService::register_method(std::uint16_t method, Method handler) {
  const std::scoped_lock lock(mutex_);
  methods_[method] = std::move(handler);
}

void SyncService::on_packet(Packet packet) {
  wire::FrameHeader header;
  std::span<const std::uint8_t> body;
  if (!wire::parse_frame(packet.payload, header, body)) return;
  const auto kind = static_cast<wire::FrameKind>(header.kind);
  if (kind != wire::FrameKind::kRequest && kind != wire::FrameKind::kOneWay) return;

  Method handler;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = methods_.find(header.method);
    if (it == methods_.end()) return;
    handler = it->second;  // copy so the handler runs without the lock held
  }
  const Buffer reply = handler(body, packet.src);
  if (kind != wire::FrameKind::kRequest) return;

  transport_.send(Packet{node_, packet.src,
                         wire::frame_from_body(header.method,
                                               wire::FrameKind::kReply,
                                               header.correlation, reply.span())});
}

SyncClient::SyncClient(Transport& transport)
    : transport_(transport), node_(transport.attach(*this)) {}

SyncClient::~SyncClient() { transport_.detach(node_); }

SyncClient::RawResult SyncClient::call_raw(NodeId server, std::uint16_t method,
                                           std::vector<std::uint8_t> body,
                                           std::chrono::milliseconds timeout) {
  Waiter waiter;
  std::uint64_t correlation;
  {
    const std::scoped_lock lock(mutex_);
    correlation = next_correlation_++;
    waiters_.emplace(correlation, &waiter);
  }

  transport_.send(Packet{node_, server,
                         wire::frame_from_body(method, wire::FrameKind::kRequest,
                                               correlation, body)});

  std::unique_lock lock(mutex_);
  const bool completed = cv_.wait_for(lock, timeout, [&] { return waiter.done; });
  waiters_.erase(correlation);
  if (!completed) return RawResult::failure("timeout");
  if (waiter.failed) return RawResult::failure(waiter.error);
  return std::move(waiter.reply);
}

void SyncClient::on_packet(Packet packet) {
  wire::FrameHeader header;
  Buffer body;  // shares the frame storage: survives this packet's lifetime
  if (!wire::parse_frame(packet.payload, header, body)) return;

  const std::scoped_lock lock(mutex_);
  const auto it = waiters_.find(header.correlation);
  if (it == waiters_.end()) return;
  Waiter& waiter = *it->second;
  switch (static_cast<wire::FrameKind>(header.kind)) {
    case wire::FrameKind::kReply:
      waiter.reply = std::move(body);
      break;
    case wire::FrameKind::kError: {
      std::string reason;
      if (!wire::decode(body, reason)) reason = "malformed error";
      waiter.failed = true;
      waiter.error = std::move(reason);
      break;
    }
    default:
      waiter.failed = true;
      waiter.error = "unexpected frame kind";
      break;
  }
  waiter.done = true;
  cv_.notify_all();
}

}  // namespace digruber::net
