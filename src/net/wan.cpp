#include "digruber/net/wan.hpp"

#include <algorithm>
#include <cmath>

namespace digruber::net {
namespace {

// Deterministic per-node hash so positions are stable across runs without
// storing a table.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

WanModel::WanModel(WanParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

WanModel::Position WanModel::position_of(NodeId node) const {
  const std::uint64_t h = mix(node.value() + 0x5bd1e995u);
  const double x = double(h & 0xffffffffu) / double(0xffffffffu);
  const double y = double(h >> 32) / double(0xffffffffu);
  return {x, y};
}

sim::Duration WanModel::base_latency(NodeId from, NodeId to) const {
  if (from == to) return sim::Duration::millis(0.1);  // loopback
  const Position a = position_of(from);
  const Position b = position_of(to);
  // Unit-square distance; max distance sqrt(2) maps to max_latency.
  const double dist = std::hypot(a.x - b.x, a.y - b.y) / std::sqrt(2.0);
  const double ms =
      params_.min_latency_ms + dist * (params_.max_latency_ms - params_.min_latency_ms);
  const sim::Duration base = sim::Duration::millis(ms);
  // Apply degradation only when present so un-faulted links keep the exact
  // pre-override arithmetic (bit-identical runs with an empty plan).
  if (const LinkOverride* link = link_override(from, to)) {
    return base * link->latency_factor;
  }
  return base;
}

WanModel::LinkKey WanModel::link_key(NodeId a, NodeId b) {
  return a.value() < b.value() ? LinkKey{a.value(), b.value()}
                               : LinkKey{b.value(), a.value()};
}

void WanModel::set_link_override(NodeId a, NodeId b, LinkOverride override_) {
  overrides_[link_key(a, b)] = override_;
}

void WanModel::clear_link_override(NodeId a, NodeId b) {
  overrides_.erase(link_key(a, b));
}

void WanModel::clear_link_overrides() { overrides_.clear(); }

const LinkOverride* WanModel::link_override(NodeId a, NodeId b) const {
  if (overrides_.empty()) return nullptr;
  const auto it = overrides_.find(link_key(a, b));
  return it == overrides_.end() ? nullptr : &it->second;
}

sim::Duration WanModel::delay(NodeId from, NodeId to, std::size_t payload_bytes) {
  const sim::Duration base = base_latency(from, to);
  const double jitter =
      params_.jitter_cv > 0 ? rng_.lognormal_mean_cv(1.0, params_.jitter_cv) : 1.0;
  const double wire_bytes = double(payload_bytes) * params_.envelope_factor;
  const double tx_seconds = wire_bytes * 8.0 / params_.bandwidth_bps;
  return base * jitter + sim::Duration::seconds(tx_seconds);
}

bool WanModel::drop() {
  return params_.loss_rate > 0 && rng_.bernoulli(params_.loss_rate);
}

bool WanModel::drop(NodeId from, NodeId to) {
  double loss = params_.loss_rate;
  if (const LinkOverride* link = link_override(from, to)) {
    loss = std::min(1.0, loss + link->extra_loss);
  }
  return loss > 0 && rng_.bernoulli(loss);
}

}  // namespace digruber::net
