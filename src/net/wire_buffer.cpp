#include "digruber/net/wire/buffer.hpp"

#include <atomic>
#include <utility>

namespace digruber::net {

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

Buffer::Buffer(std::vector<std::uint8_t> bytes) {
  if (bytes.empty()) return;
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  storage_ = std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  data_ = storage_->data();
  size_ = storage_->size();
}

Buffer::Buffer(std::initializer_list<std::uint8_t> bytes)
    : Buffer(std::vector<std::uint8_t>(bytes)) {}

Buffer Buffer::copy(std::span<const std::uint8_t> bytes) {
  return Buffer(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
}

Buffer Buffer::slice(std::size_t offset, std::size_t n) const {
  if (offset > size_) offset = size_;
  if (n > size_ - offset) n = size_ - offset;
  if (n == 0) return Buffer();
  return Buffer(storage_, data_ + offset, n);
}

std::uint64_t Buffer::allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace digruber::net
