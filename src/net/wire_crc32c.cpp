#include "digruber/net/wire/crc32c.hpp"

#include <array>

namespace digruber::net::wire {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xffu];
  }
  return ~crc;
}

}  // namespace digruber::net::wire
