#include "digruber/net/wire/frame.hpp"

namespace digruber::net::wire {

std::size_t frame_header_size() {
  static const std::size_t size = [] {
    Writer w;
    FrameHeader h;
    w & h;
    return w.size();
  }();
  return size;
}

bool parse_frame(std::span<const std::uint8_t> frame, FrameHeader& header,
                 std::span<const std::uint8_t>& body) {
  const std::size_t hsize = frame_header_size();
  if (frame.size() < hsize) return false;
  Reader r(frame.first(hsize));
  r & header;
  if (!r.complete()) return false;
  if (header.version != FrameHeader::kCurrentVersion) return false;
  if (frame.size() - hsize != header.body_size) return false;
  body = frame.subspan(hsize);
  return true;
}

}  // namespace digruber::net::wire
