#include "digruber/net/wire/frame.hpp"

namespace digruber::net::wire {

std::size_t frame_header_size() {
  static const std::size_t size = [] {
    Writer w;
    FrameHeader h;
    w & h;
    return w.size();
  }();
  return size;
}

bool parse_frame(std::span<const std::uint8_t> frame, FrameHeader& header,
                 std::span<const std::uint8_t>& body) {
  // The header is variable-length from v2 on (serialize reads the version
  // first and then any version-gated fields), so parse over the whole
  // frame and take what the header left as the body.
  Reader r(frame);
  r & header;
  if (!r.ok()) return false;
  if (header.version < FrameHeader::kCurrentVersion ||
      header.version > FrameHeader::kMaxVersion) {
    return false;
  }
  if (r.remaining() != header.body_size) return false;
  body = frame.subspan(frame.size() - r.remaining());
  return true;
}

}  // namespace digruber::net::wire
