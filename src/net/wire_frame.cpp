#include "digruber/net/wire/frame.hpp"

#include <atomic>
#include <cstring>

#include "digruber/net/wire/crc32c.hpp"

namespace digruber::net::wire {

namespace {
std::atomic<MethodCategorizer> g_categorizer{nullptr};
}  // namespace

WireStats& wire_stats() {
  static WireStats stats;
  return stats;
}

void set_method_categorizer(MethodCategorizer fn) {
  g_categorizer.store(fn, std::memory_order_relaxed);
}

MsgCategory categorize_method(std::uint16_t method) {
  const MethodCategorizer fn = g_categorizer.load(std::memory_order_relaxed);
  return fn ? fn(method) : MsgCategory::kOther;
}

std::size_t frame_header_size() {
  static const std::size_t size = encoded_size(FrameHeader{});
  return size;
}

void append_checksum_trailer(Writer& w, std::size_t body_size) {
  const std::span<const std::uint8_t> written = w.bytes();
  const std::uint32_t crc =
      crc32c(written.subspan(written.size() - body_size));
  // The trailer is a raw little-endian u32, NOT archive-encoded — it sits
  // outside the body that body_size describes.
  std::uint8_t trailer[FrameHeader::kChecksumTrailerSize];
  for (std::size_t i = 0; i < sizeof(trailer); ++i) {
    trailer[i] = std::uint8_t((crc >> (8 * i)) & 0xffu);
  }
  w.raw(trailer, sizeof(trailer));
}

net::Buffer frame_from_body(std::uint16_t method, FrameKind kind,
                            std::uint64_t correlation,
                            std::span<const std::uint8_t> body,
                            std::int64_t deadline_us, bool checksum) {
  FrameHeader header;
  header.method = method;
  header.kind = static_cast<std::uint8_t>(kind);
  header.correlation = correlation;
  header.body_size = static_cast<std::uint32_t>(body.size());
  if (deadline_us > 0) {
    header.version = FrameHeader::kDeadlineVersion;
    header.deadline_us = deadline_us;
  }
  if (checksum) header.version = FrameHeader::kChecksumVersion;
  Writer w;
  w.reserve(encoded_size(header) + body.size() +
            (checksum ? FrameHeader::kChecksumTrailerSize : 0));
  w & header;
  w.raw(body.data(), body.size());
  if (checksum) append_checksum_trailer(w, body.size());
  net::Buffer frame = w.take_buffer();
  wire_stats().record_encode(categorize_method(method), frame.size());
  return frame;
}

FrameParse parse_frame_ex(std::span<const std::uint8_t> frame,
                          FrameHeader& header,
                          std::span<const std::uint8_t>& body) {
  // The header is variable-length from v2 on (serialize reads the version
  // first and then any version-gated fields), so parse over the whole
  // frame and take what the header left as the body.
  Reader r(frame);
  r & header;
  if (!r.ok()) return FrameParse::kBadHeader;
  if (header.version < FrameHeader::kCurrentVersion ||
      header.version > FrameHeader::kMaxVersion) {
    return FrameParse::kBadHeader;
  }
  body = frame.subspan(frame.size() - r.remaining());
  if (header.version >= FrameHeader::kChecksumVersion) {
    // v3: the last four bytes are a CRC-32C trailer over the body, outside
    // the span body_size describes.
    if (body.size() < FrameHeader::kChecksumTrailerSize) {
      return FrameParse::kBodySizeMismatch;
    }
    const std::span<const std::uint8_t> trailer =
        body.subspan(body.size() - FrameHeader::kChecksumTrailerSize);
    body = body.first(body.size() - FrameHeader::kChecksumTrailerSize);
    if (body.size() != header.body_size) return FrameParse::kBodySizeMismatch;
    std::uint32_t expected = 0;
    for (std::size_t i = 0; i < FrameHeader::kChecksumTrailerSize; ++i) {
      expected |= std::uint32_t(trailer[i]) << (8 * i);
    }
    if (crc32c(body) != expected) return FrameParse::kBadChecksum;
    return FrameParse::kOk;
  }
  if (r.remaining() != header.body_size) return FrameParse::kBodySizeMismatch;
  return FrameParse::kOk;
}

bool parse_frame(std::span<const std::uint8_t> frame, FrameHeader& header,
                 std::span<const std::uint8_t>& body) {
  return parse_frame_ex(frame, header, body) == FrameParse::kOk;
}

FrameParse parse_frame_ex(const net::Buffer& frame, FrameHeader& header,
                          net::Buffer& body) {
  std::span<const std::uint8_t> body_span;
  const FrameParse result = parse_frame_ex(frame.span(), header, body_span);
  if (result == FrameParse::kBadHeader) {
    body = net::Buffer();
    return result;
  }
  body = frame.slice(std::size_t(body_span.data() - frame.data()),
                     body_span.size());
  return result;
}

bool parse_frame(const net::Buffer& frame, FrameHeader& header,
                 net::Buffer& body) {
  return parse_frame_ex(frame, header, body) == FrameParse::kOk;
}

}  // namespace digruber::net::wire
