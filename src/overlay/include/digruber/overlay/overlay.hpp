#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "digruber/common/ids.hpp"

namespace digruber::overlay {

/// Dissemination overlay shapes. The paper floods over a full mesh —
/// O(N^2) exchange traffic per round — and its future-work section asks
/// how a hierarchy would change that at larger deployments. Each strategy
/// answers "who do I push this round's state to"; the flooding dedup and
/// anti-entropy layers above are strategy-agnostic, so convergence may
/// take more rounds under a sparse overlay but never loses records.
enum class Kind : std::uint8_t {
  /// Every round pushes to every live peer (the paper's behavior).
  kMesh = 0,
  /// Deterministic degree-k spanning tree over the sorted live member
  /// ids; each node pushes to its parent and children only.
  kTree,
  /// Epidemic push: every round samples `gossip_fanout` distinct live
  /// peers from a per-node deterministic stream.
  kGossip,
  /// Two layers: leaf points exchange only with their assigned
  /// super-peer; super-peers full-mesh among themselves and fan out to
  /// their leaves (the paper's "one-layer vs hierarchy" sketch).
  kSuperPeer,
};

const char* kind_name(Kind kind);

struct Options {
  Kind kind = Kind::kMesh;
  /// Children per interior node of the spanning tree.
  std::uint32_t tree_degree = 3;
  /// Peers pushed per round under gossip.
  std::uint32_t gossip_fanout = 3;
  /// Super-peer count; 0 derives ceil(sqrt(n)) from the live view size.
  std::uint32_t superpeers = 0;
  /// Base seed for the gossip peer-sampling stream. Each strategy mixes
  /// its own decision-point id in, so same-seed runs are bit-identical
  /// without sharing rng state across points.
  std::uint64_t seed = 0;
};

/// One live peer as the strategy sees it: broker identity plus the RPC
/// server address exchanges are pushed to.
struct Member {
  DpId dp;
  NodeId node;
};

/// The live view a strategy derives its structure from: this point plus
/// its live peers, peers sorted by DpId (deterministic across points, so
/// every point derives the *same* tree / super-peer set).
struct View {
  DpId self;
  std::vector<Member> peers;
};

/// Peer-set selection per exchange round plus the per-message relay TTL
/// policy. Implementations are pure topology: they own no sockets and
/// send nothing — the decision point asks for this round's targets and
/// stamps/polices the hop trailer according to `ttl()`.
class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual Kind kind() const = 0;

  /// Re-derive internal structure from a changed live view (membership
  /// transitions, join/leave, static wiring). Returns true when the
  /// derived push set actually changed — the caller counts repairs.
  virtual bool rebuild(const View& view) = 0;

  /// Fill `out` with this round's push targets. `candidates` is the raw
  /// ordered live-neighbor list the decision point maintains (the mesh
  /// answer, and the sampling pool for gossip).
  virtual void select(std::uint64_t round, const std::vector<NodeId>& candidates,
                      std::vector<NodeId>& out) = 0;

  /// Relay-depth bound stamped on originated exchanges. 0 means "no hop
  /// trailer" (mesh: direct delivery, the wire stays byte-identical to
  /// the pre-overlay format). Receivers apply records regardless of
  /// depth — the bound only suppresses further relaying, so an expired
  /// TTL degrades to anti-entropy repair, never to record loss.
  [[nodiscard]] virtual std::uint32_t ttl() const = 0;

  /// Failure-detector contract: the peers whose direct frames this point
  /// expects every round. Sparse symmetric topologies (tree, super-peer)
  /// return their push set — those edges are bidirectional, so silence on
  /// one is evidence of failure, while silence from a non-adjacent peer is
  /// just the topology working; verdicts about non-adjacent peers arrive
  /// via membership gossip from their own watchers. Returns nullptr when
  /// any peer may legitimately push here (mesh, gossip): the detector then
  /// watches everyone, with its clocks scaled by `watch_stretch()`. The
  /// vector is sorted by DpId and stays valid until the next rebuild.
  [[nodiscard]] virtual const std::vector<DpId>* watch_peers() const {
    return nullptr;
  }
  /// Multiplier on the heartbeat interval the detector measures silence
  /// against. 1.0 for strategies with a deterministic per-round contact
  /// (mesh, tree, super-peer); gossip hears from a given peer only every
  /// (n-1)/fanout rounds in expectation, so its thresholds stretch
  /// accordingly — slower detection instead of false deaths.
  [[nodiscard]] virtual double watch_stretch() const { return 1.0; }
};

std::unique_ptr<Strategy> make_strategy(const Options& options, DpId self);

/// Expected exchange messages per round for an `n`-point deployment —
/// the per-strategy traffic term GRUB-SIM charges against the capacity
/// model. Mesh n(n-1); tree 2(n-1) (each edge pushed both ways); gossip
/// n*min(fanout, n-1); super-peer 2 leaves + S(S-1).
double messages_per_round(std::size_t n, const Options& options);

}  // namespace digruber::overlay
