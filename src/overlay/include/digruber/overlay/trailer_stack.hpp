#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace digruber::overlay {

/// Composer for positionally stacked optional wire trailers.
///
/// The wire format has no field tags: optional trailing fields decode by
/// `remaining() > 0`, in a fixed order. That means attaching trailer i
/// forces every trailer before it onto the frame (possibly empty), or the
/// reader would mis-assign bytes. Before this composer existed the
/// forcing rules were hand-unrolled at each attach site in
/// `decision_point.cpp` and drifted per message; now both exchange paths
/// and `GetSiteLoadsReply` declare their slots in wire order and let
/// `compose()` resolve the forcing.
///
/// Each slot is (want, attach): `want` is whether this trailer carries a
/// payload this frame; `attach` marks the field present on the message
/// and fills it, receiving `forced = true` when the slot is only present
/// because a later slot wanted on (attach an empty/neutral payload then).
/// Slots after the last wanted one are never attached.
class TrailerStack {
 public:
  using Attach = std::function<void(bool forced)>;

  TrailerStack() { slots_.reserve(6); }

  TrailerStack& slot(bool want, Attach attach) {
    slots_.push_back({want, std::move(attach)});
    return *this;
  }

  /// Attach every slot up to and including the last wanted one.
  void compose() {
    std::size_t last = slots_.size();
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (slots_[i].want) last = i;
    if (last == slots_.size()) return;
    for (std::size_t i = 0; i <= last; ++i) slots_[i].attach(!slots_[i].want);
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

 private:
  struct Slot {
    bool want;
    Attach attach;
  };
  std::vector<Slot> slots_;
};

}  // namespace digruber::overlay
