#include "digruber/overlay/overlay.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "digruber/common/rng.hpp"

namespace digruber::overlay {
namespace {

/// Sorted live roster (self + peers) every strategy derives structure
/// from. Peers arrive sorted by DpId; self is spliced in at its rank so
/// all points agree on the array and therefore on the derived topology.
struct Roster {
  std::vector<Member> members;
  std::size_t self_rank = 0;

  static Roster build(const View& view, NodeId self_node) {
    Roster r;
    r.members.reserve(view.peers.size() + 1);
    bool placed = false;
    for (const Member& peer : view.peers) {
      if (!placed && view.self < peer.dp) {
        r.self_rank = r.members.size();
        r.members.push_back({view.self, self_node});
        placed = true;
      }
      r.members.push_back(peer);
    }
    if (!placed) {
      r.self_rank = r.members.size();
      r.members.push_back({view.self, self_node});
    }
    return r;
  }
};

class FullMesh final : public Strategy {
 public:
  [[nodiscard]] Kind kind() const override { return Kind::kMesh; }
  bool rebuild(const View&) override { return false; }
  void select(std::uint64_t, const std::vector<NodeId>& candidates,
              std::vector<NodeId>& out) override {
    out = candidates;
  }
  [[nodiscard]] std::uint32_t ttl() const override { return 0; }
};

/// Heap-shaped degree-k tree over the sorted live roster: rank i's parent
/// is (i-1)/k, children are k*i+1 .. k*i+k. Rebuilding from the live view
/// is the repair rule — when an interior node dies, the roster compacts
/// and every survivor re-derives the same smaller tree.
class SpanningTree final : public Strategy {
 public:
  explicit SpanningTree(std::uint32_t degree, DpId self)
      : degree_(std::max<std::uint32_t>(1, degree)), self_(self) {}

  [[nodiscard]] Kind kind() const override { return Kind::kTree; }

  bool rebuild(const View& view) override {
    const Roster roster = Roster::build(view, NodeId(0));
    std::vector<NodeId> targets;
    std::vector<DpId> watch;
    const std::size_t n = roster.members.size();
    const std::size_t i = roster.self_rank;
    if (i > 0) {
      targets.push_back(roster.members[(i - 1) / degree_].node);
      watch.push_back(roster.members[(i - 1) / degree_].dp);
    }
    for (std::size_t c = i * degree_ + 1; c <= i * degree_ + degree_ && c < n;
         ++c) {
      targets.push_back(roster.members[c].node);
      watch.push_back(roster.members[c].dp);
    }
    std::sort(watch.begin(), watch.end());
    // Diameter of the tree (leaf -> root -> leaf = 2*depth) bounds a
    // record's relay distance; depths are exact per record (they ride the
    // hop trailer), so the TTL only needs repair slack on top: during a
    // churn transient points hold divergent rosters and a record may take
    // a detour through the old and new structure. The TTL is a loop
    // backstop — dedup already terminates the flood.
    std::size_t depth = 0;
    if (n > 1) {
      std::size_t j = n - 1;
      while (j > 0) {
        j = (j - 1) / degree_;
        ++depth;
      }
    }
    ttl_ = static_cast<std::uint32_t>(2 * depth + 4);
    if (targets == targets_ && watch == watch_) return false;
    targets_ = std::move(targets);
    watch_ = std::move(watch);
    return true;
  }

  void select(std::uint64_t, const std::vector<NodeId>&,
              std::vector<NodeId>& out) override {
    out = targets_;
  }

  [[nodiscard]] std::uint32_t ttl() const override { return ttl_; }

  // Tree edges push both ways every round: watch exactly parent+children.
  [[nodiscard]] const std::vector<DpId>* watch_peers() const override {
    return &watch_;
  }

 private:
  std::uint32_t degree_;
  DpId self_;
  std::vector<NodeId> targets_;
  std::vector<DpId> watch_;
  std::uint32_t ttl_ = 2;
};

/// Epidemic push: each round samples `fanout` distinct peers from the
/// candidate list via a partial Fisher–Yates pass over a private
/// deterministic stream (base seed mixed with the owner's id), so
/// same-seed scenario runs replay bit-identically without touching the
/// scenario rng's fork order.
class GossipFanout final : public Strategy {
 public:
  GossipFanout(std::uint32_t fanout, std::uint64_t seed, DpId self)
      : fanout_(std::max<std::uint32_t>(1, fanout)),
        rng_(seed ^ (0x9e3779b97f4a7c15ULL * (self.value() + 1))) {}

  [[nodiscard]] Kind kind() const override { return Kind::kGossip; }

  bool rebuild(const View& view) override {
    // Gossip has no derived structure; track roster size for the TTL.
    const std::size_t n = view.peers.size() + 1;
    std::uint32_t ttl = 2;
    // Rumor spreading covers n nodes in O(log n) rounds w.h.p., but a
    // given copy's relay path has a heavier tail and dedup means the
    // first (possibly long-path) arrival is the only one relayed — so
    // triple the log bound rather than double it. The TTL suppresses
    // loops, not legitimate spread.
    while ((1ULL << ttl) < n) ++ttl;
    ttl_ = 3 * ttl + 2;
    // A given peer pushes here every (n-1)/fanout rounds in expectation;
    // doubling that keeps the false-suspicion probability negligible
    // (silence over 2m expected-contact rounds has probability
    // (1 - k/(n-1))^(2m·(n-1)/k), well under the detector thresholds).
    stretch_ = 2.0 * std::max(1.0, double(n - 1) / double(fanout_));
    return false;
  }

  void select(std::uint64_t, const std::vector<NodeId>& candidates,
              std::vector<NodeId>& out) override {
    const std::size_t n = candidates.size();
    const std::size_t k = std::min<std::size_t>(fanout_, n);
    scratch_.resize(n);
    std::iota(scratch_.begin(), scratch_.end(), std::size_t{0});
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + rng_.uniform_index(n - i);
      std::swap(scratch_[i], scratch_[j]);
      out.push_back(candidates[scratch_[i]]);
    }
  }

  [[nodiscard]] std::uint32_t ttl() const override { return ttl_; }

  // Contacts are random: everyone is watched, on a stretched clock.
  [[nodiscard]] double watch_stretch() const override { return stretch_; }

 private:
  std::uint32_t fanout_;
  Rng rng_;
  std::vector<std::size_t> scratch_;
  std::uint32_t ttl_ = 6;
  double stretch_ = 1.0;
};

/// Two-layer hierarchy: the S lowest live ids are super-peers; leaves are
/// assigned round-robin by rank and exchange only with their super-peer,
/// while super-peers full-mesh among themselves and push down to their
/// leaves. Repair is positional: when a super-peer dies the roster
/// compacts and the next-lowest id is promoted everywhere at once.
class SuperPeer final : public Strategy {
 public:
  SuperPeer(std::uint32_t superpeers, DpId self)
      : superpeers_(superpeers), self_(self) {}

  [[nodiscard]] Kind kind() const override { return Kind::kSuperPeer; }

  bool rebuild(const View& view) override {
    const Roster roster = Roster::build(view, NodeId(0));
    const std::size_t n = roster.members.size();
    const std::size_t s = super_count(n, superpeers_);
    std::vector<NodeId> targets;
    std::vector<DpId> watch;
    const std::size_t i = roster.self_rank;
    if (i < s) {
      for (std::size_t j = 0; j < s; ++j)
        if (j != i) {
          targets.push_back(roster.members[j].node);
          watch.push_back(roster.members[j].dp);
        }
      for (std::size_t j = s; j < n; ++j)
        if ((j - s) % s == i) {
          targets.push_back(roster.members[j].node);
          watch.push_back(roster.members[j].dp);
        }
    } else if (s > 0) {
      targets.push_back(roster.members[(i - s) % s].node);
      watch.push_back(roster.members[(i - s) % s].dp);
    }
    std::sort(watch.begin(), watch.end());
    if (targets == targets_ && watch == watch_) return false;
    targets_ = std::move(targets);
    watch_ = std::move(watch);
    return true;
  }

  void select(std::uint64_t, const std::vector<NodeId>&,
              std::vector<NodeId>& out) override {
    out = targets_;
  }

  // leaf -> super -> other supers -> their leaves is 3 hops; depths are
  // exact per record, so the rest is churn-transient detour slack.
  [[nodiscard]] std::uint32_t ttl() const override { return 6; }

  // Both layers are symmetric per round: a leaf watches its super-peer,
  // a super-peer watches its peer supers and assigned leaves.
  [[nodiscard]] const std::vector<DpId>* watch_peers() const override {
    return &watch_;
  }

  static std::size_t super_count(std::size_t n, std::uint32_t configured) {
    if (n == 0) return 0;
    std::size_t s = configured != 0
                        ? configured
                        : static_cast<std::size_t>(
                              std::ceil(std::sqrt(static_cast<double>(n))));
    return std::min(std::max<std::size_t>(1, s), n);
  }

 private:
  std::uint32_t superpeers_;
  DpId self_;
  std::vector<NodeId> targets_;
  std::vector<DpId> watch_;
};

}  // namespace

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kMesh: return "mesh";
    case Kind::kTree: return "tree";
    case Kind::kGossip: return "gossip";
    case Kind::kSuperPeer: return "superpeer";
  }
  return "?";
}

std::unique_ptr<Strategy> make_strategy(const Options& options, DpId self) {
  switch (options.kind) {
    case Kind::kMesh: return std::make_unique<FullMesh>();
    case Kind::kTree: return std::make_unique<SpanningTree>(options.tree_degree, self);
    case Kind::kGossip:
      return std::make_unique<GossipFanout>(options.gossip_fanout, options.seed, self);
    case Kind::kSuperPeer: return std::make_unique<SuperPeer>(options.superpeers, self);
  }
  return std::make_unique<FullMesh>();
}

double messages_per_round(std::size_t n, const Options& options) {
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  switch (options.kind) {
    case Kind::kMesh: return dn * (dn - 1.0);
    case Kind::kTree: return 2.0 * (dn - 1.0);
    case Kind::kGossip: {
      const double k = std::min<double>(std::max<std::uint32_t>(1, options.gossip_fanout),
                                        dn - 1.0);
      return dn * k;
    }
    case Kind::kSuperPeer: {
      const double s =
          static_cast<double>(SuperPeer::super_count(n, options.superpeers));
      const double leaves = dn - s;
      return 2.0 * leaves + s * (s - 1.0);
    }
  }
  return dn * (dn - 1.0);
}

}  // namespace digruber::overlay
