#include "digruber/sim/fault_plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "digruber/common/rng.hpp"

namespace digruber::sim {
namespace {

using Tokens = std::vector<std::string>;

/// Split on whitespace.
Tokens tokenize(const std::string& line) {
  Tokens out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) out.push_back(token);
  return out;
}

/// `key=value` accessor over an event's tokens.
bool find_value(const Tokens& tokens, const std::string& key, std::string& out) {
  const std::string prefix = key + "=";
  for (const std::string& token : tokens) {
    if (token.rfind(prefix, 0) == 0) {
      out = token.substr(prefix.size());
      return true;
    }
  }
  return false;
}

bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && !text.empty();
}

bool parse_index(const std::string& text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || text.empty()) return false;
  out = std::size_t(v);
  return true;
}

/// `90`, `90s`, `1.5m`, `2h` -> simulated Time.
bool parse_time(std::string text, Time& out) {
  double scale = 1.0;
  if (!text.empty()) {
    switch (text.back()) {
      case 's': scale = 1.0; text.pop_back(); break;
      case 'm': scale = 60.0; text.pop_back(); break;
      case 'h': scale = 3600.0; text.pop_back(); break;
      default: break;
    }
  }
  double seconds = 0.0;
  if (!parse_double(text, seconds) || seconds < 0) return false;
  out = Time::from_seconds(seconds * scale);
  return true;
}

/// `3,1,4` -> {3, 1, 4}.
bool parse_index_list(const std::string& text, std::vector<std::size_t>& out) {
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    std::size_t index = 0;
    if (!parse_index(item, index)) return false;
    out.push_back(index);
  }
  return !out.empty();
}

/// `link=a:b` or `dp=i` target for degrade/restore.
Status<> parse_link_target(const Tokens& tokens, FaultEvent& event) {
  std::string value;
  if (find_value(tokens, "link", value)) {
    const auto colon = value.find(':');
    if (colon == std::string::npos || !parse_index(value.substr(0, colon), event.dp) ||
        !parse_index(value.substr(colon + 1), event.peer)) {
      return Status<>::failure("bad link spec (want link=a:b): " + value);
    }
    if (event.dp == event.peer) {
      return Status<>::failure("link endpoints must differ: " + value);
    }
    return {};
  }
  if (find_value(tokens, "dp", value)) {
    if (!parse_index(value, event.dp)) return Status<>::failure("bad dp index: " + value);
    event.all_peers = true;
    return {};
  }
  return Status<>::failure("degrade/restore needs link=a:b or dp=i");
}

}  // namespace

Result<FaultPlan> FaultPlan::parse(const std::string& text) {
  using Fail = Result<FaultPlan>;
  FaultPlan plan;

  std::string normalized = text;
  std::replace(normalized.begin(), normalized.end(), ';', '\n');
  std::istringstream lines(normalized);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const Tokens tokens = tokenize(line);
    if (tokens.empty()) continue;

    const std::string where = "fault plan line " + std::to_string(line_no) + ": ";
    std::string value;
    FaultEvent event;
    if (!find_value(tokens, "at", value) || !parse_time(value, event.at)) {
      return Fail::failure(where + "missing or bad at=<time>");
    }
    // The verb is the first token that is not a key=value pair.
    std::string verb;
    for (const std::string& token : tokens) {
      if (token.find('=') == std::string::npos) {
        verb = token;
        break;
      }
    }

    if (verb == "crash" || verb == "restart") {
      if (!find_value(tokens, "dp", value) || !parse_index(value, event.dp)) {
        return Fail::failure(where + verb + " needs dp=<index>");
      }
      event.kind = verb == "crash" ? FaultKind::kDpCrash : FaultKind::kDpRestart;
    } else if (verb == "partition") {
      if (!find_value(tokens, "islands", value)) {
        return Fail::failure(where + "partition needs islands=i,..|j,..");
      }
      std::istringstream groups(value);
      std::string group;
      while (std::getline(groups, group, '|')) {
        std::vector<std::size_t> island;
        if (!parse_index_list(group, island)) {
          return Fail::failure(where + "bad island list: " + group);
        }
        event.islands.push_back(std::move(island));
      }
      if (event.islands.size() < 2) {
        return Fail::failure(where + "partition needs at least two islands");
      }
      if (find_value(tokens, "clients", value)) {
        if (value != "split") {
          return Fail::failure(where + "partition clients= only accepts 'split'");
        }
        event.split_clients = true;
      }
      event.kind = FaultKind::kPartition;
    } else if (verb == "heal") {
      event.kind = FaultKind::kHeal;
    } else if (verb == "oneway" || verb == "healoneway") {
      if (!find_value(tokens, "from", value) || !parse_index(value, event.dp)) {
        return Fail::failure(where + verb + " needs from=<index>");
      }
      if (find_value(tokens, "to", value)) {
        if (!parse_index(value, event.peer)) {
          return Fail::failure(where + "bad to index: " + value);
        }
        if (event.dp == event.peer) {
          return Fail::failure(where + "oneway endpoints must differ");
        }
      } else {
        event.all_peers = true;
      }
      event.kind = verb == "oneway" ? FaultKind::kOneWayPartition
                                    : FaultKind::kOneWayHeal;
    } else if (verb == "corrupt") {
      if (!find_value(tokens, "rate", value) ||
          !parse_double(value, event.corrupt_rate) || event.corrupt_rate < 0.0 ||
          event.corrupt_rate > 1.0) {
        return Fail::failure(where + "corrupt needs rate=<p> in [0, 1]");
      }
      event.kind = FaultKind::kCorrupt;
    } else if (verb == "join") {
      event.kind = FaultKind::kDpJoin;
    } else if (verb == "leave") {
      if (!find_value(tokens, "dp", value) || !parse_index(value, event.dp)) {
        return Fail::failure(where + "leave needs dp=<index>");
      }
      event.kind = FaultKind::kDpLeave;
    } else if (verb == "disktorn" || verb == "diskrot" ||
               verb == "diskrestore") {
      if (!find_value(tokens, "dp", value) || !parse_index(value, event.dp)) {
        return Fail::failure(where + verb + " needs dp=<index>");
      }
      event.kind = verb == "disktorn"  ? FaultKind::kDiskTorn
                   : verb == "diskrot" ? FaultKind::kDiskBitRot
                                       : FaultKind::kDiskRestore;
    } else if (verb == "diskstall") {
      if (!find_value(tokens, "dp", value) || !parse_index(value, event.dp)) {
        return Fail::failure(where + "diskstall needs dp=<index>");
      }
      event.latency_factor = 8.0;
      if (find_value(tokens, "factor", value) &&
          !parse_double(value, event.latency_factor)) {
        return Fail::failure(where + "bad stall factor: " + value);
      }
      if (event.latency_factor < 1.0) {
        return Fail::failure(where + "stall factor must be >= 1");
      }
      event.kind = FaultKind::kDiskStall;
    } else if (verb == "degrade" || verb == "restore") {
      if (const Status<> target = parse_link_target(tokens, event); !target.ok()) {
        return Fail::failure(where + target.error());
      }
      if (verb == "degrade") {
        if (find_value(tokens, "latency", value) &&
            !parse_double(value, event.latency_factor)) {
          return Fail::failure(where + "bad latency factor: " + value);
        }
        if (find_value(tokens, "loss", value) && !parse_double(value, event.extra_loss)) {
          return Fail::failure(where + "bad loss rate: " + value);
        }
        if (event.latency_factor < 1.0 || event.extra_loss < 0.0 ||
            event.extra_loss > 1.0) {
          return Fail::failure(where + "latency must be >= 1, loss in [0, 1]");
        }
        event.kind = FaultKind::kLinkDegrade;
      } else {
        event.kind = FaultKind::kLinkRestore;
      }
    } else {
      return Fail::failure(where + "unknown fault verb: " +
                           (verb.empty() ? "(none)" : verb));
    }
    plan.add(std::move(event));
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const RandomFaultOptions& options) {
  FaultPlan plan;
  const double horizon_s = options.horizon.to_seconds();
  const double lo = horizon_s * 0.1;
  const double hi = horizon_s * 0.9;
  if (options.n_dps == 0 || hi <= lo) return plan;

  std::vector<int> kinds;
  if (options.allow_crashes) kinds.push_back(0);
  if (options.allow_partitions && options.n_dps >= 2) kinds.push_back(1);
  if (options.allow_degrades && options.n_dps >= 2) kinds.push_back(2);
  if (options.allow_joins) kinds.push_back(3);
  if (options.allow_leaves && options.n_dps >= 2) kinds.push_back(4);
  if (options.allow_oneway_partitions && options.n_dps >= 2) kinds.push_back(5);
  if (options.allow_corruption) kinds.push_back(6);
  if (kinds.empty()) return plan;

  Rng rng(seed);
  // Every fault is a matched begin/end pair tracked as a span, so episodes
  // of the same kind never overlap in a way their undo can't express
  // (heal removes ALL partitions; restore_dp undoes that DP's override).
  struct Span {
    std::size_t dp;
    double start;
    double end;
  };
  std::vector<Span> down, degraded;
  std::vector<std::pair<double, double>> partitioned, corrupting;
  auto overlaps = [](double s, double e, double s2, double e2) {
    return s < e2 && s2 < e;
  };

  for (std::size_t ep = 0; ep < options.episodes; ++ep) {
    const int kind = kinds[rng.uniform_index(kinds.size())];
    const double start = rng.uniform(lo, lo + (hi - lo) * 0.75);
    const double duration =
        rng.uniform(horizon_s * 0.05, horizon_s * 0.25);
    const double end = std::min(hi, start + duration);
    if (end <= start) continue;

    switch (kind) {
      case 0: {  // crash + restart
        std::vector<std::size_t> candidates;
        for (std::size_t d = 0; d < options.n_dps; ++d) {
          bool busy = false;
          std::size_t concurrent = 0;
          for (const Span& s : down) {
            if (!overlaps(start, end, s.start, s.end)) continue;
            if (s.dp == d) busy = true;
            ++concurrent;
          }
          // keep_one_alive: a crash window may cover at most n_dps - 1
          // decision points at once.
          if (busy) continue;
          if (options.keep_one_alive && concurrent + 1 >= options.n_dps) continue;
          candidates.push_back(d);
        }
        if (candidates.empty()) break;
        const std::size_t dp = candidates[rng.uniform_index(candidates.size())];
        // Disk riders (opt-in: with allow_disk_faults off this arm draws no
        // extra randomness, so existing seeds replay byte for byte). A torn
        // tail lands just before the crash — same instant, inserted first,
        // so it chops frames the crash would otherwise have preserved; bit
        // rot strikes while the point is down; a stall brackets the
        // recovery replay.
        std::size_t disk_variant = 3;  // none
        if (options.allow_disk_faults) disk_variant = rng.uniform_index(3);
        if (disk_variant == 0) plan.disk_torn(Time::from_seconds(start), dp);
        plan.crash(Time::from_seconds(start), dp);
        if (disk_variant == 1) {
          plan.disk_rot(Time::from_seconds((start + end) / 2), dp);
        } else if (disk_variant == 2) {
          plan.disk_stall(Time::from_seconds(start), dp,
                          rng.uniform(2.0, 10.0));
          plan.disk_restore(Time::from_seconds(end + 1.0), dp);
        }
        plan.restart(Time::from_seconds(end), dp);
        down.push_back({dp, start, end});
        break;
      }
      case 1: {  // partition into two islands + heal
        bool clash = false;
        for (const auto& [s, e] : partitioned) {
          if (overlaps(start, end, s, e)) clash = true;
        }
        if (clash) break;
        std::vector<std::size_t> order(options.n_dps);
        for (std::size_t d = 0; d < options.n_dps; ++d) order[d] = d;
        for (std::size_t d = options.n_dps - 1; d > 0; --d) {
          std::swap(order[d], order[rng.uniform_index(d + 1)]);
        }
        const std::size_t cut = 1 + rng.uniform_index(options.n_dps - 1);
        std::vector<std::vector<std::size_t>> islands(2);
        islands[0].assign(order.begin(), order.begin() + std::ptrdiff_t(cut));
        islands[1].assign(order.begin() + std::ptrdiff_t(cut), order.end());
        plan.partition(Time::from_seconds(start), std::move(islands),
                       options.split_clients_in_partitions);
        plan.heal(Time::from_seconds(end));
        partitioned.emplace_back(start, end);
        break;
      }
      case 2: {  // degrade every link of one DP + restore
        std::vector<std::size_t> candidates;
        for (std::size_t d = 0; d < options.n_dps; ++d) {
          bool busy = false;
          for (const Span& s : degraded) {
            if (s.dp == d && overlaps(start, end, s.start, s.end)) busy = true;
          }
          if (!busy) candidates.push_back(d);
        }
        if (candidates.empty()) break;
        const std::size_t dp = candidates[rng.uniform_index(candidates.size())];
        const double latency_factor = rng.uniform(2.0, 8.0);
        const double extra_loss = rng.uniform(0.0, 0.3);
        plan.degrade_dp(Time::from_seconds(start), dp, latency_factor, extra_loss);
        plan.restore_dp(Time::from_seconds(end), dp);
        degraded.push_back({dp, start, end});
        break;
      }
      case 3: {  // join: a fresh decision point bootstraps mid-run
        plan.join(Time::from_seconds(start));
        break;
      }
      case 4: {  // leave: drain an initial DP permanently
        // A left DP is down for the rest of the horizon: it must not be
        // crashed later and still counts against keep_one_alive, so its
        // down-span runs to the horizon.
        std::vector<std::size_t> candidates;
        for (std::size_t d = 0; d < options.n_dps; ++d) {
          bool busy = false;
          std::size_t concurrent = 0;
          for (const Span& s : down) {
            if (!overlaps(start, horizon_s, s.start, s.end)) continue;
            if (s.dp == d) busy = true;
            ++concurrent;
          }
          if (busy) continue;
          if (options.keep_one_alive && concurrent + 1 >= options.n_dps) continue;
          candidates.push_back(d);
        }
        if (candidates.empty()) break;
        const std::size_t dp = candidates[rng.uniform_index(candidates.size())];
        plan.leave(Time::from_seconds(start), dp);
        down.push_back({dp, start, horizon_s});
        break;
      }
      case 5: {  // one-way partition + matched heal
        // Shares the partition overlap list: a kHeal from an island
        // episode clears directed blocks too, so overlapping the two
        // partition flavors would let one episode truncate the other.
        bool clash = false;
        for (const auto& [s, e] : partitioned) {
          if (overlaps(start, end, s, e)) clash = true;
        }
        if (clash) break;
        const std::size_t from = rng.uniform_index(options.n_dps);
        std::size_t to = rng.uniform_index(options.n_dps - 1);
        if (to >= from) ++to;
        plan.oneway(Time::from_seconds(start), from, to);
        plan.heal_oneway(Time::from_seconds(end), from, to);
        partitioned.emplace_back(start, end);
        break;
      }
      case 6: {  // bit-flip corruption burst + matched stop
        bool clash = false;
        for (const auto& [s, e] : corrupting) {
          if (overlaps(start, end, s, e)) clash = true;
        }
        if (clash) break;
        plan.corrupt(Time::from_seconds(start), rng.uniform(0.02, 0.15));
        plan.corrupt(Time::from_seconds(end), 0.0);
        corrupting.emplace_back(start, end);
        break;
      }
    }
  }
  return plan;
}

void FaultPlan::add(FaultEvent event) {
  // Keep sorted by time with stable insertion order so `arm` schedules
  // same-instant events in the order the plan listed them.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event.at,
      [](Time at, const FaultEvent& e) { return at < e.at; });
  events_.insert(pos, std::move(event));
}

FaultPlan& FaultPlan::crash(Time at, std::size_t dp) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDpCrash;
  e.dp = dp;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::restart(Time at, std::size_t dp) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDpRestart;
  e.dp = dp;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::partition(Time at, std::vector<std::vector<std::size_t>> islands,
                                bool split_clients) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kPartition;
  e.islands = std::move(islands);
  e.split_clients = split_clients;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::oneway(Time at, std::size_t from, std::size_t to) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kOneWayPartition;
  e.dp = from;
  e.peer = to;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::oneway_all(Time at, std::size_t from) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kOneWayPartition;
  e.dp = from;
  e.all_peers = true;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::heal_oneway(Time at, std::size_t from, std::size_t to) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kOneWayHeal;
  e.dp = from;
  e.peer = to;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::heal_oneway_all(Time at, std::size_t from) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kOneWayHeal;
  e.dp = from;
  e.all_peers = true;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::corrupt(Time at, double rate) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kCorrupt;
  e.corrupt_rate = rate;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::disk_torn(Time at, std::size_t dp) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDiskTorn;
  e.dp = dp;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::disk_rot(Time at, std::size_t dp) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDiskBitRot;
  e.dp = dp;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::disk_stall(Time at, std::size_t dp,
                                 double latency_factor) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDiskStall;
  e.dp = dp;
  e.latency_factor = latency_factor;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::disk_restore(Time at, std::size_t dp) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDiskRestore;
  e.dp = dp;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::heal(Time at) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kHeal;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::degrade_link(Time at, std::size_t a, std::size_t b,
                                   double latency_factor, double extra_loss) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkDegrade;
  e.dp = a;
  e.peer = b;
  e.latency_factor = latency_factor;
  e.extra_loss = extra_loss;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::degrade_dp(Time at, std::size_t dp, double latency_factor,
                                 double extra_loss) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkDegrade;
  e.dp = dp;
  e.all_peers = true;
  e.latency_factor = latency_factor;
  e.extra_loss = extra_loss;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::restore_link(Time at, std::size_t a, std::size_t b) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkRestore;
  e.dp = a;
  e.peer = b;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::restore_dp(Time at, std::size_t dp) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkRestore;
  e.dp = dp;
  e.all_peers = true;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::join(Time at) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDpJoin;
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::leave(Time at, std::size_t dp) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDpLeave;
  e.dp = dp;
  add(std::move(e));
  return *this;
}

std::size_t FaultPlan::max_dp_index() const {
  std::size_t max_index = 0;
  for (const FaultEvent& e : events_) {
    switch (e.kind) {
      case FaultKind::kDpCrash:
      case FaultKind::kDpRestart:
      case FaultKind::kDpLeave:
      case FaultKind::kDiskTorn:
      case FaultKind::kDiskBitRot:
      case FaultKind::kDiskStall:
      case FaultKind::kDiskRestore:
        max_index = std::max(max_index, e.dp);
        break;
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkRestore:
      case FaultKind::kOneWayPartition:
      case FaultKind::kOneWayHeal:
        max_index = std::max(max_index, e.dp);
        if (!e.all_peers) max_index = std::max(max_index, e.peer);
        break;
      case FaultKind::kPartition:
        for (const auto& island : e.islands)
          for (const std::size_t dp : island) max_index = std::max(max_index, dp);
        break;
      case FaultKind::kHeal:
      case FaultKind::kDpJoin:
      case FaultKind::kCorrupt:
        break;
    }
  }
  return max_index;
}

std::size_t FaultPlan::join_count() const {
  std::size_t joins = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kDpJoin) ++joins;
  }
  return joins;
}

void FaultPlan::arm(Simulation& sim, std::function<void(const FaultEvent&)> apply) const {
  for (const FaultEvent& event : events_) {
    sim.schedule_at(event.at, [event, apply] { apply(event); });
  }
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (const FaultEvent& e : events_) {
    os << "t=" << e.at.to_seconds() << "s ";
    switch (e.kind) {
      case FaultKind::kDpCrash:
        os << "crash dp" << e.dp;
        break;
      case FaultKind::kDpRestart:
        os << "restart dp" << e.dp;
        break;
      case FaultKind::kPartition: {
        os << "partition ";
        for (std::size_t i = 0; i < e.islands.size(); ++i) {
          if (i) os << " | ";
          for (std::size_t j = 0; j < e.islands[i].size(); ++j) {
            if (j) os << ",";
            os << "dp" << e.islands[i][j];
          }
        }
        if (e.split_clients) os << " (clients split)";
        break;
      }
      case FaultKind::kHeal:
        os << "heal";
        break;
      case FaultKind::kLinkDegrade:
        if (e.all_peers) os << "degrade dp" << e.dp << " all links";
        else os << "degrade link dp" << e.dp << ":dp" << e.peer;
        os << " latency x" << e.latency_factor << " +loss " << e.extra_loss;
        break;
      case FaultKind::kLinkRestore:
        if (e.all_peers) os << "restore dp" << e.dp << " all links";
        else os << "restore link dp" << e.dp << ":dp" << e.peer;
        break;
      case FaultKind::kDpJoin:
        os << "join";
        break;
      case FaultKind::kDpLeave:
        os << "leave dp" << e.dp;
        break;
      case FaultKind::kOneWayPartition:
        os << "oneway dp" << e.dp << " -> ";
        if (e.all_peers) os << "all";
        else os << "dp" << e.peer;
        break;
      case FaultKind::kOneWayHeal:
        os << "heal oneway dp" << e.dp << " -> ";
        if (e.all_peers) os << "all";
        else os << "dp" << e.peer;
        break;
      case FaultKind::kCorrupt:
        if (e.corrupt_rate > 0.0) os << "corrupt rate " << e.corrupt_rate;
        else os << "corrupt off";
        break;
      case FaultKind::kDiskTorn:
        os << "disk torn tail dp" << e.dp;
        break;
      case FaultKind::kDiskBitRot:
        os << "disk bit rot dp" << e.dp;
        break;
      case FaultKind::kDiskStall:
        os << "disk stall dp" << e.dp << " x" << e.latency_factor;
        break;
      case FaultKind::kDiskRestore:
        os << "disk restore dp" << e.dp;
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace digruber::sim
