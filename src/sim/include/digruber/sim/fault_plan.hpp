#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "digruber/common/result.hpp"
#include "digruber/sim/simulation.hpp"
#include "digruber/sim/time.hpp"

namespace digruber::sim {

/// What a scripted fault does when it fires. Decision points are named by
/// deployment index (not NodeId): a plan is written against the scenario
/// config, before any transport address exists.
enum class FaultKind : std::uint8_t {
  kDpCrash = 0,   // kill a decision point (volatile state lost)
  kDpRestart,     // bring it back: re-bootstrap + anti-entropy catch-up
  kPartition,     // split the network into reachability islands
  kHeal,          // remove all partitions
  kLinkDegrade,   // inflate latency / add loss on one link (or all of a DP's)
  kLinkRestore,   // undo a degradation
};

/// One timed fault. Which fields are meaningful depends on `kind`:
///   kDpCrash/kDpRestart    — `dp`
///   kPartition             — `islands` (decision-point indices per island;
///                            unlisted nodes stay on island 0)
///   kHeal                  — nothing
///   kLinkDegrade/kRestore  — `dp` + `peer` (one link) or `dp` +
///                            `all_peers` (every link of that DP), with
///                            `latency_factor` / `extra_loss` on degrade
struct FaultEvent {
  Time at;
  FaultKind kind = FaultKind::kDpCrash;
  std::size_t dp = 0;
  std::size_t peer = 0;
  bool all_peers = false;
  double latency_factor = 1.0;
  double extra_loss = 0.0;
  std::vector<std::vector<std::size_t>> islands;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A deterministic, scriptable fault schedule. The plan is pure data: the
/// same (config, seed) always replays the same faults at the same simulated
/// instants, so faulted runs are bit-reproducible. The experiment harness
/// maps decision-point indices to live objects and network addresses when
/// an event fires (see experiments/scenario.cpp).
///
/// Text grammar — one event per line (or ';'-separated), '#' comments:
///
///   at=<time> crash dp=<i>
///   at=<time> restart dp=<i>
///   at=<time> partition islands=<i,j,...>|<k,...>[|...]
///   at=<time> heal
///   at=<time> degrade link=<a>:<b> [latency=<k>] [loss=<p>]
///   at=<time> degrade dp=<i> [latency=<k>] [loss=<p>]
///   at=<time> restore link=<a>:<b>
///   at=<time> restore dp=<i>
///
/// <time> accepts plain seconds or an s/m/h suffix: `90`, `90s`, `1.5m`.
class FaultPlan {
 public:
  static Result<FaultPlan> parse(const std::string& text);

  /// Builder API (mirrors the grammar).
  FaultPlan& crash(Time at, std::size_t dp);
  FaultPlan& restart(Time at, std::size_t dp);
  FaultPlan& partition(Time at, std::vector<std::vector<std::size_t>> islands);
  FaultPlan& heal(Time at);
  FaultPlan& degrade_link(Time at, std::size_t a, std::size_t b,
                          double latency_factor, double extra_loss);
  FaultPlan& degrade_dp(Time at, std::size_t dp, double latency_factor,
                        double extra_loss);
  FaultPlan& restore_link(Time at, std::size_t a, std::size_t b);
  FaultPlan& restore_dp(Time at, std::size_t dp);

  void add(FaultEvent event);

  /// Events sorted by time; equal times keep insertion order.
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  /// Largest decision-point index the plan references (0 when empty) —
  /// lets the harness validate a plan against the deployment size.
  [[nodiscard]] std::size_t max_dp_index() const;

  /// Schedule every event on `sim`; `apply` runs at each event's time.
  void arm(Simulation& sim, std::function<void(const FaultEvent&)> apply) const;

  /// One-line-per-event human-readable summary (bench banners, logs).
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace digruber::sim
