#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "digruber/common/result.hpp"
#include "digruber/sim/simulation.hpp"
#include "digruber/sim/time.hpp"

namespace digruber::sim {

/// What a scripted fault does when it fires. Decision points are named by
/// deployment index (not NodeId): a plan is written against the scenario
/// config, before any transport address exists.
enum class FaultKind : std::uint8_t {
  kDpCrash = 0,   // kill a decision point (volatile state lost)
  kDpRestart,     // bring it back: re-bootstrap + anti-entropy catch-up
  kPartition,     // split the network into reachability islands
  kHeal,          // remove all partitions
  kLinkDegrade,   // inflate latency / add loss on one link (or all of a DP's)
  kLinkRestore,   // undo a degradation
  kDpJoin,        // a brand-new decision point joins via snapshot bootstrap
  kDpLeave,       // a decision point drains and departs gracefully
  kOneWayPartition,  // drop traffic from one DP towards another (or all)
  kOneWayHeal,       // undo a one-way partition (kHeal also clears them)
  kCorrupt,          // set the transport's bit-flip corruption rate
  kDiskTorn,         // tear the tail of a DP's WAL (lost final frames)
  kDiskBitRot,       // flip one random bit of a DP's on-disk state
  kDiskStall,        // multiply a DP's disk latency (brown-out)
  kDiskRestore,      // reset a DP's disk latency to nominal
};

/// One timed fault. Which fields are meaningful depends on `kind`:
///   kDpCrash/kDpRestart    — `dp`
///   kPartition             — `islands` (decision-point indices per island;
///                            unlisted nodes stay on island 0)
///   kHeal                  — nothing
///   kLinkDegrade/kRestore  — `dp` + `peer` (one link) or `dp` +
///                            `all_peers` (every link of that DP), with
///                            `latency_factor` / `extra_loss` on degrade
///   kDpJoin                — nothing (the harness assigns the next free
///                            deployment index to each join in plan order)
///   kDpLeave               — `dp`
///   kOneWayPartition/kHeal — `dp` (the sender) + `peer`, or `dp` +
///                            `all_peers` to cut the sender's traffic to
///                            every other decision point
///   kCorrupt               — `corrupt_rate` (0 turns corruption off)
///   kDiskTorn/kDiskBitRot  — `dp` (no-op unless that DP has durability on)
///   kDiskStall             — `dp` + `latency_factor`
///   kDiskRestore           — `dp`
struct FaultEvent {
  Time at;
  FaultKind kind = FaultKind::kDpCrash;
  std::size_t dp = 0;
  std::size_t peer = 0;
  bool all_peers = false;
  double latency_factor = 1.0;
  double extra_loss = 0.0;
  double corrupt_rate = 0.0;
  /// kPartition only: also spread the client fleet round-robin across the
  /// islands (default keeps every client on island 0). This is what makes
  /// genuine split-brain reachable: both sides keep taking queries against
  /// divergent views.
  bool split_clients = false;
  std::vector<std::vector<std::size_t>> islands;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A deterministic, scriptable fault schedule. The plan is pure data: the
/// same (config, seed) always replays the same faults at the same simulated
/// instants, so faulted runs are bit-reproducible. The experiment harness
/// maps decision-point indices to live objects and network addresses when
/// an event fires (see experiments/scenario.cpp).
///
/// Text grammar — one event per line (or ';'-separated), '#' comments:
///
///   at=<time> crash dp=<i>
///   at=<time> restart dp=<i>
///   at=<time> partition islands=<i,j,...>|<k,...>[|...] [clients=split]
///   at=<time> heal
///   at=<time> degrade link=<a>:<b> [latency=<k>] [loss=<p>]
///   at=<time> degrade dp=<i> [latency=<k>] [loss=<p>]
///   at=<time> restore link=<a>:<b>
///   at=<time> restore dp=<i>
///   at=<time> join
///   at=<time> leave dp=<i>
///   at=<time> oneway from=<a> [to=<b>]
///   at=<time> healoneway from=<a> [to=<b>]
///   at=<time> corrupt rate=<p>
///   at=<time> disktorn dp=<i>
///   at=<time> diskrot dp=<i>
///   at=<time> diskstall dp=<i> [factor=<k>]
///   at=<time> diskrestore dp=<i>
///
/// <time> accepts plain seconds or an s/m/h suffix: `90`, `90s`, `1.5m`.
/// Knobs for FaultPlan::random (the chaos harness's schedule generator).
struct RandomFaultOptions {
  std::size_t n_dps = 3;
  /// Faults are scheduled inside [horizon * 0.1, horizon * 0.9] so the run
  /// has clean lead-in and recovery phases.
  Duration horizon = Duration::minutes(10);
  /// Independent fault episodes to compose (each is a crash+restart pair,
  /// a partition+heal pair, or a degrade+restore pair).
  std::size_t episodes = 4;
  bool allow_crashes = true;
  bool allow_partitions = true;
  bool allow_degrades = true;
  /// Never schedule a crash that would leave zero running decision points
  /// (crash episodes pick among DPs not already down at that instant).
  bool keep_one_alive = true;
  /// Membership churn (default off so existing chaos seeds replay the same
  /// schedules byte for byte). Joins add fresh decision points mid-run;
  /// leaves drain an initial DP permanently — a left DP counts as down for
  /// the rest of the horizon, so it is never crashed afterwards and still
  /// honors keep_one_alive.
  bool allow_joins = false;
  bool allow_leaves = false;
  /// Asymmetric partition episodes (one-way sender cut + matched heal).
  /// Default off so existing chaos seeds replay the same schedules.
  bool allow_oneway_partitions = false;
  /// Bit-flip corruption episodes (corrupt rate=p ... corrupt rate=0).
  bool allow_corruption = false;
  /// Disk-fault riders on crash episodes (default off so existing chaos
  /// seeds replay the same schedules). When on, each crash episode may
  /// tear the victim's WAL tail just before the crash, rot a bit while it
  /// is down, or bracket the restart with a disk stall. No-ops against
  /// decision points running without durability.
  bool allow_disk_faults = false;
  /// Make island partitions split the client fleet across islands so both
  /// sides keep receiving queries (true split-brain pressure).
  bool split_clients_in_partitions = false;
};

class FaultPlan {
 public:
  static Result<FaultPlan> parse(const std::string& text);

  /// Generate a random-but-reproducible fault schedule: the same
  /// (seed, options) always yields the same plan. Each episode is a
  /// matched pair (crash/restart, partition/heal, degrade/restore), so
  /// every fault heals within the horizon and post-run invariants can
  /// expect a reconverged mesh.
  static FaultPlan random(std::uint64_t seed, const RandomFaultOptions& options);

  /// Builder API (mirrors the grammar).
  FaultPlan& crash(Time at, std::size_t dp);
  FaultPlan& restart(Time at, std::size_t dp);
  FaultPlan& partition(Time at, std::vector<std::vector<std::size_t>> islands,
                       bool split_clients = false);
  FaultPlan& heal(Time at);
  FaultPlan& oneway(Time at, std::size_t from, std::size_t to);
  FaultPlan& oneway_all(Time at, std::size_t from);
  FaultPlan& heal_oneway(Time at, std::size_t from, std::size_t to);
  FaultPlan& heal_oneway_all(Time at, std::size_t from);
  FaultPlan& corrupt(Time at, double rate);
  FaultPlan& disk_torn(Time at, std::size_t dp);
  FaultPlan& disk_rot(Time at, std::size_t dp);
  FaultPlan& disk_stall(Time at, std::size_t dp, double latency_factor);
  FaultPlan& disk_restore(Time at, std::size_t dp);
  FaultPlan& degrade_link(Time at, std::size_t a, std::size_t b,
                          double latency_factor, double extra_loss);
  FaultPlan& degrade_dp(Time at, std::size_t dp, double latency_factor,
                        double extra_loss);
  FaultPlan& restore_link(Time at, std::size_t a, std::size_t b);
  FaultPlan& restore_dp(Time at, std::size_t dp);
  FaultPlan& join(Time at);
  FaultPlan& leave(Time at, std::size_t dp);

  void add(FaultEvent event);

  /// Events sorted by time; equal times keep insertion order.
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  /// Largest decision-point index the plan references (0 when empty) —
  /// lets the harness validate a plan against the deployment size.
  [[nodiscard]] std::size_t max_dp_index() const;
  /// Number of kDpJoin events — each one grows the deployment by one, so
  /// the harness validates `max_dp_index() < n_dps + join_count()`.
  [[nodiscard]] std::size_t join_count() const;

  /// Schedule every event on `sim`; `apply` runs at each event's time.
  void arm(Simulation& sim, std::function<void(const FaultEvent&)> apply) const;

  /// One-line-per-event human-readable summary (bench banners, logs).
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace digruber::sim
