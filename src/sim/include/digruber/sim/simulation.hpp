#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "digruber/common/rng.hpp"
#include "digruber/sim/time.hpp"

namespace digruber::sim {

using EventId = std::uint64_t;

/// Deterministic discrete-event simulation kernel. Events with equal
/// timestamps fire in scheduling order (FIFO), so a run is a pure function
/// of (initial state, seed).
class Simulation {
 public:
  using Callback = std::function<void()>;

  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  EventId schedule_at(Time when, Callback cb);
  EventId schedule_after(Duration delay, Callback cb);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId id);

  /// Run until the queue drains or `stop()` is called.
  void run();
  /// Run until simulated time reaches `until` (events at exactly `until`
  /// still fire); the clock is left at `until` if the queue drained early.
  void run_until(Time until);
  /// Requests the current `run` loop to return after the in-flight event.
  void stop() { stopped_ = true; }

  /// Root RNG for the run; actors should fork() sub-streams from it during
  /// setup so their draws are independent of event interleaving.
  Rng& rng() { return rng_; }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t events_pending() const { return callbacks_.size(); }

 private:
  struct Entry {
    Time when;
    EventId id;
    // std::priority_queue is a max-heap; invert for (time, id) min order.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  /// Pops and runs the earliest pending event; returns false if drained.
  bool step(Time until);

  Time now_ = Time::zero();
  bool stopped_ = false;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<Entry> queue_;
  std::unordered_map<EventId, Callback> callbacks_;
  Rng rng_;
};

/// RAII repeating timer: calls `fn` every `period` starting at
/// `start_delay` after construction, until destroyed or `stop()`ed.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulation& sim, Duration period, std::function<void()> fn,
                Duration start_delay = Duration::zero());
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(Duration delay);

  Simulation& sim_;
  Duration period_;
  std::function<void()> fn_;
  bool running_ = true;
  EventId pending_ = 0;
};

}  // namespace digruber::sim
