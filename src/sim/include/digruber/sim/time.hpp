#pragma once

#include <cstdint>
#include <ostream>

namespace digruber::sim {

/// Duration in integer microseconds. Integer ticks keep the event queue
/// total order exact and runs bit-reproducible.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration micros(std::int64_t us) { return Duration(us); }
  static constexpr Duration millis(double ms) { return Duration(std::int64_t(ms * 1e3)); }
  static constexpr Duration seconds(double s) { return Duration(std::int64_t(s * 1e6)); }
  static constexpr Duration minutes(double m) { return Duration(std::int64_t(m * 6e7)); }
  static constexpr Duration hours(double h) { return Duration(std::int64_t(h * 3.6e9)); }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() { return Duration(INT64_MAX); }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double to_seconds() const { return double(us_) * 1e-6; }
  [[nodiscard]] constexpr double to_minutes() const { return double(us_) / 6e7; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.us_ + b.us_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.us_ - b.us_); }
  friend constexpr Duration operator*(Duration a, double k) { return Duration(std::int64_t(double(a.us_) * k)); }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  friend constexpr double operator/(Duration a, Duration b) { return double(a.us_) / double(b.us_); }
  friend constexpr auto operator<=>(Duration a, Duration b) = default;

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.to_seconds() << "s";
  }

  /// Wire-format support (see net/wire/archive.hpp).
  template <class Archive>
  void serialize(Archive& ar) {
    ar & us_;
  }

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// Absolute simulation time (microseconds since simulation start).
class Time {
 public:
  constexpr Time() = default;
  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() { return Time(INT64_MAX); }
  static constexpr Time from_seconds(double s) { return Time(std::int64_t(s * 1e6)); }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double to_seconds() const { return double(us_) * 1e-6; }
  [[nodiscard]] constexpr double to_minutes() const { return double(us_) / 6e7; }

  friend constexpr Time operator+(Time t, Duration d) { return Time(t.us_ + d.us()); }
  friend constexpr Time operator-(Time t, Duration d) { return Time(t.us_ - d.us()); }
  friend constexpr Duration operator-(Time a, Time b) { return Duration::micros(a.us_ - b.us_); }
  friend constexpr auto operator<=>(Time a, Time b) = default;

  friend std::ostream& operator<<(std::ostream& os, Time t) {
    return os << t.to_seconds() << "s";
  }

  /// Wire-format support (see net/wire/archive.hpp).
  template <class Archive>
  void serialize(Archive& ar) {
    ar & us_;
  }

 private:
  constexpr explicit Time(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace digruber::sim
