#include "digruber/sim/simulation.hpp"

#include <cassert>
#include <utility>

namespace digruber::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventId Simulation::schedule_at(Time when, Callback cb) {
  assert(when >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  queue_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

EventId Simulation::schedule_after(Duration delay, Callback cb) {
  assert(delay >= Duration::zero());
  return schedule_at(now_ + delay, std::move(cb));
}

void Simulation::cancel(EventId id) { callbacks_.erase(id); }

bool Simulation::step(Time until) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    const auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      queue_.pop();  // cancelled; discard lazily
      continue;
    }
    if (top.when > until) return false;
    queue_.pop();
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.when;
    ++processed_;
    cb();
    return true;
  }
  return false;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step(Time::max())) {
  }
}

void Simulation::run_until(Time until) {
  stopped_ = false;
  while (!stopped_ && step(until)) {
  }
  if (!stopped_ && now_ < until) now_ = until;
}

PeriodicTimer::PeriodicTimer(Simulation& sim, Duration period,
                             std::function<void()> fn, Duration start_delay)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  assert(period_ > Duration::zero());
  arm(start_delay);
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::stop() {
  if (running_) {
    running_ = false;
    sim_.cancel(pending_);
  }
}

void PeriodicTimer::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    if (!running_) return;
    arm(period_);
    fn_();
  });
}

}  // namespace digruber::sim
