#include "digruber/trace/export.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <unordered_set>

namespace digruber::trace {

namespace {

const char* kind_code(EventKind kind) {
  switch (kind) {
    case EventKind::kBegin:
      return "B";
    case EventKind::kEnd:
      return "E";
    case EventKind::kInstant:
      return "I";
    case EventKind::kCounter:
      return "C";
  }
  return "?";
}

/// Names are controlled string literals, but escape defensively so a
/// future name can never emit invalid JSON.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

/// Stable track id per (category, actor): categories get disjoint tid
/// ranges so tracks group by subsystem in the viewer.
std::map<std::pair<std::uint8_t, std::uint64_t>, std::uint64_t> track_ids(
    const Tracer& tracer) {
  std::map<std::pair<std::uint8_t, std::uint64_t>, std::uint64_t> tids;
  std::uint64_t next = 1;
  for (const auto& [category, actor] : tracer.actors()) {
    tids[{std::uint8_t(category), actor}] = next++;
  }
  return tids;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  const auto tids = track_ids(tracer);
  const std::vector<TraceEvent> events = tracer.query();

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Track-name metadata so Perfetto shows "client/3", "dp/0", ... rows.
  for (const auto& [key, tid] : tids) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << category_name(Category(key.first)) << "/" << key.second << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << tid
       << "}}";
  }

  std::unordered_set<std::uint64_t> traces_seen;
  for (const TraceEvent& event : events) {
    const std::uint64_t tid = tids.at({std::uint8_t(event.category), event.actor});
    sep();
    if (event.kind == EventKind::kCounter) {
      os << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << event.ts.us()
         << ",\"name\":\"";
      write_escaped(os, event.name);
      os << "\",\"args\":{\"value\":" << event.a0 << "}}";
      continue;
    }
    const char* ph = event.kind == EventKind::kBegin  ? "B"
                     : event.kind == EventKind::kEnd ? "E"
                                                     : "i";
    os << "{\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":" << tid
       << ",\"ts\":" << event.ts.us() << ",\"cat\":\""
       << category_name(event.category) << "\",\"name\":\"";
    write_escaped(os, event.name);
    os << "\"";
    if (event.kind == EventKind::kInstant) os << ",\"s\":\"t\"";
    os << ",\"args\":{\"trace\":" << event.trace << ",\"span\":" << event.span
       << ",\"parent\":" << event.parent << ",\"a0\":" << event.a0
       << ",\"a1\":" << event.a1;
    if (event.wall_ns) os << ",\"wall_ns\":" << event.wall_ns;
    os << "}}";

    // Flow arrows stitch one trace's spans across tracks: "s" opens the
    // flow at the trace's first span, "t" steps it through each later one.
    if (event.kind == EventKind::kBegin && event.trace != 0) {
      const bool opened = !traces_seen.insert(event.trace).second;
      sep();
      os << "{\"ph\":\"" << (opened ? "t" : "s") << "\",\"pid\":1,\"tid\":" << tid
         << ",\"ts\":" << event.ts.us() << ",\"cat\":\"flow\",\"name\":\"trace\""
         << ",\"id\":" << event.trace << "}";
    }
  }
  os << "\n]}\n";
}

void write_jsonl(std::ostream& os, const Tracer& tracer) {
  for (const TraceEvent& event : tracer.query()) {
    os << "{\"seq\":" << event.seq << ",\"kind\":\"" << kind_code(event.kind)
       << "\",\"cat\":\"" << category_name(event.category) << "\",\"actor\":"
       << event.actor << ",\"name\":\"";
    write_escaped(os, event.name);
    os << "\",\"trace\":" << event.trace << ",\"span\":" << event.span
       << ",\"parent\":" << event.parent << ",\"ts_us\":" << event.ts.us()
       << ",\"a0\":" << event.a0 << ",\"a1\":" << event.a1;
    if (event.wall_ns) os << ",\"wall_ns\":" << event.wall_ns;
    os << "}\n";
  }
}

std::string write_trace_file(const std::string& path, const std::string& format,
                             const Tracer& tracer) {
  std::ofstream os(path);
  if (!os) return "cannot open " + path;
  if (format == "chrome") {
    write_chrome_trace(os, tracer);
  } else if (format == "jsonl") {
    write_jsonl(os, tracer);
  } else {
    return "unknown trace format '" + format + "' (chrome|jsonl)";
  }
  os.flush();
  return os ? std::string() : "write to " + path + " failed";
}

}  // namespace digruber::trace
