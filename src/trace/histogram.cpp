#include "digruber/trace/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace digruber::trace {

namespace {

std::uint32_t round_up_pow2(std::uint32_t v) {
  if (v < 2) return 2;
  return std::uint32_t(1) << (32 - std::countl_zero(v - 1));
}

}  // namespace

LogHistogram::LogHistogram(std::uint32_t sub_buckets)
    : sub_buckets_(round_up_pow2(sub_buckets)),
      sub_shift_(std::uint32_t(std::countr_zero(sub_buckets_))) {}

std::size_t LogHistogram::index_of(std::int64_t value) const {
  const auto v = std::uint64_t(value);
  if (v < sub_buckets_) return std::size_t(v);
  // v >= sub_buckets_: shift so v >> k lands in [sub/2, sub); each
  // power-of-two range contributes sub/2 linear sub-buckets.
  const auto k = std::uint32_t(std::bit_width(v)) - sub_shift_;
  const std::uint64_t half = sub_buckets_ / 2;
  return std::size_t(sub_buckets_ + (k - 1) * half + ((v >> k) - half));
}

std::int64_t LogHistogram::lower_of(std::size_t index) const {
  if (index < sub_buckets_) return std::int64_t(index);
  const std::uint64_t half = sub_buckets_ / 2;
  const std::uint64_t k = (index - sub_buckets_) / half + 1;
  const std::uint64_t m = half + (index - sub_buckets_) % half;
  return std::int64_t(m << k);
}

std::int64_t LogHistogram::upper_of(std::size_t index) const {
  if (index < sub_buckets_) return std::int64_t(index) + 1;
  const std::uint64_t half = sub_buckets_ / 2;
  const std::uint64_t k = (index - sub_buckets_) / half + 1;
  const std::uint64_t m = half + (index - sub_buckets_) % half;
  return std::int64_t((m + 1) << k);
}

std::int64_t LogHistogram::representative(std::size_t index) const {
  if (index < sub_buckets_) return std::int64_t(index);  // exact range
  const std::int64_t lo = lower_of(index);
  const std::int64_t hi = upper_of(index);
  return lo + (hi - lo) / 2;
}

void LogHistogram::record_n(std::int64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (value < 0) {
    value = 0;
    clamped_ += count;
  }
  const std::size_t index = index_of(value);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  counts_[index] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += double(value) * double(count);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (other.sub_buckets_ == sub_buckets_) {
    if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = count_ ? std::max(max_, other.max_) : other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    clamped_ += other.clamped_;
    return;
  }
  // Mismatched precision: re-record by representative (rare path).
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    if (other.counts_[i]) record_n(other.representative(i), other.counts_[i]);
  }
}

void LogHistogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  clamped_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0;
}

double LogHistogram::mean() const { return count_ ? sum_ / double(count_) : 0.0; }

std::int64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto rank = std::uint64_t(std::ceil(q * double(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(1, std::min(rank, count_));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      return std::clamp(representative(i), min_, max_);
    }
  }
  return max_;  // unreachable when counters are consistent
}

std::vector<LogHistogram::Bucket> LogHistogram::buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out.push_back(Bucket{lower_of(i), upper_of(i), counts_[i]});
  }
  return out;
}

}  // namespace digruber::trace
