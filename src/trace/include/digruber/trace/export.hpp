#pragma once

#include <iosfwd>
#include <string>

#include "digruber/trace/trace.hpp"

namespace digruber::trace {

/// Write every retained event as Chrome `trace_event` JSON, loadable in
/// chrome://tracing and Perfetto. Each (category, actor) ring renders as
/// one named track; spans become B/E duration events, instants become "i"
/// events, counters become "C" events, and cross-actor correlation is
/// drawn with flow arrows (s/t phases keyed by trace id).
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// Write every retained event as line-oriented JSON (one object per line,
/// (ts, seq)-ordered) for scripting: jq, awk, and tools/trace_inspect.
void write_jsonl(std::ostream& os, const Tracer& tracer);

/// Write to `path` in the given format ("chrome" or "jsonl"). Returns an
/// empty string on success, else an error message.
std::string write_trace_file(const std::string& path, const std::string& format,
                             const Tracer& tracer);

}  // namespace digruber::trace
