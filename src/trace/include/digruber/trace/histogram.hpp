#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace digruber::trace {

/// HDR-style log-bucketed latency histogram over non-negative integer
/// values (the trace subsystem records microseconds). Values below
/// `sub_buckets` are counted exactly; above that, each power-of-two range
/// is split into `sub_buckets / 2` linear sub-buckets, bounding the
/// relative quantile error by 1 / sub_buckets (0.78% at the default 128).
/// Memory is O(sub_buckets * log2(max value)) regardless of sample count,
/// and min / max are tracked exactly so p0 / p100 are never approximated.
class LogHistogram {
 public:
  explicit LogHistogram(std::uint32_t sub_buckets = 128);

  void record(std::int64_t value) { record_n(value, 1); }
  void record_n(std::int64_t value, std::uint64_t count);
  void merge(const LogHistogram& other);
  void clear();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::int64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const;
  /// Negative inputs clamped to zero before bucketing (latency cannot be
  /// negative; a clamp beats silently corrupting the index math).
  [[nodiscard]] std::uint64_t clamped() const { return clamped_; }

  /// Value at quantile q in [0, 1]: the representative (range midpoint) of
  /// the bucket holding the ceil(q * count)-th sample, clamped to the exact
  /// observed [min, max]. q <= 0 returns min, q >= 1 returns max, exactly.
  [[nodiscard]] std::int64_t quantile(double q) const;
  [[nodiscard]] std::int64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::int64_t p90() const { return quantile(0.90); }
  [[nodiscard]] std::int64_t p95() const { return quantile(0.95); }
  [[nodiscard]] std::int64_t p99() const { return quantile(0.99); }

  /// Largest relative error quantile() can make for values >= sub_buckets
  /// (exact below that): half a sub-bucket width over the range start.
  [[nodiscard]] double max_relative_error() const {
    return 1.0 / double(sub_buckets_);
  }

  /// One populated bucket, for exporters and inspection.
  struct Bucket {
    std::int64_t lower = 0;  // inclusive range start
    std::int64_t upper = 0;  // exclusive range end
    std::uint64_t count = 0;
  };
  [[nodiscard]] std::vector<Bucket> buckets() const;

 private:
  [[nodiscard]] std::size_t index_of(std::int64_t value) const;
  [[nodiscard]] std::int64_t lower_of(std::size_t index) const;
  [[nodiscard]] std::int64_t upper_of(std::size_t index) const;
  [[nodiscard]] std::int64_t representative(std::size_t index) const;

  std::uint32_t sub_buckets_;
  std::uint32_t sub_shift_;  // log2(sub_buckets_)
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t clamped_ = 0;
  double sum_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace digruber::trace
