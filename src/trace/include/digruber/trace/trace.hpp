#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "digruber/sim/time.hpp"

namespace digruber::sim {
class Simulation;
}

namespace digruber::trace {

/// Event taxonomy. Spans are begin/end pairs sharing a span id; instants
/// are point events; counters carry a sampled value in `a0`.
enum class EventKind : std::uint8_t { kBegin = 0, kEnd, kInstant, kCounter };

/// Actor namespaces: each (category, actor id) pair owns one ring buffer
/// and renders as one track in the Chrome-trace export.
enum class Category : std::uint8_t {
  kClient = 0,  // submission hosts (actor = ClientId)
  kDp,          // decision points (actor = DpId)
  kRpc,         // rpc endpoints (actor = NodeId)
  kNet,         // transport (actor = NodeId of the packet's src/dst)
  kScenario,    // experiment harness phase markers (actor = 0)
  kCount,
};
const char* category_name(Category category);

/// Correlation handle: `trace` ties every event of one logical operation
/// (e.g. a client query and all its retries, handlers, and packets)
/// together; `span` identifies one begin/end pair within it.
struct SpanContext {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  [[nodiscard]] bool valid() const { return span != 0; }
};

/// One recorded event. `name` must be a static-lifetime string literal —
/// the recorder stores the pointer, never a copy.
struct TraceEvent {
  std::uint64_t seq = 0;  // global record order (stable sort key at equal ts)
  EventKind kind = EventKind::kInstant;
  Category category = Category::kScenario;
  const char* name = "";
  std::uint64_t actor = 0;
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;     // parent span id (0 = root)
  sim::Time ts;                 // simulation time
  std::int64_t wall_ns = 0;     // wall-clock offset from session start (0 = off)
  std::int64_t a0 = 0;          // event-specific args (documented per site)
  std::int64_t a1 = 0;
};

struct TracerOptions {
  /// Events kept per (category, actor) ring; older events are overwritten
  /// and counted as dropped.
  std::size_t ring_capacity = std::size_t(1) << 14;
  /// Also stamp events with wall time (steady_clock ns since the clock was
  /// bound). Off by default: wall stamps differ run to run.
  bool wall_clock = false;
};

/// Low-overhead event/span recorder. One instance per traced run; install
/// it with TraceSession so instrumented code (which never takes a tracer
/// parameter) finds it via trace::current(). All recording is in-memory
/// into fixed-size per-actor rings — no I/O, no allocation past ring
/// warm-up, no simulator events, no RNG draws — so enabling tracing never
/// perturbs a deterministic run.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  /// Stamp subsequent events from this simulation's clock (and start the
  /// wall clock, when enabled). Call once per run, before events arrive.
  void bind_clock(const sim::Simulation* sim);
  [[nodiscard]] sim::Time now() const;

  /// Begin a span. A default (invalid) parent starts a new trace tree;
  /// passing an existing context makes this a child in the same trace.
  SpanContext begin(Category category, std::uint64_t actor, const char* name,
                    SpanContext parent = {}, std::int64_t a0 = 0,
                    std::int64_t a1 = 0);
  void end(Category category, std::uint64_t actor, const char* name,
           SpanContext ctx, std::int64_t a0 = 0, std::int64_t a1 = 0);
  void instant(Category category, std::uint64_t actor, const char* name,
               SpanContext ctx = {}, std::int64_t a0 = 0, std::int64_t a1 = 0);
  void counter(Category category, std::uint64_t actor, const char* name,
               std::int64_t value);

  /// Ambient-context stack: the innermost pushed span is picked up by
  /// layers with no explicit context plumbing (transport, rpc). The sim is
  /// single-threaded, so a plain stack is exact.
  void push_context(SpanContext ctx);
  void pop_context();
  [[nodiscard]] SpanContext ambient() const;

  /// RPC propagation side channel: the client registers its span under the
  /// caller's (node, correlation) key at call time; the server takes it on
  /// request arrival, joining the handler into the caller's trace without
  /// widening the wire format (which would perturb the WAN model).
  void propagate_rpc(std::uint64_t node, std::uint64_t correlation, SpanContext ctx);
  [[nodiscard]] SpanContext take_rpc(std::uint64_t node, std::uint64_t correlation);
  /// Forget a registered context (timeout / client shutdown); no-op if the
  /// server already took it.
  void drop_rpc(std::uint64_t node, std::uint64_t correlation);

  /// Query API (tests, exporters, inspection).
  struct Filter {
    std::optional<Category> category;
    std::optional<std::uint64_t> actor;
    std::optional<std::uint64_t> trace;
    const char* name = nullptr;  // exact string match when set
    sim::Time from = sim::Time::zero();
    sim::Time to = sim::Time::max();  // exclusive
  };
  /// Matching events across all rings, ordered by (ts, seq).
  [[nodiscard]] std::vector<TraceEvent> query(const Filter& filter) const;
  [[nodiscard]] std::vector<TraceEvent> query() const { return query(Filter{}); }

  struct RingStats {
    std::uint64_t recorded = 0;  // total ever recorded into the ring
    std::uint64_t dropped = 0;   // overwritten by wrap (recorded - kept)
    std::size_t kept = 0;        // currently retrievable
    std::size_t capacity = 0;
  };
  [[nodiscard]] RingStats ring_stats(Category category, std::uint64_t actor) const;
  [[nodiscard]] std::vector<std::pair<Category, std::uint64_t>> actors() const;
  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  [[nodiscard]] const TracerOptions& options() const { return options_; }

 private:
  struct Ring {
    std::vector<TraceEvent> events;  // capacity-bounded, wraps at head
    std::size_t head = 0;
    std::uint64_t recorded = 0;
  };

  Ring& ring_for(Category category, std::uint64_t actor);
  void record(Category category, std::uint64_t actor, TraceEvent event);

  TracerOptions options_;
  const sim::Simulation* sim_ = nullptr;
  std::int64_t wall_origin_ns_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_span_ = 1;
  std::uint64_t next_trace_ = 1;
  std::vector<SpanContext> context_stack_;
  // std::map keeps actors() / query() iteration deterministic.
  std::map<std::pair<std::uint8_t, std::uint64_t>, Ring> rings_;
  std::unordered_map<std::uint64_t, SpanContext> rpc_contexts_;
};

/// The installed tracer, or nullptr when tracing is off. Instrumentation
/// sites gate on this — one load and branch on the hot path.
Tracer* current();

/// RAII installation of a tracer as trace::current() (restores the
/// previous one on destruction, so sessions nest).
class TraceSession {
 public:
  explicit TraceSession(Tracer& tracer);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  Tracer* previous_;
};

/// RAII ambient-context push; no-op (and zero-cost) when tracing is off.
class ContextGuard {
 public:
  explicit ContextGuard(SpanContext ctx);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  Tracer* tracer_;
};

}  // namespace digruber::trace
