#include "digruber/trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "digruber/sim/simulation.hpp"

namespace digruber::trace {

namespace {

Tracer* g_current = nullptr;

/// (node, correlation) -> one 64-bit map key. Node ids are assigned
/// sequentially from 1 and correlations from 1 per client, so both stay
/// far below their allotted bit widths in any realistic run.
std::uint64_t rpc_key(std::uint64_t node, std::uint64_t correlation) {
  return (node << 40) ^ (correlation & ((std::uint64_t(1) << 40) - 1));
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* category_name(Category category) {
  switch (category) {
    case Category::kClient:
      return "client";
    case Category::kDp:
      return "dp";
    case Category::kRpc:
      return "rpc";
    case Category::kNet:
      return "net";
    case Category::kScenario:
      return "scenario";
    case Category::kCount:
      break;
  }
  return "?";
}

Tracer* current() { return g_current; }

TraceSession::TraceSession(Tracer& tracer) : previous_(g_current) {
  g_current = &tracer;
}

TraceSession::~TraceSession() { g_current = previous_; }

ContextGuard::ContextGuard(SpanContext ctx) : tracer_(g_current) {
  if (tracer_) tracer_->push_context(ctx);
}

ContextGuard::~ContextGuard() {
  if (tracer_) tracer_->pop_context();
}

Tracer::Tracer(TracerOptions options) : options_(options) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
}

void Tracer::bind_clock(const sim::Simulation* sim) {
  sim_ = sim;
  if (options_.wall_clock) wall_origin_ns_ = steady_now_ns();
}

sim::Time Tracer::now() const {
  return sim_ ? sim_->now() : sim::Time::zero();
}

Tracer::Ring& Tracer::ring_for(Category category, std::uint64_t actor) {
  Ring& ring = rings_[{std::uint8_t(category), actor}];
  if (ring.events.capacity() == 0) ring.events.reserve(options_.ring_capacity);
  return ring;
}

void Tracer::record(Category category, std::uint64_t actor, TraceEvent event) {
  event.seq = next_seq_++;
  event.category = category;
  event.actor = actor;
  event.ts = now();
  if (options_.wall_clock) event.wall_ns = steady_now_ns() - wall_origin_ns_;
  Ring& ring = ring_for(category, actor);
  ++ring.recorded;
  if (ring.events.size() < options_.ring_capacity) {
    ring.events.push_back(event);
    return;
  }
  // Full: overwrite the oldest slot (that event is now dropped).
  ring.events[ring.head] = event;
  ring.head = (ring.head + 1) % options_.ring_capacity;
}

SpanContext Tracer::begin(Category category, std::uint64_t actor,
                          const char* name, SpanContext parent, std::int64_t a0,
                          std::int64_t a1) {
  SpanContext ctx;
  ctx.trace = parent.trace ? parent.trace : next_trace_++;
  ctx.span = next_span_++;
  TraceEvent event;
  event.kind = EventKind::kBegin;
  event.name = name;
  event.trace = ctx.trace;
  event.span = ctx.span;
  event.parent = parent.span;
  event.a0 = a0;
  event.a1 = a1;
  record(category, actor, event);
  return ctx;
}

void Tracer::end(Category category, std::uint64_t actor, const char* name,
                 SpanContext ctx, std::int64_t a0, std::int64_t a1) {
  TraceEvent event;
  event.kind = EventKind::kEnd;
  event.name = name;
  event.trace = ctx.trace;
  event.span = ctx.span;
  event.a0 = a0;
  event.a1 = a1;
  record(category, actor, event);
}

void Tracer::instant(Category category, std::uint64_t actor, const char* name,
                     SpanContext ctx, std::int64_t a0, std::int64_t a1) {
  TraceEvent event;
  event.kind = EventKind::kInstant;
  event.name = name;
  event.trace = ctx.trace;
  event.span = ctx.span;
  event.a0 = a0;
  event.a1 = a1;
  record(category, actor, event);
}

void Tracer::counter(Category category, std::uint64_t actor, const char* name,
                     std::int64_t value) {
  TraceEvent event;
  event.kind = EventKind::kCounter;
  event.name = name;
  event.a0 = value;
  record(category, actor, event);
}

void Tracer::push_context(SpanContext ctx) { context_stack_.push_back(ctx); }

void Tracer::pop_context() {
  if (!context_stack_.empty()) context_stack_.pop_back();
}

SpanContext Tracer::ambient() const {
  return context_stack_.empty() ? SpanContext{} : context_stack_.back();
}

void Tracer::propagate_rpc(std::uint64_t node, std::uint64_t correlation,
                           SpanContext ctx) {
  rpc_contexts_[rpc_key(node, correlation)] = ctx;
}

SpanContext Tracer::take_rpc(std::uint64_t node, std::uint64_t correlation) {
  const auto it = rpc_contexts_.find(rpc_key(node, correlation));
  if (it == rpc_contexts_.end()) return {};
  SpanContext ctx = it->second;
  rpc_contexts_.erase(it);
  return ctx;
}

void Tracer::drop_rpc(std::uint64_t node, std::uint64_t correlation) {
  rpc_contexts_.erase(rpc_key(node, correlation));
}

std::vector<TraceEvent> Tracer::query(const Filter& filter) const {
  std::vector<TraceEvent> out;
  for (const auto& [key, ring] : rings_) {
    if (filter.category && std::uint8_t(*filter.category) != key.first) continue;
    if (filter.actor && *filter.actor != key.second) continue;
    for (const TraceEvent& event : ring.events) {
      if (filter.trace && event.trace != *filter.trace) continue;
      if (filter.name && std::strcmp(filter.name, event.name) != 0) continue;
      if (event.ts < filter.from || event.ts >= filter.to) continue;
      out.push_back(event);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.seq < b.seq;
  });
  return out;
}

Tracer::RingStats Tracer::ring_stats(Category category, std::uint64_t actor) const {
  RingStats stats;
  stats.capacity = options_.ring_capacity;
  const auto it = rings_.find({std::uint8_t(category), actor});
  if (it == rings_.end()) return stats;
  stats.recorded = it->second.recorded;
  stats.kept = it->second.events.size();
  stats.dropped = stats.recorded - stats.kept;
  return stats;
}

std::vector<std::pair<Category, std::uint64_t>> Tracer::actors() const {
  std::vector<std::pair<Category, std::uint64_t>> out;
  out.reserve(rings_.size());
  for (const auto& [key, ring] : rings_) {
    out.emplace_back(Category(key.first), key.second);
  }
  return out;
}

std::uint64_t Tracer::total_recorded() const {
  std::uint64_t total = 0;
  for (const auto& [key, ring] : rings_) total += ring.recorded;
  return total;
}

std::uint64_t Tracer::total_dropped() const {
  std::uint64_t total = 0;
  for (const auto& [key, ring] : rings_) total += ring.recorded - ring.events.size();
  return total;
}

}  // namespace digruber::trace
