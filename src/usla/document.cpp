#include "digruber/usla/document.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <tuple>

namespace digruber::usla {
namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) out.push_back(token);
  return out;
}

bool parse_entity(const std::string& token, EntityRef& out) {
  if (token == "grid") {
    out = EntityRef{EntityRef::Kind::kGrid, ""};
    return true;
  }
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos || colon + 1 >= token.size()) return false;
  const std::string kind = token.substr(0, colon);
  const std::string name = token.substr(colon + 1);
  if (kind == "site") out = EntityRef{EntityRef::Kind::kSite, name};
  else if (kind == "vo") out = EntityRef{EntityRef::Kind::kVo, name};
  else if (kind == "group") out = EntityRef{EntityRef::Kind::kGroup, name};
  else if (kind == "user") out = EntityRef{EntityRef::Kind::kUser, name};
  else return false;
  return true;
}

bool parse_share(const std::string& token, ShareSpec& out) {
  std::string digits = token;
  out.bound = BoundKind::kTarget;
  if (!digits.empty() && (digits.back() == '+' || digits.back() == '-')) {
    out.bound = digits.back() == '+' ? BoundKind::kUpperLimit : BoundKind::kLowerLimit;
    digits.pop_back();
  }
  if (digits.empty()) return false;
  try {
    std::size_t used = 0;
    out.percent = std::stod(digits, &used);
    if (used != digits.size()) return false;
  } catch (const std::exception&) {
    return false;
  }
  return out.percent >= 0.0 && out.percent <= 100.0;
}

bool parse_resource(const std::string& token, ResourceKind& out) {
  if (token == "cpu") out = ResourceKind::kCpu;
  else if (token == "storage") out = ResourceKind::kStorage;
  else if (token == "network") out = ResourceKind::kNetwork;
  else return false;
  return true;
}

Result<Agreement> fail(int lineno, const std::string& what) {
  return Result<Agreement>::failure("line " + std::to_string(lineno) + ": " + what);
}

}  // namespace

Result<Agreement> parse_agreement(const std::string& text) {
  Agreement agreement;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) continue;

    if (tokens[0] == "agreement") {
      if (tokens.size() != 2) return fail(lineno, "expected: agreement <name>");
      agreement.name = tokens[1];
    } else if (tokens[0] == "context") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].find('=');
        if (eq == std::string::npos) return fail(lineno, "expected key=value");
        const std::string key = tokens[i].substr(0, eq);
        const std::string value = tokens[i].substr(eq + 1);
        if (key == "provider") agreement.context_provider = value;
        else if (key == "consumer") agreement.context_consumer = value;
        else return fail(lineno, "unknown context key: " + key);
      }
    } else if (tokens[0] == "term") {
      // term <name>: <provider> -> <consumer> <resource> <share>
      if (tokens.size() != 7 || tokens[3] != "->") {
        return fail(lineno, "expected: term <name>: <provider> -> <consumer> <resource> <pct>[+|-]");
      }
      ServiceTerm term;
      term.name = tokens[1];
      if (term.name.empty() || term.name.back() != ':') {
        return fail(lineno, "term name must end with ':'");
      }
      term.name.pop_back();
      if (!parse_entity(tokens[2], term.provider)) return fail(lineno, "bad provider entity: " + tokens[2]);
      if (!parse_entity(tokens[4], term.consumer)) return fail(lineno, "bad consumer entity: " + tokens[4]);
      if (!parse_resource(tokens[5], term.resource)) return fail(lineno, "bad resource: " + tokens[5]);
      if (!parse_share(tokens[6], term.share)) return fail(lineno, "bad share: " + tokens[6]);
      agreement.terms.push_back(std::move(term));
    } else if (tokens[0] == "goal") {
      if (tokens.size() != 4) return fail(lineno, "expected: goal <metric> <|> <threshold>");
      Goal goal;
      goal.metric = tokens[1];
      goal.relation = tokens[2];
      if (goal.relation != "<" && goal.relation != ">") return fail(lineno, "relation must be < or >");
      try {
        goal.threshold = std::stod(tokens[3]);
      } catch (const std::exception&) {
        return fail(lineno, "bad threshold: " + tokens[3]);
      }
      agreement.goals.push_back(std::move(goal));
    } else {
      return fail(lineno, "unknown construct: " + tokens[0]);
    }
  }
  return agreement;
}

std::string format_agreement(const Agreement& agreement) {
  std::ostringstream os;
  os << "agreement " << agreement.name << "\n";
  os << "context provider=" << agreement.context_provider
     << " consumer=" << agreement.context_consumer << "\n";
  for (const auto& term : agreement.terms) {
    os << "term " << term.name << ": " << to_string(term.provider) << " -> "
       << to_string(term.consumer) << " " << to_string(term.resource) << " "
       << term.share.percent << to_string(term.share.bound) << "\n";
  }
  for (const auto& goal : agreement.goals) {
    os << "goal " << goal.metric << " " << goal.relation << " " << goal.threshold
       << "\n";
  }
  return os.str();
}

Status<> validate(const Agreement& agreement) {
  using Key = std::tuple<std::string, std::string, int>;
  std::map<Key, double> seen;
  std::map<std::pair<std::string, int>, double> target_sums;
  for (const auto& term : agreement.terms) {
    if (term.share.percent < 0.0 || term.share.percent > 100.0) {
      return Status<>::failure("term '" + term.name + "': percent out of range");
    }
    const Key key{to_string(term.provider), to_string(term.consumer),
                  int(term.resource)};
    if (seen.count(key)) {
      return Status<>::failure("duplicate term for " + to_string(term.provider) +
                               " -> " + to_string(term.consumer));
    }
    seen[key] = term.share.percent;
    if (term.share.bound == BoundKind::kTarget) {
      auto& sum = target_sums[{to_string(term.provider), int(term.resource)}];
      sum += term.share.percent;
      if (sum > 100.0 + 1e-9) {
        return Status<>::failure("targets under provider " +
                                 to_string(term.provider) + " exceed 100%");
      }
    }
  }
  return Status<>{};
}

}  // namespace digruber::usla
