#include "digruber/usla/goals.hpp"

#include <algorithm>
#include <sstream>

namespace digruber::usla {

GoalMonitor::GoalMonitor(std::vector<Goal> goals) {
  statuses_.reserve(goals.size());
  for (Goal& goal : goals) {
    GoalStatus status;
    status.goal = std::move(goal);
    statuses_.push_back(std::move(status));
  }
}

void GoalMonitor::observe(const std::string& metric, double value) {
  for (GoalStatus& status : statuses_) {
    if (status.goal.metric != metric) continue;
    ++status.observations;
    status.mean += (value - status.mean) / double(status.observations);
    const bool met = status.goal.relation == "<" ? value < status.goal.threshold
                                                 : value > status.goal.threshold;
    if (!met) {
      ++status.violations;
      if (status.violations == 1) {
        status.worst = value;
      } else if (status.goal.relation == "<") {
        status.worst = std::max(status.worst, value);
      } else {
        status.worst = std::min(status.worst, value);
      }
    }
  }
}

bool GoalMonitor::all_satisfied() const {
  for (const GoalStatus& status : statuses_) {
    if (!status.satisfied()) return false;
  }
  return true;
}

std::string GoalMonitor::summary() const {
  std::ostringstream os;
  for (const GoalStatus& status : statuses_) {
    os << "goal " << status.goal.metric << " " << status.goal.relation << " "
       << status.goal.threshold << ": "
       << (status.satisfied() ? "SATISFIED" : "VIOLATED") << " ("
       << status.violations << "/" << status.observations
       << " violations, mean " << status.mean << ")\n";
  }
  return os.str();
}

}  // namespace digruber::usla
