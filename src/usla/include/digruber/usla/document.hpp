#pragma once

#include <string>
#include <vector>

#include "digruber/common/result.hpp"
#include "digruber/usla/rule.hpp"

namespace digruber::usla {

/// A WS-Agreement-style monitoring goal, e.g. "qtime < 600" or
/// "utilization > 0.3". The broker evaluates goals against observed
/// metrics; they do not gate scheduling.
struct Goal {
  std::string metric;   // qtime | response | utilization | accuracy
  std::string relation;  // "<" or ">"
  double threshold = 0.0;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & metric & relation & threshold;
  }
};

/// One usage term: `provider` grants `consumer` a share of `resource`.
struct ServiceTerm {
  std::string name;
  EntityRef provider;
  EntityRef consumer;
  ResourceKind resource = ResourceKind::kCpu;
  ShareSpec share;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & name & provider & consumer & resource & share;
  }
};

/// A USLA document: the subset of WS-Agreement the paper uses — context
/// (the two parties), service terms (fair-share rules with both a consumer
/// and a provider), and guarantee goals.
struct Agreement {
  std::string name;
  std::string context_provider;
  std::string context_consumer;
  std::vector<ServiceTerm> terms;
  std::vector<Goal> goals;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & name & context_provider & context_consumer & terms & goals;
  }
};

/// Compact text format (one construct per line):
///
///   agreement <name>
///   context provider=<name> consumer=<name>
///   term <name>: <provider-entity> -> <consumer-entity> <resource> <pct>[+|-]
///   goal <metric> <|> <threshold>
///
/// Entities: `grid`, `site:<name>`, `vo:<name>`, `group:<name>`,
/// `user:<name>`. Example term:
///
///   term cms-share: grid -> vo:cms cpu 40+
///
Result<Agreement> parse_agreement(const std::string& text);
std::string format_agreement(const Agreement& agreement);

/// Structural validation: percents in range, no duplicate
/// (provider, consumer, resource) triples, targets under each provider sum
/// to <= 100 per resource.
Status<> validate(const Agreement& agreement);

}  // namespace digruber::usla
