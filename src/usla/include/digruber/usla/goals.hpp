#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "digruber/usla/document.hpp"

namespace digruber::usla {

/// Monitors WS-Agreement guarantee goals against observed metrics (the
/// verification side of the USLA lifecycle: both providers and consumers
/// "want to verify that USLAs are applied correctly"). Goals do not gate
/// scheduling; they report compliance.
class GoalMonitor {
 public:
  struct GoalStatus {
    Goal goal;
    std::uint64_t observations = 0;
    std::uint64_t violations = 0;
    double mean = 0.0;
    double worst = 0.0;  // farthest observed value on the violating side

    /// A goal is satisfied when most observations meet it (the threshold
    /// is on the aggregate, not each sample).
    [[nodiscard]] bool satisfied() const {
      return observations == 0 || violations * 10 <= observations;
    }
  };

  explicit GoalMonitor(std::vector<Goal> goals);

  /// Record one observation of `metric` (e.g. "qtime", 37.5). Applies to
  /// every goal declared on that metric.
  void observe(const std::string& metric, double value);

  [[nodiscard]] const std::vector<GoalStatus>& statuses() const { return statuses_; }
  [[nodiscard]] bool all_satisfied() const;
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<GoalStatus> statuses_;
};

}  // namespace digruber::usla
