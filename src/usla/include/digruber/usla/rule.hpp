#pragma once

#include <cstdint>
#include <string>

namespace digruber::usla {

/// Maui-style fair-share bound: `VO.40` is a target, `VO.40+` an upper
/// limit, `VO.40-` a lower limit (paper Section 3.3).
enum class BoundKind : std::uint8_t {
  kTarget = 0,
  kUpperLimit,
  kLowerLimit,
};

enum class ResourceKind : std::uint8_t {
  kCpu = 0,
  kStorage,
  kNetwork,
};

struct ShareSpec {
  double percent = 0.0;  // in [0, 100]
  BoundKind bound = BoundKind::kTarget;

  [[nodiscard]] double fraction() const { return percent / 100.0; }

  template <class Archive>
  void serialize(Archive& ar) {
    ar & percent & bound;
  }
};

/// An entity on either side of a USLA term. The paper extends Maui
/// semantics by naming both a provider and a consumer per entry and
/// recursing through VO -> group -> user.
struct EntityRef {
  enum class Kind : std::uint8_t { kGrid = 0, kSite, kVo, kGroup, kUser };

  Kind kind = Kind::kGrid;
  std::string name;  // empty for kGrid

  friend bool operator==(const EntityRef&, const EntityRef&) = default;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & kind & name;
  }
};

/// String forms used by the parser/serializer, e.g. "vo:cms", "grid".
std::string to_string(const EntityRef& entity);
std::string to_string(BoundKind bound);
std::string to_string(ResourceKind resource);

}  // namespace digruber::usla
