#pragma once

#include <cstdint>

#include "digruber/grid/site.hpp"
#include "digruber/usla/tree.hpp"

namespace digruber::usla {

/// Site policy enforcement point (paper Section 3.1). S-PEPs sit at the
/// site boundary and enforce the site's USLAs regardless of what brokers
/// or clients do. The DI-GRUBER experiments bypass them ("we assumed the
/// decision points have total control over scheduling decisions"), which
/// is safe only while every client complies with broker recommendations —
/// the S-PEP is what protects shares when one does not.
class SitePolicyEnforcementPoint {
 public:
  struct Options {
    /// When false the S-PEP only audits (counts would-be rejections)
    /// without refusing anything — the paper's experimental setting.
    bool enforce = true;
  };

  SitePolicyEnforcementPoint(grid::Site& site, const UslaEvaluator& evaluator,
                             Options options);
  SitePolicyEnforcementPoint(grid::Site& site, const UslaEvaluator& evaluator)
      : SitePolicyEnforcementPoint(site, evaluator, Options{}) {}

  /// Admission control: rejects (or audits) jobs whose VO would exceed its
  /// site-level share, then forwards to the site scheduler. Returns false
  /// if rejected by policy or the site is down.
  bool submit(grid::Job job, grid::Site::JobCallback on_done);

  [[nodiscard]] grid::Site& site() { return site_; }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  /// Violations observed while in audit (enforce=false) mode.
  [[nodiscard]] std::uint64_t audited_violations() const { return audited_; }

 private:
  grid::Site& site_;
  const UslaEvaluator& evaluator_;
  Options options_;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t audited_ = 0;
};

}  // namespace digruber::usla
