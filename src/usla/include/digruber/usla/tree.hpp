#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "digruber/common/ids.hpp"
#include "digruber/common/result.hpp"
#include "digruber/grid/topology.hpp"
#include "digruber/usla/document.hpp"

namespace digruber::usla {

/// Recursive allocation tree: resolves USLA terms from a set of agreements
/// into effective shares for VO-at-grid, VO-at-site (overrides the grid
/// rule), group-under-VO, and user-under-group — the paper's recursive
/// extension of Maui fair-share semantics.
class AllocationTree {
 public:
  /// Builds from validated agreements. Unknown entity names are an error;
  /// `site_names` maps the grid's site names for site-scoped rules.
  static Result<AllocationTree> build(
      const std::vector<Agreement>& agreements, const grid::VoCatalog& catalog,
      const std::map<std::string, SiteId>& site_names = {});

  /// Share of CPU granted to a VO: the site-specific rule if present, else
  /// the grid-wide rule, else nullopt.
  [[nodiscard]] std::optional<ShareSpec> vo_share(
      VoId vo, std::optional<SiteId> site = std::nullopt) const;
  /// Same lookup for an arbitrary resource (storage, network).
  [[nodiscard]] std::optional<ShareSpec> vo_share_for(
      ResourceKind resource, VoId vo,
      std::optional<SiteId> site = std::nullopt) const;
  [[nodiscard]] std::optional<ShareSpec> group_share(GroupId group) const;
  [[nodiscard]] std::optional<ShareSpec> user_share(UserId user) const;

  [[nodiscard]] std::size_t term_count() const { return terms_; }

 private:
  using ResourceVo = std::pair<int, VoId>;  // (ResourceKind, vo)
  std::map<ResourceVo, ShareSpec> vo_at_grid_;
  std::map<std::pair<SiteId, ResourceVo>, ShareSpec> vo_at_site_;
  std::map<GroupId, ShareSpec> group_under_vo_;
  std::map<UserId, ShareSpec> user_under_group_;
  std::size_t terms_ = 0;
};

/// Policy knobs for turning share specs into scheduling decisions.
struct EvaluatorOptions {
  /// Targets act as soft caps: a target of p% admits up to p * burst.
  double target_burst = 1.5;
  /// Entities without any rule: admit (open grid) or reject (closed).
  bool default_open = true;
};

/// One (site, VO) pair holding more running CPUs than the VO's USLA cap
/// allows — the ground-truth signature of split-brain over-commitment,
/// where two decision points each admitted up to the cap against views
/// that could not see each other's placements.
struct VoOverCommit {
  SiteId site;
  VoId vo;
  std::int32_t running = 0;   // CPUs actually held by the VO
  std::int32_t cap_cpus = 0;  // CPUs its USLA chain allows at this site

  [[nodiscard]] std::int32_t excess() const { return running - cap_cpus; }
};

/// Answers "how many more CPUs may this VO/group/user take at this site
/// without violating USLAs?" given a site snapshot plus the broker's own
/// accounting of group/user usage (sites only report per-VO usage).
class UslaEvaluator {
 public:
  UslaEvaluator(const AllocationTree& tree, const grid::VoCatalog& catalog,
                EvaluatorOptions options = {});

  /// Hard-cap fraction of a site this consumer chain may occupy.
  [[nodiscard]] double cap_fraction(VoId vo,
                                    std::optional<SiteId> site = std::nullopt) const;

  /// CPUs of headroom for `vo` at the given snapshot (>= 0; bounded by the
  /// site's free CPUs).
  [[nodiscard]] std::int32_t vo_headroom(const grid::SiteSnapshot& snapshot,
                                         VoId vo) const;

  /// Bytes of permanent-storage headroom for `vo` at the snapshot, under
  /// the storage USLA terms (kStorage shares).
  [[nodiscard]] std::uint64_t storage_headroom(const grid::SiteSnapshot& snapshot,
                                               VoId vo) const;

  /// Fraction of network bandwidth `vo` may use (kNetwork share; 1.0 when
  /// no rule and the default policy is open).
  [[nodiscard]] double network_cap_fraction(VoId vo) const;

  /// Full-chain headroom: additionally applies the group share of its VO's
  /// cap and the user share of its group's cap, given the broker's own
  /// running counts for those finer entities at this site.
  [[nodiscard]] std::int32_t chain_headroom(const grid::SiteSnapshot& snapshot,
                                            VoId vo, GroupId group, UserId user,
                                            std::int32_t group_running,
                                            std::int32_t user_running) const;

  /// True if a job of `cpus` for `vo` fits at the snapshot under USLAs.
  [[nodiscard]] bool admissible(const grid::SiteSnapshot& snapshot, VoId vo,
                                std::int32_t cpus) const;

  /// CPUs of `vo`'s cap at a site of `total_cpus` — the absolute ceiling
  /// the headroom computations enforce against *local* knowledge. Useful
  /// on its own to audit ground truth, where local knowledge may have
  /// been wrong (a partition hid the other side's placements).
  [[nodiscard]] std::int32_t vo_cap_cpus(SiteId site, VoId vo,
                                         std::int32_t total_cpus) const;

  /// Ground-truth entitlement audit: every (site, VO) in `sites` whose
  /// actually-running CPUs exceed the VO's cap. A single honest broker
  /// never admits past the cap, so on fresh state this is empty; entries
  /// appear when divergent views each admitted within their own believed
  /// headroom and the union breached the entitlement — the over-commit a
  /// partition causes and reconciliation must surface. Deterministic
  /// (site, then VO) order.
  [[nodiscard]] std::vector<VoOverCommit> over_commit_audit(
      const std::vector<grid::SiteSnapshot>& sites) const;

  /// Guaranteed (lower-limit) fraction, 0 when none declared.
  [[nodiscard]] double guarantee_fraction(VoId vo) const;

  [[nodiscard]] const EvaluatorOptions& options() const { return options_; }

 private:
  [[nodiscard]] double effective_cap(const std::optional<ShareSpec>& share) const;

  const AllocationTree& tree_;
  const grid::VoCatalog& catalog_;
  EvaluatorOptions options_;
};

}  // namespace digruber::usla
