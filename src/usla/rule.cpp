#include "digruber/usla/rule.hpp"

namespace digruber::usla {

std::string to_string(const EntityRef& entity) {
  switch (entity.kind) {
    case EntityRef::Kind::kGrid: return "grid";
    case EntityRef::Kind::kSite: return "site:" + entity.name;
    case EntityRef::Kind::kVo: return "vo:" + entity.name;
    case EntityRef::Kind::kGroup: return "group:" + entity.name;
    case EntityRef::Kind::kUser: return "user:" + entity.name;
  }
  return "?";
}

std::string to_string(BoundKind bound) {
  switch (bound) {
    case BoundKind::kTarget: return "";
    case BoundKind::kUpperLimit: return "+";
    case BoundKind::kLowerLimit: return "-";
  }
  return "?";
}

std::string to_string(ResourceKind resource) {
  switch (resource) {
    case ResourceKind::kCpu: return "cpu";
    case ResourceKind::kStorage: return "storage";
    case ResourceKind::kNetwork: return "network";
  }
  return "?";
}

}  // namespace digruber::usla
