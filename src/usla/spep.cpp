#include "digruber/usla/spep.hpp"

namespace digruber::usla {

SitePolicyEnforcementPoint::SitePolicyEnforcementPoint(
    grid::Site& site, const UslaEvaluator& evaluator, Options options)
    : site_(site), evaluator_(evaluator), options_(options) {}

bool SitePolicyEnforcementPoint::submit(grid::Job job,
                                        grid::Site::JobCallback on_done) {
  const grid::SiteSnapshot snapshot = site_.snapshot();
  const bool within_share = evaluator_.admissible(snapshot, job.vo, job.cpus);
  if (!within_share) {
    if (options_.enforce) {
      ++rejected_;
      return false;
    }
    ++audited_;  // paper mode: observe the violation, let it through
  }
  if (!site_.submit(std::move(job), std::move(on_done))) return false;
  ++admitted_;
  return true;
}

}  // namespace digruber::usla
