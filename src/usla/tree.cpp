#include "digruber/usla/tree.hpp"

#include <algorithm>
#include <cmath>

namespace digruber::usla {
namespace {

/// Name -> id lookup tables for the catalog's entities.
struct NameIndex {
  std::map<std::string, VoId> vos;
  std::map<std::string, GroupId> groups;
  std::map<std::string, UserId> users;

  explicit NameIndex(const grid::VoCatalog& catalog) {
    for (std::size_t v = 0; v < catalog.vo_count(); ++v) {
      vos.emplace(catalog.vo_name(VoId(v)), VoId(v));
      for (const GroupId g : catalog.groups_of(VoId(v))) {
        groups.emplace(catalog.group_name(g), g);
      }
    }
  }
};

}  // namespace

Result<AllocationTree> AllocationTree::build(
    const std::vector<Agreement>& agreements, const grid::VoCatalog& catalog,
    const std::map<std::string, SiteId>& site_names) {
  AllocationTree tree;
  const NameIndex index(catalog);

  for (const auto& agreement : agreements) {
    if (const Status<> status = validate(agreement); !status.ok()) {
      return Result<AllocationTree>::failure("agreement '" + agreement.name +
                                             "': " + status.error());
    }
    for (const auto& term : agreement.terms) {
      ++tree.terms_;
      const int resource = int(term.resource);
      const EntityRef& p = term.provider;
      const EntityRef& c = term.consumer;

      if (c.kind == EntityRef::Kind::kVo) {
        const auto vo = index.vos.find(c.name);
        if (vo == index.vos.end()) {
          return Result<AllocationTree>::failure("unknown vo: " + c.name);
        }
        if (p.kind == EntityRef::Kind::kGrid) {
          tree.vo_at_grid_[{resource, vo->second}] = term.share;
        } else if (p.kind == EntityRef::Kind::kSite) {
          const auto site = site_names.find(p.name);
          if (site == site_names.end()) {
            return Result<AllocationTree>::failure("unknown site: " + p.name);
          }
          tree.vo_at_site_[{site->second, {resource, vo->second}}] = term.share;
        } else {
          return Result<AllocationTree>::failure(
              "vo consumer requires grid or site provider in term '" + term.name + "'");
        }
      } else if (c.kind == EntityRef::Kind::kGroup) {
        if (p.kind != EntityRef::Kind::kVo) {
          return Result<AllocationTree>::failure(
              "group consumer requires vo provider in term '" + term.name + "'");
        }
        const auto group = index.groups.find(c.name);
        if (group == index.groups.end()) {
          return Result<AllocationTree>::failure("unknown group: " + c.name);
        }
        const auto vo = index.vos.find(p.name);
        if (vo == index.vos.end() || catalog.group_vo(group->second) != vo->second) {
          return Result<AllocationTree>::failure(
              "group '" + c.name + "' does not belong to vo '" + p.name + "'");
        }
        tree.group_under_vo_[group->second] = term.share;
      } else if (c.kind == EntityRef::Kind::kUser) {
        if (p.kind != EntityRef::Kind::kGroup) {
          return Result<AllocationTree>::failure(
              "user consumer requires group provider in term '" + term.name + "'");
        }
        const auto group = index.groups.find(p.name);
        if (group == index.groups.end()) {
          return Result<AllocationTree>::failure("unknown group: " + p.name);
        }
        // Users are registered per group; find by name within the catalog.
        bool found = false;
        for (std::size_t u = 0; u < catalog.user_count(); ++u) {
          if (catalog.user_group(UserId(u)) == group->second) {
            tree.user_under_group_[UserId(u)] = term.share;
            found = true;
            // A named match would refine this; one-user-per-group in the
            // composite workloads makes group scope sufficient.
            break;
          }
        }
        if (!found) {
          return Result<AllocationTree>::failure("no user under group: " + p.name);
        }
      } else {
        return Result<AllocationTree>::failure("unsupported consumer in term '" +
                                               term.name + "'");
      }
    }
  }
  return tree;
}

std::optional<ShareSpec> AllocationTree::vo_share(VoId vo,
                                                  std::optional<SiteId> site) const {
  return vo_share_for(ResourceKind::kCpu, vo, site);
}

std::optional<ShareSpec> AllocationTree::vo_share_for(
    ResourceKind resource, VoId vo, std::optional<SiteId> site) const {
  const ResourceVo key{int(resource), vo};
  if (site) {
    const auto it = vo_at_site_.find({*site, key});
    if (it != vo_at_site_.end()) return it->second;
  }
  const auto it = vo_at_grid_.find(key);
  if (it != vo_at_grid_.end()) return it->second;
  return std::nullopt;
}

std::optional<ShareSpec> AllocationTree::group_share(GroupId group) const {
  const auto it = group_under_vo_.find(group);
  if (it != group_under_vo_.end()) return it->second;
  return std::nullopt;
}

std::optional<ShareSpec> AllocationTree::user_share(UserId user) const {
  const auto it = user_under_group_.find(user);
  if (it != user_under_group_.end()) return it->second;
  return std::nullopt;
}

UslaEvaluator::UslaEvaluator(const AllocationTree& tree,
                             const grid::VoCatalog& catalog,
                             EvaluatorOptions options)
    : tree_(tree), catalog_(catalog), options_(options) {}

double UslaEvaluator::effective_cap(const std::optional<ShareSpec>& share) const {
  if (!share) return options_.default_open ? 1.0 : 0.0;
  switch (share->bound) {
    case BoundKind::kUpperLimit:
      return share->fraction();
    case BoundKind::kTarget:
      return std::min(1.0, share->fraction() * options_.target_burst);
    case BoundKind::kLowerLimit:
      return 1.0;  // a guarantee, not a cap
  }
  return 1.0;
}

double UslaEvaluator::cap_fraction(VoId vo, std::optional<SiteId> site) const {
  return effective_cap(tree_.vo_share(vo, site));
}

std::int32_t UslaEvaluator::vo_headroom(const grid::SiteSnapshot& snapshot,
                                        VoId vo) const {
  const std::int32_t allowed =
      vo_cap_cpus(snapshot.site, vo, snapshot.total_cpus);
  std::int32_t used = 0;
  const auto it = snapshot.running_per_vo.find(vo);
  if (it != snapshot.running_per_vo.end()) used = it->second;
  return std::max(0, std::min(allowed - used, snapshot.free_cpus));
}

std::int32_t UslaEvaluator::vo_cap_cpus(SiteId site, VoId vo,
                                        std::int32_t total_cpus) const {
  const double cap = cap_fraction(vo, site);
  return std::int32_t(std::floor(cap * double(total_cpus) + 1e-9));
}

std::vector<VoOverCommit> UslaEvaluator::over_commit_audit(
    const std::vector<grid::SiteSnapshot>& sites) const {
  std::vector<VoOverCommit> out;
  for (const grid::SiteSnapshot& snapshot : sites) {
    for (const auto& [vo, running] : snapshot.running_per_vo) {
      if (running <= 0) continue;
      const std::int32_t cap = vo_cap_cpus(snapshot.site, vo, snapshot.total_cpus);
      if (running > cap) out.push_back({snapshot.site, vo, running, cap});
    }
  }
  return out;
}

std::int32_t UslaEvaluator::chain_headroom(const grid::SiteSnapshot& snapshot,
                                           VoId vo, GroupId group, UserId user,
                                           std::int32_t group_running,
                                           std::int32_t user_running) const {
  const std::int32_t vo_room = vo_headroom(snapshot, vo);
  const double vo_cap = cap_fraction(vo, snapshot.site);
  const double vo_cpus = vo_cap * double(snapshot.total_cpus);

  const double group_cap = effective_cap(tree_.group_share(group));
  const auto group_allowed = std::int32_t(std::floor(group_cap * vo_cpus + 1e-9));
  const std::int32_t group_room = group_allowed - group_running;

  const double user_cap = effective_cap(tree_.user_share(user));
  const auto user_allowed =
      std::int32_t(std::floor(user_cap * group_cap * vo_cpus + 1e-9));
  const std::int32_t user_room = user_allowed - user_running;

  return std::max(0, std::min({vo_room, group_room, user_room}));
}

bool UslaEvaluator::admissible(const grid::SiteSnapshot& snapshot, VoId vo,
                               std::int32_t cpus) const {
  return vo_headroom(snapshot, vo) >= cpus;
}

std::uint64_t UslaEvaluator::storage_headroom(const grid::SiteSnapshot& snapshot,
                                              VoId vo) const {
  const double cap =
      effective_cap(tree_.vo_share_for(ResourceKind::kStorage, vo, snapshot.site));
  const auto allowed =
      std::uint64_t(cap * double(snapshot.total_storage_bytes));
  std::uint64_t used = 0;
  const auto it = snapshot.storage_per_vo.find(vo);
  if (it != snapshot.storage_per_vo.end()) used = it->second;
  if (allowed <= used) return 0;
  return std::min(allowed - used, snapshot.free_storage_bytes);
}

double UslaEvaluator::network_cap_fraction(VoId vo) const {
  return effective_cap(tree_.vo_share_for(ResourceKind::kNetwork, vo));
}

double UslaEvaluator::guarantee_fraction(VoId vo) const {
  const auto share = tree_.vo_share(vo);
  if (share && share->bound == BoundKind::kLowerLimit) return share->fraction();
  return 0.0;
}

}  // namespace digruber::usla
