#include "digruber/workload/generator.hpp"

#include <algorithm>
#include <cassert>

namespace digruber::workload {

JobFactory::JobFactory(const WorkloadSpec& spec, const grid::VoCatalog& catalog,
                       std::shared_ptr<JobIdAllocator> ids, Rng rng)
    : spec_(spec), catalog_(catalog), ids_(std::move(ids)), rng_(rng) {
  assert(ids_);
  assert(catalog_.vo_count() > 0);
}

grid::Job JobFactory::next(sim::Time now) {
  grid::Job job;
  job.id = ids_->next();
  job.created = now;

  const std::size_t n_vos = catalog_.vo_count();
  std::size_t vo_index = 0;
  if (n_vos > 1 && spec_.strategic_vo >= 0 &&
      std::size_t(spec_.strategic_vo) < n_vos) {
    // Strategic-VO draw: one weighted pick, still a single rng consumption.
    const std::size_t strategic = std::size_t(spec_.strategic_vo);
    const double w = std::max(1.0, spec_.strategic_factor);
    const double total = double(n_vos - 1) + w;
    const double r = rng_.uniform(0.0, total);
    if (r < w) {
      vo_index = strategic;
    } else {
      std::size_t k = std::min(n_vos - 2, std::size_t(r - w));
      vo_index = k < strategic ? k : k + 1;
    }
  } else {
    vo_index = spec_.vo_skew > 0 ? rng_.zipf(n_vos, spec_.vo_skew)
                                 : rng_.uniform_index(n_vos);
  }
  job.vo = VoId(vo_index);
  const auto& groups = catalog_.groups_of(job.vo);
  assert(!groups.empty());
  job.group = groups[rng_.uniform_index(groups.size())];
  // One user per group in the composite workloads.
  for (std::size_t u = 0; u < catalog_.user_count(); ++u) {
    if (catalog_.user_group(UserId(u)) == job.group) {
      job.user = UserId(u);
      break;
    }
  }

  job.cpus = int(rng_.uniform_int(spec_.cpus_min, spec_.cpus_max));
  job.runtime = sim::Duration::seconds(
      std::max(1.0, rng_.lognormal_mean_cv(spec_.runtime_mean_s,
                                           std::max(0.0, spec_.runtime_cv))));
  if (spec_.input_bytes_mean > 0) {
    job.input_bytes = std::uint64_t(rng_.exponential(double(spec_.input_bytes_mean)));
  }
  if (spec_.output_bytes_mean > 0) {
    job.output_bytes = std::uint64_t(rng_.exponential(double(spec_.output_bytes_mean)));
  }
  // Economic fields come last so enabling them never shifts the draws above.
  if (spec_.budget_mean > 0) {
    job.budget = rng_.exponential(spec_.budget_mean);
  }
  if (spec_.deadline_slack > 0) {
    job.deadline_s = job.runtime.to_seconds() * spec_.deadline_slack;
  }
  return job;
}

}  // namespace digruber::workload
