#include "digruber/workload/generator.hpp"

#include <algorithm>
#include <cassert>

namespace digruber::workload {

JobFactory::JobFactory(const WorkloadSpec& spec, const grid::VoCatalog& catalog,
                       std::shared_ptr<JobIdAllocator> ids, Rng rng)
    : spec_(spec), catalog_(catalog), ids_(std::move(ids)), rng_(rng) {
  assert(ids_);
  assert(catalog_.vo_count() > 0);
}

grid::Job JobFactory::next(sim::Time now) {
  grid::Job job;
  job.id = ids_->next();
  job.created = now;

  const std::size_t n_vos = catalog_.vo_count();
  const std::size_t vo_index = spec_.vo_skew > 0
                                   ? rng_.zipf(n_vos, spec_.vo_skew)
                                   : rng_.uniform_index(n_vos);
  job.vo = VoId(vo_index);
  const auto& groups = catalog_.groups_of(job.vo);
  assert(!groups.empty());
  job.group = groups[rng_.uniform_index(groups.size())];
  // One user per group in the composite workloads.
  for (std::size_t u = 0; u < catalog_.user_count(); ++u) {
    if (catalog_.user_group(UserId(u)) == job.group) {
      job.user = UserId(u);
      break;
    }
  }

  job.cpus = int(rng_.uniform_int(spec_.cpus_min, spec_.cpus_max));
  job.runtime = sim::Duration::seconds(
      std::max(1.0, rng_.lognormal_mean_cv(spec_.runtime_mean_s,
                                           std::max(0.0, spec_.runtime_cv))));
  if (spec_.input_bytes_mean > 0) {
    job.input_bytes = std::uint64_t(rng_.exponential(double(spec_.input_bytes_mean)));
  }
  if (spec_.output_bytes_mean > 0) {
    job.output_bytes = std::uint64_t(rng_.exponential(double(spec_.output_bytes_mean)));
  }
  return job;
}

}  // namespace digruber::workload
