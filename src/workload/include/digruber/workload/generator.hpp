#pragma once

#include <memory>

#include "digruber/common/rng.hpp"
#include "digruber/grid/job.hpp"
#include "digruber/grid/topology.hpp"

namespace digruber::workload {

/// Shape of the composite workloads the paper overlays: `n_vos` VOs with
/// `groups_per_vo` groups each, every submission host drawing jobs across
/// them.
struct WorkloadSpec {
  int n_vos = 10;
  int groups_per_vo = 10;

  /// Job runtimes: lognormal with this mean and coefficient of variation.
  double runtime_mean_s = 600.0;
  double runtime_cv = 0.5;
  int cpus_min = 1;
  int cpus_max = 1;

  /// Euryale staging sizes (0 = compute-only jobs, the paper's case).
  std::uint64_t input_bytes_mean = 0;
  std::uint64_t output_bytes_mean = 0;

  /// Zipf skew across VOs (0 = uniform): physics-style workloads
  /// concentrate on a few large collaborations.
  double vo_skew = 0.0;

  /// Strategic-VO scenario (economy bench): this VO draws jobs with
  /// `strategic_factor` times the weight of every other VO — one
  /// collaboration hammering the grid past its share. -1 = off (the
  /// default keeps the draw sequence byte-identical to the seed).
  int strategic_vo = -1;
  double strategic_factor = 10.0;

  /// Economic job fields (market placement). budget_mean > 0 draws each
  /// job's spend ceiling from an exponential of that mean; deadline_slack
  /// > 0 sets the completion deadline to runtime * slack (no extra rng
  /// draw). Both 0 by default: jobs carry no economic fields and the rng
  /// stream is untouched.
  double budget_mean = 0.0;
  double deadline_slack = 0.0;
};

/// Allocates globally unique job ids across all submission hosts.
class JobIdAllocator {
 public:
  JobId next() { return JobId(next_++); }
  [[nodiscard]] std::uint64_t issued() const { return next_; }

 private:
  std::uint64_t next_ = 0;
};

/// Deterministic per-host job stream.
class JobFactory {
 public:
  JobFactory(const WorkloadSpec& spec, const grid::VoCatalog& catalog,
             std::shared_ptr<JobIdAllocator> ids, Rng rng);

  [[nodiscard]] grid::Job next(sim::Time now);

 private:
  WorkloadSpec spec_;
  const grid::VoCatalog& catalog_;
  std::shared_ptr<JobIdAllocator> ids_;
  Rng rng_;
};

}  // namespace digruber::workload
