#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "digruber/common/ids.hpp"
#include "digruber/common/result.hpp"
#include "digruber/sim/time.hpp"

namespace digruber::workload {

/// One brokering query as seen by the testing framework — the unit of
/// GRUB-SIM's trace-driven replay (paper Section 5).
struct QueryTrace {
  ClientId client;
  std::uint32_t dp_index = 0;  // decision point the client is bound to
  sim::Time issued;
  double response_s = 0.0;
  bool handled = false;  // answered by DI-GRUBER vs. timeout fallback

  friend bool operator==(const QueryTrace&, const QueryTrace&) = default;
};

/// Append-only query log with CSV round-tripping so benches can hand their
/// traces to GRUB-SIM (and users can feed in real logs).
class TraceLog {
 public:
  void add(QueryTrace trace) { entries_.push_back(trace); }
  [[nodiscard]] const std::vector<QueryTrace>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  void write_csv(std::ostream& os) const;
  static Result<TraceLog> read_csv(std::istream& is);

  void save(const std::string& path) const;
  static Result<TraceLog> load(const std::string& path);

 private:
  std::vector<QueryTrace> entries_;
};

}  // namespace digruber::workload
