#include "digruber/workload/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace digruber::workload {

void TraceLog::write_csv(std::ostream& os) const {
  os << "client,dp_index,issued_s,response_s,handled\n";
  for (const QueryTrace& t : entries_) {
    os << t.client.value() << ',' << t.dp_index << ',' << t.issued.to_seconds()
       << ',' << t.response_s << ',' << (t.handled ? 1 : 0) << '\n';
  }
}

Result<TraceLog> TraceLog::read_csv(std::istream& is) {
  TraceLog log;
  std::string line;
  if (!std::getline(is, line)) return Result<TraceLog>::failure("empty trace");
  if (line.rfind("client,", 0) != 0) {
    return Result<TraceLog>::failure("bad trace header: " + line);
  }
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream cells(line);
    std::string cell;
    QueryTrace t;
    try {
      std::getline(cells, cell, ',');
      t.client = ClientId(std::stoull(cell));
      std::getline(cells, cell, ',');
      t.dp_index = std::uint32_t(std::stoul(cell));
      std::getline(cells, cell, ',');
      t.issued = sim::Time::from_seconds(std::stod(cell));
      std::getline(cells, cell, ',');
      t.response_s = std::stod(cell);
      std::getline(cells, cell, ',');
      t.handled = cell == "1" || cell == "true";
    } catch (const std::exception& e) {
      return Result<TraceLog>::failure("trace line " + std::to_string(lineno) +
                                       ": " + e.what());
    }
    log.add(t);
  }
  return log;
}

void TraceLog::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace: " + path);
  write_csv(out);
}

Result<TraceLog> TraceLog::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Result<TraceLog>::failure("cannot read trace: " + path);
  return read_csv(in);
}

}  // namespace digruber::workload
