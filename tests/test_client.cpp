#include "digruber/digruber/client.hpp"

#include <gtest/gtest.h>

#include "digruber/digruber/decision_point.hpp"
#include "digruber/net/sim_transport.hpp"

namespace digruber::digruber {
namespace {

net::ContainerProfile profile_with(sim::Duration base, int workers = 4) {
  net::ContainerProfile p;
  p.workers = workers;
  p.base_overhead = base;
  p.auth_cost = sim::Duration::zero();
  p.parse_cost_per_kb = sim::Duration::zero();
  p.serialize_cost_per_kb = sim::Duration::zero();
  return p;
}

struct Fixture {
  sim::Simulation sim;
  net::SimTransport transport;
  grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 2);
  usla::AllocationTree tree;

  Fixture() : transport(sim, net::WanModel(net::WanParams{}, 5)) {
    tree = usla::AllocationTree::build({}, catalog).value();
  }

  DecisionPointOptions dp_options(sim::Duration base) {
    DecisionPointOptions o;
    o.profile = profile_with(base);
    o.eval_cost_per_site = sim::Duration::millis(0.1);
    return o;
  }

  std::vector<grid::SiteSnapshot> snapshots(int n_sites) {
    std::vector<grid::SiteSnapshot> out;
    for (int i = 0; i < n_sites; ++i) {
      grid::SiteSnapshot s;
      s.site = SiteId(std::uint64_t(i));
      s.total_cpus = 100;
      s.free_cpus = 50 + i;  // site n-1 is the least used
      out.push_back(s);
    }
    return out;
  }

  std::vector<SiteId> all_sites(int n) {
    std::vector<SiteId> out;
    for (int i = 0; i < n; ++i) out.push_back(SiteId(std::uint64_t(i)));
    return out;
  }

  grid::Job job() {
    grid::Job j;
    j.id = JobId(1);
    j.vo = VoId(0);
    j.group = GroupId(0);
    j.user = UserId(0);
    j.cpus = 1;
    j.runtime = sim::Duration::seconds(60);
    return j;
  }
};

TEST(Client, HandledQueryPicksLeastUsedSite) {
  Fixture f;
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree,
                   f.dp_options(sim::Duration::millis(50)));
  dp.bootstrap(f.snapshots(5));

  DiGruberClient client(f.sim, f.transport, ClientId(0), dp.node(), f.all_sites(5),
                        gruber::make_selector("least-used", Rng(1)), Rng(2));
  QueryOutcome got;
  bool done = false;
  client.schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
    got = outcome;
    done = true;
  });
  f.sim.run_until(sim::Time::from_seconds(120));
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.handled_by_gruber);
  EXPECT_EQ(got.site, SiteId(4));
  EXPECT_EQ(got.believed_free, 54);
  EXPECT_GT(got.response.to_seconds(), 0.0);
  EXPECT_LT(got.response.to_seconds(), 5.0);
  EXPECT_EQ(client.handled(), 1u);
  EXPECT_EQ(client.fallbacks(), 0u);
  // Both round trips hit the decision point.
  EXPECT_EQ(dp.queries_served(), 1u);
  EXPECT_EQ(dp.selections_recorded(), 1u);
  dp.stop();
}

TEST(Client, TimeoutFallsBackToRandomSite) {
  Fixture f;
  // Service takes 100 s; client timeout is 10 s.
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree,
                   f.dp_options(sim::Duration::seconds(100)));
  dp.bootstrap(f.snapshots(5));

  ClientOptions options;
  options.timeout = sim::Duration::seconds(10);
  DiGruberClient client(f.sim, f.transport, ClientId(0), dp.node(), f.all_sites(5),
                        gruber::make_selector("least-used", Rng(1)), Rng(2), options);
  QueryOutcome got;
  bool done = false;
  client.schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
    got = outcome;
    done = true;
  });
  f.sim.run_until(sim::Time::from_seconds(300));
  ASSERT_TRUE(done);
  EXPECT_FALSE(got.handled_by_gruber);
  EXPECT_EQ(got.believed_free, -1);
  EXPECT_NEAR(got.response.to_seconds(), 10.0, 0.01);
  EXPECT_LT(got.site.value(), 5u);
  EXPECT_EQ(client.fallbacks(), 1u);
  EXPECT_EQ(client.handled(), 0u);
  dp.stop();
}

TEST(Client, StarvationFallsBackWhenNoCandidate) {
  Fixture f;
  // All sites full: the reply is empty, so the client picks randomly.
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree,
                   f.dp_options(sim::Duration::millis(50)));
  std::vector<grid::SiteSnapshot> full = f.snapshots(3);
  for (auto& s : full) s.free_cpus = 0;
  dp.bootstrap(full);

  DiGruberClient client(f.sim, f.transport, ClientId(0), dp.node(), f.all_sites(3),
                        gruber::make_selector("least-used", Rng(1)), Rng(2));
  QueryOutcome got;
  client.schedule(f.job(), [&](grid::Job, QueryOutcome outcome) { got = outcome; });
  f.sim.run_until(sim::Time::from_seconds(120));
  EXPECT_FALSE(got.handled_by_gruber);
  EXPECT_TRUE(got.starved);
  EXPECT_EQ(client.starvations(), 1u);
  dp.stop();
}

TEST(Client, RebindSwitchesDecisionPoint) {
  Fixture f;
  DecisionPoint slow(f.sim, f.transport, DpId(0), f.catalog, f.tree,
                     f.dp_options(sim::Duration::seconds(100)));
  DecisionPoint fast(f.sim, f.transport, DpId(1), f.catalog, f.tree,
                     f.dp_options(sim::Duration::millis(50)));
  slow.bootstrap(f.snapshots(3));
  fast.bootstrap(f.snapshots(3));

  ClientOptions options;
  options.timeout = sim::Duration::seconds(5);
  DiGruberClient client(f.sim, f.transport, ClientId(0), slow.node(), f.all_sites(3),
                        gruber::make_selector("least-used", Rng(1)), Rng(2), options);

  int handled = 0, fallback = 0;
  client.schedule(f.job(), [&](grid::Job, QueryOutcome o) {
    o.handled_by_gruber ? ++handled : ++fallback;
    client.rebind(fast.node());
    client.schedule(f.job(), [&](grid::Job, QueryOutcome o2) {
      o2.handled_by_gruber ? ++handled : ++fallback;
    });
  });
  f.sim.run_until(sim::Time::from_seconds(300));
  EXPECT_EQ(fallback, 1);  // against the slow decision point
  EXPECT_EQ(handled, 1);   // after rebinding to the fast one
  slow.stop();
  fast.stop();
}

TEST(Client, ManyConcurrentQueriesAllComplete) {
  Fixture f;
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree,
                   f.dp_options(sim::Duration::millis(200)));
  dp.bootstrap(f.snapshots(10));

  DiGruberClient client(f.sim, f.transport, ClientId(0), dp.node(), f.all_sites(10),
                        gruber::make_selector("top-k", Rng(1)), Rng(2));
  int completed = 0;
  for (int i = 0; i < 30; ++i) {
    client.schedule(f.job(), [&](grid::Job, QueryOutcome) { ++completed; });
  }
  f.sim.run_until(sim::Time::from_seconds(600));
  EXPECT_EQ(completed, 30);
  EXPECT_EQ(client.queries(), 30u);
  EXPECT_EQ(client.handled() + client.fallbacks(), 30u);
  dp.stop();
}

}  // namespace
}  // namespace digruber::digruber
