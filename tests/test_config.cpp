#include "digruber/common/config.hpp"

#include <gtest/gtest.h>

namespace digruber {
namespace {

TEST(Config, ParsesKeyValues) {
  const Config cfg = Config::parse("a = 1\nb=hello\n  c  =  2.5  \n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "hello");
  EXPECT_DOUBLE_EQ(cfg.get_double("c", 0), 2.5);
}

TEST(Config, CommentsAndBlankLines) {
  const Config cfg = Config::parse("# header\n\nx = 5 # trailing\n   \n# y = 9\n");
  EXPECT_EQ(cfg.get_int("x", 0), 5);
  EXPECT_FALSE(cfg.has("y"));
}

TEST(Config, LaterAssignmentsWin) {
  const Config cfg = Config::parse("k = 1\nk = 2\n");
  EXPECT_EQ(cfg.get_int("k", 0), 2);
}

TEST(Config, FallbacksWhenMissing) {
  const Config cfg = Config::parse("");
  EXPECT_EQ(cfg.get_int("nope", 7), 7);
  EXPECT_EQ(cfg.get_string("nope", "dflt"), "dflt");
  EXPECT_TRUE(cfg.get_bool("nope", true));
  EXPECT_FALSE(cfg.get("nope").has_value());
}

TEST(Config, BooleanSpellings) {
  const Config cfg =
      Config::parse("a=true\nb=FALSE\nc=1\nd=0\ne=Yes\nf=off\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
  EXPECT_TRUE(cfg.get_bool("e", false));
  EXPECT_FALSE(cfg.get_bool("f", true));
}

TEST(Config, MalformedLinesThrow) {
  EXPECT_THROW(Config::parse("no equals sign\n"), std::runtime_error);
  EXPECT_THROW(Config::parse("= value\n"), std::runtime_error);
}

TEST(Config, TypeErrorsThrow) {
  const Config cfg = Config::parse("n = abc\nb = maybe\n");
  EXPECT_THROW((void)cfg.get_int("n", 0), std::runtime_error);
  EXPECT_THROW((void)cfg.get_double("n", 0), std::runtime_error);
  EXPECT_THROW((void)cfg.get_bool("b", false), std::runtime_error);
}

TEST(Config, SetOverlays) {
  Config cfg = Config::parse("a = 1\n");
  cfg.set("a", "9");
  cfg.set("new", "v");
  EXPECT_EQ(cfg.get_int("a", 0), 9);
  EXPECT_EQ(cfg.get_string("new", ""), "v");
}

TEST(Config, ValueMayContainEquals) {
  const Config cfg = Config::parse("expr = a=b\n");
  EXPECT_EQ(cfg.get_string("expr", ""), "a=b");
}

}  // namespace
}  // namespace digruber
