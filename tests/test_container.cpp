#include "digruber/net/container.hpp"

#include <gtest/gtest.h>

namespace digruber::net {
namespace {

ContainerProfile flat_profile(int workers, double service_ms,
                              std::size_t queue_limit = 4096) {
  ContainerProfile p;
  p.name = "flat";
  p.workers = workers;
  p.queue_limit = queue_limit;
  p.base_overhead = sim::Duration::millis(service_ms);
  p.auth_cost = sim::Duration::zero();
  p.parse_cost_per_kb = sim::Duration::zero();
  p.serialize_cost_per_kb = sim::Duration::zero();
  return p;
}

Served noop() { return Served{}; }

TEST(Container, ServiceTimeComposition) {
  sim::Simulation sim;
  ContainerProfile p;
  p.base_overhead = sim::Duration::millis(10);
  p.auth_cost = sim::Duration::millis(100);
  p.parse_cost_per_kb = sim::Duration::millis(20);
  p.serialize_cost_per_kb = sim::Duration::millis(30);
  p.speed = 1.0;
  ServiceContainer c(sim, p);
  const double s =
      c.service_time(2048, 1024, sim::Duration::millis(40)).to_seconds();
  EXPECT_NEAR(s, 0.010 + 0.100 + 0.040 + 0.030 + 0.040, 1e-9);
}

TEST(Container, SpeedScalesServiceTime) {
  sim::Simulation sim;
  ContainerProfile p = flat_profile(1, 100);
  p.speed = 2.0;
  ServiceContainer c(sim, p);
  EXPECT_NEAR(c.service_time(0, 0, sim::Duration::zero()).to_seconds(), 0.05, 1e-9);
}

TEST(Container, SingleWorkerSerializesRequests) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(1, 1000));
  std::vector<double> completed_at;
  for (int i = 0; i < 3; ++i) {
    c.submit(0, noop, [&](auto) { completed_at.push_back(sim.now().to_seconds()); });
  }
  sim.run();
  ASSERT_EQ(completed_at.size(), 3u);
  EXPECT_NEAR(completed_at[0], 1.0, 1e-6);
  EXPECT_NEAR(completed_at[1], 2.0, 1e-6);
  EXPECT_NEAR(completed_at[2], 3.0, 1e-6);
}

TEST(Container, WorkersRunInParallel) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(3, 1000));
  int done = 0;
  for (int i = 0; i < 3; ++i) c.submit(0, noop, [&](auto) { ++done; });
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_NEAR(sim.now().to_seconds(), 1.0, 1e-6);  // all three concurrently
}

TEST(Container, ThroughputBoundIsWorkersOverService) {
  // 2 workers x 0.5 s service = 4 requests/second sustained.
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(2, 500));
  int done = 0;
  for (int i = 0; i < 40; ++i) c.submit(0, noop, [&](auto) { ++done; });
  sim.run();
  EXPECT_EQ(done, 40);
  EXPECT_NEAR(sim.now().to_seconds(), 10.0, 1e-6);
}

TEST(Container, QueueLimitRefusesExcess) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(1, 1000, /*queue_limit=*/2));
  int accepted = 0, completions = 0;
  for (int i = 0; i < 10; ++i) {
    if (c.submit(0, noop, [&](auto) { ++completions; })) ++accepted;
  }
  EXPECT_EQ(accepted, 3);  // 1 in service + 2 queued
  EXPECT_EQ(c.refused(), 7u);
  sim.run();
  EXPECT_EQ(completions, 3);
}

TEST(Container, SojournIncludesQueueWait) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(1, 1000));
  c.submit(0, noop, [](auto) {});
  c.submit(0, noop, [](auto) {});
  sim.run();
  // First waits 0 + 1 s service; second waits 1 s + 1 s service.
  EXPECT_NEAR(c.sojourn_stats().mean(), 1.5, 1e-6);
  EXPECT_NEAR(c.sojourn_stats().max(), 2.0, 1e-6);
}

TEST(Container, HandlerReplyFedToCompletion) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(1, 10));
  Buffer got;
  c.submit(
      100, [] { return Served{{9, 8, 7}, sim::Duration::millis(5)}; },
      [&](Buffer reply) { got = std::move(reply); });
  sim.run();
  EXPECT_EQ(got, Buffer({9, 8, 7}));
}

TEST(Container, HandlerCostExtendsService) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(1, 100));
  c.submit(0, [] { return Served{{}, sim::Duration::millis(400)}; }, [](auto) {});
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 0.5, 1e-6);
}

TEST(Container, UtilizationTracksBusyFraction) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(2, 1000));
  for (int i = 0; i < 4; ++i) c.submit(0, noop, [](auto) {});
  sim.run();  // 4 x 1 s over 2 workers -> busy 2 s of wall, full utilization
  EXPECT_NEAR(c.utilization(sim.now()), 1.0, 1e-6);
  EXPECT_NEAR(c.utilization(sim::Time::from_seconds(4)), 0.5, 1e-6);
}

TEST(Container, GtProfilesOrdered) {
  // GT4 (the 3.9.4 prerelease) must be slower than GT3.2 per the paper.
  sim::Simulation sim;
  ServiceContainer gt3(sim, ContainerProfile::gt3());
  ServiceContainer gt4(sim, ContainerProfile::gt4());
  const auto cost3 = gt3.service_time(4096, 8192, sim::Duration::zero());
  const auto cost4 = gt4.service_time(4096, 8192, sim::Duration::zero());
  EXPECT_GT(cost4.to_seconds(), cost3.to_seconds() * 1.5);
}

/// Property sweep: completion count equals submissions for varying worker
/// pools, and makespan matches ceil(n/workers) * service.
class ContainerProperty : public ::testing::TestWithParam<int> {};

TEST_P(ContainerProperty, MakespanFormula) {
  const int workers = GetParam();
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(workers, 200));
  const int n = 17;
  int done = 0;
  for (int i = 0; i < n; ++i) c.submit(0, noop, [&](auto) { ++done; });
  sim.run();
  EXPECT_EQ(done, n);
  const double expected = std::ceil(double(n) / workers) * 0.2;
  EXPECT_NEAR(sim.now().to_seconds(), expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Workers, ContainerProperty, ::testing::Values(1, 2, 3, 5, 8));

// ---------------------------------------------------------------------------
// Overload control (deadline-aware admission, typed rejections, priority
// classes, LIFO-under-overload). The policy is opt-in; the first test pins
// the disabled path to the legacy semantics.

ContainerProfile overload_profile(int workers, double service_ms,
                                  std::size_t queue_limit) {
  ContainerProfile p = flat_profile(workers, service_ms, queue_limit);
  p.overload.enabled = true;
  return p;
}

TEST(ContainerOverload, DisabledSubmitExMatchesLegacy) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(1, 1000, /*queue_limit=*/2));
  // An absurdly tight deadline and a shed callback: both must be ignored
  // with the policy off.
  bool shed_fired = false;
  int completions = 0;
  for (int i = 0; i < 5; ++i) {
    const Admission a = c.submit_ex(
        0, noop, [&](auto) { ++completions; }, Priority::kQuery,
        sim::Time::from_seconds(0.001),
        [&](sim::Duration) { shed_fired = true; });
    if (i < 3) {
      EXPECT_TRUE(a.accepted());
    } else {
      EXPECT_EQ(a.result, AdmitResult::kQueueFull);
      EXPECT_EQ(a.retry_after, sim::Duration::zero());  // no hint when legacy
    }
  }
  sim.run();
  EXPECT_EQ(completions, 3);  // doomed requests served anyway
  EXPECT_FALSE(shed_fired);
  EXPECT_EQ(c.refused(), 2u);
  EXPECT_EQ(c.shed_deadline(), 0u);
}

TEST(ContainerOverload, QueueFullRejectionIsTypedWithRetryAfter) {
  sim::Simulation sim;
  ServiceContainer c(sim, overload_profile(1, 1000, /*queue_limit=*/2));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(c.submit_ex(0, noop, [](auto) {}, Priority::kQuery).accepted());
  }
  const Admission a = c.submit_ex(0, noop, [](auto) {}, Priority::kQuery);
  EXPECT_EQ(a.result, AdmitResult::kQueueFull);
  // The hint is the drain estimate clamped to the policy bounds: 2 queued
  // + 1 arriving at 1 s each = 3 s, within [250 ms, 30 s].
  EXPECT_NEAR(a.retry_after.to_seconds(), 3.0, 1e-6);
  EXPECT_EQ(c.refused(), 1u);
  sim.run();
}

TEST(ContainerOverload, AdmissionShedsDoomedRequests) {
  sim::Simulation sim;
  ServiceContainer c(sim, overload_profile(1, 1000, /*queue_limit=*/64));
  int completions = 0;
  // First request starts immediately and seeds the service-time EWMA (1 s);
  // three more stack up behind it.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        c.submit_ex(0, noop, [&](auto) { ++completions; }, Priority::kQuery)
            .accepted());
  }
  // Predicted sojourn is now ~4 s; a request due in 1 s is doomed.
  const Admission doomed =
      c.submit_ex(0, noop, [&](auto) { ++completions; }, Priority::kQuery,
                  sim::Time::from_seconds(1));
  EXPECT_EQ(doomed.result, AdmitResult::kDeadline);
  EXPECT_GT(doomed.retry_after, sim::Duration::zero());
  // The same deadline is fine once it is actually reachable.
  const Admission viable =
      c.submit_ex(0, noop, [&](auto) { ++completions; }, Priority::kQuery,
                  sim::Time::from_seconds(60));
  EXPECT_TRUE(viable.accepted());
  sim.run();
  EXPECT_EQ(completions, 5);
  EXPECT_EQ(c.shed_deadline(), 1u);
}

TEST(ContainerOverload, PickupShedFiresCallbackInsteadOfCompletion) {
  sim::Simulation sim;
  ServiceContainer c(sim, overload_profile(1, 100, /*queue_limit=*/64));
  // A short first request seeds a 0.1 s EWMA, so admission predicts a 0.2 s
  // sojourn for the doomed request and lets it in...
  c.submit_ex(0, noop, [](auto) {}, Priority::kQuery);
  // ...but a 2 s handler sneaks in ahead of it, so by pickup time the
  // deadline has long passed.
  c.submit_ex(
      0, [] { return Served{{}, sim::Duration::seconds(2)}; }, [](auto) {},
      Priority::kQuery);
  bool completion_fired = false;
  sim::Duration retry_after = sim::Duration::zero();
  const Admission a = c.submit_ex(
      0, noop, [&](auto) { completion_fired = true; }, Priority::kQuery,
      sim::Time::from_seconds(0.5),
      [&](sim::Duration hint) { retry_after = hint; });
  ASSERT_TRUE(a.accepted());
  sim.run();
  EXPECT_FALSE(completion_fired);
  EXPECT_GT(retry_after, sim::Duration::zero());
  EXPECT_EQ(c.shed_deadline(), 1u);
  EXPECT_EQ(c.completed(), 2u);
}

TEST(ContainerOverload, LifoPickupAboveThresholdFifoBelow) {
  // queue_limit 8 x lifo_fraction 0.5 = LIFO while depth >= 4.
  sim::Simulation sim;
  ServiceContainer c(sim, overload_profile(1, 1000, /*queue_limit=*/8));
  std::vector<int> order;
  auto enqueue = [&](int id) {
    ASSERT_TRUE(c.submit_ex(0, noop, [&order, id](auto) { order.push_back(id); },
                            Priority::kQuery)
                    .accepted());
  };
  for (int i = 0; i < 6; ++i) enqueue(i);  // 0 in service, 1..5 queued
  sim.run();
  // Depth at each pickup: 5,4 -> LIFO (newest first), then 3,2,1 -> FIFO.
  EXPECT_EQ(order, (std::vector<int>{0, 5, 4, 1, 2, 3}));
  EXPECT_EQ(c.lifo_pickups(), 2u);
}

TEST(ContainerOverload, ControlClassBypassesLimitAndDrainsFirst) {
  sim::Simulation sim;
  ServiceContainer c(sim, overload_profile(1, 1000, /*queue_limit=*/1));
  std::vector<std::string> order;
  auto tag = [&order](std::string label) {
    return [&order, label = std::move(label)](net::Buffer) {
      order.push_back(label);
    };
  };
  ASSERT_TRUE(c.submit_ex(0, noop, tag("q0"), Priority::kQuery).accepted());
  ASSERT_TRUE(c.submit_ex(0, noop, tag("q1"), Priority::kQuery).accepted());
  // Query queue is at its limit now — queries bounce, control does not.
  EXPECT_EQ(c.submit_ex(0, noop, tag("q2"), Priority::kQuery).result,
            AdmitResult::kQueueFull);
  ASSERT_TRUE(c.submit_ex(0, noop, tag("c0"), Priority::kControl).accepted());
  ASSERT_TRUE(c.submit_ex(0, noop, tag("c1"), Priority::kControl).accepted());
  sim.run();
  // Control drains before the queued query, in FIFO order.
  EXPECT_EQ(order, (std::vector<std::string>{"q0", "c0", "c1", "q1"}));
}

TEST(ContainerOverload, AbortAccountsQueuedControlAndBusy) {
  sim::Simulation sim;
  ServiceContainer c(sim, overload_profile(2, 1000, /*queue_limit=*/16));
  int completions = 0;
  for (int i = 0; i < 5; ++i) {
    c.submit_ex(0, noop, [&](auto) { ++completions; }, Priority::kQuery);
  }
  c.submit_ex(0, noop, [&](auto) { ++completions; }, Priority::kControl);
  // 2 busy + 3 queued queries + 1 queued control.
  c.abort_all();
  EXPECT_EQ(c.aborted(), 6u);
  EXPECT_EQ(c.queue_depth(), 0u);
  EXPECT_EQ(c.busy_workers(), 0);
  sim.run();
  EXPECT_EQ(completions, 0);  // orphaned work never completes
  // Conservation: submitted == completed + refused + shed + aborted.
  EXPECT_EQ(c.submitted(),
            c.completed() + c.refused() + c.shed_deadline() + c.aborted());
  // The container still serves post-crash work.
  c.submit_ex(0, noop, [&](auto) { ++completions; }, Priority::kQuery);
  sim.run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(c.completed(), 1u);
}

TEST(ContainerOverload, EstSojournZeroWhileWorkerFree) {
  sim::Simulation sim;
  ServiceContainer c(sim, overload_profile(2, 1000, /*queue_limit=*/16));
  EXPECT_EQ(c.est_sojourn(), sim::Duration::zero());
  c.submit_ex(0, noop, [](auto) {}, Priority::kQuery);
  EXPECT_EQ(c.est_sojourn(), sim::Duration::zero());  // second worker free
  c.submit_ex(0, noop, [](auto) {}, Priority::kQuery);
  EXPECT_GT(c.est_sojourn(), sim::Duration::zero());  // pool saturated
  sim.run();
}

}  // namespace
}  // namespace digruber::net
