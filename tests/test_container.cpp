#include "digruber/net/container.hpp"

#include <gtest/gtest.h>

namespace digruber::net {
namespace {

ContainerProfile flat_profile(int workers, double service_ms,
                              std::size_t queue_limit = 4096) {
  ContainerProfile p;
  p.name = "flat";
  p.workers = workers;
  p.queue_limit = queue_limit;
  p.base_overhead = sim::Duration::millis(service_ms);
  p.auth_cost = sim::Duration::zero();
  p.parse_cost_per_kb = sim::Duration::zero();
  p.serialize_cost_per_kb = sim::Duration::zero();
  return p;
}

Served noop() { return Served{}; }

TEST(Container, ServiceTimeComposition) {
  sim::Simulation sim;
  ContainerProfile p;
  p.base_overhead = sim::Duration::millis(10);
  p.auth_cost = sim::Duration::millis(100);
  p.parse_cost_per_kb = sim::Duration::millis(20);
  p.serialize_cost_per_kb = sim::Duration::millis(30);
  p.speed = 1.0;
  ServiceContainer c(sim, p);
  const double s =
      c.service_time(2048, 1024, sim::Duration::millis(40)).to_seconds();
  EXPECT_NEAR(s, 0.010 + 0.100 + 0.040 + 0.030 + 0.040, 1e-9);
}

TEST(Container, SpeedScalesServiceTime) {
  sim::Simulation sim;
  ContainerProfile p = flat_profile(1, 100);
  p.speed = 2.0;
  ServiceContainer c(sim, p);
  EXPECT_NEAR(c.service_time(0, 0, sim::Duration::zero()).to_seconds(), 0.05, 1e-9);
}

TEST(Container, SingleWorkerSerializesRequests) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(1, 1000));
  std::vector<double> completed_at;
  for (int i = 0; i < 3; ++i) {
    c.submit(0, noop, [&](auto) { completed_at.push_back(sim.now().to_seconds()); });
  }
  sim.run();
  ASSERT_EQ(completed_at.size(), 3u);
  EXPECT_NEAR(completed_at[0], 1.0, 1e-6);
  EXPECT_NEAR(completed_at[1], 2.0, 1e-6);
  EXPECT_NEAR(completed_at[2], 3.0, 1e-6);
}

TEST(Container, WorkersRunInParallel) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(3, 1000));
  int done = 0;
  for (int i = 0; i < 3; ++i) c.submit(0, noop, [&](auto) { ++done; });
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_NEAR(sim.now().to_seconds(), 1.0, 1e-6);  // all three concurrently
}

TEST(Container, ThroughputBoundIsWorkersOverService) {
  // 2 workers x 0.5 s service = 4 requests/second sustained.
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(2, 500));
  int done = 0;
  for (int i = 0; i < 40; ++i) c.submit(0, noop, [&](auto) { ++done; });
  sim.run();
  EXPECT_EQ(done, 40);
  EXPECT_NEAR(sim.now().to_seconds(), 10.0, 1e-6);
}

TEST(Container, QueueLimitRefusesExcess) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(1, 1000, /*queue_limit=*/2));
  int accepted = 0, completions = 0;
  for (int i = 0; i < 10; ++i) {
    if (c.submit(0, noop, [&](auto) { ++completions; })) ++accepted;
  }
  EXPECT_EQ(accepted, 3);  // 1 in service + 2 queued
  EXPECT_EQ(c.refused(), 7u);
  sim.run();
  EXPECT_EQ(completions, 3);
}

TEST(Container, SojournIncludesQueueWait) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(1, 1000));
  c.submit(0, noop, [](auto) {});
  c.submit(0, noop, [](auto) {});
  sim.run();
  // First waits 0 + 1 s service; second waits 1 s + 1 s service.
  EXPECT_NEAR(c.sojourn_stats().mean(), 1.5, 1e-6);
  EXPECT_NEAR(c.sojourn_stats().max(), 2.0, 1e-6);
}

TEST(Container, HandlerReplyFedToCompletion) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(1, 10));
  std::vector<std::uint8_t> got;
  c.submit(
      100, [] { return Served{{9, 8, 7}, sim::Duration::millis(5)}; },
      [&](std::vector<std::uint8_t> reply) { got = std::move(reply); });
  sim.run();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(Container, HandlerCostExtendsService) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(1, 100));
  c.submit(0, [] { return Served{{}, sim::Duration::millis(400)}; }, [](auto) {});
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 0.5, 1e-6);
}

TEST(Container, UtilizationTracksBusyFraction) {
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(2, 1000));
  for (int i = 0; i < 4; ++i) c.submit(0, noop, [](auto) {});
  sim.run();  // 4 x 1 s over 2 workers -> busy 2 s of wall, full utilization
  EXPECT_NEAR(c.utilization(sim.now()), 1.0, 1e-6);
  EXPECT_NEAR(c.utilization(sim::Time::from_seconds(4)), 0.5, 1e-6);
}

TEST(Container, GtProfilesOrdered) {
  // GT4 (the 3.9.4 prerelease) must be slower than GT3.2 per the paper.
  sim::Simulation sim;
  ServiceContainer gt3(sim, ContainerProfile::gt3());
  ServiceContainer gt4(sim, ContainerProfile::gt4());
  const auto cost3 = gt3.service_time(4096, 8192, sim::Duration::zero());
  const auto cost4 = gt4.service_time(4096, 8192, sim::Duration::zero());
  EXPECT_GT(cost4.to_seconds(), cost3.to_seconds() * 1.5);
}

/// Property sweep: completion count equals submissions for varying worker
/// pools, and makespan matches ceil(n/workers) * service.
class ContainerProperty : public ::testing::TestWithParam<int> {};

TEST_P(ContainerProperty, MakespanFormula) {
  const int workers = GetParam();
  sim::Simulation sim;
  ServiceContainer c(sim, flat_profile(workers, 200));
  const int n = 17;
  int done = 0;
  for (int i = 0; i < n; ++i) c.submit(0, noop, [&](auto) { ++done; });
  sim.run();
  EXPECT_EQ(done, n);
  const double expected = std::ceil(double(n) / workers) * 0.2;
  EXPECT_NEAR(sim.now().to_seconds(), expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Workers, ContainerProperty, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace digruber::net
