#include "digruber/digruber/decision_point.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "digruber/digruber/infrastructure_monitor.hpp"
#include "digruber/net/sim_transport.hpp"

namespace digruber::digruber {
namespace {

net::ContainerProfile fast_profile() {
  net::ContainerProfile p;
  p.workers = 4;
  p.base_overhead = sim::Duration::millis(5);
  p.auth_cost = sim::Duration::zero();
  p.parse_cost_per_kb = sim::Duration::zero();
  p.serialize_cost_per_kb = sim::Duration::zero();
  return p;
}

struct Fixture {
  sim::Simulation sim;
  net::SimTransport transport;
  grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 2);
  usla::AllocationTree tree;
  net::RpcClient rpc;

  explicit Fixture(std::uint64_t seed = 1)
      : transport(sim, net::WanModel(net::WanParams{}, seed)), rpc(sim, transport) {
    tree = usla::AllocationTree::build({}, catalog).value();
  }

  DecisionPointOptions options() {
    DecisionPointOptions o;
    o.profile = fast_profile();
    o.exchange_interval = sim::Duration::minutes(1);
    o.eval_cost_per_site = sim::Duration::millis(0.1);
    return o;
  }

  std::vector<grid::SiteSnapshot> snapshots() {
    std::vector<grid::SiteSnapshot> out;
    for (std::uint64_t i = 0; i < 3; ++i) {
      grid::SiteSnapshot s;
      s.site = SiteId(i);
      s.total_cpus = 100;
      s.free_cpus = std::int32_t(100 - 10 * i);
      out.push_back(s);
    }
    return out;
  }

  GetSiteLoadsRequest request() {
    GetSiteLoadsRequest r;
    r.job = JobId(1);
    r.vo = VoId(0);
    r.group = GroupId(0);
    r.user = UserId(0);
    r.cpus = 1;
    return r;
  }
};

TEST(DecisionPoint, AnswersSiteLoadQueries) {
  Fixture f;
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.options());
  dp.bootstrap(f.snapshots());

  bool got = false;
  f.rpc.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
      dp.node(), kGetSiteLoads, f.request(), sim::Duration::seconds(30),
      [&](Result<GetSiteLoadsReply> result) {
        ASSERT_TRUE(result.ok()) << result.error();
        ASSERT_EQ(result.value().candidates.size(), 3u);
        EXPECT_EQ(result.value().candidates[0].free_estimate, 100);
        EXPECT_EQ(result.value().candidates[2].free_estimate, 80);
        got = true;
      });
  f.sim.run_until(sim::Time::from_seconds(30));
  EXPECT_TRUE(got);
  EXPECT_EQ(dp.queries_served(), 1u);
  dp.stop();
}

TEST(DecisionPoint, ReportedSelectionsSteerLaterQueries) {
  Fixture f;
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.options());
  dp.bootstrap(f.snapshots());

  ReportSelectionRequest report;
  report.job = JobId(1);
  report.site = SiteId(0);
  report.vo = VoId(0);
  report.group = GroupId(0);
  report.user = UserId(0);
  report.cpus = 40;
  report.est_runtime = sim::Duration::seconds(500);

  bool acked = false;
  f.rpc.call<ReportSelectionRequest, Ack>(dp.node(), kReportSelection, report,
                                          sim::Duration::seconds(30),
                                          [&](Result<Ack> a) { acked = a.ok(); });
  f.sim.run_until(sim::Time::from_seconds(10));
  ASSERT_TRUE(acked);
  EXPECT_EQ(dp.selections_recorded(), 1u);

  bool checked = false;
  f.rpc.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
      dp.node(), kGetSiteLoads, f.request(), sim::Duration::seconds(30),
      [&](Result<GetSiteLoadsReply> result) {
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result.value().candidates[0].free_estimate, 60);  // 100-40
        checked = true;
      });
  f.sim.run_until(sim::Time::from_seconds(20));
  EXPECT_TRUE(checked);
  dp.stop();
}

TEST(DecisionPoint, ExchangePropagatesDispatchRecords) {
  Fixture f;
  DecisionPointOptions options = f.options();
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, options);
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, options);
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  connect({&a, &b}, Overlay::kMesh);

  ReportSelectionRequest report;
  report.site = SiteId(1);
  report.vo = VoId(0);
  report.group = GroupId(0);
  report.user = UserId(0);
  report.cpus = 25;
  report.est_runtime = sim::Duration::minutes(30);
  f.rpc.call<ReportSelectionRequest, Ack>(a.node(), kReportSelection, report,
                                          sim::Duration::seconds(30),
                                          [](Result<Ack>) {});

  // Before the first exchange tick, b knows nothing.
  f.sim.run_until(sim::Time::from_seconds(30));
  EXPECT_EQ(b.records_applied(), 0u);
  EXPECT_EQ(b.engine().view().estimated_free(SiteId(1), f.sim.now()), 90);

  // After the 1-minute exchange interval, b has learned a's dispatch.
  f.sim.run_until(sim::Time::from_seconds(90));
  EXPECT_EQ(b.records_applied(), 1u);
  EXPECT_EQ(b.engine().view().estimated_free(SiteId(1), f.sim.now()), 65);
  EXPECT_GE(a.exchanges_sent(), 1u);
  EXPECT_GE(b.exchanges_received(), 1u);
  a.stop();
  b.stop();
}

TEST(DecisionPoint, ExchangeRoundEncodesOnceRegardlessOfPeerCount) {
  // The state-exchange broadcast serializes its ExchangeMessage exactly
  // once per round and shares the frame across all N-1 mesh peers; the
  // wire layer's encode counter is the witness. Counters are process-wide,
  // so assert on deltas.
  Fixture f;
  DecisionPointOptions options = f.options();
  std::vector<std::unique_ptr<DecisionPoint>> dps;
  std::vector<DecisionPoint*> raw;
  for (std::uint64_t i = 0; i < 4; ++i) {
    dps.push_back(std::make_unique<DecisionPoint>(f.sim, f.transport, DpId(i),
                                                  f.catalog, f.tree, options));
    dps.back()->bootstrap(f.snapshots());
    raw.push_back(dps.back().get());
  }
  connect(raw, Overlay::kMesh);

  const net::wire::WireStats& stats = net::wire::wire_stats();
  const std::uint64_t encodes_before =
      stats.encodes(net::wire::MsgCategory::kStateExchange);
  const std::uint64_t bytes_before =
      stats.bytes(net::wire::MsgCategory::kStateExchange);

  // One exchange tick for each of the 4 decision points.
  f.sim.run_until(sim::Time::from_seconds(70));

  const std::uint64_t encodes =
      stats.encodes(net::wire::MsgCategory::kStateExchange) - encodes_before;
  // 4 DPs x 1 round = 4 serializations — NOT 4 DPs x 3 peers = 12.
  EXPECT_EQ(encodes, 4u);
  EXPECT_GT(stats.bytes(net::wire::MsgCategory::kStateExchange), bytes_before);
  // Every peer still got its copy: deliveries scale with the mesh degree.
  for (DecisionPoint* dp : raw) {
    EXPECT_EQ(dp->exchanges_sent(), 3u);
    EXPECT_EQ(dp->exchanges_received(), 3u);
    dp->stop();
  }
}

TEST(DecisionPoint, FloodingDedupsAcrossMesh) {
  Fixture f;
  DecisionPointOptions options = f.options();
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, options);
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, options);
  DecisionPoint c(f.sim, f.transport, DpId(2), f.catalog, f.tree, options);
  for (DecisionPoint* dp : {&a, &b, &c}) dp->bootstrap(f.snapshots());
  connect({&a, &b, &c}, Overlay::kMesh);

  ReportSelectionRequest report;
  report.site = SiteId(0);
  report.vo = VoId(0);
  report.group = GroupId(0);
  report.user = UserId(0);
  report.cpus = 10;
  report.est_runtime = sim::Duration::minutes(60);
  f.rpc.call<ReportSelectionRequest, Ack>(a.node(), kReportSelection, report,
                                          sim::Duration::seconds(30),
                                          [](Result<Ack>) {});

  // Several exchange rounds: b and c each apply the record exactly once
  // even though the mesh relays it from multiple directions.
  f.sim.run_until(sim::Time::from_seconds(300));
  EXPECT_EQ(b.records_applied(), 1u);
  EXPECT_EQ(c.records_applied(), 1u);
  EXPECT_GT(b.records_duplicate() + c.records_duplicate() + a.records_duplicate(), 0u);
  // The view is not double-counted.
  EXPECT_EQ(b.engine().view().estimated_free(SiteId(0), f.sim.now()), 90);
  for (DecisionPoint* dp : {&a, &b, &c}) dp->stop();
}

TEST(DecisionPoint, RingOverlayRelaysAcrossHops) {
  Fixture f;
  DecisionPointOptions options = f.options();
  std::vector<std::unique_ptr<DecisionPoint>> dps;
  for (std::uint64_t i = 0; i < 4; ++i) {
    dps.push_back(std::make_unique<DecisionPoint>(f.sim, f.transport, DpId(i),
                                                  f.catalog, f.tree, options));
    dps.back()->bootstrap(f.snapshots());
  }
  connect({dps[0].get(), dps[1].get(), dps[2].get(), dps[3].get()}, Overlay::kRing);

  ReportSelectionRequest report;
  report.site = SiteId(2);
  report.vo = VoId(0);
  report.group = GroupId(0);
  report.user = UserId(0);
  report.cpus = 30;
  report.est_runtime = sim::Duration::minutes(60);
  f.rpc.call<ReportSelectionRequest, Ack>(dps[0]->node(), kReportSelection, report,
                                          sim::Duration::seconds(30),
                                          [](Result<Ack>) {});

  // dp2 is two hops from dp0 on the ring: needs two exchange rounds.
  f.sim.run_until(sim::Time::from_seconds(70));
  EXPECT_EQ(dps[1]->records_applied(), 1u);
  EXPECT_EQ(dps[3]->records_applied(), 1u);
  EXPECT_EQ(dps[2]->records_applied(), 0u);
  f.sim.run_until(sim::Time::from_seconds(130));
  EXPECT_EQ(dps[2]->records_applied(), 1u);
  for (auto& dp : dps) dp->stop();
}

TEST(DecisionPoint, DisseminationNoneNeverExchanges) {
  Fixture f;
  DecisionPointOptions options = f.options();
  options.dissemination = Dissemination::kNone;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, options);
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, options);
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  connect({&a, &b}, Overlay::kMesh);

  ReportSelectionRequest report;
  report.site = SiteId(0);
  report.vo = VoId(0);
  report.group = GroupId(0);
  report.user = UserId(0);
  report.cpus = 10;
  report.est_runtime = sim::Duration::minutes(60);
  f.rpc.call<ReportSelectionRequest, Ack>(a.node(), kReportSelection, report,
                                          sim::Duration::seconds(30),
                                          [](Result<Ack>) {});
  f.sim.run_until(sim::Time::from_seconds(600));
  EXPECT_EQ(a.exchanges_sent(), 0u);
  EXPECT_EQ(b.records_applied(), 0u);
  a.stop();
  b.stop();
}

TEST(DecisionPoint, OverlayNeighborSets) {
  const auto mesh = overlay_neighbors(4, Overlay::kMesh);
  EXPECT_EQ(mesh[0].size(), 3u);
  EXPECT_EQ(mesh[3].size(), 3u);

  const auto ring = overlay_neighbors(5, Overlay::kRing);
  EXPECT_EQ(ring[0], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(ring[2], (std::vector<std::size_t>{3, 1}));

  const auto ring2 = overlay_neighbors(2, Overlay::kRing);
  EXPECT_EQ(ring2[0], (std::vector<std::size_t>{1}));

  const auto star = overlay_neighbors(4, Overlay::kStar);
  EXPECT_EQ(star[0].size(), 3u);
  EXPECT_EQ(star[1], (std::vector<std::size_t>{0}));

  EXPECT_TRUE(overlay_neighbors(1, Overlay::kMesh)[0].empty());
}

TEST(DecisionPoint, SaturationSignalsReachMonitor) {
  Fixture f;
  int provisions = 0;
  InfrastructureMonitor::Options mo;
  mo.signals_to_act = 1;
  InfrastructureMonitor monitor(
      f.sim, f.transport, [&](const SaturationSignal&) { ++provisions; }, mo);

  DecisionPointOptions options = f.options();
  options.profile.workers = 1;
  options.profile.base_overhead = sim::Duration::seconds(20);  // very slow
  options.saturation_response_s = 5.0;
  options.infrastructure_monitor = monitor.node();
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree, options);
  dp.bootstrap(f.snapshots());

  // Hammer the decision point so its sojourn times blow past the bound.
  for (int i = 0; i < 20; ++i) {
    f.rpc.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
        dp.node(), kGetSiteLoads, f.request(), sim::Duration::minutes(20),
        [](Result<GetSiteLoadsReply>) {});
  }
  f.sim.run_until(sim::Time::from_seconds(600));
  EXPECT_GE(dp.saturation_signals(), 1u);
  EXPECT_GE(monitor.signals_received(), 1u);
  EXPECT_GE(provisions, 1);
  dp.stop();
}

}  // namespace
}  // namespace digruber::digruber
