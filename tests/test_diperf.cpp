#include "digruber/diperf/diperf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "digruber/diperf/report.hpp"

namespace digruber::diperf {
namespace {

TEST(Collector, SeriesBucketsCompletions) {
  Collector collector;
  collector.client_started(ClientId(0), sim::Time::zero());
  // Two requests completing at t=5 and t=65.
  collector.record({ClientId(0), sim::Time::from_seconds(0), 5.0, true});
  collector.record({ClientId(0), sim::Time::from_seconds(60), 5.0, true});
  const auto buckets = collector.series(60.0, 120.0);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].completions, 1u);
  EXPECT_EQ(buckets[1].completions, 1u);
  EXPECT_DOUBLE_EQ(buckets[0].response_avg_s, 5.0);
  EXPECT_DOUBLE_EQ(buckets[0].throughput_qps, 1.0 / 60.0);
  EXPECT_DOUBLE_EQ(buckets[0].load, 1.0);
}

TEST(Collector, LoadReflectsClientSpans) {
  Collector collector;
  collector.client_started(ClientId(0), sim::Time::zero());
  collector.client_started(ClientId(1), sim::Time::from_seconds(100));
  collector.client_stopped(ClientId(0), sim::Time::from_seconds(160));
  const auto buckets = collector.series(100.0, 300.0);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].load, 1.0);  // midpoint 50: only client 0
  EXPECT_DOUBLE_EQ(buckets[1].load, 2.0);  // midpoint 150: both active
  EXPECT_DOUBLE_EQ(buckets[2].load, 1.0);  // midpoint 250: only client 1
}

TEST(Collector, CompletionsOutsideWindowIgnored) {
  Collector collector;
  collector.record({ClientId(0), sim::Time::from_seconds(90), 20.0, true});  // done at 110
  const auto buckets = collector.series(60.0, 100.0);
  std::uint64_t total = 0;
  for (const auto& b : buckets) total += b.completions;
  EXPECT_EQ(total, 0u);
}

TEST(Collector, SummaryAndFailures) {
  Collector collector;
  for (double r : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    collector.record({ClientId(0), sim::Time::zero(), r, r < 4.0});
  }
  const Summary s = collector.response_summary();
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.average, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_EQ(collector.failures(), 2u);
}

TEST(Tester, ClosedLoopPacing) {
  sim::Simulation sim;
  Collector collector;
  // Operation takes 2 s (simulated), think time 3 s -> one completion
  // every 5 s.
  auto op = [&sim](std::function<void(bool)> done) {
    sim.schedule_after(sim::Duration::seconds(2), [done] { done(true); });
  };
  Tester tester(sim, ClientId(0), op, sim::Duration::seconds(3), collector);
  tester.start();
  sim.run_until(sim::Time::from_seconds(26));
  tester.stop();
  // Completions at t = 2, 7, 12, 17, 22 (the t=27 one is still in flight).
  EXPECT_EQ(collector.records().size(), 5u);
  EXPECT_EQ(tester.issued(), 6u);
  for (const auto& r : collector.records()) {
    EXPECT_DOUBLE_EQ(r.response_s, 2.0);
  }
}

TEST(Tester, StopPreventsReissue) {
  sim::Simulation sim;
  Collector collector;
  int in_flight_completions = 0;
  auto op = [&](std::function<void(bool)> done) {
    sim.schedule_after(sim::Duration::seconds(10), [done, &in_flight_completions] {
      ++in_flight_completions;
      done(true);
    });
  };
  Tester tester(sim, ClientId(0), op, sim::Duration::seconds(1), collector);
  tester.start();
  sim.schedule_after(sim::Duration::seconds(5), [&] { tester.stop(); });
  sim.run_until(sim::Time::from_seconds(100));
  EXPECT_EQ(tester.issued(), 1u);
  EXPECT_EQ(in_flight_completions, 1);  // in-flight op completed, not re-issued
}

TEST(Controller, RampStaggersStarts) {
  sim::Simulation sim;
  Collector collector;
  Controller controller(sim, collector);
  auto op = [&sim](std::function<void(bool)> done) {
    sim.schedule_after(sim::Duration::seconds(1), [done] { done(true); });
  };
  for (int i = 0; i < 4; ++i) {
    controller.add_tester(std::make_unique<Tester>(
        sim, ClientId(std::uint64_t(i)), op, sim::Duration::seconds(1), collector));
  }
  controller.schedule(sim::Duration::seconds(0), sim::Duration::seconds(100),
                      sim::Time::from_seconds(400));
  sim.run_until(sim::Time::from_seconds(350));
  const auto buckets = collector.series(100.0, 400.0);
  EXPECT_DOUBLE_EQ(buckets[0].load, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].load, 2.0);
  EXPECT_DOUBLE_EQ(buckets[2].load, 3.0);
  sim.run_until(sim::Time::from_seconds(405));
  // All stopped at t=400.
  const auto after = collector.series(100.0, 500.0);
  EXPECT_DOUBLE_EQ(after[4].load, 0.0);
}

TEST(PerfModel, FitsResponseVsLoad) {
  Collector collector;
  // Synthetic run: load k in bucket k, response = 2 + 0.5 * load.
  for (int k = 0; k < 10; ++k) {
    collector.client_started(ClientId(std::uint64_t(k)),
                             sim::Time::from_seconds(k * 60.0));
    for (int j = 0; j <= k; ++j) {
      const double response = 2.0 + 0.5 * (k + 1);
      collector.record({ClientId(std::uint64_t(j)),
                        sim::Time::from_seconds(k * 60.0 + 10), response, true});
    }
  }
  const PerfModel model = fit_model(collector, 60.0, 600.0);
  EXPECT_GT(model.peak_qps, 0.0);
  EXPECT_NEAR(model.response_vs_load.slope, 0.5, 0.05);
  EXPECT_NEAR(model.response_vs_load.intercept, 2.0, 0.3);
  // Saturation load for a 7 s response bound: 2 + 0.5 x = 7 -> x = 10.
  EXPECT_NEAR(model.saturation_load(7.0), 10.0, 1.0);
}

TEST(PerfModel, FlatResponseNeverSaturates) {
  PerfModel model;
  model.response_vs_load = LinearFit{3.0, 0.0, 1.0};
  EXPECT_TRUE(std::isinf(model.saturation_load(10.0)));
}

TEST(Report, RendersFigure) {
  Collector collector;
  collector.client_started(ClientId(0), sim::Time::zero());
  collector.record({ClientId(0), sim::Time::from_seconds(1), 2.0, true});
  std::ostringstream os;
  render_figure(os, "Test Figure", collector, 120.0);
  const std::string out = os.str();
  EXPECT_NE(out.find("Test Figure"), std::string::npos);
  EXPECT_NE(out.find("Response Time (seconds)"), std::string::npos);
  EXPECT_NE(out.find("Throughput"), std::string::npos);
  EXPECT_NE(out.find("peak throughput"), std::string::npos);
}

}  // namespace
}  // namespace digruber::diperf
