#include "digruber/durable/wal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "digruber/digruber/decision_point.hpp"
#include "digruber/net/sim_transport.hpp"

namespace digruber::durable {
namespace {

std::vector<std::uint8_t> payload_of(std::uint8_t fill, std::size_t n) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST(Wal, RoundTripsFramesInOrder) {
  SimDisk disk({}, 7);
  for (std::uint8_t i = 0; i < 5; ++i) {
    const auto p = payload_of(i, 10 + i);
    wal_append(disk, i, p);
  }
  disk.fsync();

  std::vector<std::pair<std::uint8_t, std::size_t>> seen;
  const WalScan scan = wal_scan(disk.log(), [&](std::uint8_t type,
                                                std::span<const std::uint8_t> p) {
    seen.emplace_back(type, p.size());
    for (const std::uint8_t b : p) EXPECT_EQ(b, type);
  });
  EXPECT_FALSE(scan.truncated);
  EXPECT_EQ(scan.frames, 5u);
  EXPECT_EQ(scan.valid_bytes, disk.log().size());
  ASSERT_EQ(seen.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(seen[i].first, i);
    EXPECT_EQ(seen[i].second, std::size_t(10 + i));
  }
}

TEST(Wal, TornTailTruncatesToLastGoodFrame) {
  SimDisk disk({}, 11);
  for (std::uint8_t i = 0; i < 3; ++i) {
    const auto p = payload_of(i, 32);
    wal_append(disk, i, p);
  }
  disk.tear_tail();  // loses 1..frame_size bytes of the final append

  std::uint64_t delivered = 0;
  const WalScan scan = wal_scan(
      disk.log(), [&](std::uint8_t, std::span<const std::uint8_t>) { ++delivered; });
  EXPECT_TRUE(scan.truncated);
  EXPECT_EQ(scan.frames, 2u);
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(disk.counters().torn_tails, 1u);
}

TEST(Wal, BitRotTerminatesScanAtCorruptFrame) {
  SimDisk disk({}, 13);
  for (std::uint8_t i = 0; i < 4; ++i) {
    const auto p = payload_of(i, 64);
    wal_append(disk, i, p);
  }
  const WalScan clean = wal_scan(disk.log(), [](auto, auto) {});
  ASSERT_EQ(clean.frames, 4u);

  disk.corrupt_bit();
  const WalScan scan = wal_scan(disk.log(), [](auto, auto) {});
  EXPECT_TRUE(scan.truncated);
  EXPECT_LT(scan.frames, 4u);
  EXPECT_EQ(disk.counters().bit_flips, 1u);
}

TEST(Wal, CheckpointImageRoundTripsAndRejectsDamage) {
  const auto payload = payload_of(0xAB, 100);
  const std::vector<std::uint8_t> image = make_checkpoint_image(payload);

  const auto back = read_checkpoint_image(image);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), payload.size());
  EXPECT_TRUE(std::equal(back->begin(), back->end(), payload.begin()));

  // One flipped bit anywhere invalidates the image.
  for (const std::size_t at : {std::size_t(0), image.size() / 2, image.size() - 1}) {
    std::vector<std::uint8_t> bad = image;
    bad[at] ^= 0x40;
    EXPECT_FALSE(read_checkpoint_image(bad).has_value()) << "flip at " << at;
  }
  // A short prefix reads as "no checkpoint", not as garbage state.
  for (std::size_t cut = 0; cut < image.size(); cut += 7) {
    const std::span<const std::uint8_t> prefix(image.data(), cut);
    EXPECT_FALSE(read_checkpoint_image(prefix).has_value()) << "cut " << cut;
  }
}

}  // namespace
}  // namespace digruber::durable

namespace digruber::digruber {
namespace {

net::ContainerProfile fast_profile() {
  net::ContainerProfile p;
  p.workers = 4;
  p.base_overhead = sim::Duration::millis(5);
  p.auth_cost = sim::Duration::zero();
  p.parse_cost_per_kb = sim::Duration::zero();
  p.serialize_cost_per_kb = sim::Duration::zero();
  return p;
}

struct Fixture {
  sim::Simulation sim;
  net::SimTransport transport;
  grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 2);
  usla::AllocationTree tree;
  net::RpcClient rpc;

  explicit Fixture(std::uint64_t seed = 1)
      : transport(sim, net::WanModel(net::WanParams{}, seed)), rpc(sim, transport) {
    tree = usla::AllocationTree::build({}, catalog).value();
  }

  DecisionPointOptions options(bool durable = true) {
    DecisionPointOptions o;
    o.profile = fast_profile();
    o.exchange_interval = sim::Duration::minutes(1);
    o.eval_cost_per_site = sim::Duration::millis(0.1);
    if (durable) {
      o.durability.enabled = true;
      o.durability.disk_seed = 42;
    }
    return o;
  }

  std::vector<grid::SiteSnapshot> snapshots() {
    std::vector<grid::SiteSnapshot> out;
    for (std::uint64_t i = 0; i < 3; ++i) {
      grid::SiteSnapshot s;
      s.site = SiteId(i);
      s.total_cpus = 100;
      s.free_cpus = 100;
      out.push_back(s);
    }
    return out;
  }

  ReportSelectionRequest report(std::uint64_t seq = 0) {
    ReportSelectionRequest r;
    r.job = JobId(1);
    r.site = SiteId(0);
    r.vo = VoId(0);
    r.group = GroupId(0);
    r.user = UserId(0);
    r.cpus = 40;
    r.est_runtime = sim::Duration::seconds(5000);
    if (seq != 0) {
      r.has_request_id = true;
      r.request_client = 77;
      r.request_seq = seq;
    }
    return r;
  }

  void send_report(DecisionPoint& dp, const ReportSelectionRequest& r,
                   Ack* out = nullptr) {
    rpc.call<ReportSelectionRequest, Ack>(
        dp.node(), kReportSelection, r, sim::Duration::seconds(30),
        [out](Result<Ack> a) {
          ASSERT_TRUE(a.ok()) << a.error();
          if (out) *out = a.value();
        });
  }

  int free_estimate(DecisionPoint& dp, int vo = 0) {
    GetSiteLoadsRequest q;
    q.job = JobId(9);
    q.vo = VoId(vo);
    q.group = GroupId(0);
    q.user = UserId(0);
    q.cpus = 1;
    int estimate = -1;
    rpc.call<GetSiteLoadsRequest, GetSiteLoadsReply>(
        dp.node(), kGetSiteLoads, q, sim::Duration::seconds(30),
        [&](Result<GetSiteLoadsReply> result) {
          if (!result.ok()) return;
          for (const auto& c : result.value().candidates) {
            if (c.site == SiteId(0)) estimate = int(c.free_estimate);
          }
        });
    sim.run_until(sim.now() + sim::Duration::seconds(15));
    return estimate;
  }
};

TEST(DurableDp, ReplaysCommittedDecisionsAfterCrash) {
  Fixture f;
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.options());
  dp.bootstrap(f.snapshots());
  ASSERT_NE(dp.disk(), nullptr);

  f.send_report(dp, f.report());
  f.sim.run_until(sim::Time::from_seconds(10));
  ASSERT_EQ(dp.selections_recorded(), 1u);
  ASSERT_GE(dp.disk()->counters().appends, 1u);
  ASSERT_GE(dp.disk()->counters().fsyncs, 1u);

  dp.crash();
  dp.restart(f.snapshots());
  f.sim.run_until(f.sim.now() + sim::Duration::seconds(5));

  EXPECT_EQ(dp.recoveries(), 1u);
  EXPECT_GE(dp.replay_records(), 1u);
  EXPECT_EQ(dp.replay_mismatches(), 0u);
  // No checkpoint had been written yet: an absent image is the normal
  // WAL-only path, not a fallback (fallbacks count *damaged* images).
  EXPECT_EQ(dp.checkpoint_fallbacks(), 0u);
  // The crashed-and-replayed broker still remembers the 40-CPU placement
  // without any peer to resync from.
  EXPECT_EQ(f.free_estimate(dp), 60);
  dp.stop();
}

TEST(DurableDp, RetryAfterCrashReturnsOriginalDecision) {
  Fixture f;
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.options());
  dp.bootstrap(f.snapshots());

  Ack first;
  f.send_report(dp, f.report(/*seq=*/5), &first);
  f.sim.run_until(sim::Time::from_seconds(10));
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.has_original);
  ASSERT_EQ(dp.selections_recorded(), 1u);

  dp.crash();
  dp.restart(f.snapshots());
  f.sim.run_until(f.sim.now() + sim::Duration::seconds(5));
  ASSERT_GE(dp.replay_dedup_entries(), 1u);

  // The client's retry of the same (client, seq) after the crash must not
  // double-book: the replayed dedup window answers with the original site.
  Ack retry;
  f.send_report(dp, f.report(/*seq=*/5), &retry);
  f.sim.run_until(f.sim.now() + sim::Duration::seconds(10));
  ASSERT_TRUE(retry.ok);
  EXPECT_TRUE(retry.has_original);
  EXPECT_EQ(retry.original_site, SiteId(0));
  EXPECT_EQ(dp.dedup_hits(), 1u);
  EXPECT_EQ(dp.selections_recorded(), 1u);
  EXPECT_EQ(dp.duplicate_dispatches(), 0u);
  EXPECT_EQ(f.free_estimate(dp), 60);  // booked once, not twice
  dp.stop();
}

// Regression for the double-dispatch bug the request-id trailer exists to
// kill: a client retry that re-brokers the same job. Without durability the
// broker books the job twice — USLA load and economy metering both double —
// and with the dedup window the retry collapses to one dispatch and one
// charge.
TEST(DurableDp, RetryDoubleCountsWithoutDedupAndCollapsesWithIt) {
  for (const bool durable : {false, true}) {
    Fixture f;
    DecisionPointOptions o = f.options(durable);
    o.economy.enabled = true;
    o.economy.allocator = economy::Allocator::kKarma;
    o.economy.capacity_cpus = 300.0;
    DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree, o);
    dp.bootstrap(f.snapshots());
    ASSERT_NE(dp.bank(), nullptr);

    f.send_report(dp, f.report(/*seq=*/9));
    f.sim.run_until(sim::Time::from_seconds(10));
    f.send_report(dp, f.report(/*seq=*/9));  // the retry
    f.sim.run_until(sim::Time::from_seconds(20));

    const double metered = dp.bank()->stats().ledgers.at(0).used_epoch;
    const double once = 40.0 * 5000.0;
    if (durable) {
      EXPECT_EQ(dp.selections_recorded(), 1u);
      EXPECT_EQ(dp.dedup_hits(), 1u);
      EXPECT_EQ(dp.duplicate_dispatches(), 0u);
      // Query as the idle VO: the karma gate has (rightly) cut off the
      // over-spent VO 0, but site load is global either way.
      EXPECT_EQ(f.free_estimate(dp, /*vo=*/1), 60);
      EXPECT_DOUBLE_EQ(metered, once);
    } else {
      EXPECT_EQ(dp.selections_recorded(), 2u);
      EXPECT_EQ(dp.duplicate_dispatches(), 1u);  // I12 audit sees the bug
      EXPECT_EQ(f.free_estimate(dp, /*vo=*/1), 20);
      EXPECT_DOUBLE_EQ(metered, 2 * once);
    }
    dp.stop();
  }
}

TEST(DurableDp, CheckpointTruncatesLogAndServesRecovery) {
  Fixture f;
  DecisionPointOptions o = f.options();
  o.durability.checkpoint_interval = sim::Duration::minutes(1);
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree, o);
  dp.bootstrap(f.snapshots());

  f.send_report(dp, f.report());
  f.sim.run_until(sim::Time::from_seconds(150));
  EXPECT_GE(dp.disk()->counters().checkpoints_written, 1u);
  EXPECT_GE(dp.disk()->counters().log_truncations, 1u);

  dp.crash();
  dp.restart(f.snapshots());
  f.sim.run_until(f.sim.now() + sim::Duration::seconds(5));
  EXPECT_EQ(dp.recoveries(), 1u);
  EXPECT_EQ(dp.checkpoint_fallbacks(), 0u);  // image restored, no fallback
  EXPECT_EQ(dp.replay_mismatches(), 0u);
  EXPECT_EQ(f.free_estimate(dp), 60);
  dp.stop();
}

TEST(DurableDp, TornTailTruncatesReplayButKeepsServing) {
  Fixture f;
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.options());
  dp.bootstrap(f.snapshots());

  f.send_report(dp, f.report());
  f.sim.run_until(sim::Time::from_seconds(10));
  dp.inject_disk_tear();
  dp.crash();
  dp.restart(f.snapshots());
  f.sim.run_until(f.sim.now() + sim::Duration::seconds(5));

  EXPECT_EQ(dp.recoveries(), 1u);
  EXPECT_EQ(dp.replay_truncations(), 1u);
  EXPECT_GE(f.free_estimate(dp), 60);  // serves either way; lost tail is
                                       // anti-entropy's job in a mesh
  dp.stop();
}

TEST(DurableDp, IncarnationAdvancesMonotonicallyAcrossRecoveries) {
  Fixture f;
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.options());
  dp.bootstrap(f.snapshots());
  const std::uint32_t born = dp.incarnation();

  dp.crash();
  dp.restart(f.snapshots());
  f.sim.run_until(f.sim.now() + sim::Duration::seconds(5));
  const std::uint32_t second = dp.incarnation();
  EXPECT_GT(second, born);

  dp.crash();
  dp.restart(f.snapshots());
  f.sim.run_until(f.sim.now() + sim::Duration::seconds(5));
  EXPECT_GT(dp.incarnation(), second);
  EXPECT_EQ(dp.recoveries(), 2u);
  dp.stop();
}

TEST(DurableDp, DedupWindowStaysBounded) {
  Fixture f;
  DecisionPointOptions o = f.options();
  o.durability.dedup_window = 4;
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree, o);
  dp.bootstrap(f.snapshots());

  for (std::uint64_t seq = 1; seq <= 8; ++seq) {
    ReportSelectionRequest r = f.report(seq);
    r.cpus = 1;
    f.send_report(dp, r);
    f.sim.run_until(f.sim.now() + sim::Duration::seconds(2));
  }
  ASSERT_EQ(dp.selections_recorded(), 8u);

  // seq=1 was evicted (window holds the last 4): a late retry re-books.
  ReportSelectionRequest old = f.report(1);
  old.cpus = 1;
  f.send_report(dp, old);
  f.sim.run_until(f.sim.now() + sim::Duration::seconds(5));
  EXPECT_EQ(dp.dedup_hits(), 0u);
  EXPECT_EQ(dp.selections_recorded(), 9u);

  // seq=8 is still inside the window: the retry is collapsed.
  ReportSelectionRequest fresh = f.report(8);
  fresh.cpus = 1;
  f.send_report(dp, fresh);
  f.sim.run_until(f.sim.now() + sim::Duration::seconds(5));
  EXPECT_EQ(dp.dedup_hits(), 1u);
  EXPECT_EQ(dp.selections_recorded(), 9u);
  dp.stop();
}

TEST(DurableDp, DisabledDurabilityKeepsLegacyBehaviour) {
  Fixture f;
  DecisionPoint dp(f.sim, f.transport, DpId(0), f.catalog, f.tree,
                   f.options(/*durable=*/false));
  dp.bootstrap(f.snapshots());
  EXPECT_EQ(dp.disk(), nullptr);

  f.send_report(dp, f.report());
  f.sim.run_until(sim::Time::from_seconds(10));
  EXPECT_EQ(dp.selections_recorded(), 1u);
  EXPECT_EQ(dp.recoveries(), 0u);
  dp.stop();
}

}  // namespace
}  // namespace digruber::digruber
