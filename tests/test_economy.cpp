#include <gtest/gtest.h>

#include "digruber/economy/economy.hpp"
#include "digruber/experiments/scenario.hpp"

namespace digruber::economy {
namespace {

EconomyOptions small_bank_options() {
  EconomyOptions options;
  options.enabled = true;
  options.allocator = Allocator::kKarma;
  options.epoch = sim::Duration::seconds(100);
  options.capacity_cpus = 10;  // 1000 CPU-seconds per epoch
  return options;
}

std::vector<std::pair<VoId, double>> two_equal_vos() {
  return {{VoId{0}, 0.5}, {VoId{1}, 0.5}};
}

const LedgerSnapshot& ledger_of(const BankStats& stats, VoId vo) {
  for (const auto& ledger : stats.ledgers) {
    if (ledger.vo == vo) return ledger;
  }
  ADD_FAILURE() << "no ledger for vo " << vo.value();
  static LedgerSnapshot empty;
  return empty;
}

TEST(QuotePrice, LinearInCongestionAndClamped) {
  const EconomyOptions options;  // base 1, utilization 4, wait 0.05
  EXPECT_DOUBLE_EQ(quote_price(options, 0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quote_price(options, 0.5, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(quote_price(options, 0.5, 100.0), 8.0);
  // Utilization clamps to [0,1]; negative wait clamps to 0.
  EXPECT_DOUBLE_EQ(quote_price(options, 7.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(quote_price(options, -1.0, -50.0), 1.0);
  // Monotone in both signals.
  EXPECT_LT(quote_price(options, 0.2, 10.0), quote_price(options, 0.6, 10.0));
  EXPECT_LT(quote_price(options, 0.6, 10.0), quote_price(options, 0.6, 20.0));
}

TEST(CreditBank, InitialEndowmentFollowsShares) {
  const auto options = small_bank_options();
  CreditBank bank(options, two_equal_vos());
  const BankStats stats = bank.stats();
  ASSERT_EQ(stats.ledgers.size(), 2u);
  // Equal halves of 1000 CPU-s/epoch, one epoch of initial credit.
  EXPECT_DOUBLE_EQ(ledger_of(stats, VoId{0}).fair_share, 500.0);
  EXPECT_DOUBLE_EQ(ledger_of(stats, VoId{0}).balance, 500.0);
  EXPECT_DOUBLE_EQ(stats.initial_total, 1000.0);
}

TEST(CreditBank, SharesAreNormalized) {
  const auto options = small_bank_options();
  // Fractions sum to 2; they must be treated as 0.5 each.
  CreditBank bank(options, {{VoId{0}, 1.0}, {VoId{1}, 1.0}});
  EXPECT_DOUBLE_EQ(ledger_of(bank.stats(), VoId{1}).fair_share, 500.0);
}

TEST(CreditBank, AdmitWithinAllowanceThenGraceThenDenied) {
  const auto options = small_bank_options();
  CreditBank bank(options, two_equal_vos());
  const sim::Time now = sim::Time::from_seconds(10);

  // fair_share 500 + balance 500 = allowance 1000.
  bank.charge(VoId{0}, 900, now);
  EXPECT_EQ(bank.admit(VoId{0}, now, 0.9), Admit::kWithinShare);

  // Over allowance: idle grid + arbitration win + below the credit-cap
  // ceiling (4 * 500 = 2000) => bounded grace.
  bank.charge(VoId{0}, 200, now);
  EXPECT_EQ(bank.admit(VoId{0}, now, 0.9), Admit::kGrace);
  // The same VO under scarcity is denied outright.
  EXPECT_EQ(bank.admit(VoId{0}, now, 0.1), Admit::kDenied);

  // Past the ceiling even an idle grid refuses.
  bank.charge(VoId{0}, 1000, now);  // used 2100 >= 2000
  EXPECT_EQ(bank.admit(VoId{0}, now, 0.9), Admit::kDenied);

  // Unknown VOs are not gated.
  EXPECT_EQ(bank.admit(VoId{42}, now, 0.0), Admit::kWithinShare);

  const BankStats stats = bank.stats();
  EXPECT_EQ(stats.grace_admissions, 1u);
  EXPECT_EQ(stats.denials, 2u);
}

TEST(CreditBank, SettlementIsZeroSumTransfer) {
  const auto options = small_bank_options();
  CreditBank bank(options, two_equal_vos());
  const sim::Time in_epoch = sim::Time::from_seconds(10);
  bank.charge(VoId{0}, 800, in_epoch);  // 300 over fair share
  bank.charge(VoId{1}, 100, in_epoch);  // 400 under fair share
  bank.roll_to(sim::Time::from_seconds(150));

  const BankStats stats = bank.stats();
  EXPECT_EQ(stats.epochs_settled, 1u);
  EXPECT_DOUBLE_EQ(ledger_of(stats, VoId{0}).balance, 200.0);
  EXPECT_DOUBLE_EQ(ledger_of(stats, VoId{0}).spent, 300.0);
  EXPECT_DOUBLE_EQ(ledger_of(stats, VoId{1}).balance, 800.0);
  EXPECT_DOUBLE_EQ(ledger_of(stats, VoId{1}).earned, 300.0);
  // Conservation: spent == earned + expired_pool, and total balance is
  // the initial endowment shifted by net transfers.
  EXPECT_DOUBLE_EQ(stats.spent, stats.earned + stats.expired_pool);
  double total_balance = 0;
  for (const auto& ledger : stats.ledgers) total_balance += ledger.balance;
  EXPECT_DOUBLE_EQ(total_balance, stats.initial_total + stats.earned -
                                      stats.spent - stats.expired_cap);
}

TEST(CreditBank, UnabsorbedPoolExpires) {
  const auto options = small_bank_options();
  CreditBank bank(options, two_equal_vos());
  const sim::Time in_epoch = sim::Time::from_seconds(10);
  bank.charge(VoId{0}, 800, in_epoch);  // 300 over
  bank.charge(VoId{1}, 500, in_epoch);  // exactly at share: no deficit
  bank.roll_to(sim::Time::from_seconds(150));

  const BankStats stats = bank.stats();
  EXPECT_DOUBLE_EQ(stats.spent, 300.0);
  EXPECT_DOUBLE_EQ(stats.earned, 0.0);
  EXPECT_DOUBLE_EQ(stats.expired_pool, 300.0);
  EXPECT_DOUBLE_EQ(stats.spent, stats.earned + stats.expired_pool);
}

TEST(CreditBank, BalanceCapExpiresCredits) {
  auto options = small_bank_options();
  options.credit_cap_epochs = 1.0;  // cap = fair_share = 500
  CreditBank bank(options, two_equal_vos());
  const sim::Time in_epoch = sim::Time::from_seconds(10);
  bank.charge(VoId{0}, 800, in_epoch);
  bank.charge(VoId{1}, 100, in_epoch);
  bank.roll_to(sim::Time::from_seconds(150));

  const BankStats stats = bank.stats();
  // VO1 would rise to 800 but the cap clamps it to 500.
  EXPECT_DOUBLE_EQ(ledger_of(stats, VoId{1}).balance, 500.0);
  EXPECT_DOUBLE_EQ(ledger_of(stats, VoId{1}).expired_cap, 300.0);
  double total_balance = 0;
  for (const auto& ledger : stats.ledgers) total_balance += ledger.balance;
  EXPECT_DOUBLE_EQ(total_balance, stats.initial_total + stats.earned -
                                      stats.spent - stats.expired_cap);
}

TEST(CreditBank, MultipleElapsedEpochsSettleOnceEach) {
  const auto options = small_bank_options();
  CreditBank bank(options, two_equal_vos());
  bank.charge(VoId{0}, 800, sim::Time::from_seconds(10));
  // Jump three epoch boundaries in one call.
  bank.roll_to(sim::Time::from_seconds(350));
  EXPECT_EQ(bank.stats().epochs_settled, 3u);
}

TEST(CreditBank, ArbitrationOrderIsSeverityThenCreditThenId) {
  const auto options = small_bank_options();
  CreditBank bank(options,
                  {{VoId{0}, 1.0 / 3}, {VoId{1}, 1.0 / 3}, {VoId{2}, 1.0 / 3}});
  const sim::Time now = sim::Time::from_seconds(10);
  // fair_share ~333: severities 1.8, 0.3, 0.9.
  bank.charge(VoId{0}, 600, now);
  bank.charge(VoId{1}, 100, now);
  bank.charge(VoId{2}, 300, now);
  EXPECT_TRUE(bank.precedes(VoId{1}, VoId{2}));
  EXPECT_TRUE(bank.precedes(VoId{2}, VoId{0}));
  EXPECT_FALSE(bank.precedes(VoId{0}, VoId{1}));

  // Capacity walk in that order: VO1 (200) + VO2 (150) fit in 360, the
  // remaining 10 cannot take VO0's 100.
  const std::vector<VoId> admitted = bank.arbitrate(
      {{VoId{0}, 100.0}, {VoId{1}, 200.0}, {VoId{2}, 150.0}}, 360.0, now);
  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0], VoId{1});
  EXPECT_EQ(admitted[1], VoId{2});
}

TEST(CreditBank, EqualStandingBreaksTiesByLowerId) {
  const auto options = small_bank_options();
  CreditBank bank(options, two_equal_vos());
  EXPECT_TRUE(bank.precedes(VoId{0}, VoId{1}));
  EXPECT_FALSE(bank.precedes(VoId{1}, VoId{0}));
}

TEST(CreditBank, ResetRestoresInitialEndowment) {
  const auto options = small_bank_options();
  CreditBank bank(options, two_equal_vos());
  bank.charge(VoId{0}, 800, sim::Time::from_seconds(10));
  bank.charge(VoId{1}, 100, sim::Time::from_seconds(10));
  bank.roll_to(sim::Time::from_seconds(150));
  bank.reset(sim::Time::from_seconds(160));

  const BankStats stats = bank.stats();
  EXPECT_EQ(stats.epochs_settled, 0u);
  EXPECT_DOUBLE_EQ(stats.earned, 0.0);
  EXPECT_DOUBLE_EQ(stats.spent, 0.0);
  EXPECT_DOUBLE_EQ(ledger_of(stats, VoId{0}).balance, 500.0);
  EXPECT_DOUBLE_EQ(ledger_of(stats, VoId{1}).balance, 500.0);
  EXPECT_DOUBLE_EQ(stats.initial_total, 1000.0);
}

TEST(SharesFromTree, UnruledVosSplitEqually) {
  const usla::AllocationTree tree;
  const auto shares = shares_from_tree(tree, 4);
  ASSERT_EQ(shares.size(), 4u);
  for (const auto& [vo, fraction] : shares) {
    EXPECT_DOUBLE_EQ(fraction, 0.25);
  }
}

// --- Scenario-level properties -------------------------------------------

experiments::ScenarioConfig karma_scenario(std::uint64_t seed) {
  experiments::ScenarioConfig cfg;
  cfg.name = "economy-determinism";
  cfg.seed = seed;
  cfg.n_dps = 1;
  cfg.n_clients = 15;
  cfg.think = sim::Duration::seconds(10);
  cfg.duration = sim::Duration::minutes(8);
  cfg.ramp_span = sim::Duration::seconds(30);
  cfg.grid_scale = 1;
  cfg.background_util = 0.35;
  cfg.selector = "least-used";
  cfg.workload.n_vos = 4;
  cfg.workload.strategic_vo = 0;
  cfg.workload.strategic_factor = 10.0;
  cfg.economy_options.allocator = Allocator::kKarma;
  cfg.economy_options.epoch = sim::Duration::seconds(60);
  cfg.economy_options.capacity_cpus = 300;
  cfg.economy_options.scarce_free_fraction = 0.6;
  cfg.economy_options.initial_credit_epochs = 0.25;
  return cfg;
}

TEST(EconomyScenario, EpochRolloverIsDeterministicAcrossRuns) {
  const experiments::ScenarioResult a =
      experiments::run_scenario(karma_scenario(11));
  const experiments::ScenarioResult b =
      experiments::run_scenario(karma_scenario(11));

  ASSERT_EQ(a.dps.size(), 1u);
  ASSERT_EQ(b.dps.size(), 1u);
  const BankStats& bank_a = a.dps[0].economy;
  const BankStats& bank_b = b.dps[0].economy;
  EXPECT_GT(bank_a.epochs_settled, 0u);
  EXPECT_EQ(bank_a.epochs_settled, bank_b.epochs_settled);
  ASSERT_EQ(bank_a.ledgers.size(), bank_b.ledgers.size());
  for (std::size_t i = 0; i < bank_a.ledgers.size(); ++i) {
    const LedgerSnapshot& la = bank_a.ledgers[i];
    const LedgerSnapshot& lb = bank_b.ledgers[i];
    EXPECT_EQ(la.vo, lb.vo);
    // Bit-identical, not approximately equal: the ledger advances only
    // from the (charge, admit) call order, which the seed fixes.
    EXPECT_EQ(la.balance, lb.balance);
    EXPECT_EQ(la.used_epoch, lb.used_epoch);
    EXPECT_EQ(la.earned, lb.earned);
    EXPECT_EQ(la.spent, lb.spent);
    EXPECT_EQ(la.expired_cap, lb.expired_cap);
    EXPECT_EQ(la.denials, lb.denials);
    EXPECT_EQ(la.grace_admissions, lb.grace_admissions);
  }
  EXPECT_EQ(a.economy.credit_denials, b.economy.credit_denials);
  EXPECT_EQ(a.economy.grace_admissions, b.economy.grace_admissions);
}

TEST(EconomyScenario, LedgerConservationHoldsAtWindowEnd) {
  const experiments::ScenarioResult r =
      experiments::run_scenario(karma_scenario(13));
  ASSERT_EQ(r.dps.size(), 1u);
  const BankStats& bank = r.dps[0].economy;
  EXPECT_GT(bank.epochs_settled, 0u);
  EXPECT_NEAR(bank.spent, bank.earned + bank.expired_pool,
              1e-6 * std::max(1.0, bank.spent));
  double total_balance = 0;
  for (const auto& ledger : bank.ledgers) total_balance += ledger.balance;
  const double expected =
      bank.initial_total + bank.earned - bank.spent - bank.expired_cap;
  EXPECT_NEAR(total_balance, expected, 1e-6 * std::max(1.0, expected));
}

TEST(EconomyScenario, MarketPlacementQuotesAndSelectsOnPrice) {
  experiments::ScenarioConfig cfg = karma_scenario(17);
  cfg.name = "economy-market";
  cfg.n_dps = 3;
  cfg.market_placement = true;
  cfg.workload.budget_mean = 50.0;
  cfg.workload.deadline_slack = 3.0;
  const experiments::ScenarioResult r = experiments::run_scenario(cfg);
  EXPECT_GT(r.economy.priced_replies, 0u);
  EXPECT_GT(r.economy.priced_dispatches, 0u);
  // Budget-bearing jobs that lost every quote fall back to p2c rather
  // than stalling.
  EXPECT_GT(r.economy.priced_dispatches + r.economy.market_fallbacks, 0u);
}

}  // namespace
}  // namespace digruber::economy
