#include <gtest/gtest.h>

#include <set>

#include "digruber/gruber/engine.hpp"
#include "digruber/gruber/selectors.hpp"

namespace digruber::gruber {
namespace {

struct Fixture {
  grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 2);
  std::vector<usla::Agreement> agreements;
  usla::AllocationTree tree;

  Fixture() {
    const auto parsed = usla::parse_agreement(R"(
agreement t
term v0: grid -> vo:vo0 cpu 50+
term v1: grid -> vo:vo1 cpu 10+
)");
    agreements.push_back(parsed.value());
    tree = usla::AllocationTree::build(agreements, catalog).value();
  }
};

grid::SiteSnapshot snapshot(std::uint64_t site, std::int32_t total,
                            std::int32_t free) {
  grid::SiteSnapshot s;
  s.site = SiteId(site);
  s.total_cpus = total;
  s.free_cpus = free;
  return s;
}

grid::Job job_for(std::uint64_t vo, int cpus = 1) {
  grid::Job job;
  job.id = JobId(1);
  job.vo = VoId(vo);
  job.group = GroupId(vo * 2);
  job.user = UserId(vo * 2);
  job.cpus = cpus;
  job.runtime = sim::Duration::seconds(100);
  return job;
}

TEST(Engine, CandidatesClippedToUslaHeadroom) {
  Fixture f;
  GruberEngine engine(f.catalog, f.tree);
  engine.view().bootstrap({snapshot(0, 100, 100), snapshot(1, 10, 10)});

  // vo0 capped at 50%: site0 -> 50, site1 -> 5.
  const auto candidates = engine.candidates(job_for(0), sim::Time::zero());
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].free_estimate, 50);
  EXPECT_EQ(candidates[0].raw_free, 100);
  EXPECT_EQ(candidates[1].free_estimate, 5);
}

TEST(Engine, SitesWithoutHeadroomExcluded) {
  Fixture f;
  GruberEngine engine(f.catalog, f.tree);
  engine.view().bootstrap({snapshot(0, 100, 100), snapshot(1, 10, 10)});
  // vo1 capped at 10%: site1 allows only 1 CPU; a 2-CPU job excludes it.
  const auto candidates = engine.candidates(job_for(1, 2), sim::Time::zero());
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].site, SiteId(0));
}

TEST(Engine, RecordedDispatchesShrinkCandidates) {
  Fixture f;
  GruberEngine engine(f.catalog, f.tree);
  engine.view().bootstrap({snapshot(0, 100, 100)});

  DispatchRecord r;
  r.origin = DpId(0);
  r.seq = 1;
  r.site = SiteId(0);
  r.vo = VoId(0);
  r.group = GroupId(0);
  r.user = UserId(0);
  r.cpus = 48;
  r.when = sim::Time::zero();
  r.est_runtime = sim::Duration::seconds(1000);
  engine.record(r);

  const auto candidates = engine.candidates(job_for(0), sim::Time::from_seconds(1));
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].free_estimate, 2);  // 50-cap minus 48 running
}

std::vector<SiteLoad> make_loads(std::initializer_list<std::pair<int, int>> site_free) {
  std::vector<SiteLoad> loads;
  std::uint64_t id = 0;
  for (const auto& [total, free] : site_free) {
    SiteLoad load;
    load.site = SiteId(id++);
    load.total_cpus = total;
    load.free_estimate = free;
    load.raw_free = free;
    loads.push_back(load);
  }
  return loads;
}

TEST(Selectors, LeastUsedPicksMostFree) {
  LeastUsedSelector selector;
  const auto loads = make_loads({{100, 10}, {100, 90}, {100, 50}});
  EXPECT_EQ(selector.select(loads, job_for(0)), SiteId(1));
}

TEST(Selectors, RoundRobinCycles) {
  RoundRobinSelector selector;
  const auto loads = make_loads({{10, 5}, {10, 5}, {10, 5}});
  EXPECT_EQ(selector.select(loads, job_for(0)), SiteId(0));
  EXPECT_EQ(selector.select(loads, job_for(0)), SiteId(1));
  EXPECT_EQ(selector.select(loads, job_for(0)), SiteId(2));
  EXPECT_EQ(selector.select(loads, job_for(0)), SiteId(0));
}

TEST(Selectors, RoundRobinSkipsTooSmall) {
  RoundRobinSelector selector;
  const auto loads = make_loads({{10, 1}, {10, 5}});
  EXPECT_EQ(selector.select(loads, job_for(0, 3)), SiteId(1));
  EXPECT_EQ(selector.select(loads, job_for(0, 3)), SiteId(1));
}

TEST(Selectors, LeastRecentlyUsedRotates) {
  LeastRecentlyUsedSelector selector;
  const auto loads = make_loads({{10, 5}, {10, 5}});
  const auto first = selector.select(loads, job_for(0));
  const auto second = selector.select(loads, job_for(0));
  ASSERT_TRUE(first && second);
  EXPECT_NE(*first, *second);
  // Third pick returns to the least recently used (the first).
  EXPECT_EQ(selector.select(loads, job_for(0)), *first);
}

TEST(Selectors, RandomOnlyPicksAdmissible) {
  RandomSelector selector{Rng(5)};
  const auto loads = make_loads({{10, 0}, {10, 9}, {10, 1}});
  for (int i = 0; i < 50; ++i) {
    const auto site = selector.select(loads, job_for(0, 2));
    ASSERT_TRUE(site.has_value());
    EXPECT_EQ(*site, SiteId(1));
  }
}

TEST(Selectors, TopKSpreadsAcrossBestSites) {
  TopKSelector selector(2, Rng(7));
  const auto loads = make_loads({{100, 90}, {100, 80}, {100, 10}, {100, 5}});
  std::set<std::uint64_t> chosen;
  for (int i = 0; i < 100; ++i) {
    const auto site = selector.select(loads, job_for(0));
    ASSERT_TRUE(site.has_value());
    chosen.insert(site->value());
  }
  EXPECT_EQ(chosen, (std::set<std::uint64_t>{0, 1}));
}

TEST(Selectors, WeightedPrefersRelativeAvailability) {
  WeightedSelector selector;
  // Site 0: 40/400 free (score 4); site 1: 30/40 free (score 22.5).
  const auto loads = make_loads({{400, 40}, {40, 30}});
  EXPECT_EQ(selector.select(loads, job_for(0)), SiteId(1));
}

TEST(Selectors, EmptyAndInfeasibleCandidates) {
  LeastUsedSelector least;
  RandomSelector random{Rng(1)};
  TopKSelector topk(3, Rng(2));
  const std::vector<SiteLoad> none;
  EXPECT_FALSE(least.select(none, job_for(0)).has_value());
  EXPECT_FALSE(random.select(none, job_for(0)).has_value());
  EXPECT_FALSE(topk.select(none, job_for(0)).has_value());

  const auto tiny = make_loads({{10, 1}, {10, 0}});
  EXPECT_FALSE(least.select(tiny, job_for(0, 5)).has_value());
  EXPECT_FALSE(random.select(tiny, job_for(0, 5)).has_value());
}

TEST(Selectors, FactoryCreatesAllKinds) {
  for (const char* name :
       {"round-robin", "least-used", "least-recently-used", "random", "top-k",
        "weighted"}) {
    const auto selector = make_selector(name, Rng(1));
    ASSERT_NE(selector, nullptr);
    EXPECT_STREQ(selector->name(), name);
  }
  EXPECT_THROW(make_selector("nope", Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace digruber::gruber
