#include <gtest/gtest.h>

#include "digruber/digruber/decision_point.hpp"
#include "digruber/euryale/dagman.hpp"
#include "digruber/euryale/planner.hpp"
#include "digruber/net/sim_transport.hpp"
#include "digruber/usla/tree.hpp"

namespace digruber::euryale {
namespace {

net::ContainerProfile fast_profile() {
  net::ContainerProfile p;
  p.workers = 4;
  p.base_overhead = sim::Duration::millis(20);
  p.auth_cost = sim::Duration::zero();
  p.parse_cost_per_kb = sim::Duration::zero();
  p.serialize_cost_per_kb = sim::Duration::zero();
  return p;
}

/// Full in-simulation stack: 3 sites, one decision point, one client.
struct Fixture {
  sim::Simulation sim;
  net::SimTransport transport;
  grid::Grid grid;
  grid::VoCatalog catalog = grid::VoCatalog::uniform(1, 1);
  usla::AllocationTree tree;
  std::unique_ptr<digruber::DecisionPoint> dp;
  std::unique_ptr<digruber::DiGruberClient> client;
  ReplicaRegistry registry;
  std::unique_ptr<EuryalePlanner> planner;

  Fixture()
      : transport(sim, net::WanModel(net::WanParams{}, 9)),
        grid(sim, three_sites()) {
    tree = usla::AllocationTree::build({}, catalog).value();
    digruber::DecisionPointOptions options;
    options.profile = fast_profile();
    options.eval_cost_per_site = sim::Duration::millis(0.1);
    dp = std::make_unique<digruber::DecisionPoint>(sim, transport, DpId(0), catalog,
                                                   tree, options);
    dp->bootstrap(grid.snapshot_all());
    client = std::make_unique<digruber::DiGruberClient>(
        sim, transport, ClientId(0), dp->node(),
        std::vector<SiteId>{SiteId(0), SiteId(1), SiteId(2)},
        gruber::make_selector("least-used", Rng(1)), Rng(2));
    planner = std::make_unique<EuryalePlanner>(sim, grid, *client, registry);
  }

  ~Fixture() { dp->stop(); }

  static grid::TopologySpec three_sites() {
    grid::TopologySpec spec;
    spec.sites.push_back({"a", {{4, 1.0}}});
    spec.sites.push_back({"b", {{16, 1.0}}});
    spec.sites.push_back({"c", {{8, 1.0}}});
    return spec;
  }

  grid::Job job(std::uint64_t id, double runtime_s = 60,
                std::uint64_t in_bytes = 0, std::uint64_t out_bytes = 0) {
    grid::Job j;
    j.id = JobId(id);
    j.vo = VoId(0);
    j.group = GroupId(0);
    j.user = UserId(0);
    j.cpus = 1;
    j.runtime = sim::Duration::seconds(runtime_s);
    j.input_bytes = in_bytes;
    j.output_bytes = out_bytes;
    return j;
  }
};

TEST(Euryale, RunsJobEndToEnd) {
  Fixture f;
  PlannerOutcome outcome;
  bool done = false;
  f.planner->run(f.job(1), [&](const PlannerOutcome& o) {
    outcome = o;
    done = true;
  });
  f.sim.run_until(sim::Time::from_seconds(600));
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.job.state, grid::JobState::kCompleted);
  EXPECT_TRUE(outcome.last_query.handled_by_gruber);
  EXPECT_EQ(outcome.job.site, SiteId(1));  // least used = biggest free
  EXPECT_EQ(f.planner->jobs_succeeded(), 1u);
}

TEST(Euryale, StagesFilesAndRegistersReplicas) {
  Fixture f;
  bool done = false;
  // 10 Mb/s link: 1.25 MB in ~1 s (+0.2 s setup).
  f.planner->run(f.job(2, 30, 1'250'000, 2'500'000),
                 [&](const PlannerOutcome& o) {
                   EXPECT_TRUE(o.succeeded);
                   done = true;
                 });
  f.sim.run_until(sim::Time::from_seconds(600));
  ASSERT_TRUE(done);
  EXPECT_TRUE(f.registry.exists("job-2.in"));
  EXPECT_TRUE(f.registry.exists("job-2.out"));
  EXPECT_EQ(f.registry.popularity("job-2.in"), 1u);
  EXPECT_EQ(f.planner->bytes_staged(), 3'750'000u);
  const auto& locations = f.registry.locations("job-2.out");
  ASSERT_EQ(locations.size(), 1u);
}

TEST(Euryale, ReplansWhenSiteFails) {
  Fixture f;
  PlannerOutcome outcome;
  bool done = false;
  f.planner->run(f.job(3, 120), [&](const PlannerOutcome& o) {
    outcome = o;
    done = true;
  });
  // Kill the chosen (biggest) site shortly after the job lands there.
  f.sim.schedule_after(sim::Duration::seconds(30), [&] {
    f.grid.site(SiteId(1)).take_down(sim::Duration::minutes(30));
  });
  f.sim.run_until(sim::Time::from_seconds(3600));
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_GE(outcome.job.replans, 1);
  EXPECT_NE(outcome.job.site, SiteId(1));  // re-planned elsewhere
  EXPECT_GE(f.planner->replans(), 1u);
}

TEST(Euryale, AbandonsAfterMaxReplans) {
  Fixture f;
  // Take every site down: nothing can ever run.
  for (std::uint64_t s = 0; s < 3; ++s) {
    f.grid.site(SiteId(s)).take_down(sim::Duration::hours(10));
  }
  PlannerOutcome outcome;
  bool done = false;
  f.planner->run(f.job(4), [&](const PlannerOutcome& o) {
    outcome = o;
    done = true;
  });
  f.sim.run_until(sim::Time::from_seconds(7200));
  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.succeeded);
  EXPECT_EQ(f.planner->jobs_abandoned(), 1u);
  EXPECT_EQ(outcome.job.replans, 3);  // default max_replans
}

TEST(ReplicaRegistry, TracksLocationsAndPopularity) {
  ReplicaRegistry registry;
  registry.register_replica("f1", SiteId(0));
  registry.register_replica("f1", SiteId(1));
  registry.register_replica("f1", SiteId(0));  // dedup
  EXPECT_EQ(registry.locations("f1").size(), 2u);
  EXPECT_TRUE(registry.exists("f1"));
  EXPECT_FALSE(registry.exists("f2"));
  EXPECT_TRUE(registry.locations("f2").empty());

  registry.touch("f1");
  registry.touch("f1");
  registry.touch("f3");
  EXPECT_EQ(registry.popularity("f1"), 2u);
  const auto hottest = registry.hottest(2);
  ASSERT_EQ(hottest.size(), 2u);
  EXPECT_EQ(hottest[0].first, "f1");
  EXPECT_EQ(hottest[1].first, "f3");
}

TEST(DagMan, RunsChainInOrder) {
  Fixture f;
  DagMan dag(*f.planner);
  dag.add_node("prepare", f.job(10, 30));
  dag.add_node("analyze", f.job(11, 30));
  dag.add_node("publish", f.job(12, 30));
  dag.add_edge("prepare", "analyze");
  dag.add_edge("analyze", "publish");

  int succeeded = -1, failed = -1, blocked = -1;
  dag.run([&](int s, int x, int b) {
    succeeded = s;
    failed = x;
    blocked = b;
  });
  f.sim.run_until(sim::Time::from_seconds(3600));
  EXPECT_EQ(succeeded, 3);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(blocked, 0);
}

TEST(DagMan, DiamondFanOutAndJoin) {
  Fixture f;
  DagMan dag(*f.planner);
  for (const char* name : {"root", "left", "right", "join"}) {
    dag.add_node(name, f.job(std::uint64_t(20 + name[0]), 20));
  }
  dag.add_edge("root", "left");
  dag.add_edge("root", "right");
  dag.add_edge("left", "join");
  dag.add_edge("right", "join");

  int succeeded = 0;
  dag.run([&](int s, int, int) { succeeded = s; });
  f.sim.run_until(sim::Time::from_seconds(3600));
  EXPECT_EQ(succeeded, 4);
}

TEST(DagMan, FailureBlocksDescendantsOnly) {
  Fixture f;
  // Every site down: all jobs are abandoned after replans.
  for (std::uint64_t s = 0; s < 3; ++s) {
    f.grid.site(SiteId(s)).take_down(sim::Duration::hours(20));
  }
  DagMan dag(*f.planner);
  dag.add_node("a", f.job(30, 10));
  dag.add_node("b", f.job(31, 10));
  dag.add_edge("a", "b");

  int succeeded = -1, failed = -1, blocked = -1;
  dag.run([&](int s, int x, int b) {
    succeeded = s;
    failed = x;
    blocked = b;
  });
  f.sim.run_until(sim::Time::from_seconds(7200 * 4));
  EXPECT_EQ(succeeded, 0);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(blocked, 1);
}

TEST(DagMan, RejectsBadGraphs) {
  Fixture f;
  DagMan dag(*f.planner);
  dag.add_node("a", f.job(40));
  EXPECT_THROW(dag.add_node("a", f.job(41)), std::invalid_argument);
  EXPECT_THROW(dag.add_edge("a", "missing"), std::invalid_argument);
  EXPECT_THROW(dag.add_edge("missing", "a"), std::invalid_argument);
}

}  // namespace
}  // namespace digruber::euryale
