#include "digruber/experiments/scenario.hpp"

#include <gtest/gtest.h>

namespace digruber::experiments {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.name = "test";
  cfg.seed = 11;
  cfg.n_dps = 2;
  cfg.n_clients = 12;
  cfg.duration = sim::Duration::minutes(10);
  cfg.grid_scale = 1;
  cfg.workload.n_vos = 3;
  cfg.workload.groups_per_vo = 2;
  return cfg;
}

TEST(Scenario, RunsEndToEndWithConsistentCounts) {
  const ScenarioResult r = run_scenario(small_config());
  EXPECT_EQ(r.sites, 30u);
  EXPECT_GT(r.total_cpus, 2000);
  EXPECT_GT(r.all.requests, 100u);
  EXPECT_EQ(r.all.requests, r.handled.requests + r.not_handled.requests);
  EXPECT_EQ(r.trace.size(), r.all.requests);
  EXPECT_EQ(r.final_dps, 2);
  ASSERT_EQ(r.dps.size(), 2u);

  // Every brokered query hit some decision point.
  std::uint64_t dp_queries = 0;
  for (const auto& dp : r.dps) dp_queries += dp.queries;
  EXPECT_GE(dp_queries, r.handled.requests);

  // Jobs ran and consumed CPU.
  EXPECT_GT(r.jobs_completed, 0u);
  EXPECT_GT(r.grid_cpu_seconds, 0.0);
  EXPECT_GT(r.all.utilization, 0.0);

  // Accuracy is a ratio.
  EXPECT_GE(r.handled.accuracy, 0.0);
  EXPECT_LE(r.handled.accuracy, 1.0);
}

TEST(Scenario, DeterministicForSameSeed) {
  const ScenarioResult a = run_scenario(small_config());
  const ScenarioResult b = run_scenario(small_config());
  EXPECT_EQ(a.all.requests, b.all.requests);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_DOUBLE_EQ(a.handled.response_s, b.handled.response_s);
  EXPECT_DOUBLE_EQ(a.handled.accuracy, b.handled.accuracy);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace.entries(), b.trace.entries());
}

TEST(Scenario, SeedChangesOutcome) {
  ScenarioConfig cfg = small_config();
  cfg.seed = 12;
  const ScenarioResult a = run_scenario(small_config());
  const ScenarioResult b = run_scenario(cfg);
  EXPECT_NE(a.sim_events, b.sim_events);
}

TEST(Scenario, MoreDecisionPointsMoreThroughput) {
  // Saturate a single slow decision point, then relieve it with three.
  ScenarioConfig cfg = small_config();
  cfg.n_clients = 40;
  cfg.think = sim::Duration::seconds(2);
  cfg.n_dps = 1;
  const ScenarioResult one = run_scenario(cfg);
  cfg.n_dps = 3;
  const ScenarioResult three = run_scenario(cfg);
  EXPECT_GT(three.all.requests, one.all.requests);
  EXPECT_LT(three.all.response_s, one.all.response_s);
}

TEST(Scenario, SaturatedSingleDpProducesFallbacks) {
  ScenarioConfig cfg = small_config();
  cfg.n_dps = 1;
  cfg.n_clients = 100;
  cfg.think = sim::Duration::seconds(1);
  cfg.client_timeout = sim::Duration::seconds(12);
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_GT(r.not_handled.requests, 0u);
  // Fallback responses equal the timeout.
  EXPECT_NEAR(r.not_handled.response_s, 12.0, 1.0);
}

TEST(Scenario, DynamicProvisioningAddsDecisionPoints) {
  ScenarioConfig cfg = small_config();
  cfg.n_dps = 1;
  cfg.n_clients = 100;
  cfg.think = sim::Duration::seconds(1);
  cfg.duration = sim::Duration::minutes(20);
  cfg.dynamic_provisioning = true;
  cfg.max_dynamic_dps = 5;
  cfg.saturation_response_s = 8.0;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_GT(r.final_dps, 1);
  EXPECT_LE(r.final_dps, 5);
  std::uint64_t signals = 0;
  for (const auto& dp : r.dps) signals += dp.saturation_signals;
  EXPECT_GT(signals, 0u);
}

TEST(Scenario, DefaultAgreementsCoverAllVosAndGroups) {
  const grid::VoCatalog catalog = grid::VoCatalog::uniform(4, 3);
  const auto agreements = default_agreements(catalog);
  ASSERT_EQ(agreements.size(), 1u);
  EXPECT_EQ(agreements[0].terms.size(), 4u + 12u);
  EXPECT_TRUE(usla::validate(agreements[0]).ok());
  const auto tree = usla::AllocationTree::build(agreements, catalog);
  ASSERT_TRUE(tree.ok()) << tree.error();
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_TRUE(tree.value().vo_share(VoId(v)).has_value());
  }
}

TEST(Scenario, CapacityModelMatchesProfiles) {
  const double gt3 = dp_capacity_qps(net::ContainerProfile::gt3(), 300,
                                     sim::Duration::millis(2.5));
  const double gt4 = dp_capacity_qps(net::ContainerProfile::gt4(), 300,
                                     sim::Duration::millis(2.5));
  EXPECT_GT(gt3, gt4);        // GT3.2 faster than the GT4 prerelease
  EXPECT_GT(gt3, 1.0);
  EXPECT_LT(gt3, 4.0);        // ~2 q/s per decision point
  EXPECT_GT(gt4, 0.5);
}

TEST(Scenario, RejectsInvalidConfig) {
  ScenarioConfig cfg = small_config();
  cfg.n_dps = 0;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.n_clients = 0;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace digruber::experiments
