// Failover behavior: client retry across backup decision points, circuit
// breaker with half-open probing, all-points-down fallback, crash/restart
// catch-up re-convergence, and partition drop accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "digruber/digruber/client.hpp"
#include "digruber/digruber/decision_point.hpp"
#include "digruber/net/sim_transport.hpp"

namespace digruber::digruber {
namespace {

net::ContainerProfile fast_profile() {
  net::ContainerProfile p;
  p.workers = 4;
  p.base_overhead = sim::Duration::millis(5);
  p.auth_cost = sim::Duration::zero();
  p.parse_cost_per_kb = sim::Duration::zero();
  p.serialize_cost_per_kb = sim::Duration::zero();
  return p;
}

struct Fixture {
  sim::Simulation sim;
  net::SimTransport transport;
  grid::VoCatalog catalog = grid::VoCatalog::uniform(2, 2);
  usla::AllocationTree tree;

  explicit Fixture(std::uint64_t seed = 1)
      : transport(sim, net::WanModel(net::WanParams{}, seed)) {
    tree = usla::AllocationTree::build({}, catalog).value();
  }

  DecisionPointOptions dp_options() {
    DecisionPointOptions o;
    o.profile = fast_profile();
    o.exchange_interval = sim::Duration::minutes(1);
    o.eval_cost_per_site = sim::Duration::millis(0.1);
    return o;
  }

  std::vector<grid::SiteSnapshot> snapshots() {
    std::vector<grid::SiteSnapshot> out;
    for (std::uint64_t i = 0; i < 3; ++i) {
      grid::SiteSnapshot s;
      s.site = SiteId(i);
      s.total_cpus = 100;
      s.free_cpus = std::int32_t(100 - 10 * i);
      out.push_back(s);
    }
    return out;
  }

  std::vector<SiteId> sites() { return {SiteId(0), SiteId(1), SiteId(2)}; }

  grid::Job job() {
    grid::Job j;
    j.id = JobId(1);
    j.vo = VoId(0);
    j.group = GroupId(0);
    j.user = UserId(0);
    j.cpus = 1;
    return j;
  }

  std::unique_ptr<DiGruberClient> client(std::vector<NodeId> dps,
                                         ClientOptions options) {
    return std::make_unique<DiGruberClient>(
        sim, transport, ClientId(0), std::move(dps), sites(),
        gruber::make_selector("top-k", sim.rng().fork()), sim.rng().fork(),
        options);
  }
};

TEST(Failover, CrashedPrimaryFailsOverToBackupWithinDeadline) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  connect({&a, &b}, Overlay::kMesh);

  ClientOptions options;
  options.attempt_timeout = sim::Duration::seconds(5);
  auto client = f.client({a.node(), b.node()}, options);

  a.crash();

  bool done = false;
  client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
    done = true;
    EXPECT_TRUE(outcome.handled_by_gruber);
    EXPECT_EQ(outcome.served_by, b.node());
    EXPECT_LT(outcome.response.to_seconds(), 60.0);
  });
  f.sim.run_until(sim::Time::from_seconds(120));
  EXPECT_TRUE(done);
  EXPECT_GE(client->failovers(), 1u);
  EXPECT_EQ(client->fallbacks(), 0u);
  EXPECT_EQ(b.queries_served(), 1u);
  b.stop();
}

TEST(Failover, BreakerTripsThenHalfOpenProbeRecovers) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());

  ClientOptions options;
  options.attempt_timeout = sim::Duration::seconds(2);
  options.breaker_threshold = 2;
  options.breaker_cooldown = sim::Duration::seconds(30);
  auto client = f.client({a.node()}, options);

  a.crash();

  // Query 1: two timed-out attempts trip the breaker; with the only
  // decision point open and cooling down, the query degrades to the
  // random-site fallback.
  bool first_done = false;
  client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
    first_done = true;
    EXPECT_FALSE(outcome.handled_by_gruber);
    EXPECT_FALSE(outcome.served_by.valid());
  });
  f.sim.run_until(sim::Time::from_seconds(20));
  ASSERT_TRUE(first_done);
  EXPECT_EQ(client->breaker_trips(), 1u);
  EXPECT_EQ(client->all_dps_down_fallbacks(), 1u);
  EXPECT_EQ(client->fallbacks(), 1u);

  // Bring the decision point back; once the cooldown has elapsed, the next
  // query rides the half-open probe and closes the breaker again.
  a.restart(f.snapshots());
  ASSERT_TRUE(a.running());

  bool second_done = false;
  f.sim.schedule_at(sim::Time::from_seconds(60), [&] {
    client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
      second_done = true;
      EXPECT_TRUE(outcome.handled_by_gruber);
      EXPECT_EQ(outcome.served_by, a.node());
    });
  });
  f.sim.run_until(sim::Time::from_seconds(150));
  EXPECT_TRUE(second_done);
  EXPECT_EQ(client->breaker_trips(), 1u);  // no re-trip: probe succeeded

  // Breaker closed: a third query goes straight through.
  bool third_done = false;
  client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
    third_done = true;
    EXPECT_TRUE(outcome.handled_by_gruber);
  });
  f.sim.run_until(sim::Time::from_seconds(300));
  EXPECT_TRUE(third_done);
  a.stop();
}

TEST(Failover, RestartRunsCatchUpAndReconverges) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  connect({&a, &b}, Overlay::kMesh);

  net::RpcClient rpc(f.sim, f.transport);
  ReportSelectionRequest report;
  report.site = SiteId(0);
  report.vo = VoId(0);
  report.group = GroupId(0);
  report.user = UserId(0);
  report.cpus = 40;
  report.est_runtime = sim::Duration::minutes(60);
  rpc.call<ReportSelectionRequest, Ack>(a.node(), kReportSelection, report,
                                        sim::Duration::seconds(30),
                                        [](Result<Ack>) {});

  // One exchange round: b has learned a's dispatch.
  f.sim.run_until(sim::Time::from_seconds(90));
  ASSERT_EQ(b.records_applied(), 1u);

  // Crash wipes a's volatile state; restart re-bootstraps and re-learns
  // the still-active record from b via the catch-up exchange.
  f.sim.schedule_at(sim::Time::from_seconds(100), [&] { a.crash(); });
  f.sim.schedule_at(sim::Time::from_seconds(110), [&] { a.restart(f.snapshots()); });
  f.sim.run_until(sim::Time::from_seconds(140));

  EXPECT_EQ(a.restarts(), 1u);
  EXPECT_EQ(a.incarnation(), 1u);
  EXPECT_EQ(a.resync_records_applied(), 1u);
  EXPECT_GE(b.catchups_served(), 1u);
  EXPECT_EQ(a.engine().view().estimated_free(SiteId(0), f.sim.now()), 60);

  // Post-restart selections use a fresh sequence epoch, so b applies them
  // rather than mistaking them for pre-crash duplicates.
  ReportSelectionRequest second = report;
  second.cpus = 10;
  rpc.call<ReportSelectionRequest, Ack>(a.node(), kReportSelection, second,
                                        sim::Duration::seconds(30),
                                        [](Result<Ack>) {});
  f.sim.run_until(sim::Time::from_seconds(260));
  EXPECT_EQ(b.records_applied(), 2u);
  EXPECT_EQ(b.engine().view().estimated_free(SiteId(0), f.sim.now()), 50);
  a.stop();
  b.stop();
}

TEST(Failover, PartitionDropsExchangeTrafficUntilHealed) {
  Fixture f;
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, f.dp_options());
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, f.dp_options());
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  connect({&a, &b}, Overlay::kMesh);

  net::RpcClient rpc(f.sim, f.transport);
  ReportSelectionRequest report;
  report.site = SiteId(0);
  report.vo = VoId(0);
  report.group = GroupId(0);
  report.user = UserId(0);
  report.cpus = 40;
  report.est_runtime = sim::Duration::minutes(60);
  rpc.call<ReportSelectionRequest, Ack>(a.node(), kReportSelection, report,
                                        sim::Duration::seconds(30),
                                        [](Result<Ack>) {});

  // Partition a's island away before the first exchange tick.
  f.sim.schedule_at(sim::Time::from_seconds(10), [&] {
    f.transport.set_island(a.node(), 1);
    f.transport.set_island(a.peer_node(), 1);
  });
  f.sim.run_until(sim::Time::from_seconds(90));
  EXPECT_TRUE(f.transport.partitioned(a.peer_node(), b.node()));
  EXPECT_EQ(b.records_applied(), 0u);
  EXPECT_GE(f.transport.packets_dropped(net::DropCause::kPartition), 1u);

  // Heal; flooding does not retransmit the lost round, but records
  // dispatched after the heal propagate again.
  f.sim.schedule_at(sim::Time::from_seconds(100), [&] { f.transport.heal_partition(); });
  f.sim.schedule_at(sim::Time::from_seconds(110), [&] {
    ReportSelectionRequest second = report;
    second.cpus = 10;
    rpc.call<ReportSelectionRequest, Ack>(a.node(), kReportSelection, second,
                                          sim::Duration::seconds(30),
                                          [](Result<Ack>) {});
  });
  f.sim.run_until(sim::Time::from_seconds(240));
  EXPECT_FALSE(f.transport.partitioned(a.peer_node(), b.node()));
  EXPECT_EQ(b.records_applied(), 1u);
  a.stop();
  b.stop();
}

TEST(Failover, RoundGapCatchUpRacingDeltaPullLosesNothingDoublesNothing) {
  // After a heal the SAME exchange frame triggers both repair paths at
  // once: the round gap fires a full kCatchUp fan-out while the
  // piggybacked digest mismatch fires a targeted delta pull. Both replies
  // carry overlapping record sets; the flooding dedup set plus the
  // idempotent merge must land every split-era record exactly once on
  // each side — applying one twice would double-subtract its CPUs,
  // losing one would leave the views diverged forever.
  Fixture f;
  auto dp_opts = f.dp_options();
  dp_opts.partition.enabled = true;
  dp_opts.partition.delta_pull_min_gap = sim::Duration::seconds(5);
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, dp_opts);
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, dp_opts);
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  connect({&a, &b}, Overlay::kMesh);

  net::RpcClient rpc_a(f.sim, f.transport);
  net::RpcClient rpc_b(f.sim, f.transport);
  auto report = [&](net::RpcClient& rpc, NodeId dp, std::int32_t cpus) {
    ReportSelectionRequest r;
    r.site = SiteId(0);
    r.vo = VoId(0);
    r.group = GroupId(0);
    r.user = UserId(0);
    r.cpus = cpus;
    r.est_runtime = sim::Duration::minutes(180);
    rpc.call<ReportSelectionRequest, Ack>(dp, kReportSelection, r,
                                          sim::Duration::seconds(30),
                                          [](Result<Ack>) {});
  };

  // A shared pre-split record, exchanged normally.
  f.sim.schedule_at(sim::Time::from_seconds(30),
                    [&] { report(rpc_a, a.node(), 40); });
  // Split both of b's endpoints away, with rpc_b alongside so the minority
  // side keeps taking placements; each side admits work the other cannot
  // see, and the exchange rounds crossing the cut are dropped for good
  // (flooding never retransmits a lost round).
  f.sim.schedule_at(sim::Time::from_seconds(100), [&] {
    f.transport.set_island(b.node(), 1);
    f.transport.set_island(b.peer_node(), 1);
    f.transport.set_island(rpc_b.node(), 1);
  });
  f.sim.schedule_at(sim::Time::from_seconds(110),
                    [&] { report(rpc_a, a.node(), 10); });
  f.sim.schedule_at(sim::Time::from_seconds(115),
                    [&] { report(rpc_b, b.node(), 5); });
  f.sim.schedule_at(sim::Time::from_seconds(250),
                    [&] { f.transport.heal_partition(); });

  // Give the post-heal rounds time to detect the gap, race both repair
  // paths, and let the split-era records settle into the digest window.
  f.sim.run_until(sim::Time::from_seconds(600));

  // The race actually happened: a round gap fired a catch-up somewhere,
  // and at least one digest mismatch fired a targeted pull.
  EXPECT_GE(a.gap_resyncs() + b.gap_resyncs(), 1u);
  EXPECT_GE(a.digest_mismatches() + b.digest_mismatches(), 1u);
  EXPECT_GE(a.delta_pulls_sent() + b.delta_pulls_sent(), 1u);

  // Exactly-once accounting: every record (40 + 10 + 5 CPUs, all still
  // running) is counted once on both sides — a lost record would leave
  // one side above 45 free, a double-applied one would drop it below.
  const sim::Time now = f.sim.now();
  EXPECT_EQ(a.engine().view().estimated_free(SiteId(0), now), 45);
  EXPECT_EQ(b.engine().view().estimated_free(SiteId(0), now), 45);

  // And the settled digests agree: the pair fully reconciled.
  const auto da = a.engine().view().digest(sim::Time::from_seconds(500),
                                           sim::Time::from_seconds(505));
  const auto db = b.engine().view().digest(sim::Time::from_seconds(500),
                                           sim::Time::from_seconds(505));
  EXPECT_TRUE(da == db);
  a.stop();
  b.stop();
}

TEST(Failover, DegradedNackRedirectsWithoutQuarantine) {
  // Regression: a level-2 degraded NACK (quorum stale behind a partition)
  // used to be treated like a draining NACK and quarantined the decision
  // point permanently — a mere heal produces no membership epoch bump, so
  // the client never routed to it again. Degraded must only penalize the
  // p2c score; the point has to be routable the moment the split heals.
  Fixture f;
  auto dp_opts = f.dp_options();
  dp_opts.partition.enabled = true;
  dp_opts.partition.staleness_threshold = sim::Duration::seconds(45);
  DecisionPoint a(f.sim, f.transport, DpId(0), f.catalog, f.tree, dp_opts);
  DecisionPoint b(f.sim, f.transport, DpId(1), f.catalog, f.tree, dp_opts);
  a.bootstrap(f.snapshots());
  b.bootstrap(f.snapshots());
  connect({&a, &b}, Overlay::kMesh);

  ClientOptions options;
  options.attempt_timeout = sim::Duration::seconds(5);
  options.membership_aware = true;  // the buggy path quarantined via this
  auto client = f.client({a.node()}, options);

  // Cut b away before the first exchange round: a keeps serving clients
  // but its only peer goes stale, so its quorum view degrades to level 2.
  f.sim.schedule_at(sim::Time::from_seconds(10), [&] {
    f.transport.set_island(b.node(), 1);
    f.transport.set_island(b.peer_node(), 1);
  });

  bool split_done = false;
  f.sim.schedule_at(sim::Time::from_seconds(120), [&] {
    client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
      split_done = true;
      // The only configured decision point refuses placement work while
      // degraded, so this query degrades to the random-site fallback.
      EXPECT_FALSE(outcome.handled_by_gruber);
    });
  });
  // The refused query retries inside its 60 s budget, then falls back.
  f.sim.run_until(sim::Time::from_seconds(190));
  ASSERT_TRUE(split_done);
  EXPECT_GE(a.degraded_refusals(), 1u);
  EXPECT_GE(client->degraded_redirects(), 1u);
  EXPECT_EQ(client->dps_quarantined(), 0u) << "degraded NACK must not "
                                              "quarantine a live point";

  // Heal; the next exchange round refreshes a's staleness clock and the
  // same client must be able to route to a again with no membership event.
  f.sim.schedule_at(sim::Time::from_seconds(190),
                    [&] { f.transport.heal_partition(); });
  bool healed_done = false;
  f.sim.schedule_at(sim::Time::from_seconds(280), [&] {
    client->schedule(f.job(), [&](grid::Job, QueryOutcome outcome) {
      healed_done = true;
      EXPECT_TRUE(outcome.handled_by_gruber);
      EXPECT_EQ(outcome.served_by, a.node());
    });
  });
  f.sim.run_until(sim::Time::from_seconds(400));
  ASSERT_TRUE(healed_done);
  EXPECT_EQ(client->dps_quarantined(), 0u);
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace digruber::digruber
